// Cache-line alignment helpers shared across the concurrency runtime.
#pragma once

#include <cstddef>
#include <new>

namespace semlock::util {

// std::hardware_destructive_interference_size is not reliably available on
// every standard library we target; 64 bytes is correct for all x86-64 and
// most AArch64 parts this reproduction runs on.
inline constexpr std::size_t kCacheLineSize = 64;

// Wrapper that pads T to a full cache line so that per-thread or per-lock
// state never false-shares. Intended for arrays of counters/locks indexed by
// thread id.
template <typename T>
struct alignas(kCacheLineSize) CacheLinePadded {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace semlock::util
