#include "util/thread_team.h"

#include <chrono>
#include <thread>
#include <vector>

#include "util/barrier.h"

namespace semlock::util {

TeamResult run_team(std::size_t num_threads,
                    const std::function<void(std::size_t)>& body) {
  using Clock = std::chrono::steady_clock;
  SpinBarrier start(num_threads);
  // Each worker records its own start/end: on an oversubscribed (or
  // single-core) machine the coordinating thread can be descheduled across
  // the whole run, so timing from the outside under-measures wildly.
  std::vector<Clock::time_point> begins(num_threads), ends(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      start.arrive_and_wait();
      begins[t] = Clock::now();
      body(t);
      ends[t] = Clock::now();
    });
  }
  for (auto& w : workers) w.join();
  Clock::time_point first = begins[0], last = ends[0];
  for (std::size_t t = 1; t < num_threads; ++t) {
    if (begins[t] < first) first = begins[t];
    if (ends[t] > last) last = ends[t];
  }
  return TeamResult{std::chrono::duration<double>(last - first).count()};
}

}  // namespace semlock::util
