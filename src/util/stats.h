// Aggregation and table formatting for benchmark results.
//
// Each paper figure is a family of series (one per synchronization strategy)
// over a sweep of thread counts. SeriesTable collects the measurements and
// prints them both as an aligned console table and as CSV, so the figures can
// be regenerated from the bench binaries' output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace semlock::util {

// Both return 0.0 rather than dividing by zero when given fewer samples
// than the statistic needs (empty for mean, <2 for stddev).
double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

// Log-scale (power-of-two bucket) histogram for latency-style values with a
// huge dynamic range. Value v lands in bucket floor(log2(v)) + 1, i.e. the
// bucket whose range is [2^(b-1), 2^b); zero gets bucket 0. 65 buckets cover
// the full uint64 range, so add() never clamps or drops.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t value) noexcept;
  void merge(const Log2Histogram& other) noexcept;

  // The per-bucket difference `*this - earlier`, for turning two cumulative
  // snapshots of a monotonically growing histogram into the histogram of
  // just the samples between them (the window-rotation primitive of
  // obs/window.h). Subtraction saturates at zero per bucket — `earlier`
  // taken from a different lineage cannot produce wrapped counts — and the
  // result's count is recomputed from the buckets so quantiles stay exact.
  Log2Histogram delta(const Log2Histogram& earlier) const noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return i < kBuckets ? buckets_[i] : 0;
  }
  // Index one past the last non-empty bucket (0 when empty).
  std::size_t max_bucket() const noexcept;

  // Smallest upper bucket bound 2^b with at most floor((1-q)*count) samples
  // in buckets above b; a coarse quantile (factor-of-two resolution) with an
  // exact integer rank. In particular, p999 of fewer than 1000 samples is
  // the max occupied bucket — no sample may sit above it — while at exactly
  // 1000 samples one may. Returns 0 if empty.
  std::uint64_t quantile_upper_bound(double q) const noexcept;

  // The tail quantiles every latency report wants, at the histogram's
  // factor-of-two resolution. p999 is the honest one for an open-loop
  // server: medians hide queueing, the 99.9th percentile does not.
  std::uint64_t p50() const noexcept { return quantile_upper_bound(0.50); }
  std::uint64_t p99() const noexcept { return quantile_upper_bound(0.99); }
  std::uint64_t p999() const noexcept { return quantile_upper_bound(0.999); }

  // {"count": N, "total": T, "buckets": [{"le": 2^b, "count": n}, ...]}
  // with empty buckets omitted.
  std::string to_json() const;

  // Replaces the contents from serialized state (count is recomputed as the
  // bucket sum). Used by the binary trace-dump loader.
  void load(const std::uint64_t buckets[kBuckets], std::uint64_t total) noexcept;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
};

class SeriesTable {
 public:
  // `row_label` names the x-axis (e.g. "threads"); `unit` names the cell
  // values (e.g. "ops/ms" or "speedup").
  SeriesTable(std::string row_label, std::string unit);

  void set_series(std::vector<std::string> names);
  void add_row(double x, std::vector<double> cells);

  // Aligned human-readable table.
  std::string to_table() const;
  // Machine-readable CSV (header: row_label,series...).
  std::string to_csv() const;
  // Machine-readable JSON object:
  //   {"row_label": ..., "unit": ..., "series": [...],
  //    "rows": [{"x": ..., "cells": [...]}, ...]}
  // Used by the BENCH_*.json artifacts that track the perf trajectory.
  std::string to_json() const;

  const std::string& unit() const { return unit_; }

 private:
  std::string row_label_;
  std::string unit_;
  std::vector<std::string> series_;
  struct Row {
    double x;
    std::vector<double> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace semlock::util
