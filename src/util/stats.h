// Aggregation and table formatting for benchmark results.
//
// Each paper figure is a family of series (one per synchronization strategy)
// over a sweep of thread counts. SeriesTable collects the measurements and
// prints them both as an aligned console table and as CSV, so the figures can
// be regenerated from the bench binaries' output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace semlock::util {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

class SeriesTable {
 public:
  // `row_label` names the x-axis (e.g. "threads"); `unit` names the cell
  // values (e.g. "ops/ms" or "speedup").
  SeriesTable(std::string row_label, std::string unit);

  void set_series(std::vector<std::string> names);
  void add_row(double x, std::vector<double> cells);

  // Aligned human-readable table.
  std::string to_table() const;
  // Machine-readable CSV (header: row_label,series...).
  std::string to_csv() const;
  // Machine-readable JSON object:
  //   {"row_label": ..., "unit": ..., "series": [...],
  //    "rows": [{"x": ..., "cells": [...]}, ...]}
  // Used by the BENCH_*.json artifacts that track the perf trajectory.
  std::string to_json() const;

  const std::string& unit() const { return unit_; }

 private:
  std::string row_label_;
  std::string unit_;
  std::vector<std::string> series_;
  struct Row {
    double x;
    std::vector<double> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace semlock::util
