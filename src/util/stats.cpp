#include "util/stats.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace semlock::util {

void Log2Histogram::add(std::uint64_t value) noexcept {
  buckets_[std::bit_width(value)] += 1;
  count_ += 1;
  total_ += value;
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ += other.total_;
}

Log2Histogram Log2Histogram::delta(
    const Log2Histogram& earlier) const noexcept {
  Log2Histogram out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t later = buckets_[i];
    const std::uint64_t prior = earlier.buckets_[i];
    out.buckets_[i] = later > prior ? later - prior : 0;
    out.count_ += out.buckets_[i];
  }
  out.total_ = total_ > earlier.total_ ? total_ - earlier.total_ : 0;
  return out;
}

void Log2Histogram::load(const std::uint64_t buckets[kBuckets],
                         std::uint64_t total) noexcept {
  count_ = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] = buckets[i];
    count_ += buckets[i];
  }
  total_ = total;
}

std::size_t Log2Histogram::max_bucket() const noexcept {
  for (std::size_t i = kBuckets; i > 0; --i) {
    if (buckets_[i - 1] != 0) return i;
  }
  return 0;
}

std::uint64_t Log2Histogram::quantile_upper_bound(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Integer rank, derived from how many samples are ALLOWED to exceed the
  // bound: floor((1-q)*count). This makes the small-sample contract exact
  // rather than at the mercy of float rounding against a fractional target:
  // p999 of fewer than 1000 samples allows zero above, so it must be the
  // max occupied bucket; at exactly 1000 one sample may sit above. A tail
  // quantile that quietly reports an interior bucket under-reports precisely
  // the starvation outliers the fairness work exists to expose.
  const std::uint64_t allowed_above = static_cast<std::uint64_t>(
      (1.0 - q) * static_cast<double>(count_));
  const std::uint64_t target =
      allowed_above >= count_ ? 1 : count_ - allowed_above;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Bucket i holds values in [2^(i-1), 2^i); bucket 0 holds only zero.
      if (i == 0) return 0;
      return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i);
    }
  }
  return ~std::uint64_t{0};
}

std::string Log2Histogram::to_json() const {
  char buf[96];
  std::string out = "{\"count\": ";
  std::snprintf(buf, sizeof(buf), "%llu, \"total\": %llu, \"buckets\": [",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(total_));
  out += buf;
  bool first = true;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    const unsigned long long le =
        i == 0 ? 0ULL
        : i >= 64 ? ~0ULL
                  : static_cast<unsigned long long>(std::uint64_t{1} << i) - 1;
    std::snprintf(buf, sizeof(buf), "{\"le\": %llu, \"count\": %llu}", le,
                  static_cast<unsigned long long>(buckets_[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

SeriesTable::SeriesTable(std::string row_label, std::string unit)
    : row_label_(std::move(row_label)), unit_(std::move(unit)) {}

void SeriesTable::set_series(std::vector<std::string> names) {
  series_ = std::move(names);
}

void SeriesTable::add_row(double x, std::vector<double> cells) {
  if (cells.size() != series_.size()) {
    throw std::invalid_argument("SeriesTable row width mismatch");
  }
  rows_.push_back(Row{x, std::move(cells)});
}

namespace {
std::string format_cell(double v) {
  char buf[64];
  if (v >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}
}  // namespace

std::string SeriesTable::to_table() const {
  constexpr int kWidth = 12;
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-*s", kWidth, row_label_.c_str());
  out += buf;
  for (const auto& s : series_) {
    std::snprintf(buf, sizeof(buf), "%*s", kWidth, s.c_str());
    out += buf;
  }
  out += "   [" + unit_ + "]\n";
  for (const auto& row : rows_) {
    std::snprintf(buf, sizeof(buf), "%-*g", kWidth, row.x);
    out += buf;
    for (double c : row.cells) {
      std::snprintf(buf, sizeof(buf), "%*s", kWidth, format_cell(c).c_str());
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string SeriesTable::to_csv() const {
  std::string out = row_label_;
  for (const auto& s : series_) {
    out += ',';
    out += s;
  }
  out += '\n';
  char buf[64];
  for (const auto& row : rows_) {
    std::snprintf(buf, sizeof(buf), "%g", row.x);
    out += buf;
    for (double c : row.cells) {
      std::snprintf(buf, sizeof(buf), ",%.4f", c);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string SeriesTable::to_json() const {
  std::string out = "{\"row_label\": \"" + row_label_ + "\", \"unit\": \"" +
                    unit_ + "\", \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"' + series_[i] + '"';
  }
  out += "], \"rows\": [";
  char buf[64];
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "{\"x\": %g, \"cells\": [", rows_[r].x);
    out += buf;
    for (std::size_t c = 0; c < rows_[r].cells.size(); ++c) {
      if (c > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%.4f", rows_[r].cells[c]);
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace semlock::util
