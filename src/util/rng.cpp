#include "util/rng.h"

namespace semlock::util {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) {
  SplitMix64 sm(master ^ (0xd1b54a32d192ed03ULL * (stream + 1)));
  // Burn a few outputs so adjacent streams decorrelate even for tiny masters.
  sm.next();
  sm.next();
  return sm.next();
}

}  // namespace semlock::util
