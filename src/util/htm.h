// Hardware-transactional-memory primitives for the optional lock-elision
// tier (docs/FAST_PATH.md §8).
//
// Compiled in only under the SEMLOCK_ELISION CMake option AND a toolchain
// that exposes a HTM ISA: x86 RTM (`-mrtm`, __RTM__) or ARM TME
// (__ARM_FEATURE_TME). Everywhere else every function is a constexpr stub
// the optimizer deletes, so the elision code in lock_mechanism.cpp costs
// nothing on toolchains without HTM — the dr-m/atomic_sync
// transactional_lock_guard discipline.
//
// Conventions (normalized across RTM/TME):
//   htm_compiled          — true when a real HTM backend is compiled in.
//   htm_supported()       — runtime CPU support (cached CPUID/ID register
//                           probe); always check before htm_begin.
//   htm_begin()           — returns kHtmStarted when the transaction is
//                           live; any other value is an abort status (also
//                           the resume value when the transaction aborts
//                           later — execution rewinds to the htm_begin call
//                           with all transactional writes rolled back).
//   htm_retryable(code)   — the abort was transient (conflict/capacity
//                           hint), worth retrying within the caller's
//                           bounded budget.
//   htm_abort()           — explicitly abort the live transaction (e.g. a
//                           lock word observed busy inside the read set).
//   htm_end()             — commit.
#pragma once

#if defined(SEMLOCK_ELISION) && defined(__RTM__)
#define SEMLOCK_HTM_RTM 1
#include <cpuid.h>
#include <immintrin.h>
#elif defined(SEMLOCK_ELISION) && defined(__ARM_FEATURE_TME)
#define SEMLOCK_HTM_TME 1
#include <arm_acle.h>
#endif

namespace semlock::util {

#if defined(SEMLOCK_HTM_RTM)

inline constexpr bool htm_compiled = true;
inline constexpr unsigned kHtmStarted = _XBEGIN_STARTED;

inline bool htm_supported() noexcept {
  // CPUID leaf 7 subleaf 0, EBX bit 11 = RTM. Cached: the probe is a
  // serializing instruction.
  static const bool supported = [] {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
    return (ebx & (1u << 11)) != 0;
  }();
  return supported;
}

inline unsigned htm_begin() noexcept { return _xbegin(); }
inline void htm_end() noexcept { _xend(); }
inline void htm_abort() noexcept { _xabort(0xff); }
inline bool htm_retryable(unsigned code) noexcept {
  return (code & _XABORT_RETRY) != 0;
}

#elif defined(SEMLOCK_HTM_TME)

inline constexpr bool htm_compiled = true;
// __tstart returns 0 when the transaction starts, a nonzero status on
// abort — the opposite polarity of RTM, normalized by this constant.
inline constexpr unsigned kHtmStarted = 0u;

inline bool htm_supported() noexcept {
  // __ARM_FEATURE_TME is only defined when the target arch guarantees TME.
  return true;
}

inline unsigned htm_begin() noexcept {
  return static_cast<unsigned>(__tstart());
}
inline void htm_end() noexcept { __tcommit(); }
inline void htm_abort() noexcept { __tcancel(0xff); }
inline bool htm_retryable(unsigned code) noexcept {
  return (code & _TMFAILURE_RTRY) != 0;
}

#else  // no HTM backend compiled

inline constexpr bool htm_compiled = false;
inline constexpr unsigned kHtmStarted = 0xFFFFFFFFu;

inline constexpr bool htm_supported() noexcept { return false; }
inline unsigned htm_begin() noexcept { return 0; }
inline void htm_end() noexcept {}
inline void htm_abort() noexcept {}
inline constexpr bool htm_retryable(unsigned) noexcept { return false; }

#endif

}  // namespace semlock::util
