#include "util/env.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace semlock::util {

void warn_invalid_env(const char* name, const char* text,
                      const char* fallback_desc) {
  std::fprintf(stderr, "[semlock] ignoring invalid %s=\"%s\"; using %s\n",
               name, text, fallback_desc);
}

std::optional<bool> env_bool_01(const char* name, const char* text,
                                const char* fallback_desc) {
  if (text == nullptr) return std::nullopt;  // unset is not an error
  if (text[0] != '\0' && text[1] == '\0') {
    if (text[0] == '0') return false;
    if (text[0] == '1') return true;
  }
  warn_invalid_env(name, text, fallback_desc);
  return std::nullopt;
}

std::optional<long long> env_int_in_range(const char* name, const char* text,
                                          long long min, long long max,
                                          const char* fallback_desc) {
  if (text == nullptr) return std::nullopt;  // unset is not an error
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  const bool overflowed = errno == ERANGE;
  const bool parsed = end != text && *end == '\0';
  if (!parsed || overflowed || value < min || value > max) {
    warn_invalid_env(name, text, fallback_desc);
    return std::nullopt;
  }
  return value;
}

std::optional<double> env_double_in_range(const char* name, const char* text,
                                          double min, double max,
                                          const char* fallback_desc) {
  if (text == nullptr) return std::nullopt;  // unset is not an error
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  const bool overflowed = errno == ERANGE;
  const bool parsed = end != text && *end == '\0';
  if (!parsed || overflowed || std::isnan(value) || value < min ||
      value > max) {
    warn_invalid_env(name, text, fallback_desc);
    return std::nullopt;
  }
  return value;
}

}  // namespace semlock::util
