// Test-and-test-and-set spinlock with exponential backoff and yielding.
//
// The semantic-locking mechanism (Fig. 20 of the paper) guards its internal
// state with a short critical section. The paper's Java prototype uses
// `synchronized`; we use a TTAS spinlock that degrades to yielding, which is
// essential when the benchmark oversubscribes cores (the PPoPP testbed had 32
// physical cores; this reproduction may have far fewer).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "dct/hooks.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace semlock::util {

// One iteration of busy-wait politeness: a pause on x86, a yield hint on
// AArch64, a plain compiler barrier elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Exponential backoff that starts with pause instructions and escalates to
// std::this_thread::yield(). Yielding matters: a pure spin livelocks when the
// lock holder is descheduled on an oversubscribed machine.
class Backoff {
 public:
  void pause() noexcept {
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 256;
  std::uint32_t spins_ = 1;
};

// BasicLockable TTAS spinlock; one byte of state.
class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
#if defined(SEMLOCK_DCT)
    // Under the DCT scheduler the spin becomes a cooperative block so the
    // harness sees "waiting on this flag" as an explicit predicate.
    if (::semlock::dct::scheduled()) {
      ::semlock::dct::spinlock_acquire(flag_);
      return;
    }
#endif
    Backoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  bool try_lock() noexcept {
#if defined(SEMLOCK_DCT)
    if (::semlock::dct::scheduled()) {
      return ::semlock::dct::spinlock_try_acquire(flag_);
    }
#endif
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept {
#if defined(SEMLOCK_DCT)
    if (::semlock::dct::scheduled()) {
      ::semlock::dct::spinlock_release(flag_);
      return;
    }
#endif
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace semlock::util
