// Striped 32-bit holder counters (BRAVO/SNZI-style de-sharing).
//
// A shared `fetch_add` counter serializes commuting lock holders on one
// cache line even though the semantics say they never conflict. This bank
// gives each counter S cache-line-padded stripes; a thread increments only
// its own stripe (chosen by a per-thread hash), so concurrent commuting
// acquisitions touch disjoint lines and scale like the hand-written striping
// of the paper's Manual baselines.
//
// Reading the logical value means summing the stripes. Two properties make
// that sound:
//
//   * The sum is computed in uint32 arithmetic, which is exact mod 2^32.
//     A hold acquired on thread A and released on thread B decrements a
//     DIFFERENT stripe than it incremented — the stripe wraps negative, but
//     the wrapped values still cancel in the modular sum, so the total is
//     exact whenever the true number of holds fits in 31 bits (it is a
//     bounded count of in-flight transactions).
//   * A sum racing with increments/decrements may observe any intermediate
//     value, exactly like a racing load of a single counter. The lock
//     mechanism's protocols only draw conclusions from a sum after the
//     Dekker-style seq_cst fence handshake documented in
//     semlock/lock_mechanism.cpp and docs/FAST_PATH.md, which is the same
//     discipline they use for unstriped counters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/align.h"

namespace semlock::util {

// This thread's stripe-selection token: a sequential id passed through a
// multiplicative hash so threads created back-to-back land on different
// stripes even for small stripe counts. Stable for the thread's lifetime.
inline std::uint32_t thread_stripe_token() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t token = [] {
    std::uint32_t x = next.fetch_add(1, std::memory_order_relaxed);
    x *= 0x9E3779B9u;  // Fibonacci hashing spreads consecutive ids
    x ^= x >> 16;
    return x;
  }();
  return token;
}

// A bank of `rows` striped counters sharing one slab: row r, stripe s lives
// at slot r*stripes+s, each slot on its own cache line. The lock mechanism
// allocates one row per striped locking mode.
class StripedCounterBank {
 public:
  static constexpr std::uint32_t kMaxStripes = 1024;

  // `stripes` is rounded up to a power of two and clamped to
  // [1, kMaxStripes] so stripe selection is a mask, not a modulo.
  StripedCounterBank(std::uint32_t rows, std::uint32_t stripes)
      : rows_(rows),
        stripes_(round_up_pow2(stripes)),
        mask_(stripes_ - 1),
        slots_(new Slot[static_cast<std::size_t>(rows_) * stripes_]) {}

  StripedCounterBank(const StripedCounterBank&) = delete;
  StripedCounterBank& operator=(const StripedCounterBank&) = delete;

  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t stripes() const noexcept { return stripes_; }

  // Bytes of the heap slab (per-instance footprint accounting).
  std::size_t heap_bytes() const noexcept {
    return static_cast<std::size_t>(rows_) * stripes_ * sizeof(Slot);
  }

  // The calling thread's stripe of row `row`. All RMWs a thread performs on
  // a row hit this one slot; the caller picks the memory order.
  std::atomic<std::uint32_t>& local_slot(std::uint32_t row) noexcept {
    return slot(row, thread_stripe_token() & mask_);
  }

  // Direct stripe access (tests and diagnostics).
  std::atomic<std::uint32_t>& slot(std::uint32_t row,
                                   std::uint32_t stripe) noexcept {
    return *slots_[static_cast<std::size_t>(row) * stripes_ + stripe];
  }
  const std::atomic<std::uint32_t>& slot(std::uint32_t row,
                                         std::uint32_t stripe) const noexcept {
    return *slots_[static_cast<std::size_t>(row) * stripes_ + stripe];
  }

  // Sum of row `row`'s stripes mod 2^32 — the logical counter value. Exact
  // at quiescence (including after cross-thread inc/dec pairs, see header
  // comment); a racing read behaves like a racing load of a single counter.
  std::uint32_t sum(std::uint32_t row, std::memory_order order) const noexcept {
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < stripes_; ++s) {
      total += slot(row, s).load(order);
    }
    return total;
  }

  static constexpr std::uint32_t round_up_pow2(std::uint32_t v) noexcept {
    if (v <= 1) return 1;
    if (v >= kMaxStripes) return kMaxStripes;
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

 private:
  using Slot = CacheLinePadded<std::atomic<std::uint32_t>>;

  std::uint32_t rows_;
  std::uint32_t stripes_;
  std::uint32_t mask_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace semlock::util
