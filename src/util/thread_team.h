// Fork-join worker team used by every benchmark: spawns N threads, lines them
// up on a barrier, runs the per-thread body, and reports the wall time of the
// slowest worker (throughput = total ops / wall time, as in the paper's
// methodology of timed passes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace semlock::util {

struct TeamResult {
  double wall_seconds = 0.0;  // time from release to last worker finishing
};

// Runs `body(thread_id)` on `num_threads` threads after a common start
// barrier; joins all threads before returning.
TeamResult run_team(std::size_t num_threads,
                    const std::function<void(std::size_t)>& body);

}  // namespace semlock::util
