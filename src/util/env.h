// Strict parsing for the runtime's environment knobs.
//
// The runtime knobs (SEMLOCK_WATCHDOG_MS, SEMLOCK_WAIT_POLICY) are typed by
// operators under time pressure; a typo must not silently become "0" (atol)
// or silently pick a default nobody asked for. These helpers reject
// malformed, out-of-range, and overflowing values outright and say so once
// on stderr — the caller then falls back to its documented default.
#pragma once

#include <optional>

namespace semlock::util {

// Parses `text` (the value of environment variable `name`) as a decimal
// integer in [min, max]. Returns nullopt — after printing a one-line
// warning naming the variable, the offending value, and `fallback_desc` —
// when `text` is empty, contains trailing junk ("50x"), is not a number,
// or falls outside the range (including strtoll-level overflow).
std::optional<long long> env_int_in_range(const char* name, const char* text,
                                          long long min, long long max,
                                          const char* fallback_desc);

// Parses `text` as a decimal floating-point value in [min, max]. Same
// strictness contract as env_int_in_range: trailing junk, non-numbers,
// infinities/NaN, and out-of-range values warn once and return nullopt.
std::optional<double> env_double_in_range(const char* name, const char* text,
                                          double min, double max,
                                          const char* fallback_desc);

// Parses `text` as a strict boolean: exactly "0" or "1". Anything else
// ("true", "yes", " 1", "01") warns with the standard one-liner and returns
// nullopt so the caller falls back. Unset (nullptr) is silently nullopt.
std::optional<bool> env_bool_01(const char* name, const char* text,
                                const char* fallback_desc);

// Same contract for warning, but the caller does the domain-specific
// parsing; this just emits the standard one-liner.
void warn_invalid_env(const char* name, const char* text,
                      const char* fallback_desc);

}  // namespace semlock::util
