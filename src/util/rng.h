// Deterministic, cheap pseudo-random number generation for workloads.
//
// Benchmarks need per-thread RNG streams that are (a) fast enough not to
// dominate measurement and (b) reproducible across runs given a seed, so the
// paper's workload mixes (e.g. 35/35/20/10 for Graph) are stable.
#pragma once

#include <cstdint>

namespace semlock::util {

// SplitMix64 — used for seeding and as a standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman & Vigna). Public-domain algorithm, implemented
// from the published reference.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). Uses the widening-multiply trick to avoid
  // modulo bias for the bounds used by the benchmarks.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Bernoulli trial: true with probability pct/100.
  bool chance_percent(std::uint32_t pct) noexcept {
    return next_below(100) < pct;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

// Derives statistically independent per-thread seeds from one master seed.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream);

}  // namespace semlock::util
