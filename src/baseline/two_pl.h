// Two-phase-locking baseline ("2PL" in Figs. 21–25).
//
// As in the paper's evaluation, this reuses the output of the Section 3
// synthesis — the same lock placement and the same instance ordering — but
// instead of locking *operations* of an ADT instance, it acquires a standard
// mutual-exclusion lock protecting the instance. The gap between 2PL and
// "Ours" therefore isolates exactly the benefit of semantic (commutativity-
// aware) locking.
#pragma once

#include <algorithm>
#include <mutex>
#include <span>
#include <vector>

#include "semlock/lock_mechanism.h"  // local_acquire_stats

namespace semlock::baseline {

// One of these is embedded in (or associated with) each ADT instance.
// Acquisitions feed the same thread-local contention statistics as the
// semantic-locking runtime, so the contention benchmark can compare
// strategies uniformly.
class InstanceLock {
 public:
  void lock() {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (mutex_.try_lock()) return;
    ++stats.contended;
    mutex_.lock();
  }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

// Transaction-side state for 2PL: tracks held instance locks (the LOCAL_SET
// analogue), skips re-acquisition, orders same-class instances by address.
class TwoPLTxn {
 public:
  TwoPLTxn() { held_.reserve(8); }
  TwoPLTxn(const TwoPLTxn&) = delete;
  TwoPLTxn& operator=(const TwoPLTxn&) = delete;
  ~TwoPLTxn() { release_all(); }

  void acquire(InstanceLock* lk) {
    if (lk == nullptr || holds(lk)) return;
    lk->lock();
    held_.push_back(lk);
  }

  // Dynamic ordering for same-equivalence-class instances (Fig. 12).
  void acquire_ordered(std::span<InstanceLock*> lks) {
    std::sort(lks.begin(), lks.end());
    for (InstanceLock* lk : lks) acquire(lk);
  }

  bool holds(const InstanceLock* lk) const {
    return std::find(held_.begin(), held_.end(), lk) != held_.end();
  }

  void release(InstanceLock* lk) {
    auto it = std::find(held_.begin(), held_.end(), lk);
    if (it == held_.end()) return;
    (*it)->unlock();
    held_.erase(it);
  }

  void release_all() {
    for (InstanceLock* lk : held_) lk->unlock();
    held_.clear();
  }

 private:
  std::vector<InstanceLock*> held_;
};

}  // namespace semlock::baseline
