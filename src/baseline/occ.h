// Optimistic-concurrency-control baseline ("OCC" in the semlock-server
// comparison): TL2-style word-versioned cells with backward validation.
//
// Where the paper's mechanism (and the 2PL baseline) synchronize
// pessimistically at transaction start, OCC runs the body against versioned
// reads, buffers writes locally, and validates at commit: write cells are
// locked in address order (the version word doubles as the lock — odd means
// write-locked), the read set is revalidated, and writes install with a
// version bump. Any validation failure aborts the attempt; the caller
// re-runs the transaction body. This is the classic alternative CC scheme
// the server workload compares semantic locking against head-to-head (the
// related "Semantic Lock ... Operation Conflict Graph" evaluation does the
// same): OCC wins when conflicts are rare and loses progress to aborts
// exactly where semantic locking keeps commuting operations conflict-free.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "semlock/lock_mechanism.h"  // local_acquire_stats
#include "util/spinlock.h"           // cpu_relax

namespace semlock::baseline {

// One versioned 64-bit record. `ver` is even when the cell is stable (the
// value's version) and odd while a committer holds its write lock. 16 bytes;
// deliberately NOT cache-line padded — the store is millions of cells and
// false sharing is part of the scheme's honest cost.
struct OccCell {
  std::atomic<std::uint64_t> ver{0};
  std::atomic<std::int64_t> val{0};
};

// Transaction-local read/write sets for one attempt. Reusable across
// attempts and transactions: run() resets it per attempt.
class OccTxn {
 public:
  // Versioned read. Consults the local write buffer first (read-your-own-
  // writes), then spins past in-flight committers for a stable snapshot.
  std::int64_t read(OccCell* cell) {
    for (const WriteEntry& w : writes_) {
      if (w.cell == cell) return w.val;
    }
    for (;;) {
      const std::uint64_t v1 = cell->ver.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // committer in flight; its window is tiny
      const std::int64_t value = cell->val.load(std::memory_order_acquire);
      if (cell->ver.load(std::memory_order_acquire) == v1) {
        reads_.push_back(ReadEntry{cell, v1});
        return value;
      }
    }
  }

  // Buffered write; becomes visible only if commit() succeeds.
  void write(OccCell* cell, std::int64_t value) {
    for (WriteEntry& w : writes_) {
      if (w.cell == cell) {
        w.val = value;
        return;
      }
    }
    writes_.push_back(WriteEntry{cell, value});
  }

  // Validate-and-install. Returns false on conflict, leaving the store
  // untouched; the caller resets and re-runs the body. Read-only
  // transactions validate without taking any lock.
  bool commit() {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    // Lock the write set in address order (same discipline as the 2PL
    // baseline's dynamic instance ordering, so committers cannot deadlock).
    std::sort(writes_.begin(), writes_.end(),
              [](const WriteEntry& a, const WriteEntry& b) {
                return a.cell < b.cell;
              });
    std::size_t locked = 0;
    bool ok = true;
    for (; locked < writes_.size(); ++locked) {
      OccCell* cell = writes_[locked].cell;
      std::uint64_t v = cell->ver.load(std::memory_order_relaxed);
      if ((v & 1) != 0 ||
          !cell->ver.compare_exchange_strong(v, v + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)) {
        ok = false;
        break;
      }
      writes_[locked].locked_ver = v;
    }
    // Backward validation: every read version must still be current (for
    // cells we write-locked ourselves, current means our pre-lock version).
    if (ok) {
      for (const ReadEntry& r : reads_) {
        const std::uint64_t now = r.cell->ver.load(std::memory_order_acquire);
        const std::uint64_t expect = locked_version_of(r.cell, locked);
        if ((expect != kNotLocked ? expect : now) != r.ver) {
          ok = false;
          break;
        }
        if (expect == kNotLocked && (now & 1) != 0) {
          ok = false;  // concurrent committer owns a cell we read
          break;
        }
      }
    }
    if (!ok) {
      for (std::size_t i = 0; i < locked; ++i) {
        writes_[i].cell->ver.store(writes_[i].locked_ver,
                                   std::memory_order_release);
      }
      ++stats.contended;
      return false;
    }
    for (const WriteEntry& w : writes_) {
      w.cell->val.store(w.val, std::memory_order_release);
    }
    for (const WriteEntry& w : writes_) {
      w.cell->ver.store(w.locked_ver + 2, std::memory_order_release);
    }
    return true;
  }

  void reset() {
    reads_.clear();
    writes_.clear();
  }

  const std::vector<std::pair<OccCell*, std::int64_t>> buffered_writes()
      const {
    std::vector<std::pair<OccCell*, std::int64_t>> out;
    out.reserve(writes_.size());
    for (const WriteEntry& w : writes_) out.emplace_back(w.cell, w.val);
    return out;
  }

 private:
  static constexpr std::uint64_t kNotLocked = ~std::uint64_t{0};

  struct ReadEntry {
    OccCell* cell;
    std::uint64_t ver;
  };
  struct WriteEntry {
    OccCell* cell;
    std::int64_t val;
    std::uint64_t locked_ver = 0;
  };

  // Pre-lock version of `cell` if it is among the first `locked` write
  // entries, else kNotLocked. Linear: write sets here are a handful of
  // cells.
  std::uint64_t locked_version_of(const OccCell* cell,
                                  std::size_t locked) const {
    for (std::size_t i = 0; i < locked; ++i) {
      if (writes_[i].cell == cell) return writes_[i].locked_ver;
    }
    return kNotLocked;
  }

  std::vector<ReadEntry> reads_;
  std::vector<WriteEntry> writes_;
};

// Runs `body(txn)` under OCC until it commits, with capped randomized
// exponential backoff between attempts. Returns the number of aborted
// attempts. `body` must be re-runnable (all effects through txn).
template <typename Body>
std::uint32_t occ_run(OccTxn& txn, std::uint64_t* backoff_state,
                      const Body& body) {
  std::uint32_t aborts = 0;
  for (;;) {
    txn.reset();
    body(txn);
    if (txn.commit()) return aborts;
    ++aborts;
    // xorshift-mixed spin backoff, capped: progress over politeness.
    *backoff_state ^= *backoff_state << 13;
    *backoff_state ^= *backoff_state >> 7;
    *backoff_state ^= *backoff_state << 17;
    const std::uint32_t cap = 1u << std::min<std::uint32_t>(aborts, 10);
    for (std::uint32_t i = *backoff_state % cap; i > 0; --i) {
      util::cpu_relax();
    }
  }
}

}  // namespace semlock::baseline
