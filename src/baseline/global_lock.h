// Global-lock baseline ("Global" in Figs. 21–25): every atomic section runs
// under one process-wide mutex.
#pragma once

#include <mutex>

#include "semlock/lock_mechanism.h"  // local_acquire_stats

namespace semlock::baseline {

class GlobalLock {
 public:
  void lock() {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (mutex_.try_lock()) return;
    ++stats.contended;
    mutex_.lock();
  }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

// RAII section guard.
class GlobalSection {
 public:
  explicit GlobalSection(GlobalLock& g) : lock_(&g) { lock_->lock(); }
  GlobalSection(const GlobalSection&) = delete;
  GlobalSection& operator=(const GlobalSection&) = delete;
  ~GlobalSection() { lock_->unlock(); }

 private:
  GlobalLock* lock_;
};

}  // namespace semlock::baseline
