// Control-flow graph over the statement IR.
//
// Every statement (including If/While condition evaluations) is one node,
// plus synthetic entry/exit nodes. Edges carry optional null-test
// refinements ("on this edge, variable v is known null / non-null") which
// feed the Appendix-A null-check remover. Each synthesis pass rebuilds the
// CFG after mutating the AST; sections are small so the O(V^2) closure
// queries below are never a concern.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "synth/ast.h"

namespace semlock::synth {

struct CfgEdge {
  enum class Refine { None, IsNull, NonNull };
  int to = -1;
  Refine refine = Refine::None;
  std::string var;  // refined variable (when refine != None)
};

struct CfgNode {
  const Stmt* stmt = nullptr;  // null for entry/exit
  std::vector<CfgEdge> out;
  std::vector<int> in;  // predecessor node indices
};

class Cfg {
 public:
  static Cfg build(const AtomicSection& section);

  int entry() const { return entry_; }
  int exit() const { return exit_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const CfgNode& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  // Node index of a statement; -1 if the statement is not in this CFG.
  int node_of(const Stmt* s) const;

  // Nodes reachable from `n`. With `strict`, excludes `n` itself unless it
  // is reachable through a cycle.
  std::vector<char> reachable_from(int n, bool strict) const;
  bool reaches(int a, int b, bool strict) const {
    return reachable_from(a, strict)[static_cast<std::size_t>(b)] != 0;
  }

  // True iff every path from `from` to the exit passes through `through`
  // (i.e. `through` postdominates `from`); computed by testing whether exit
  // stays reachable when `through` is removed.
  bool all_paths_pass_through(int from, int through) const;

  // BFS distance from entry (INT_MAX for unreachable nodes).
  std::vector<int> distance_from_entry() const;

  // All node indices whose statement is a Call with receiver `v`.
  std::vector<int> call_nodes_of(const std::string& v) const;

  // The variable assigned by the statement at node `n` ("" if none).
  // Covers Assign, New, and Call-with-result.
  static std::string assigned_var(const Stmt* s);

 private:
  // Links `from` -> first node of `block`; returns the dangling exits of the
  // block (nodes whose control continues past the block).
  int add_node(const Stmt* s);
  void add_edge(int from, int to, CfgEdge::Refine r = CfgEdge::Refine::None,
                std::string var = {});
  // Builds `block`, connecting every (node, refinement) in `preds` to its
  // first statement; returns the predecessors for whatever follows.
  struct Pred {
    int node;
    CfgEdge::Refine refine = CfgEdge::Refine::None;
    std::string var;
  };
  std::vector<Pred> build_block(const Block& block, std::vector<Pred> preds);

  int entry_ = -1;
  int exit_ = -1;
  std::vector<CfgNode> nodes_;
  std::unordered_map<const Stmt*, int> index_;
};

}  // namespace semlock::synth
