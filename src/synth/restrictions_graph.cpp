#include "synth/restrictions_graph.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>

#include "synth/cfg.h"

namespace semlock::synth {

RestrictionsGraph RestrictionsGraph::build(const Program& program,
                                           const PointerClasses& classes) {
  RestrictionsGraph g;
  for (const auto& section : program.sections) {
    // Every class used by a call is a node.
    const Cfg cfg = Cfg::build(section);
    for (int n = 0; n < cfg.num_nodes(); ++n) {
      const Stmt* s = cfg.node(n).stmt;
      if (s && s->kind == Stmt::Kind::Call) {
        g.add_node(classes.class_of(section.name, s->recv));
      }
    }

    // For every node `a` assigning a pointer variable y:
    //   {calls l : l == a or l ->+ a}  x  {calls l' : a ->+ l', recv(l')==y}
    // contributes edges [recv(l)] -> [y].
    for (int a = 0; a < cfg.num_nodes(); ++a) {
      const Stmt* s = cfg.node(a).stmt;
      if (!s) continue;
      const std::string y = Cfg::assigned_var(s);
      if (y.empty() || !section.is_pointer(y)) continue;

      // Calls via y strictly after a.
      const auto after = cfg.reachable_from(a, /*strict=*/true);
      bool call_after = false;
      for (const int l2 : cfg.call_nodes_of(y)) {
        if (after[static_cast<std::size_t>(l2)]) {
          call_after = true;
          break;
        }
      }
      if (!call_after) continue;

      // Calls l with l == a or l ->+ a: reverse BFS from a's predecessors.
      std::vector<char> before(static_cast<std::size_t>(cfg.num_nodes()), 0);
      std::deque<int> work;
      for (const int p : cfg.node(a).in) {
        if (!before[static_cast<std::size_t>(p)]) {
          before[static_cast<std::size_t>(p)] = 1;
          work.push_back(p);
        }
      }
      while (!work.empty()) {
        const int cur = work.front();
        work.pop_front();
        for (const int p : cfg.node(cur).in) {
          if (!before[static_cast<std::size_t>(p)]) {
            before[static_cast<std::size_t>(p)] = 1;
            work.push_back(p);
          }
        }
      }
      before[static_cast<std::size_t>(a)] = 1;  // l == a allowed

      const std::string cy = classes.class_of(section.name, y);
      for (int l = 0; l < cfg.num_nodes(); ++l) {
        if (!before[static_cast<std::size_t>(l)]) continue;
        const Stmt* ls = cfg.node(l).stmt;
        if (!ls || ls->kind != Stmt::Kind::Call) continue;
        g.add_edge(classes.class_of(section.name, ls->recv), cy);
      }
    }
  }
  return g;
}

bool RestrictionsGraph::has_edge(const std::string& u,
                                 const std::string& v) const {
  auto it = edges_.find(u);
  return it != edges_.end() && it->second.count(v) != 0;
}

void RestrictionsGraph::add_edge(const std::string& u, const std::string& v) {
  nodes_.insert(u);
  nodes_.insert(v);
  edges_[u].insert(v);
}

std::vector<std::vector<std::string>> RestrictionsGraph::cyclic_components()
    const {
  // Tarjan's SCC over the string-keyed graph.
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> sccs;
  int next_index = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
        auto eit = edges_.find(v);
        if (eit != edges_.end()) {
          for (const auto& w : eit->second) {
            if (!index.count(w)) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack[w]) {
              low[v] = std::min(low[v], index[w]);
            }
          }
        }
        if (low[v] == index[v]) {
          std::vector<std::string> comp;
          for (;;) {
            const std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(comp));
        }
      };

  for (const auto& n : nodes_) {
    if (!index.count(n)) strongconnect(n);
  }

  std::vector<std::vector<std::string>> cyclic;
  for (auto& comp : sccs) {
    const bool is_cyclic =
        comp.size() > 1 || has_edge(comp.front(), comp.front());
    if (is_cyclic) {
      std::sort(comp.begin(), comp.end());
      cyclic.push_back(std::move(comp));
    }
  }
  // Deterministic order for wrapper naming.
  std::sort(cyclic.begin(), cyclic.end());
  return cyclic;
}

std::vector<std::string> RestrictionsGraph::topological_order() const {
  std::map<std::string, int> indegree;
  for (const auto& n : nodes_) indegree[n] = 0;
  for (const auto& [u, vs] : edges_) {
    for (const auto& v : vs) {
      if (u != v) ++indegree[v];
      else throw std::logic_error("topological_order: self-edge on " + u);
    }
  }
  // Kahn's algorithm; ties broken lexicographically for determinism.
  std::vector<std::string> order;
  std::set<std::string> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.insert(n);
  }
  while (!ready.empty()) {
    const std::string n = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(n);
    auto eit = edges_.find(n);
    if (eit != edges_.end()) {
      for (const auto& v : eit->second) {
        if (--indegree[v] == 0) ready.insert(v);
      }
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("topological_order: graph has a cycle");
  }
  return order;
}

void RestrictionsGraph::collapse(
    const std::vector<std::vector<std::string>>& components,
    const std::vector<std::string>& replacements) {
  std::map<std::string, std::string> rename;
  for (std::size_t i = 0; i < components.size(); ++i) {
    for (const auto& member : components[i]) rename[member] = replacements[i];
  }
  auto renamed = [&](const std::string& n) {
    auto it = rename.find(n);
    return it == rename.end() ? n : it->second;
  };

  std::set<std::string> new_nodes;
  for (const auto& n : nodes_) new_nodes.insert(renamed(n));
  std::map<std::string, std::set<std::string>> new_edges;
  for (const auto& [u, vs] : edges_) {
    for (const auto& v : vs) {
      const std::string nu = renamed(u);
      const std::string nv = renamed(v);
      if (nu == nv) continue;  // wrapper absorbs internal ordering
      new_edges[nu].insert(nv);
    }
  }
  nodes_ = std::move(new_nodes);
  edges_ = std::move(new_edges);
}

std::string RestrictionsGraph::to_string() const {
  std::string out = "nodes:";
  for (const auto& n : nodes_) out += " " + n;
  out += "\nedges:\n";
  for (const auto& [u, vs] : edges_) {
    for (const auto& v : vs) out += "  " + u + " -> " + v + "\n";
  }
  return out;
}

}  // namespace semlock::synth
