#include "synth/synthesis.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "synth/cfg.h"
#include "synth/symbolic_inference.h"

namespace semlock::synth {

namespace {

using commute::AdtSpec;
using commute::SymArg;
using commute::SymbolicSet;
using commute::SymOp;

// The generic symbolic set "+" of Section 3: every method, all-star args.
SymbolicSet generic_set(const AdtSpec& spec) {
  SymbolicSet out;
  for (const auto& m : spec.methods()) {
    SymOp op;
    op.method = m.name;
    op.args.assign(static_cast<std::size_t>(m.arity), SymArg::star());
    out.insert(std::move(op));
  }
  return out;
}

// FC[n]: variables with a call at node n or reachable after it.
std::vector<std::set<std::string>> future_calls(const Cfg& cfg) {
  std::vector<std::set<std::string>> fc(
      static_cast<std::size_t>(cfg.num_nodes()));
  bool changed = true;
  while (changed) {
    changed = false;
    for (int n = cfg.num_nodes() - 1; n >= 0; --n) {
      std::set<std::string> cur;
      const Stmt* s = cfg.node(n).stmt;
      if (s && s->kind == Stmt::Kind::Call) cur.insert(s->recv);
      for (const auto& e : cfg.node(n).out) {
        const auto& succ = fc[static_cast<std::size_t>(e.to)];
        cur.insert(succ.begin(), succ.end());
      }
      if (cur != fc[static_cast<std::size_t>(n)]) {
        fc[static_cast<std::size_t>(n)] = std::move(cur);
        changed = true;
      }
    }
  }
  return fc;
}

// Rebuilds blocks with `before[s]` inserted ahead of each statement s.
void apply_insertions(
    Block& block,
    const std::map<const Stmt*, std::vector<StmtPtr>>& before) {
  Block out;
  out.reserve(block.size());
  for (auto& s : block) {
    auto it = before.find(s.get());
    if (it != before.end()) {
      for (const auto& ins : it->second) out.push_back(ins);
    }
    apply_insertions(s->then_block, before);
    apply_insertions(s->else_block, before);
    apply_insertions(s->body, before);
    out.push_back(s);
  }
  block = std::move(out);
}

// Kahn's algorithm with a preference list for tie-breaking.
std::vector<std::string> topo_with_pref(
    const RestrictionsGraph& g, const std::vector<std::string>& pref) {
  auto pref_rank = [&](const std::string& n) {
    for (std::size_t i = 0; i < pref.size(); ++i) {
      if (pref[i] == n) return static_cast<int>(i);
    }
    return static_cast<int>(pref.size());
  };
  std::map<std::string, int> indegree;
  for (const auto& n : g.nodes()) indegree[n] = 0;
  for (const auto& [u, vs] : g.edges()) {
    (void)u;
    for (const auto& v : vs) ++indegree[v];
  }
  auto better = [&](const std::string& a, const std::string& b) {
    const int ra = pref_rank(a), rb = pref_rank(b);
    if (ra != rb) return ra < rb;
    return a < b;
  };
  std::vector<std::string> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.push_back(n);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end(), better);
    const std::string n = *it;
    ready.erase(it);
    order.push_back(n);
    auto eit = g.edges().find(n);
    if (eit != g.edges().end()) {
      for (const auto& v : eit->second) {
        if (--indegree[v] == 0) ready.push_back(v);
      }
    }
  }
  if (order.size() != g.nodes().size()) {
    throw std::logic_error("synthesize: restrictions-graph still cyclic");
  }
  return order;
}

}  // namespace

std::string SynthesisResult::effective_class(const std::string& section,
                                             const std::string& var) const {
  const std::string& cls = classes.class_of(section, var);
  auto it = wrapper_of.find(cls);
  return it == wrapper_of.end() ? cls : it->second;
}

std::string SectionContext::wrapper_key_of(const AtomicSection& section,
                                           const std::string& v) const {
  if (!section.is_pointer(v)) return "";
  const std::string& cls = classes->class_of(section_name, v);
  auto it = wrapper_of->find(cls);
  return it == wrapper_of->end() ? "" : it->second;
}

std::string SectionContext::effective_class_of(const AtomicSection& section,
                                               const std::string& v) const {
  if (!section.is_pointer(v)) return "";
  const std::string& cls = classes->class_of(section_name, v);
  auto it = wrapper_of->find(cls);
  return it == wrapper_of->end() ? cls : it->second;
}

void insert_locking(SynthesisResult& res, const SynthesisOptions& opts) {
  std::map<std::string, int> order_idx;
  for (std::size_t i = 0; i < res.class_order.size(); ++i) {
    order_idx[res.class_order[i]] = static_cast<int>(i);
  }

  for (auto& section : res.program.sections) {
    const Cfg cfg = Cfg::build(section);
    const auto fc = future_calls(cfg);
    std::optional<SymbolicInference> inf;
    if (opts.refine_symbolic_sets) {
      inf = SymbolicInference::run(section, cfg, res.classes);
    }

    // Member (original) classes of each wrapper, and whether the wrapper
    // spans multiple ADT types (which namespaces method names).
    auto members_of = [&](const std::string& wrapper) {
      std::vector<std::string> out;
      for (const auto& [member, w] : res.wrapper_of) {
        if (w == wrapper) out.push_back(member);
      }
      return out;
    };

    std::map<const Stmt*, std::vector<StmtPtr>> before;
    for (int n = 0; n < cfg.num_nodes(); ++n) {
      const Stmt* s = cfg.node(n).stmt;
      if (!s || s->kind != Stmt::Kind::Call) continue;
      const std::string eff_x = res.effective_class(section.name, s->recv);

      // LS(l): pointer vars y with a future call and [y] <= [recv].
      std::map<std::string, std::vector<std::string>> groups;
      for (const auto& [v, type] : section.var_types) {
        (void)type;
        if (!fc[static_cast<std::size_t>(n)].count(v)) continue;
        const std::string eff = res.effective_class(section.name, v);
        if (order_idx.at(eff) > order_idx.at(eff_x)) continue;
        groups[eff].push_back(v);
      }

      std::vector<std::pair<int, StmtPtr>> locks;
      for (auto& [cls, vars] : groups) {
        auto lk = std::make_shared<Stmt>();
        lk->kind = Stmt::Kind::Lock;
        const bool is_wrapper = res.wrapper_pointer.count(cls) != 0;
        if (is_wrapper) {
          lk->wrapper_key = cls;
          lk->lock_vars = {res.wrapper_pointer.at(cls)};
        } else {
          std::sort(vars.begin(), vars.end());
          lk->lock_vars = vars;
        }
        if (opts.refine_symbolic_sets) {
          lk->lock_all = false;
          if (is_wrapper) {
            const auto members = members_of(cls);
            std::set<std::string> types;
            for (const auto& m : members) {
              types.insert(res.classes.type_of_class(m));
            }
            SymbolicSet merged;
            for (const auto& m : members) {
              SymbolicSet sy = inf->at(m, n);
              if (types.size() > 1) {
                SymbolicSet renamed;
                for (auto op : sy.ops()) {
                  op.method = res.classes.type_of_class(m) + "." + op.method;
                  renamed.insert(std::move(op));
                }
                sy = std::move(renamed);
              }
              merged.merge(sy);
            }
            lk->lock_set = std::move(merged);
          } else {
            lk->lock_set = inf->at(cls, n);
          }
        }
        locks.emplace_back(order_idx.at(cls), std::move(lk));
      }
      std::sort(locks.begin(), locks.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      auto& ins = before[s];
      for (auto& [rank, lk] : locks) {
        (void)rank;
        ins.push_back(std::move(lk));
      }
    }
    apply_insertions(section.body, before);

    auto prologue = std::make_shared<Stmt>();
    prologue->kind = Stmt::Kind::Prologue;
    auto epilogue = std::make_shared<Stmt>();
    epilogue->kind = Stmt::Kind::Epilogue;
    section.body.insert(section.body.begin(), prologue);
    section.body.push_back(epilogue);
  }
}

namespace {

// Recursive walk over every statement in a block tree.
template <typename Fn>
void walk_stmts(Block& block, Fn&& fn) {
  for (auto& s : block) {
    fn(*s);
    walk_stmts(s->then_block, fn);
    walk_stmts(s->else_block, fn);
    walk_stmts(s->body, fn);
  }
}

// Builds the commutativity spec for a multi-type wrapper ADT: methods are
// namespaced "Type.m"; same-type pairs inherit the underlying condition,
// cross-type pairs always commute (distinct types can never be the same
// instance).
std::unique_ptr<AdtSpec> make_wrapper_spec(
    const std::string& name, const std::vector<const AdtSpec*>& member_specs) {
  AdtSpec::Builder b(name);
  for (const AdtSpec* ms : member_specs) {
    for (const auto& m : ms->methods()) {
      b.method(ms->name() + "." + m.name, m.arity, m.has_result);
    }
  }
  for (const AdtSpec* ms : member_specs) {
    for (const AdtSpec* ms2 : member_specs) {
      for (int i = 0; i < ms->num_methods(); ++i) {
        for (int j = 0; j < ms2->num_methods(); ++j) {
          const std::string n1 = ms->name() + "." + ms->method(i).name;
          const std::string n2 = ms2->name() + "." + ms2->method(j).name;
          if (ms == ms2) {
            b.commute(n1, n2, ms->condition(i, j));
          } else {
            b.commute(n1, n2, commute::CommCondition::always());
          }
        }
      }
    }
  }
  return std::make_unique<AdtSpec>(b.build());
}

}  // namespace

SynthesisResult synthesize(const Program& input, const PointerClasses& classes,
                           const SynthesisOptions& opts) {
  SynthesisResult res;
  res.classes = classes;

  // Deep-copy the client program (passes mutate statements in place).
  res.program.adt_types = input.adt_types;
  for (const auto& section : input.sections) {
    AtomicSection copy = section;
    copy.body = clone_block(section.body);
    res.program.sections.push_back(std::move(copy));
  }

  // Stage 1: restrictions-graph.
  res.raw_graph = RestrictionsGraph::build(res.program, classes);

  // Stage 2: collapse cyclic components into global wrapper ADTs.
  res.graph = res.raw_graph;
  const auto cyclic = res.raw_graph.cyclic_components();
  std::vector<std::string> replacements;
  std::map<std::string, const AdtSpec*> class_spec;  // effective class -> spec
  for (std::size_t i = 0; i < cyclic.size(); ++i) {
    const std::string key = "GW" + std::to_string(i + 1);
    const std::string pointer = "p" + std::to_string(i + 1);
    replacements.push_back(key);
    res.wrapper_pointer[key] = pointer;
    std::vector<const AdtSpec*> member_specs;
    std::set<const AdtSpec*> seen;
    for (const auto& member : cyclic[i]) {
      res.wrapper_of[member] = key;
      const AdtSpec* spec =
          res.program.adt_types.at(classes.type_of_class(member));
      if (seen.insert(spec).second) member_specs.push_back(spec);
    }
    if (member_specs.size() == 1) {
      class_spec[key] = member_specs.front();
    } else {
      res.wrapper_specs.push_back(make_wrapper_spec(key, member_specs));
      class_spec[key] = res.wrapper_specs.back().get();
    }
  }
  res.graph.collapse(cyclic, replacements);

  // Stage 3: topological order + lock insertion.
  res.class_order = topo_with_pref(res.graph, opts.preferred_order);
  insert_locking(res, opts);

  // Stage 5 (Appendix A): optimizations.
  if (opts.optimize) {
    for (auto& section : res.program.sections) {
      SectionContext ctx{&res.classes, &res.wrapper_of, section.name};
      remove_redundant_locks(section, ctx);
      remove_local_set(section, ctx);
      early_release(section, ctx);
      remove_null_checks(section);
    }
  }

  // Stage 6: site assignment + mode compilation per effective class.
  for (auto& section : res.program.sections) {
    walk_stmts(section.body, [&](Stmt& s) {
      if (s.kind != Stmt::Kind::Lock) return;
      const std::string eff =
          s.wrapper_key.empty()
              ? res.effective_class(section.name, s.lock_vars.front())
              : s.wrapper_key;
      auto [it, inserted] = res.plans.try_emplace(eff);
      ClassPlan& plan = it->second;
      if (inserted) {
        plan.class_key = eff;
        auto cit = class_spec.find(eff);
        plan.spec = (cit != class_spec.end())
                        ? cit->second
                        : res.program.adt_types.at(
                              res.classes.type_of_class(eff));
        for (std::size_t i = 0; i < res.class_order.size(); ++i) {
          if (res.class_order[i] == eff) {
            plan.order_index = static_cast<int>(i);
          }
        }
      }
      const SymbolicSet set =
          s.lock_all ? generic_set(*plan.spec) : s.lock_set;
      auto sit = std::find(plan.sites.begin(), plan.sites.end(), set);
      if (sit == plan.sites.end()) {
        s.site_id = static_cast<int>(plan.sites.size());
        plan.sites.push_back(set);
      } else {
        s.site_id = static_cast<int>(sit - plan.sites.begin());
      }
    });
  }
  for (auto& [cls, plan] : res.plans) {
    (void)cls;
    plan.table.emplace(
        ModeTable::compile(*plan.spec, plan.sites, opts.mode_config));
  }

  return res;
}

}  // namespace semlock::synth
