#include "synth/interpreter.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "util/spinlock.h"

namespace semlock::synth {

using commute::Value;

commute::Value RtValue::as_value() const {
  switch (kind) {
    case Kind::Null:
      return 0;
    case Kind::Int:
      return i;
    case Kind::Ref:
      return static_cast<Value>(reinterpret_cast<std::uintptr_t>(ref));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Built-in dynamic instances
// ---------------------------------------------------------------------------

namespace {

class DynSet final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>& a) override {
    std::scoped_lock guard(lock_);
    if (m == "add") {
      elems_.insert(a.at(0).as_value());
      return RtValue::null();
    }
    if (m == "remove") {
      elems_.erase(a.at(0).as_value());
      return RtValue::null();
    }
    if (m == "contains") {
      return RtValue::of_int(elems_.count(a.at(0).as_value()) ? 1 : 0);
    }
    if (m == "size") return RtValue::of_int(static_cast<Value>(elems_.size()));
    if (m == "clear") {
      elems_.clear();
      return RtValue::null();
    }
    throw std::invalid_argument("Set has no method " + m);
  }
  std::set<Value> snapshot() const {
    std::scoped_lock guard(lock_);
    return elems_;
  }

 private:
  mutable util::Spinlock lock_;
  std::set<Value> elems_;
};

class DynMap final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>& a) override {
    std::scoped_lock guard(lock_);
    if (m == "get") {
      auto it = entries_.find(a.at(0).as_value());
      return it == entries_.end() ? RtValue::null() : it->second;
    }
    if (m == "put") {
      entries_[a.at(0).as_value()] = a.at(1);
      return RtValue::null();
    }
    if (m == "remove") {
      entries_.erase(a.at(0).as_value());
      return RtValue::null();
    }
    if (m == "containsKey") {
      return RtValue::of_int(entries_.count(a.at(0).as_value()) ? 1 : 0);
    }
    if (m == "size") {
      return RtValue::of_int(static_cast<Value>(entries_.size()));
    }
    if (m == "clear") {
      entries_.clear();
      return RtValue::null();
    }
    throw std::invalid_argument("Map has no method " + m);
  }
  std::map<Value, RtValue> snapshot() const {
    std::scoped_lock guard(lock_);
    return entries_;
  }

 private:
  mutable util::Spinlock lock_;
  std::map<Value, RtValue> entries_;
};

class DynQueue final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>& a) override {
    std::scoped_lock guard(lock_);
    if (m == "enqueue") {
      elems_.push_back(a.at(0));
      return RtValue::null();
    }
    if (m == "dequeue") {
      if (elems_.empty()) return RtValue::null();
      RtValue v = elems_.front();
      elems_.pop_front();
      return v;
    }
    if (m == "isEmpty") return RtValue::of_int(elems_.empty() ? 1 : 0);
    if (m == "qsize") return RtValue::of_int(static_cast<Value>(elems_.size()));
    throw std::invalid_argument("Queue has no method " + m);
  }
  std::deque<RtValue> snapshot() const {
    std::scoped_lock guard(lock_);
    return elems_;
  }

 private:
  mutable util::Spinlock lock_;
  std::deque<RtValue> elems_;
};

class DynMultimap final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>& a) override {
    std::scoped_lock guard(lock_);
    if (m == "put") {
      entries_[a.at(0).as_value()].insert(a.at(1).as_value());
      return RtValue::null();
    }
    if (m == "removeEntry") {
      auto it = entries_.find(a.at(0).as_value());
      if (it != entries_.end()) {
        it->second.erase(a.at(1).as_value());
        if (it->second.empty()) entries_.erase(it);
      }
      return RtValue::null();
    }
    if (m == "getAll") {
      // The interpreter models getAll's observable effect as the number of
      // values (RtValue cannot carry collections).
      auto it = entries_.find(a.at(0).as_value());
      return RtValue::of_int(
          it == entries_.end() ? 0 : static_cast<Value>(it->second.size()));
    }
    if (m == "removeAll") {
      entries_.erase(a.at(0).as_value());
      return RtValue::null();
    }
    if (m == "mmsize") {
      Value total = 0;
      for (const auto& [k, vs] : entries_) total += static_cast<Value>(vs.size());
      return RtValue::of_int(total);
    }
    throw std::invalid_argument("Multimap has no method " + m);
  }

 private:
  mutable util::Spinlock lock_;
  std::map<Value, std::set<Value>> entries_;
};

class DynCounter final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>&) override {
    if (m == "inc") {
      count_.fetch_add(1, std::memory_order_relaxed);
      return RtValue::null();
    }
    if (m == "dec") {
      count_.fetch_sub(1, std::memory_order_relaxed);
      return RtValue::null();
    }
    if (m == "read") {
      return RtValue::of_int(count_.load(std::memory_order_relaxed));
    }
    throw std::invalid_argument("Counter has no method " + m);
  }

 private:
  std::atomic<Value> count_{0};
};

class DynRegister final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>& a) override {
    std::scoped_lock guard(lock_);
    if (m == "write") {
      value_ = a.at(0);
      return RtValue::null();
    }
    if (m == "readCell") return value_;
    throw std::invalid_argument("Register has no method " + m);
  }

 private:
  mutable util::Spinlock lock_;
  RtValue value_;
};

class DynAccount final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>& a) override {
    if (m == "deposit") {
      balance_.fetch_add(a.at(0).as_value(), std::memory_order_relaxed);
      return RtValue::null();
    }
    if (m == "withdraw") {
      balance_.fetch_sub(a.at(0).as_value(), std::memory_order_relaxed);
      return RtValue::null();
    }
    if (m == "balance") {
      return RtValue::of_int(balance_.load(std::memory_order_relaxed));
    }
    throw std::invalid_argument("Account has no method " + m);
  }

 private:
  std::atomic<Value> balance_{0};
};

// Lock-only instance for global wrappers (Section 3.4).
class WrapperInstance final : public AdtInstance {
 public:
  using AdtInstance::AdtInstance;
  RtValue invoke(const std::string& m, const std::vector<RtValue>&) override {
    throw std::logic_error("wrapper instance has no standard operations (" +
                           m + ")");
  }
};

}  // namespace

std::unique_ptr<AdtInstance> make_builtin_instance(const std::string& type,
                                                   const std::string& cls) {
  if (type == "Set") return std::make_unique<DynSet>(type, cls);
  if (type == "Map" || type == "WeakMap") {
    return std::make_unique<DynMap>(type, cls);
  }
  if (type == "Queue" || type == "Pool") {
    return std::make_unique<DynQueue>(type, cls);
  }
  if (type == "Multimap") return std::make_unique<DynMultimap>(type, cls);
  if (type == "Counter") return std::make_unique<DynCounter>(type, cls);
  if (type == "Register") return std::make_unique<DynRegister>(type, cls);
  if (type == "Account") return std::make_unique<DynAccount>(type, cls);
  throw std::invalid_argument("no built-in ADT named " + type);
}

// ---------------------------------------------------------------------------
// Heap
// ---------------------------------------------------------------------------

AdtInstance* Heap::create(const std::string& type,
                          const std::string& class_key) {
  auto obj = make_builtin_instance(type, class_key);
  // Non-wrapped classes carry their own semantic lock; wrapped classes are
  // locked through the wrapper instance instead.
  if (!plan_->wrapper_of.count(class_key)) {
    auto it = plan_->plans.find(class_key);
    if (it != plan_->plans.end() && it->second.table.has_value()) {
      obj->attach_lock(*it->second.table);
    }
  }
  std::scoped_lock guard(mutex_);
  objects_.push_back(std::move(obj));
  return objects_.back().get();
}

AdtInstance* Heap::wrapper_instance(const std::string& wrapper_key) {
  std::scoped_lock guard(mutex_);
  auto it = wrappers_.find(wrapper_key);
  if (it != wrappers_.end()) return it->second;
  auto obj = std::make_unique<WrapperInstance>("GlobalWrapper", wrapper_key);
  auto pit = plan_->plans.find(wrapper_key);
  if (pit != plan_->plans.end() && pit->second.table.has_value()) {
    obj->attach_lock(*pit->second.table);
  }
  AdtInstance* raw = obj.get();
  objects_.push_back(std::move(obj));
  wrappers_[wrapper_key] = raw;
  return raw;
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

struct Interpreter::TxnState {
  Transaction txn;
  bool unlocked_any = false;
  int last_order = -1;
  std::uintptr_t last_uid = 0;
  std::uint64_t history_txn = 0;
};

RtValue Interpreter::eval(const ExprPtr& e, const Env& env) const {
  switch (e->kind) {
    case Expr::Kind::Null:
      return RtValue::null();
    case Expr::Kind::Int:
      return RtValue::of_int(e->literal);
    case Expr::Kind::Var: {
      auto it = env.find(e->var);
      return it == env.end() ? RtValue::null() : it->second;
    }
    case Expr::Kind::Unary: {
      const RtValue v = eval(e->lhs, env);
      return RtValue::of_int(v.truthy() ? 0 : 1);
    }
    case Expr::Kind::Binary: {
      const RtValue l = eval(e->lhs, env);
      const RtValue r = eval(e->rhs, env);
      switch (e->op) {
        case Expr::Op::Eq:
          return RtValue::of_int(l == r ? 1 : 0);
        case Expr::Op::Ne:
          return RtValue::of_int(l == r ? 0 : 1);
        case Expr::Op::And:
          return RtValue::of_int(l.truthy() && r.truthy() ? 1 : 0);
        case Expr::Op::Or:
          return RtValue::of_int(l.truthy() || r.truthy() ? 1 : 0);
        case Expr::Op::Lt:
          return RtValue::of_int(l.i < r.i ? 1 : 0);
        case Expr::Op::Le:
          return RtValue::of_int(l.i <= r.i ? 1 : 0);
        case Expr::Op::Add:
          return RtValue::of_int(l.i + r.i);
        case Expr::Op::Sub:
          return RtValue::of_int(l.i - r.i);
        case Expr::Op::Mul:
          return RtValue::of_int(l.i * r.i);
        case Expr::Op::Mod:
          return RtValue::of_int(r.i == 0 ? 0 : l.i % r.i);
        case Expr::Op::Not:
          break;
      }
      throw std::logic_error("bad binary operator");
    }
  }
  throw std::logic_error("bad expression");
}

void Interpreter::do_lock(const AtomicSection& section, const Stmt& s,
                          Env& env, TxnState& txn) {
  const auto& plan = heap_->plan();
  if (opts_.check_protocol && txn.unlocked_any) {
    throw ProtocolViolation("S2PL: lock after unlock in section " +
                            section.name);
  }

  // Effective class and its plan/order.
  const std::string eff =
      s.wrapper_key.empty()
          ? plan.effective_class(section.name, s.lock_vars.front())
          : s.wrapper_key;
  const ClassPlan& cplan = plan.plans.at(eff);
  const ModeTable& table = *cplan.table;

  // Runtime values of the site's symbolic variables.
  std::vector<Value> values;
  for (const auto& v : table.site_variables(s.site_id)) {
    auto it = env.find(v);
    values.push_back(it == env.end() ? 0 : it->second.as_value());
  }
  const int mode = table.resolve(s.site_id, values);

  // Resolve target instances.
  std::vector<AdtInstance*> targets;
  if (!s.wrapper_key.empty()) {
    targets.push_back(heap_->wrapper_instance(s.wrapper_key));
  } else {
    for (const auto& v : s.lock_vars) {
      auto it = env.find(v);
      const RtValue rv = it == env.end() ? RtValue::null() : it->second;
      if (rv.is_null()) {
        if (s.guard_null || s.use_local_set) continue;  // LV / guarded: skip
        throw std::runtime_error("NullPointerException: lock on null " + v);
      }
      if (rv.kind != RtValue::Kind::Ref) {
        throw std::runtime_error("type error: lock on non-reference " + v);
      }
      targets.push_back(rv.ref);
    }
  }
  // Dynamic same-class ordering (Fig. 12): ascending unique id.
  std::sort(targets.begin(), targets.end(),
            [](AdtInstance* a, AdtInstance* b) {
              return a->sem_lock()->unique_id() < b->sem_lock()->unique_id();
            });
  for (AdtInstance* inst : targets) {
    SemanticLock* lk = inst->sem_lock();
    if (txn.txn.holds(lk)) continue;  // LV: already locked
    if (opts_.check_protocol) {
      const int order = cplan.order_index;
      if (order < txn.last_order ||
          (order == txn.last_order && lk->unique_id() < txn.last_uid)) {
        throw ProtocolViolation("OS2PL: out-of-order lock of class " + eff +
                                " in section " + section.name);
      }
      txn.last_order = order;
      txn.last_uid = lk->unique_id();
    }
    txn.txn.lv_mode(lk, mode);
  }
}

void Interpreter::check_covered(const AtomicSection& section,
                                const Stmt& call, AdtInstance* recv,
                                const std::vector<RtValue>& args,
                                TxnState& txn) const {
  const auto& plan = heap_->plan();
  // Locate the lock guarding this instance: its own, or its wrapper's.
  SemanticLock* lk = recv->sem_lock();
  std::string lookup_method = call.method;
  if (lk == nullptr) {
    auto wit = plan.wrapper_of.find(recv->class_key());
    if (wit == plan.wrapper_of.end()) {
      throw ProtocolViolation("instance of class " + recv->class_key() +
                              " has no lock and no wrapper");
    }
    AdtInstance* wrapper =
        const_cast<Heap*>(heap_)->wrapper_instance(wit->second);
    lk = wrapper->sem_lock();
    // Multi-type wrappers namespace methods as "Type.m".
    if (lk->table().spec().method_index(lookup_method) < 0) {
      lookup_method = recv->type() + "." + call.method;
    }
  }

  int held_mode = -1;
  for (const auto& e : txn.txn.held()) {
    if (e.lk == lk) {
      held_mode = e.mode;
      break;
    }
  }
  if (held_mode < 0) {
    throw ProtocolViolation("S2PL: " + section.name + " invokes " +
                            call.recv + "." + call.method +
                            " without holding a lock");
  }

  const ModeTable& table = lk->table();
  const int mi = table.spec().method_index(lookup_method);
  if (mi < 0) {
    throw ProtocolViolation("spec for " + table.spec().name() +
                            " has no method " + lookup_method);
  }
  const auto& phi = table.abstraction();
  for (const auto& op : table.mode(held_mode).ops) {
    if (op.method != mi) continue;
    bool match = true;
    for (std::size_t i = 0; i < op.args.size() && match; ++i) {
      const auto& aa = op.args[i];
      const Value rv = args[i].as_value();
      switch (aa.kind) {
        case AbstractArg::Kind::Star:
          break;
        case AbstractArg::Kind::Const:
          match = (aa.constant == rv);
          break;
        case AbstractArg::Kind::Alpha:
          match = (phi.alpha_of(rv) == aa.alpha);
          break;
      }
    }
    if (match) return;  // covered
  }
  throw ProtocolViolation("S2PL: held mode does not cover " + call.recv +
                          "." + call.method + " in " + section.name);
}

void Interpreter::exec_stmt(const AtomicSection& section, const Stmt& s,
                            Env& env, TxnState& txn) {
  switch (s.kind) {
    case Stmt::Kind::Prologue:
      return;  // the Transaction object IS the LOCAL_SET
    case Stmt::Kind::Epilogue:
      txn.txn.unlock_all();
      txn.unlocked_any = true;
      return;
    case Stmt::Kind::Lock:
      do_lock(section, s, env, txn);
      return;
    case Stmt::Kind::UnlockAll: {
      AdtInstance* inst = nullptr;
      if (!s.wrapper_key.empty()) {
        inst = heap_->wrapper_instance(s.wrapper_key);
      } else {
        auto it = env.find(s.unlock_var);
        const RtValue rv = it == env.end() ? RtValue::null() : it->second;
        if (rv.is_null()) {
          if (s.guard_null) return;
          throw std::runtime_error("NullPointerException: unlock on null " +
                                   s.unlock_var);
        }
        inst = rv.ref;
      }
      txn.txn.unlock_instance(inst->sem_lock());
      txn.unlocked_any = true;
      return;
    }
    case Stmt::Kind::New:
      env[s.lhs] = RtValue::of_ref(heap_->create(
          s.adt_type,
          heap_->plan().classes.class_of(section.name, s.lhs)));
      return;
    case Stmt::Kind::Assign:
      env[s.lhs] = eval(s.rhs, env);
      return;
    case Stmt::Kind::Call: {
      auto it = env.find(s.recv);
      const RtValue rv = it == env.end() ? RtValue::null() : it->second;
      if (rv.is_null()) {
        throw std::runtime_error("NullPointerException: call on null " +
                                 s.recv);
      }
      if (rv.kind != RtValue::Kind::Ref) {
        throw std::runtime_error("type error: call on non-reference " +
                                 s.recv);
      }
      std::vector<RtValue> args;
      args.reserve(s.args.size());
      for (const auto& a : s.args) args.push_back(eval(a, env));
      if (opts_.check_protocol) {
        check_covered(section, s, rv.ref, args, txn);
      }
      const RtValue result = rv.ref->invoke(s.method, args);
      // History recording happens while the transaction still holds its
      // semantic locks, so conflicting operations of different transactions
      // are recorded in their true serialization order.
      if (opts_.recorder) {
        auto sit = heap_->plan().program.adt_types.find(rv.ref->type());
        if (sit != heap_->plan().program.adt_types.end()) {
          const int mi = sit->second->method_index(s.method);
          if (mi >= 0) {
            std::vector<commute::Value> vals;
            vals.reserve(args.size());
            for (const auto& a : args) vals.push_back(a.as_value());
            opts_.recorder->record(txn.history_txn, rv.ref, sit->second, mi,
                                   std::move(vals));
          }
        }
      }
      if (!s.lhs.empty()) env[s.lhs] = result;
      return;
    }
    case Stmt::Kind::If:
      if (eval(s.cond, env).truthy()) {
        exec_block(section, s.then_block, env, txn);
      } else {
        exec_block(section, s.else_block, env, txn);
      }
      return;
    case Stmt::Kind::While: {
      long iterations = 0;
      while (eval(s.cond, env).truthy()) {
        if (++iterations > opts_.max_loop_iterations) {
          throw std::runtime_error("interpreter: loop iteration cap hit");
        }
        exec_block(section, s.body, env, txn);
      }
      return;
    }
  }
}

void Interpreter::exec_block(const AtomicSection& section, const Block& block,
                             Env& env, TxnState& txn) {
  for (const auto& s : block) exec_stmt(section, *s, env, txn);
}

Interpreter::Env Interpreter::run(const std::string& section_name, Env env) {
  const AtomicSection* section = nullptr;
  for (const auto& s : heap_->plan().program.sections) {
    if (s.name == section_name) {
      section = &s;
      break;
    }
  }
  if (!section) {
    throw std::invalid_argument("no atomic section named " + section_name);
  }
  TxnState txn;
  if (opts_.recorder) txn.history_txn = opts_.recorder->begin_txn();
  exec_block(*section, section->body, env, txn);
  txn.txn.unlock_all();  // safety net; normally released by the epilogue
  return env;
}

}  // namespace semlock::synth
