#include "synth/symbolic_inference.h"

#include <set>

namespace semlock::synth {

using commute::SymArg;
using commute::SymbolicSet;
using commute::SymOp;

commute::SymOp SymbolicInference::symbolic_op_of(const Stmt& call_stmt) {
  SymOp op;
  op.method = call_stmt.method;
  op.args.reserve(call_stmt.args.size());
  for (const auto& a : call_stmt.args) {
    if (a->kind == Expr::Kind::Var) {
      op.args.push_back(SymArg::of_var(a->var));
    } else if (a->kind == Expr::Kind::Int) {
      op.args.push_back(SymArg::of_const(a->literal));
    } else {
      op.args.push_back(SymArg::star());
    }
  }
  return op;
}

SymbolicInference SymbolicInference::run(const AtomicSection& section,
                                         const Cfg& cfg,
                                         const PointerClasses& classes) {
  SymbolicInference result;

  // Classes with at least one call in this section.
  std::set<std::string> used;
  for (int n = 0; n < cfg.num_nodes(); ++n) {
    const Stmt* s = cfg.node(n).stmt;
    if (s && s->kind == Stmt::Kind::Call) {
      used.insert(classes.class_of(section.name, s->recv));
    }
  }

  for (const auto& cls : used) {
    auto& in = result.in_[cls];
    in.assign(static_cast<std::size_t>(cfg.num_nodes()), SymbolicSet{});

    // Backward fixpoint: IN[n] = gen(n) ∪ widen_assigned(n)(∪_succ IN[s]).
    bool changed = true;
    while (changed) {
      changed = false;
      for (int n = cfg.num_nodes() - 1; n >= 0; --n) {
        const Stmt* s = cfg.node(n).stmt;
        SymbolicSet out;
        for (const auto& e : cfg.node(n).out) {
          out.merge(in[static_cast<std::size_t>(e.to)]);
        }
        const std::string assigned = Cfg::assigned_var(s);
        if (!assigned.empty()) out.widen_variable(assigned);
        if (s && s->kind == Stmt::Kind::Call &&
            classes.class_of(section.name, s->recv) == cls) {
          out.insert(symbolic_op_of(*s));
        }
        if (!(out == in[static_cast<std::size_t>(n)])) {
          in[static_cast<std::size_t>(n)] = std::move(out);
          changed = true;
        }
      }
    }
  }
  return result;
}

const commute::SymbolicSet& SymbolicInference::at(const std::string& cls,
                                                  int node) const {
  auto it = in_.find(cls);
  if (it == in_.end()) return empty_;
  return it->second[static_cast<std::size_t>(node)];
}

}  // namespace semlock::synth
