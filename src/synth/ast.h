// The intermediate representation of client atomic sections.
//
// The paper's compiler rewrites Java source; this reproduction's synthesis
// runs on a small structured IR that captures exactly the program features
// the algorithm reasons about: ADT method calls, (pointer and scalar)
// assignments, object creation, branches and loops. Expressions are
// executable (for the interpreter) but treated opaquely by the static
// analyses, except for null tests which feed the null-check remover.
//
// Lock/UnlockAll/Prologue/Epilogue statements never appear in client input;
// they are inserted by the synthesis passes (Sections 3–4, Appendix A).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "commute/spec.h"
#include "commute/symbolic.h"
#include "commute/value.h"

namespace semlock::synth {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { Null, Int, Var, Unary, Binary };
  enum class Op { Not, Eq, Ne, Lt, Le, Add, Sub, Mul, Mod, And, Or };

  Kind kind = Kind::Null;
  Op op = Op::Not;
  commute::Value literal = 0;  // Kind::Int
  std::string var;             // Kind::Var
  ExprPtr lhs, rhs;            // Unary uses lhs only

  std::string to_string() const;
};

ExprPtr enull();
ExprPtr eint(commute::Value v);
ExprPtr evar(std::string name);
ExprPtr eunary(Expr::Op op, ExprPtr e);
ExprPtr ebin(Expr::Op op, ExprPtr l, ExprPtr r);
inline ExprPtr eeq(ExprPtr l, ExprPtr r) { return ebin(Expr::Op::Eq, l, r); }
inline ExprPtr ene(ExprPtr l, ExprPtr r) { return ebin(Expr::Op::Ne, l, r); }
inline ExprPtr elt(ExprPtr l, ExprPtr r) { return ebin(Expr::Op::Lt, l, r); }
inline ExprPtr eadd(ExprPtr l, ExprPtr r) { return ebin(Expr::Op::Add, l, r); }

// Collects the variable names read by `e`.
void collect_vars(const ExprPtr& e, std::vector<std::string>& out);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  enum class Kind {
    Call,       // [lhs =] recv.method(args...)
    Assign,     // lhs = expr
    New,        // lhs = new AdtType()
    If,         // if (cond) then_block else else_block
    While,      // while (cond) body
    // --- instrumentation, inserted by the synthesis passes ---
    Prologue,   // LOCAL_SET.init()
    Epilogue,   // foreach(t : LOCAL_SET) t.unlockAll()
    Lock,       // LV(x) / LVn(x1..xk) / if(x!=null) x.lock(SY)
    UnlockAll,  // [if (x!=null)] x.unlockAll()
  };

  Kind kind = Kind::Assign;

  // Call
  std::string lhs;   // result variable; empty if the result is discarded
  std::string recv;  // receiver variable
  std::string method;
  std::vector<ExprPtr> args;

  // Assign / New
  ExprPtr rhs;           // Assign
  std::string adt_type;  // New

  // If / While
  ExprPtr cond;
  Block then_block;
  Block else_block;
  Block body;

  // Lock. `lock_vars.size() > 1` means dynamic same-class ordering (LVn,
  // Fig. 12). `lock_all` renders as lock(+) (Section 3's generic set);
  // otherwise `lock_set` holds the refined symbolic set (Section 4).
  std::vector<std::string> lock_vars;
  commute::SymbolicSet lock_set;
  bool lock_all = true;
  bool guard_null = false;     // emit as if(x!=null) x.lock(...)
  bool use_local_set = true;   // LV via LOCAL_SET vs direct lock call
  // Non-empty when this lock targets a global-wrapper ADT (Section 3.4):
  // the key identifies the wrapper; lock_vars then holds the wrapper's
  // global pointer name (e.g. "p1") for printing.
  std::string wrapper_key;
  // Mode-table site id for each lock_var's class, assigned by the planner.
  int site_id = -1;

  // UnlockAll
  std::string unlock_var;  // the x of x.unlockAll()
};

StmtPtr call(std::string lhs, std::string recv, std::string method,
             std::vector<ExprPtr> args = {});
StmtPtr callv(std::string recv, std::string method,
              std::vector<ExprPtr> args = {});  // void call
StmtPtr assign(std::string lhs, ExprPtr rhs);
StmtPtr make_new(std::string lhs, std::string adt_type);
StmtPtr make_if(ExprPtr cond, Block then_block, Block else_block = {});
StmtPtr make_while(ExprPtr cond, Block body);

// Deep copy of a block (statements are mutated by the passes, so sections
// must not share statement nodes).
Block clone_block(const Block& b);

// ---------------------------------------------------------------------------
// Sections and programs
// ---------------------------------------------------------------------------

struct AtomicSection {
  std::string name;
  // Variable typing: var -> ADT type name for pointer variables. Variables
  // not present are scalars. Parameters and locals are both declared here;
  // `params` lists the subset bound at invocation time.
  std::map<std::string, std::string> var_types;
  std::vector<std::string> params;
  Block body;

  bool is_pointer(const std::string& v) const {
    return var_types.count(v) != 0;
  }
  const std::string& type_of(const std::string& v) const {
    return var_types.at(v);
  }
};

struct Program {
  // ADT type name -> commutativity specification.
  std::map<std::string, const commute::AdtSpec*> adt_types;
  std::vector<AtomicSection> sections;
};

}  // namespace semlock::synth
