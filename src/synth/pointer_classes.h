// The static finite abstraction of ADT instances (Section 3.2): an
// equivalence relation on the pointer variables of the atomic sections.
//
// Guarantees assumed (and provided by construction here): every runtime ADT
// instance corresponds to exactly one equivalence class, and every pointer
// variable is always null or points to an instance of its class.
//
// The default abstraction groups variables by their static ADT type — the
// paper notes this needs no whole-program analysis (Example 3.1). A points-to
// analysis can refine it via `assign`, as the paper's compiler does with
// WALA; the synthesis algorithm consumes only the resulting relation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "synth/ast.h"

namespace semlock::synth {

class PointerClasses {
 public:
  // One class per ADT type name; the class key is the type name itself.
  static PointerClasses by_type(const Program& program);

  // Refinement: place (section, var) into `class_key`. The variable's ADT
  // type must match any existing members of that class.
  void assign(const std::string& section, const std::string& var,
              const std::string& class_key);

  const std::string& class_of(const std::string& section,
                              const std::string& var) const;

  // All class keys, deterministic order.
  std::vector<std::string> all_classes() const;

  // The ADT type of a class's members.
  const std::string& type_of_class(const std::string& class_key) const;

 private:
  // (section, var) -> class key
  std::map<std::pair<std::string, std::string>, std::string> class_of_;
  std::map<std::string, std::string> class_type_;  // class key -> ADT type
};

}  // namespace semlock::synth
