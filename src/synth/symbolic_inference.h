// Backward inference of refined symbolic sets (Section 4).
//
// For every pointer equivalence class c and every CFG node n of a section,
// computes the symbolic set SY(c, n) that conservatively describes the ADT
// operations that may still be invoked on instances of c at or after n (as
// seen from the program point just BEFORE n). Crossing an assignment to a
// variable v widens v to `*` in argument positions, because the ops after
// the assignment observe a different value of v (this is what turns
// put(id,set) into put(id,*) in Fig. 2/Fig. 18).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "commute/symbolic.h"
#include "synth/ast.h"
#include "synth/cfg.h"
#include "synth/pointer_classes.h"

namespace semlock::synth {

class SymbolicInference {
 public:
  static SymbolicInference run(const AtomicSection& section, const Cfg& cfg,
                               const PointerClasses& classes);

  // SY(class, node): the set just before executing `node` (includes the
  // operation of `node` itself when it is a call on `cls`). Empty set for
  // classes with no calls in the section.
  const commute::SymbolicSet& at(const std::string& cls, int node) const;

  // Converts a call's argument expressions to symbolic arguments: simple
  // variables stay symbolic, integer literals become constants, anything
  // else widens to `*`.
  static commute::SymOp symbolic_op_of(const Stmt& call_stmt);

 private:
  std::map<std::string, std::vector<commute::SymbolicSet>> in_;
  commute::SymbolicSet empty_;
};

}  // namespace semlock::synth
