#include "synth/printer.h"

namespace semlock::synth {

namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

std::string print_args(const std::vector<ExprPtr>& args) {
  std::string out = "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    out += args[i]->to_string();
  }
  out += ")";
  return out;
}

std::string lock_set_text(const Stmt& s) {
  return s.lock_all ? "+" : s.lock_set.to_string();
}

}  // namespace

std::string print_stmt(const Stmt& s, int indent) {
  const std::string p = pad(indent);
  switch (s.kind) {
    case Stmt::Kind::Call: {
      std::string line = p;
      if (!s.lhs.empty()) line += s.lhs + " = ";
      line += s.recv + "." + s.method + print_args(s.args) + ";\n";
      return line;
    }
    case Stmt::Kind::Assign:
      return p + s.lhs + " = " + s.rhs->to_string() + ";\n";
    case Stmt::Kind::New:
      return p + s.lhs + " = new " + s.adt_type + "();\n";
    case Stmt::Kind::If: {
      std::string out = p + "if (" + s.cond->to_string() + ") {\n";
      out += print_block(s.then_block, indent + 1);
      if (!s.else_block.empty()) {
        out += p + "} else {\n";
        out += print_block(s.else_block, indent + 1);
      }
      out += p + "}\n";
      return out;
    }
    case Stmt::Kind::While: {
      std::string out = p + "while (" + s.cond->to_string() + ") {\n";
      out += print_block(s.body, indent + 1);
      out += p + "}\n";
      return out;
    }
    case Stmt::Kind::Prologue:
      return p + "LOCAL_SET.init(); // prologue\n";
    case Stmt::Kind::Epilogue:
      return p + "foreach(t : LOCAL_SET) t.unlockAll(); // epilogue\n";
    case Stmt::Kind::Lock: {
      if (s.use_local_set) {
        std::string name =
            s.lock_vars.size() == 1
                ? "LV"
                : "LV" + std::to_string(s.lock_vars.size());
        std::string out = p + name + "(";
        for (std::size_t i = 0; i < s.lock_vars.size(); ++i) {
          if (i) out += ",";
          out += s.lock_vars[i];
        }
        out += "," + lock_set_text(s) + ");\n";
        return out;
      }
      const std::string& x = s.lock_vars.front();
      std::string out = p;
      if (s.guard_null) out += "if (" + x + "!=null) ";
      out += x + ".lock(" + lock_set_text(s) + ");\n";
      return out;
    }
    case Stmt::Kind::UnlockAll: {
      std::string out = p;
      if (s.guard_null) out += "if (" + s.unlock_var + "!=null) ";
      out += s.unlock_var + ".unlockAll();\n";
      return out;
    }
  }
  return p + "?;\n";
}

std::string print_block(const Block& block, int indent) {
  std::string out;
  for (const auto& s : block) out += print_stmt(*s, indent);
  return out;
}

std::string print_section(const AtomicSection& section) {
  std::string out = "atomic " + section.name + "(";
  for (std::size_t i = 0; i < section.params.size(); ++i) {
    if (i) out += ", ";
    const auto& v = section.params[i];
    out += (section.is_pointer(v) ? section.type_of(v) : "int") + " " + v;
  }
  out += ") {\n";
  out += print_block(section.body, 1);
  out += "}\n";
  return out;
}

}  // namespace semlock::synth
