// The restrictions-graph (Section 3.2): nodes are pointer equivalence
// classes; an edge u -> v records that some execution may have to lock an
// instance of u before an instance of v (because v's pointer is reassigned
// between the two uses), so the topological order must place u before v.
//
// The graph is computed over ALL atomic sections of the program (Fig. 11).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "synth/ast.h"
#include "synth/pointer_classes.h"

namespace semlock::synth {

class RestrictionsGraph {
 public:
  static RestrictionsGraph build(const Program& program,
                                 const PointerClasses& classes);

  const std::set<std::string>& nodes() const { return nodes_; }
  const std::map<std::string, std::set<std::string>>& edges() const {
    return edges_;
  }
  bool has_edge(const std::string& u, const std::string& v) const;

  void add_node(const std::string& u) { nodes_.insert(u); }
  void add_edge(const std::string& u, const std::string& v);

  // Strongly connected components that contain a cycle (size > 1, or a
  // single node with a self-edge) — the "cyclic components" of Section 3.4.
  std::vector<std::vector<std::string>> cyclic_components() const;

  // A topological order of the nodes; throws std::logic_error if the graph
  // still has a cycle (callers must collapse cyclic components first).
  std::vector<std::string> topological_order() const;

  // Collapses each listed component into the single node `replacement[i]`,
  // dropping self-edges created by the collapse (the wrapper is a single
  // always-reachable instance, so no ordering constraint remains within it).
  void collapse(const std::vector<std::vector<std::string>>& components,
                const std::vector<std::string>& replacements);

  std::string to_string() const;

 private:
  std::set<std::string> nodes_;
  std::map<std::string, std::set<std::string>> edges_;
};

}  // namespace semlock::synth
