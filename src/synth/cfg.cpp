#include "synth/cfg.h"

#include <climits>
#include <deque>

namespace semlock::synth {

namespace {

// Detects `x == null` / `null == x` / `x != null` / `null != x` patterns.
// Returns true and fills (var, eq) when matched; eq==true for the == form.
bool match_null_test(const ExprPtr& cond, std::string& var, bool& eq) {
  if (!cond || cond->kind != Expr::Kind::Binary) return false;
  if (cond->op != Expr::Op::Eq && cond->op != Expr::Op::Ne) return false;
  const Expr* l = cond->lhs.get();
  const Expr* r = cond->rhs.get();
  const Expr* v = nullptr;
  if (l->kind == Expr::Kind::Var && r->kind == Expr::Kind::Null) {
    v = l;
  } else if (r->kind == Expr::Kind::Var && l->kind == Expr::Kind::Null) {
    v = r;
  } else {
    return false;
  }
  var = v->var;
  eq = (cond->op == Expr::Op::Eq);
  return true;
}

}  // namespace

int Cfg::add_node(const Stmt* s) {
  nodes_.push_back(CfgNode{s, {}, {}});
  const int idx = static_cast<int>(nodes_.size()) - 1;
  if (s) index_[s] = idx;
  return idx;
}

void Cfg::add_edge(int from, int to, CfgEdge::Refine r, std::string var) {
  nodes_[static_cast<std::size_t>(from)].out.push_back(
      CfgEdge{to, r, std::move(var)});
  nodes_[static_cast<std::size_t>(to)].in.push_back(from);
}

std::vector<Cfg::Pred> Cfg::build_block(const Block& block,
                                        std::vector<Pred> preds) {
  for (const auto& stmt : block) {
    const int n = add_node(stmt.get());
    for (const auto& p : preds) add_edge(p.node, n, p.refine, p.var);
    preds.clear();

    switch (stmt->kind) {
      case Stmt::Kind::If: {
        std::string var;
        bool eq = false;
        const bool refined = match_null_test(stmt->cond, var, eq);
        // then-branch edge refinement: `x == null` makes x null in `then`,
        // non-null in `else`; `x != null` the reverse.
        const auto then_ref = refined ? (eq ? CfgEdge::Refine::IsNull
                                            : CfgEdge::Refine::NonNull)
                                      : CfgEdge::Refine::None;
        const auto else_ref = refined ? (eq ? CfgEdge::Refine::NonNull
                                            : CfgEdge::Refine::IsNull)
                                      : CfgEdge::Refine::None;
        auto then_out = build_block(
            stmt->then_block, {Pred{n, then_ref, refined ? var : ""}});
        auto else_out = build_block(
            stmt->else_block, {Pred{n, else_ref, refined ? var : ""}});
        preds = std::move(then_out);
        preds.insert(preds.end(), else_out.begin(), else_out.end());
        break;
      }
      case Stmt::Kind::While: {
        auto body_out = build_block(stmt->body, {Pred{n, CfgEdge::Refine::None, {}}});
        for (const auto& p : body_out) {
          add_edge(p.node, n, p.refine, p.var);  // back-edge
        }
        preds = {Pred{n, CfgEdge::Refine::None, {}}};  // loop exit: fall through from the test
        break;
      }
      default:
        preds = {Pred{n, CfgEdge::Refine::None, {}}};
        break;
    }
  }
  return preds;
}

Cfg Cfg::build(const AtomicSection& section) {
  Cfg cfg;
  cfg.entry_ = cfg.add_node(nullptr);
  auto outs = cfg.build_block(section.body, {Pred{cfg.entry_, CfgEdge::Refine::None, {}}});
  cfg.exit_ = cfg.add_node(nullptr);
  for (const auto& p : outs) cfg.add_edge(p.node, cfg.exit_, p.refine, p.var);
  return cfg;
}

int Cfg::node_of(const Stmt* s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

std::vector<char> Cfg::reachable_from(int n, bool strict) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::deque<int> work;
  if (strict) {
    for (const auto& e : nodes_[static_cast<std::size_t>(n)].out) {
      if (!seen[static_cast<std::size_t>(e.to)]) {
        seen[static_cast<std::size_t>(e.to)] = 1;
        work.push_back(e.to);
      }
    }
  } else {
    seen[static_cast<std::size_t>(n)] = 1;
    work.push_back(n);
  }
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    for (const auto& e : nodes_[static_cast<std::size_t>(cur)].out) {
      if (!seen[static_cast<std::size_t>(e.to)]) {
        seen[static_cast<std::size_t>(e.to)] = 1;
        work.push_back(e.to);
      }
    }
  }
  return seen;
}

bool Cfg::all_paths_pass_through(int from, int through) const {
  if (from == through) return true;
  // BFS from `from` avoiding `through`; if exit is reachable, some path
  // dodges `through`.
  std::vector<char> seen(nodes_.size(), 0);
  std::deque<int> work{from};
  seen[static_cast<std::size_t>(from)] = 1;
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    if (cur == exit_) return false;
    for (const auto& e : nodes_[static_cast<std::size_t>(cur)].out) {
      if (e.to == through) continue;
      if (!seen[static_cast<std::size_t>(e.to)]) {
        seen[static_cast<std::size_t>(e.to)] = 1;
        work.push_back(e.to);
      }
    }
  }
  return true;
}

std::vector<int> Cfg::distance_from_entry() const {
  std::vector<int> dist(nodes_.size(), INT_MAX);
  std::deque<int> work{entry_};
  dist[static_cast<std::size_t>(entry_)] = 0;
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    for (const auto& e : nodes_[static_cast<std::size_t>(cur)].out) {
      if (dist[static_cast<std::size_t>(e.to)] == INT_MAX) {
        dist[static_cast<std::size_t>(e.to)] =
            dist[static_cast<std::size_t>(cur)] + 1;
        work.push_back(e.to);
      }
    }
  }
  return dist;
}

std::vector<int> Cfg::call_nodes_of(const std::string& v) const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    const Stmt* s = nodes_[static_cast<std::size_t>(i)].stmt;
    if (s && s->kind == Stmt::Kind::Call && s->recv == v) out.push_back(i);
  }
  return out;
}

std::string Cfg::assigned_var(const Stmt* s) {
  if (!s) return {};
  switch (s->kind) {
    case Stmt::Kind::Assign:
    case Stmt::Kind::New:
      return s->lhs;
    case Stmt::Kind::Call:
      return s->lhs;  // may be empty
    default:
      return {};
  }
}

}  // namespace semlock::synth
