#include "synth/pointer_classes.h"

#include <stdexcept>

namespace semlock::synth {

PointerClasses PointerClasses::by_type(const Program& program) {
  PointerClasses pc;
  for (const auto& section : program.sections) {
    for (const auto& [var, type] : section.var_types) {
      pc.class_of_[{section.name, var}] = type;
      auto [it, inserted] = pc.class_type_.try_emplace(type, type);
      (void)it;
      (void)inserted;
    }
  }
  return pc;
}

void PointerClasses::assign(const std::string& section, const std::string& var,
                            const std::string& class_key) {
  auto it = class_of_.find({section, var});
  if (it == class_of_.end()) {
    throw std::invalid_argument("assign: unknown pointer variable " + var +
                                " in section " + section);
  }
  const std::string& type = class_type_.at(it->second);
  auto [tit, inserted] = class_type_.try_emplace(class_key, type);
  if (!inserted && tit->second != type) {
    throw std::invalid_argument("assign: class " + class_key +
                                " mixes ADT types " + tit->second + " and " +
                                type);
  }
  it->second = class_key;
}

const std::string& PointerClasses::class_of(const std::string& section,
                                            const std::string& var) const {
  auto it = class_of_.find({section, var});
  if (it == class_of_.end()) {
    throw std::invalid_argument("class_of: unknown pointer variable " + var +
                                " in section " + section);
  }
  return it->second;
}

std::vector<std::string> PointerClasses::all_classes() const {
  std::vector<std::string> out;
  for (const auto& [cls, type] : class_type_) {
    (void)type;
    out.push_back(cls);
  }
  return out;
}

const std::string& PointerClasses::type_of_class(
    const std::string& class_key) const {
  auto it = class_type_.find(class_key);
  if (it == class_type_.end()) {
    throw std::invalid_argument("type_of_class: unknown class " + class_key);
  }
  return it->second;
}

}  // namespace semlock::synth
