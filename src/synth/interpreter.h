// Tree interpreter for instrumented atomic sections.
//
// Executes the output of `synthesize` against real, internally-linearizable
// ADT instances, acquiring semantic locks exactly where the inserted Lock
// statements say to. Used by the correctness and property tests: it also
// *checks* the protocol as it runs —
//   - S2PL coverage: a standard operation is invoked only while the
//     transaction holds a mode that represents that operation;
//   - two-phase rule: no lock after any unlock;
//   - OS2PL ordering: lock acquisitions follow the synthesized class order,
//     and same-class instances are acquired in unique-id order.
// Violations throw ProtocolViolation, turning subtle synchronization bugs
// into deterministic test failures.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "semlock/history.h"
#include "semlock/semantic_lock.h"
#include "semlock/transaction.h"
#include "synth/synthesis.h"

namespace semlock::synth {

class AdtInstance;

struct RtValue {
  enum class Kind { Null, Int, Ref };
  Kind kind = Kind::Null;
  commute::Value i = 0;
  AdtInstance* ref = nullptr;

  static RtValue null() { return RtValue{}; }
  static RtValue of_int(commute::Value v) {
    return RtValue{Kind::Int, v, nullptr};
  }
  static RtValue of_ref(AdtInstance* p) {
    return p ? RtValue{Kind::Ref, 0, p} : RtValue{};
  }

  bool is_null() const { return kind == Kind::Null; }
  bool truthy() const {
    switch (kind) {
      case Kind::Null: return false;
      case Kind::Int: return i != 0;
      case Kind::Ref: return true;
    }
    return false;
  }
  // The Value used for symbolic-argument resolution: references are
  // identified by address (their "unique identifier").
  commute::Value as_value() const;

  bool operator==(const RtValue& o) const {
    if (kind != o.kind) return false;
    if (kind == Kind::Int) return i == o.i;
    if (kind == Kind::Ref) return ref == o.ref;
    return true;
  }
};

class ProtocolViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Base for runtime ADT objects. Instances created for non-wrapped classes
// carry a SemanticLock built from that class's ModeTable.
class AdtInstance {
 public:
  AdtInstance(std::string type, std::string class_key)
      : type_(std::move(type)), class_key_(std::move(class_key)) {}
  virtual ~AdtInstance() = default;

  virtual RtValue invoke(const std::string& method,
                         const std::vector<RtValue>& args) = 0;

  const std::string& type() const { return type_; }
  const std::string& class_key() const { return class_key_; }

  SemanticLock* sem_lock() { return sem_lock_.get(); }
  void attach_lock(const ModeTable& table) {
    sem_lock_ = std::make_unique<SemanticLock>(table);
  }

 private:
  std::string type_;
  std::string class_key_;
  std::unique_ptr<SemanticLock> sem_lock_;
};

// Shared object arena. Thread-safe creation; owns every instance (including
// the lock-only wrapper instances of Section 3.4) for the heap's lifetime.
class Heap {
 public:
  explicit Heap(const SynthesisResult& plan) : plan_(&plan) {}

  // Creates an instance of `type` belonging to pointer class `class_key`
  // (defaults to the class named like the type). Attaches the class's
  // semantic lock when the plan has one for it.
  AdtInstance* create(const std::string& type, const std::string& class_key);
  AdtInstance* create(const std::string& type) { return create(type, type); }

  // The single lock-only instance of a wrapper class.
  AdtInstance* wrapper_instance(const std::string& wrapper_key);

  const SynthesisResult& plan() const { return *plan_; }

 private:
  const SynthesisResult* plan_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<AdtInstance>> objects_;
  std::map<std::string, AdtInstance*> wrappers_;
};

struct InterpreterOptions {
  bool check_protocol = true;   // S2PL coverage + ordering checks
  long max_loop_iterations = 1'000'000;  // guard against runaway While
  // When set, every standard operation is appended to this history (for
  // offline conflict-serializability checking).
  HistoryRecorder* recorder = nullptr;
};

class Interpreter {
 public:
  Interpreter(Heap& heap, InterpreterOptions opts = InterpreterOptions{})
      : heap_(&heap), opts_(opts) {}

  using Env = std::map<std::string, RtValue>;

  // Executes one atomic section as a transaction; returns the final variable
  // environment (params + locals).
  Env run(const std::string& section_name, Env env);

 private:
  struct TxnState;
  void exec_block(const AtomicSection& section, const Block& block, Env& env,
                  TxnState& txn);
  void exec_stmt(const AtomicSection& section, const Stmt& s, Env& env,
                 TxnState& txn);
  RtValue eval(const ExprPtr& e, const Env& env) const;
  void do_lock(const AtomicSection& section, const Stmt& s, Env& env,
               TxnState& txn);
  void check_covered(const AtomicSection& section, const Stmt& call,
                     AdtInstance* recv, const std::vector<RtValue>& args,
                     TxnState& txn) const;

  Heap* heap_;
  InterpreterOptions opts_;
};

// --- Built-in dynamic ADT instances (all internally linearizable) ---------
// Factory used by Heap::create; recognizes the types "Set", "Map", "Queue",
// "Pool", "Multimap", "Counter", "Register", "Account".
std::unique_ptr<AdtInstance> make_builtin_instance(const std::string& type,
                                                   const std::string& cls);

}  // namespace semlock::synth
