// Appendix A: semantics-preserving transformations over the instrumented
// AST — redundant-LV removal, LOCAL_SET elision, early lock release, and
// null-check removal (Fig. 14 -> Fig. 26 -> Fig. 27 -> Fig. 28 -> Fig. 17).
#include <algorithm>
#include <climits>
#include <functional>
#include <set>

#include "synth/cfg.h"
#include "synth/synthesis.h"

namespace semlock::synth {

namespace {

// Removes statements in `dead` from the block tree.
void remove_stmts(Block& block, const std::set<const Stmt*>& dead) {
  std::erase_if(block,
                [&](const StmtPtr& s) { return dead.count(s.get()) != 0; });
  for (auto& s : block) {
    remove_stmts(s->then_block, dead);
    remove_stmts(s->else_block, dead);
    remove_stmts(s->body, dead);
  }
}

// Inserts `stmt` immediately after `anchor` in the block tree; returns true
// when the anchor was found.
bool insert_after(Block& block, const Stmt* anchor, const StmtPtr& stmt) {
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (block[i].get() == anchor) {
      block.insert(block.begin() + static_cast<std::ptrdiff_t>(i) + 1, stmt);
      return true;
    }
    if (insert_after(block[i]->then_block, anchor, stmt) ||
        insert_after(block[i]->else_block, anchor, stmt) ||
        insert_after(block[i]->body, anchor, stmt)) {
      return true;
    }
  }
  return false;
}

template <typename Fn>
void walk(Block& block, Fn&& fn) {
  for (auto& s : block) {
    fn(s);
    walk(s->then_block, fn);
    walk(s->else_block, fn);
    walk(s->body, fn);
  }
}

// FC[n]: variables with a call at n or after (per-variable future-call
// analysis shared by two passes).
std::vector<std::set<std::string>> future_call_vars(const Cfg& cfg) {
  std::vector<std::set<std::string>> fc(
      static_cast<std::size_t>(cfg.num_nodes()));
  bool changed = true;
  while (changed) {
    changed = false;
    for (int n = cfg.num_nodes() - 1; n >= 0; --n) {
      std::set<std::string> cur;
      const Stmt* s = cfg.node(n).stmt;
      if (s && s->kind == Stmt::Kind::Call) cur.insert(s->recv);
      for (const auto& e : cfg.node(n).out) {
        const auto& succ = fc[static_cast<std::size_t>(e.to)];
        cur.insert(succ.begin(), succ.end());
      }
      if (cur != fc[static_cast<std::size_t>(n)]) {
        fc[static_cast<std::size_t>(n)] = std::move(cur);
        changed = true;
      }
    }
  }
  return fc;
}

// Does the wrapper lock `stmt` still protect a future call? True when some
// variable wrapped by the same key has a call at or after node `n`.
bool wrapper_has_future_call(const AtomicSection& section,
                             const SectionContext& ctx, const Stmt& stmt,
                             const std::set<std::string>& fc_at_n) {
  for (const auto& v : fc_at_n) {
    if (ctx.wrapper_key_of(section, v) == stmt.wrapper_key) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: removing redundant LV(x)
// ---------------------------------------------------------------------------
void remove_redundant_locks(AtomicSection& section, const SectionContext& ctx) {
  const Cfg cfg = Cfg::build(section);
  const int n_nodes = cfg.num_nodes();

  // Universe of lockable names (variables + wrapper pointers).
  std::set<std::string> universe;
  walk(section.body, [&](const StmtPtr& s) {
    if (s->kind == Stmt::Kind::Lock) {
      universe.insert(s->lock_vars.begin(), s->lock_vars.end());
    }
  });

  // Forward must-locked analysis: IN[n] = ∩ pred OUT; Lock adds its vars,
  // an assignment to v kills v. TOP = universe (for unvisited meets).
  std::vector<std::set<std::string>> in(static_cast<std::size_t>(n_nodes),
                                        universe);
  in[static_cast<std::size_t>(cfg.entry())].clear();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int n = 0; n < n_nodes; ++n) {
      if (n == cfg.entry()) continue;
      std::set<std::string> cur = universe;
      bool first = true;
      for (const int p : cfg.node(n).in) {
        // OUT[p] = transfer(p, IN[p]).
        std::set<std::string> outp = in[static_cast<std::size_t>(p)];
        const Stmt* ps = cfg.node(p).stmt;
        if (ps) {
          if (ps->kind == Stmt::Kind::Lock) {
            outp.insert(ps->lock_vars.begin(), ps->lock_vars.end());
          }
          const std::string killed = Cfg::assigned_var(ps);
          if (!killed.empty()) outp.erase(killed);
        }
        if (first) {
          cur = std::move(outp);
          first = false;
        } else {
          std::set<std::string> meet;
          std::set_intersection(cur.begin(), cur.end(), outp.begin(),
                                outp.end(),
                                std::inserter(meet, meet.begin()));
          cur = std::move(meet);
        }
      }
      if (cur != in[static_cast<std::size_t>(n)]) {
        in[static_cast<std::size_t>(n)] = std::move(cur);
        changed = true;
      }
    }
  }

  const auto fc = future_call_vars(cfg);

  std::set<const Stmt*> dead;
  walk(section.body, [&](const StmtPtr& sp) {
    Stmt& s = *sp;
    if (s.kind != Stmt::Kind::Lock) return;
    const int n = cfg.node_of(&s);
    if (n < 0) return;
    const auto& locked = in[static_cast<std::size_t>(n)];
    const auto& future = fc[static_cast<std::size_t>(n)];
    std::erase_if(s.lock_vars, [&](const std::string& v) {
      // Rule (a): already locked on all paths.
      if (locked.count(v)) return true;
      // Rule (b): never used again.
      if (!s.wrapper_key.empty()) {
        return !wrapper_has_future_call(section, ctx, s, future);
      }
      return future.count(v) == 0;
    });
    if (s.lock_vars.empty()) dead.insert(&s);
  });
  remove_stmts(section.body, dead);
}

// ---------------------------------------------------------------------------
// Pass 2: removing redundant LOCAL_SET usage
// ---------------------------------------------------------------------------
bool remove_local_set(AtomicSection& section, const SectionContext& ctx) {
  const Cfg cfg = Cfg::build(section);

  // Collect Lock statements per lockable name, and effective classes for the
  // may-alias test.
  struct LockInfo {
    Stmt* stmt;
    int node;
    std::string var;
    std::string cls;  // effective class ("" for scalars — impossible here)
  };
  std::vector<LockInfo> locks;
  std::vector<std::string> order_seen;  // first-lock order, for unlock order
  walk(section.body, [&](const StmtPtr& sp) {
    if (sp->kind != Stmt::Kind::Lock) return;
    for (const auto& v : sp->lock_vars) {
      const std::string cls = sp->wrapper_key.empty()
                                  ? ctx.effective_class_of(section, v)
                                  : sp->wrapper_key;
      locks.push_back(LockInfo{sp.get(), cfg.node_of(sp.get()), v, cls});
      if (std::find(order_seen.begin(), order_seen.end(), v) ==
          order_seen.end()) {
        order_seen.push_back(v);
      }
    }
  });
  if (locks.empty()) return false;

  // Determine which variables are eligible.
  std::set<std::string> blocked;
  for (const auto& a : locks) {
    // Dynamic-order LVn statements need LOCAL_SET to dedup aliases.
    if (a.stmt->lock_vars.size() > 1) blocked.insert(a.var);
    for (const auto& b : locks) {
      if (a.cls != b.cls) continue;  // cannot alias
      const bool same_stmt = (a.stmt == b.stmt);
      if (same_stmt && a.var == b.var) {
        // Re-execution of the same lock (loop) re-locks the same object.
        if (cfg.reaches(a.node, a.node, /*strict=*/true)) {
          blocked.insert(a.var);
        }
        continue;
      }
      // Two distinct lock occurrences of possibly-aliasing variables on one
      // path (condition (1) of Appendix A).
      if (same_stmt || cfg.reaches(a.node, b.node, /*strict=*/true) ||
          cfg.reaches(b.node, a.node, /*strict=*/true)) {
        blocked.insert(a.var);
        blocked.insert(b.var);
      }
    }
    // Condition (2): `var` must not be reassigned after a lock of it.
    const auto after = cfg.reachable_from(a.node, /*strict=*/true);
    for (int n = 0; n < cfg.num_nodes(); ++n) {
      if (!after[static_cast<std::size_t>(n)]) continue;
      const Stmt* s = cfg.node(n).stmt;
      if (s && Cfg::assigned_var(s) == a.var) blocked.insert(a.var);
    }
  }

  // Transform eligible variables: direct null-guarded lock + per-variable
  // unlock at the end of the section.
  std::set<std::string> transformed;
  std::map<std::string, std::string> wrapper_key_of_var;
  for (auto& info : locks) {
    if (blocked.count(info.var)) continue;
    info.stmt->use_local_set = false;
    info.stmt->guard_null = info.stmt->wrapper_key.empty();
    transformed.insert(info.var);
    wrapper_key_of_var[info.var] = info.stmt->wrapper_key;
  }
  if (transformed.empty()) return false;

  // Insert unlocks just before the trailing Epilogue (or at the very end if
  // the epilogue was already dropped), in first-lock order.
  auto insert_pos = section.body.end();
  if (!section.body.empty() &&
      section.body.back()->kind == Stmt::Kind::Epilogue) {
    insert_pos = section.body.end() - 1;
  }
  std::vector<StmtPtr> unlocks;
  for (const auto& v : order_seen) {
    if (!transformed.count(v)) continue;
    auto u = std::make_shared<Stmt>();
    u->kind = Stmt::Kind::UnlockAll;
    u->unlock_var = v;
    u->wrapper_key = wrapper_key_of_var[v];
    u->guard_null = u->wrapper_key.empty();
    unlocks.push_back(std::move(u));
  }
  section.body.insert(insert_pos, unlocks.begin(), unlocks.end());

  // If no lock still uses LOCAL_SET, drop the prologue/epilogue.
  bool any_local_set = false;
  walk(section.body, [&](const StmtPtr& sp) {
    if (sp->kind == Stmt::Kind::Lock && sp->use_local_set) {
      any_local_set = true;
    }
  });
  if (!any_local_set) {
    std::set<const Stmt*> dead;
    walk(section.body, [&](const StmtPtr& sp) {
      if (sp->kind == Stmt::Kind::Prologue ||
          sp->kind == Stmt::Kind::Epilogue) {
        dead.insert(sp.get());
      }
    });
    remove_stmts(section.body, dead);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pass 3: early lock release
// ---------------------------------------------------------------------------
void early_release(AtomicSection& section, const SectionContext& ctx) {
  // Candidates: per-variable UnlockAll statements sitting in the top-level
  // tail of the section (the position remove_local_set gave them).
  std::vector<Stmt*> unlocks;
  for (const auto& sp : section.body) {
    if (sp->kind == Stmt::Kind::UnlockAll && !sp->unlock_var.empty()) {
      unlocks.push_back(sp.get());
    }
  }

  for (Stmt* u : unlocks) {
    const Cfg cfg = Cfg::build(section);
    const std::string& x = u->unlock_var;
    const int u_node = cfg.node_of(u);
    if (u_node < 0) continue;

    // Lock nodes of x.
    std::vector<int> lock_nodes;
    walk(section.body, [&](const StmtPtr& sp) {
      if (sp->kind == Stmt::Kind::Lock &&
          std::find(sp->lock_vars.begin(), sp->lock_vars.end(), x) !=
              sp->lock_vars.end()) {
        const int n = cfg.node_of(sp.get());
        if (n >= 0) lock_nodes.push_back(n);
      }
    });
    if (lock_nodes.empty()) continue;

    const auto dist = cfg.distance_from_entry();
    int best_node = -1;
    int best_dist = dist[static_cast<std::size_t>(u_node)];

    for (int s = 0; s < cfg.num_nodes(); ++s) {
      const Stmt* st = cfg.node(s).stmt;
      if (!st || st == u) continue;
      if (st->kind == Stmt::Kind::UnlockAll ||
          st->kind == Stmt::Kind::Epilogue) {
        continue;  // moving among unlocks gains nothing
      }
      if (dist[static_cast<std::size_t>(s)] >= best_dist) continue;

      const auto after = cfg.reachable_from(s, /*strict=*/true);
      bool ok = true;
      int interesting_after = 0;
      for (int m = 0; m < cfg.num_nodes() && ok; ++m) {
        if (!after[static_cast<std::size_t>(m)]) continue;
        const Stmt* ms = cfg.node(m).stmt;
        if (!ms) continue;
        // (2) no lock operations after the release point.
        if (ms->kind == Stmt::Kind::Lock) ok = false;
        // (1) the object is not used after the release point.
        if (ms->kind == Stmt::Kind::Call) {
          if (u->wrapper_key.empty()) {
            if (ms->recv == x) ok = false;
          } else if (ctx.wrapper_key_of(section, ms->recv) ==
                     u->wrapper_key) {
            ok = false;
          }
        }
        if (ms->kind != Stmt::Kind::UnlockAll &&
            ms->kind != Stmt::Kind::Epilogue) {
          ++interesting_after;
        }
      }
      if (!ok) continue;
      if (interesting_after == 0) continue;  // equivalent to staying at end
      // (3) every path from every lock of x passes through s.
      for (const int ln : lock_nodes) {
        if (!cfg.all_paths_pass_through(ln, s)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (dist[static_cast<std::size_t>(s)] < best_dist) {
        best_dist = dist[static_cast<std::size_t>(s)];
        best_node = s;
      }
    }

    if (best_node >= 0) {
      const Stmt* anchor = cfg.node(best_node).stmt;
      // Re-home the unlock: remove it, then re-insert after the anchor.
      StmtPtr keep;
      walk(section.body, [&](const StmtPtr& sp) {
        if (sp.get() == u) keep = sp;
      });
      remove_stmts(section.body, {u});
      insert_after(section.body, anchor, keep);
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 4: removing redundant null checks
// ---------------------------------------------------------------------------
void remove_null_checks(AtomicSection& section) {
  const Cfg cfg = Cfg::build(section);
  const int n_nodes = cfg.num_nodes();

  std::set<std::string> universe;
  for (const auto& [v, t] : section.var_types) {
    (void)t;
    universe.insert(v);
  }

  // Forward must-non-null: IN[n] = ∩ over incoming edges of
  // refine(OUT[pred], edge).
  std::vector<std::set<std::string>> fwd(static_cast<std::size_t>(n_nodes),
                                         universe);
  fwd[static_cast<std::size_t>(cfg.entry())].clear();
  auto transfer_fwd = [&](int n) {
    std::set<std::string> out = fwd[static_cast<std::size_t>(n)];
    const Stmt* s = cfg.node(n).stmt;
    if (!s) return out;
    switch (s->kind) {
      case Stmt::Kind::New:
        out.insert(s->lhs);
        break;
      case Stmt::Kind::Call:
        out.insert(s->recv);  // an executed call implies a non-null receiver
        if (!s->lhs.empty()) out.erase(s->lhs);
        break;
      case Stmt::Kind::Assign:
        if (s->rhs && s->rhs->kind == Expr::Kind::Var && out.count(s->rhs->var)) {
          out.insert(s->lhs);
        } else {
          out.erase(s->lhs);
        }
        break;
      default:
        break;
    }
    return out;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int n = 0; n < n_nodes; ++n) {
      if (n == cfg.entry()) continue;
      std::set<std::string> cur = universe;
      bool first = true;
      // Find incoming edges (iterate all nodes' out-edges into n to read the
      // refinement labels).
      for (const int p : cfg.node(n).in) {
        for (const auto& e : cfg.node(p).out) {
          if (e.to != n) continue;
          std::set<std::string> via = transfer_fwd(p);
          if (e.refine == CfgEdge::Refine::NonNull) via.insert(e.var);
          if (e.refine == CfgEdge::Refine::IsNull) via.erase(e.var);
          if (first) {
            cur = std::move(via);
            first = false;
          } else {
            std::set<std::string> meet;
            std::set_intersection(cur.begin(), cur.end(), via.begin(),
                                  via.end(),
                                  std::inserter(meet, meet.begin()));
            cur = std::move(meet);
          }
        }
      }
      if (cur != fwd[static_cast<std::size_t>(n)]) {
        fwd[static_cast<std::size_t>(n)] = std::move(cur);
        changed = true;
      }
    }
  }

  // Backward anticipated receiver use: x ∈ ANT[n] iff every path from n
  // reaches a call with receiver x before any assignment to x. Assuming the
  // original program is NPE-free, x cannot be null where its use is
  // inevitable.
  std::vector<std::set<std::string>> ant(static_cast<std::size_t>(n_nodes),
                                         universe);
  ant[static_cast<std::size_t>(cfg.exit())].clear();
  changed = true;
  while (changed) {
    changed = false;
    for (int n = n_nodes - 1; n >= 0; --n) {
      if (n == cfg.exit()) continue;
      std::set<std::string> out;
      bool first = true;
      for (const auto& e : cfg.node(n).out) {
        const auto& succ = ant[static_cast<std::size_t>(e.to)];
        if (first) {
          out = succ;
          first = false;
        } else {
          std::set<std::string> meet;
          std::set_intersection(out.begin(), out.end(), succ.begin(),
                                succ.end(), std::inserter(meet, meet.begin()));
          out = std::move(meet);
        }
      }
      if (first) out.clear();  // no successors
      const Stmt* s = cfg.node(n).stmt;
      if (s) {
        const std::string killed = Cfg::assigned_var(s);
        if (!killed.empty()) out.erase(killed);
        if (s->kind == Stmt::Kind::Call) out.insert(s->recv);
      }
      if (out != ant[static_cast<std::size_t>(n)]) {
        ant[static_cast<std::size_t>(n)] = std::move(out);
        changed = true;
      }
    }
  }

  walk(section.body, [&](const StmtPtr& sp) {
    Stmt& s = *sp;
    if (!s.guard_null) return;
    const int n = cfg.node_of(&s);
    if (n < 0) return;
    const std::string& x =
        s.kind == Stmt::Kind::Lock ? s.lock_vars.front() : s.unlock_var;
    if (fwd[static_cast<std::size_t>(n)].count(x) ||
        ant[static_cast<std::size_t>(n)].count(x)) {
      s.guard_null = false;
    }
  });
}

}  // namespace semlock::synth
