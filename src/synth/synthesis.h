// The synthesis pipeline (Sections 3–5): from a client program with atomic
// sections to an instrumented program that follows Ordered S2PL, plus the
// compiled locking-mode tables that implement the semantic locks.
//
// Pipeline stages:
//   1. pointer classes (given) -> restrictions-graph (Section 3.2)
//   2. cyclic components -> global wrapper ADTs (Section 3.4)
//   3. topological order -> lock insertion LS(l) (Section 3.3)
//   4. refined symbolic sets (Section 4) [optional]
//   5. Appendix-A optimizations [optional]
//   6. locking-mode compilation per equivalence class (Section 5)
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "semlock/mode_table.h"
#include "synth/ast.h"
#include "synth/pointer_classes.h"
#include "synth/restrictions_graph.h"

namespace semlock::synth {

struct SynthesisOptions {
  // Section 4: refine lock() symbolic sets to the operations actually used;
  // when false, every lock is lock(+) as in Section 3.
  bool refine_symbolic_sets = true;
  // Appendix A: redundant-LV removal, LOCAL_SET elision, early release,
  // null-check removal.
  bool optimize = true;
  // Section 5 mode compilation parameters.
  ModeTableConfig mode_config{};
  // Tie-break hint for the topological sort: classes earlier in this list
  // are preferred when the restrictions-graph leaves the order free (used to
  // reproduce the paper's figures, e.g. map < set < queue).
  std::vector<std::string> preferred_order;
};

// Per-equivalence-class locking plan: the lock sites (symbolic sets) of the
// final instrumented program and the compiled mode table.
struct ClassPlan {
  std::string class_key;  // effective class (may be a wrapper key)
  const commute::AdtSpec* spec = nullptr;
  std::vector<commute::SymbolicSet> sites;
  std::optional<ModeTable> table;
  int order_index = 0;  // position in the topological order
};

struct SynthesisResult {
  Program program;  // deep copy of the input, instrumented
  PointerClasses classes;
  RestrictionsGraph raw_graph;  // before cyclic-component collapse
  RestrictionsGraph graph;      // after collapse (acyclic)
  std::vector<std::string> class_order;  // topological order of class keys

  // member class -> wrapper class key, for classes absorbed by Section 3.4.
  std::map<std::string, std::string> wrapper_of;
  // wrapper class key -> global pointer name ("p1", "p2", ...).
  std::map<std::string, std::string> wrapper_pointer;
  // Owned synthesized specs for wrapper ADTs.
  std::vector<std::unique_ptr<commute::AdtSpec>> wrapper_specs;

  std::map<std::string, ClassPlan> plans;  // keyed by effective class

  // The effective class of (section, var): its pointer class, redirected to
  // the wrapper when the class was absorbed.
  std::string effective_class(const std::string& section,
                              const std::string& var) const;
};

SynthesisResult synthesize(const Program& input, const PointerClasses& classes,
                           const SynthesisOptions& opts = SynthesisOptions{});

// --- individual passes, exposed for tests --------------------------------

// Stage 3: inserts Prologue/Epilogue and LV locks so every transaction
// follows OS2PL, given the (acyclic) class order. `wrapper_of` redirects
// member classes to wrapper locks. Mutates `result.program` in place.
void insert_locking(SynthesisResult& result, const SynthesisOptions& opts);

// Shared context for the Appendix-A passes: resolves variables to effective
// classes and identifies variables absorbed by a wrapper.
struct SectionContext {
  const PointerClasses* classes = nullptr;
  const std::map<std::string, std::string>* wrapper_of = nullptr;
  std::string section_name;

  // Wrapper key covering pointer variable `v`, or "" if none.
  std::string wrapper_key_of(const AtomicSection& section,
                             const std::string& v) const;
  // Effective class of `v` (wrapper key when wrapped).
  std::string effective_class_of(const AtomicSection& section,
                                 const std::string& v) const;
};

// Appendix A passes (mutate the section in place; each rebuilds its CFG).
void remove_redundant_locks(AtomicSection& section, const SectionContext& ctx);
// Returns true if LOCAL_SET was fully elided for this section.
bool remove_local_set(AtomicSection& section, const SectionContext& ctx);
void early_release(AtomicSection& section, const SectionContext& ctx);
void remove_null_checks(AtomicSection& section);

}  // namespace semlock::synth
