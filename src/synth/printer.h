// Pretty-printer for (instrumented) atomic sections, in the Java-like
// surface syntax of the paper's figures. Used by golden tests that reproduce
// Figs. 2, 13–15, 17, 26–28 and by the compiler_tour example.
#pragma once

#include <string>

#include "synth/ast.h"

namespace semlock::synth {

std::string print_section(const AtomicSection& section);
std::string print_block(const Block& block, int indent = 0);
std::string print_stmt(const Stmt& stmt, int indent = 0);

}  // namespace semlock::synth
