// A small surface language for client programs, so the synthesis can be
// driven from text (the `semlockc` tool) rather than only from the C++ IR
// builders. The syntax mirrors the paper's figures:
//
//   adt Map;                 // bind type Map to the built-in Map spec
//   adt Queue(pool);         // bind type Queue to the Pool spec
//
//   atomic fig1(Map map, Queue queue, int id, int x, int y, int flag) {
//     var set: Set;
//     set = map.get(id);
//     if (set == null) {
//       set = new Set();
//       map.put(id, set);
//     }
//     set.add(x);
//     set.add(y);
//     if (flag) {
//       queue.enqueue(set);
//       map.remove(id);
//     }
//   }
//
// Expressions support null, integer literals, variables, unary !, and the
// binary operators == != < <= + - * % && ||.
#pragma once

#include <stdexcept>
#include <string>

#include "synth/ast.h"

namespace semlock::synth {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line)
      : std::runtime_error("parse error at line " + std::to_string(line) +
                           ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

// Parses a program; throws ParseError on malformed input and
// std::invalid_argument for unknown spec bindings.
Program parse_program(const std::string& source);

}  // namespace semlock::synth
