#include "synth/parser.h"

#include <cctype>
#include <map>
#include <vector>

#include "commute/builtin_specs.h"

namespace semlock::synth {

namespace {

struct Token {
  enum class Kind { Ident, Int, Punct, End };
  Kind kind = Kind::End;
  std::string text;
  commute::Value value = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = Token::Kind::End;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ident += src_[pos_++];
      }
      current_.kind = Token::Kind::Ident;
      current_.text = std::move(ident);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      commute::Value v = 0;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        v = v * 10 + (src_[pos_++] - '0');
      }
      current_.kind = Token::Kind::Int;
      current_.value = v;
      return;
    }
    // Multi-character punctuation first.
    static const char* kTwoChar[] = {"==", "!=", "<=", "&&", "||"};
    for (const char* op : kTwoChar) {
      if (src_.compare(pos_, 2, op) == 0) {
        current_.kind = Token::Kind::Punct;
        current_.text = op;
        pos_ += 2;
        return;
      }
    }
    current_.kind = Token::Kind::Punct;
    current_.text = std::string(1, c);
    ++pos_;
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

const commute::AdtSpec* builtin_spec(const std::string& name, int line) {
  static const std::map<std::string, const commute::AdtSpec* (*)()> kSpecs = {
      {"map", [] { return &commute::map_spec(); }},
      {"set", [] { return &commute::set_spec(); }},
      {"queue", [] { return &commute::fifo_queue_spec(); }},
      {"fifo", [] { return &commute::fifo_queue_spec(); }},
      {"pool", [] { return &commute::pool_spec(); }},
      {"multimap", [] { return &commute::multimap_spec(); }},
      {"weakmap", [] { return &commute::weakmap_spec(); }},
      {"counter", [] { return &commute::counter_spec(); }},
      {"register", [] { return &commute::register_spec(); }},
      {"account", [] { return &commute::account_spec(); }},
  };
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  auto it = kSpecs.find(lower);
  if (it == kSpecs.end()) {
    throw ParseError("unknown built-in spec '" + name + "'", line);
  }
  return it->second();
}

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  Program parse() {
    Program p;
    while (lex_.peek().kind != Token::Kind::End) {
      const Token t = lex_.peek();
      if (t.kind == Token::Kind::Ident && t.text == "adt") {
        parse_adt_decl(p);
      } else if (t.kind == Token::Kind::Ident && t.text == "atomic") {
        p.sections.push_back(parse_section(p));
      } else {
        throw ParseError("expected 'adt' or 'atomic', got '" + t.text + "'",
                         t.line);
      }
    }
    return p;
  }

 private:
  Token expect_ident() {
    Token t = lex_.take();
    if (t.kind != Token::Kind::Ident) {
      throw ParseError("expected identifier, got '" + t.text + "'", t.line);
    }
    return t;
  }

  void expect_punct(const std::string& p) {
    Token t = lex_.take();
    if (t.kind != Token::Kind::Punct || t.text != p) {
      throw ParseError("expected '" + p + "', got '" + t.text + "'", t.line);
    }
  }

  bool accept_punct(const std::string& p) {
    if (lex_.peek().kind == Token::Kind::Punct && lex_.peek().text == p) {
      lex_.take();
      return true;
    }
    return false;
  }

  bool accept_ident(const std::string& word) {
    if (lex_.peek().kind == Token::Kind::Ident && lex_.peek().text == word) {
      lex_.take();
      return true;
    }
    return false;
  }

  void parse_adt_decl(Program& p) {
    lex_.take();  // 'adt'
    const Token name = expect_ident();
    const commute::AdtSpec* spec;
    if (accept_punct("(")) {
      const Token binding = expect_ident();
      expect_punct(")");
      spec = builtin_spec(binding.text, binding.line);
    } else {
      spec = builtin_spec(name.text, name.line);
    }
    p.adt_types[name.text] = spec;
    expect_punct(";");
  }

  AtomicSection parse_section(const Program& p) {
    lex_.take();  // 'atomic'
    AtomicSection s;
    s.name = expect_ident().text;
    expect_punct("(");
    if (!accept_punct(")")) {
      for (;;) {
        const Token type = expect_ident();
        const Token name = expect_ident();
        if (type.text != "int") {
          require_type(p, type);
          s.var_types[name.text] = type.text;
        }
        s.params.push_back(name.text);
        if (accept_punct(")")) break;
        expect_punct(",");
      }
    }
    s.body = parse_block(p, s);
    return s;
  }

  void require_type(const Program& p, const Token& type) {
    if (!p.adt_types.count(type.text)) {
      throw ParseError("undeclared ADT type '" + type.text +
                           "' (add an 'adt " + type.text + ";' declaration)",
                       type.line);
    }
  }

  Block parse_block(const Program& p, AtomicSection& s) {
    expect_punct("{");
    Block b;
    while (!accept_punct("}")) b.push_back(parse_stmt(p, s));
    return b;
  }

  StmtPtr parse_stmt(const Program& p, AtomicSection& s) {
    const Token t = lex_.peek();
    if (t.kind != Token::Kind::Ident) {
      throw ParseError("expected statement, got '" + t.text + "'", t.line);
    }
    if (t.text == "var") {
      lex_.take();
      const Token name = expect_ident();
      expect_punct(":");
      const Token type = expect_ident();
      require_type(p, type);
      s.var_types[name.text] = type.text;
      expect_punct(";");
      // Declarations carry no runtime behavior; emit a no-op assignment of
      // null so downstream passes see a defined variable.
      return assign(name.text, enull());
    }
    if (t.text == "if") {
      lex_.take();
      expect_punct("(");
      ExprPtr cond = parse_expr();
      expect_punct(")");
      Block then_block = parse_block(p, s);
      Block else_block;
      if (accept_ident("else")) else_block = parse_block(p, s);
      return make_if(std::move(cond), std::move(then_block),
                     std::move(else_block));
    }
    if (t.text == "while") {
      lex_.take();
      expect_punct("(");
      ExprPtr cond = parse_expr();
      expect_punct(")");
      Block body = parse_block(p, s);
      return make_while(std::move(cond), std::move(body));
    }

    // assignment / call / call-with-result
    const Token first = lex_.take();
    if (accept_punct(".")) {
      // receiver.method(args);
      const Token method = expect_ident();
      auto args = parse_args();
      expect_punct(";");
      return callv(first.text, method.text, std::move(args));
    }
    expect_punct("=");
    if (accept_ident("new")) {
      const Token type = expect_ident();
      require_type(p, type);
      expect_punct("(");
      expect_punct(")");
      expect_punct(";");
      s.var_types.try_emplace(first.text, type.text);
      return make_new(first.text, type.text);
    }
    // Either `x = recv.method(args);` or `x = expr;`
    if (lex_.peek().kind == Token::Kind::Ident) {
      // Look ahead for '.': a call-with-result.
      const Token maybe_recv = lex_.take();
      if (accept_punct(".")) {
        const Token method = expect_ident();
        auto args = parse_args();
        expect_punct(";");
        return call(first.text, maybe_recv.text, method.text,
                    std::move(args));
      }
      // It was the start of an expression: parse the rest with the
      // identifier as the leading primary.
      ExprPtr lhs = evar(maybe_recv.text);
      ExprPtr e = parse_expr_continued(std::move(lhs), 0);
      expect_punct(";");
      return assign(first.text, std::move(e));
    }
    ExprPtr e = parse_expr();
    expect_punct(";");
    return assign(first.text, std::move(e));
  }

  std::vector<ExprPtr> parse_args() {
    expect_punct("(");
    std::vector<ExprPtr> args;
    if (accept_punct(")")) return args;
    for (;;) {
      args.push_back(parse_expr());
      if (accept_punct(")")) break;
      expect_punct(",");
    }
    return args;
  }

  // Precedence climbing. Levels: 0 = || ; 1 = && ; 2 = comparisons ;
  // 3 = + - ; 4 = * %.
  static int prec_of(const std::string& op) {
    if (op == "||") return 0;
    if (op == "&&") return 1;
    if (op == "==" || op == "!=" || op == "<" || op == "<=") return 2;
    if (op == "+" || op == "-") return 3;
    if (op == "*" || op == "%") return 4;
    return -1;
  }

  static Expr::Op to_op(const std::string& op) {
    if (op == "||") return Expr::Op::Or;
    if (op == "&&") return Expr::Op::And;
    if (op == "==") return Expr::Op::Eq;
    if (op == "!=") return Expr::Op::Ne;
    if (op == "<") return Expr::Op::Lt;
    if (op == "<=") return Expr::Op::Le;
    if (op == "+") return Expr::Op::Add;
    if (op == "-") return Expr::Op::Sub;
    if (op == "*") return Expr::Op::Mul;
    return Expr::Op::Mod;
  }

  ExprPtr parse_expr() { return parse_expr_continued(parse_primary(), 0); }

  ExprPtr parse_expr_continued(ExprPtr lhs, int min_prec) {
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != Token::Kind::Punct) return lhs;
      const int prec = prec_of(t.text);
      if (prec < min_prec) return lhs;
      const std::string op = lex_.take().text;
      ExprPtr rhs = parse_primary();
      for (;;) {
        const Token& t2 = lex_.peek();
        if (t2.kind != Token::Kind::Punct) break;
        const int prec2 = prec_of(t2.text);
        if (prec2 <= prec) break;
        rhs = parse_expr_continued(std::move(rhs), prec2);
      }
      lhs = ebin(to_op(op), std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_primary() {
    const Token t = lex_.take();
    if (t.kind == Token::Kind::Int) return eint(t.value);
    if (t.kind == Token::Kind::Ident) {
      if (t.text == "null") return enull();
      return evar(t.text);
    }
    if (t.kind == Token::Kind::Punct) {
      if (t.text == "(") {
        ExprPtr e = parse_expr();
        expect_punct(")");
        return e;
      }
      if (t.text == "!") return eunary(Expr::Op::Not, parse_primary());
    }
    throw ParseError("expected expression, got '" + t.text + "'", t.line);
  }

  Lexer lex_;
};

}  // namespace

Program parse_program(const std::string& source) {
  return Parser(source).parse();
}

}  // namespace semlock::synth
