#include "synth/ast.h"

namespace semlock::synth {

namespace {
std::string op_text(Expr::Op op) {
  switch (op) {
    case Expr::Op::Not: return "!";
    case Expr::Op::Eq: return "==";
    case Expr::Op::Ne: return "!=";
    case Expr::Op::Lt: return "<";
    case Expr::Op::Le: return "<=";
    case Expr::Op::Add: return "+";
    case Expr::Op::Sub: return "-";
    case Expr::Op::Mul: return "*";
    case Expr::Op::Mod: return "%";
    case Expr::Op::And: return "&&";
    case Expr::Op::Or: return "||";
  }
  return "?";
}
}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::Null:
      return "null";
    case Kind::Int:
      return std::to_string(literal);
    case Kind::Var:
      return var;
    case Kind::Unary:
      return op_text(op) + lhs->to_string();
    case Kind::Binary:
      return lhs->to_string() + op_text(op) + rhs->to_string();
  }
  return "?";
}

ExprPtr enull() {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Null;
  return e;
}

ExprPtr eint(commute::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Int;
  e->literal = v;
  return e;
}

ExprPtr evar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Var;
  e->var = std::move(name);
  return e;
}

ExprPtr eunary(Expr::Op op, ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = Expr::Kind::Unary;
  out->op = op;
  out->lhs = std::move(e);
  return out;
}

ExprPtr ebin(Expr::Op op, ExprPtr l, ExprPtr r) {
  auto out = std::make_shared<Expr>();
  out->kind = Expr::Kind::Binary;
  out->op = op;
  out->lhs = std::move(l);
  out->rhs = std::move(r);
  return out;
}

void collect_vars(const ExprPtr& e, std::vector<std::string>& out) {
  if (!e) return;
  switch (e->kind) {
    case Expr::Kind::Var:
      out.push_back(e->var);
      break;
    case Expr::Kind::Unary:
      collect_vars(e->lhs, out);
      break;
    case Expr::Kind::Binary:
      collect_vars(e->lhs, out);
      collect_vars(e->rhs, out);
      break;
    default:
      break;
  }
}

StmtPtr call(std::string lhs, std::string recv, std::string method,
             std::vector<ExprPtr> args) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Call;
  s->lhs = std::move(lhs);
  s->recv = std::move(recv);
  s->method = std::move(method);
  s->args = std::move(args);
  return s;
}

StmtPtr callv(std::string recv, std::string method,
              std::vector<ExprPtr> args) {
  return call("", std::move(recv), std::move(method), std::move(args));
}

StmtPtr assign(std::string lhs, ExprPtr rhs) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr make_new(std::string lhs, std::string adt_type) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::New;
  s->lhs = std::move(lhs);
  s->adt_type = std::move(adt_type);
  return s;
}

StmtPtr make_if(ExprPtr cond, Block then_block, Block else_block) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::If;
  s->cond = std::move(cond);
  s->then_block = std::move(then_block);
  s->else_block = std::move(else_block);
  return s;
}

StmtPtr make_while(ExprPtr cond, Block body) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::While;
  s->cond = std::move(cond);
  s->body = std::move(body);
  return s;
}

Block clone_block(const Block& b) {
  Block out;
  out.reserve(b.size());
  for (const auto& s : b) {
    auto copy = std::make_shared<Stmt>(*s);
    copy->then_block = clone_block(s->then_block);
    copy->else_block = clone_block(s->else_block);
    copy->body = clone_block(s->body);
    out.push_back(std::move(copy));
  }
  return out;
}

}  // namespace semlock::synth
