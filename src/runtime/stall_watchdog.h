// Background sampler that surfaces starved semantic-lock waiters.
//
// OS2PL never rolls back (Section 4): a transaction that waits on a mode
// waits until the conflicting holders release it, so a stuck holder turns
// into silent starvation rather than a timeout abort. The watchdog makes
// that visible: a background thread samples the WaitRegistry every
// `poll` interval and reports each wait that has exceeded `threshold` —
// (mode, partition, wait duration, and the per-conflicting-mode holder
// counts) — through a user callback, stderr by default.
//
// Holder counts require dereferencing the LockMechanism the waiter is
// blocked on, so the watchdog only inspects mechanisms explicitly registered
// via watch(); everything else is reported without holder detail. Watched
// mechanisms must outlive the watchdog (or be unwatch()ed first).
//
// Reports are diagnostics only — the watchdog never unparks, aborts, or
// otherwise perturbs the waiters it observes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/spinlock.h"

namespace semlock {
class LockMechanism;
}  // namespace semlock

namespace semlock::runtime {

// Stall reports emitted by EVERY watchdog instance since process start.
// Watchdogs are per-harness objects that come and go; a health endpoint
// (server/admin.h) needs the process-wide count after the instance that
// observed the stall is gone.
std::uint64_t global_stalls_reported() noexcept;

struct StallReport {
  const LockMechanism* mechanism = nullptr;  // null if not watch()ed
  int mode = -1;
  int partition = -1;
  std::uint64_t wait_ns = 0;
  // Wait accrued by this waiter across chained episodes: a waiter that
  // re-enters the wait loop under a different mode after a partial release
  // (new WaitScope, new seq, fresh start_ns) is still the same starved
  // waiter, so the watchdog chains temporally-adjacent episodes in the same
  // registry slot on the same mechanism and reports when the SUM crosses
  // the threshold. Equal to wait_ns for an unchained wait.
  std::uint64_t cumulative_wait_ns = 0;
  // (conflicting mode id, current holder count); empty when mechanism is
  // null. A stall with every holder count zero points at the mechanism's
  // internal lock or a wakeup bug rather than a long-held mode.
  std::vector<std::pair<int, std::uint32_t>> conflicting_holders;
  // Post-mortem from the observability layer (obs::stall_forensics): which
  // conflicting modes are held and by which transaction, plus the recent
  // trace events touching the stalled instance. Populated only when the
  // mechanism is watch()ed, built with SEMLOCK_OBS, and has trace_events on;
  // empty otherwise.
  std::string forensics;

  std::string to_string() const;
};

class StallWatchdog {
 public:
  struct Options {
    std::chrono::milliseconds poll{50};
    std::chrono::milliseconds threshold{250};
    // Minimum gap between two reports for the same ongoing wait, so a
    // permanently starved mode logs once per interval instead of once per
    // poll. Zero = report on every poll.
    std::chrono::milliseconds repeat_interval{1000};
  };

  using Callback = std::function<void(const StallReport&)>;

  // Default callback prints report.to_string() to stderr.
  explicit StallWatchdog(Options options, Callback callback = Callback{});
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;
  ~StallWatchdog();  // stops and joins

  // Registers a mechanism for holder-count introspection. Thread-safe.
  void watch(const LockMechanism& mechanism);
  void unwatch(const LockMechanism& mechanism);

  void start();
  void stop();
  bool running() const { return running_; }

  // Total stall reports emitted since construction.
  std::uint64_t stalls_reported() const {
    return stalls_reported_.load(std::memory_order_acquire);
  }

  // Starts a watchdog iff SEMLOCK_WATCHDOG_MS is set (value = threshold in
  // milliseconds; poll = threshold / 4, clamped to >= 1ms). Returns nullptr
  // otherwise. Benchmarks call this so starvation diagnosis is one
  // environment variable away.
  static std::unique_ptr<StallWatchdog> from_env(Callback callback = {});

  // Parsing half of from_env, split out for testability: "0" is an explicit
  // silent disable; malformed, negative, or overflowing text warns once on
  // stderr and disables (nullopt), never starts a misconfigured watchdog.
  static std::optional<std::chrono::milliseconds> parse_env_text(
      const char* text);

 private:
  void run();
  void sample();

  Options options_;
  Callback callback_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> stalls_reported_{0};
  std::thread thread_;

  mutable util::Spinlock watched_mutex_;
  std::vector<const LockMechanism*> watched_;

  // Per-slot waiter tracking. Keyed on the WAITER (slot + mechanism), not on
  // the episode's publication seq: a waiter that retries under a different
  // mode publishes a new seq with a fresh start_ns, and a seq-keyed dedup
  // would silently restart its stall clock every retry — the chronically
  // starved retrier is exactly the waiter forensics must not drop. Episodes
  // whose gap in the same slot on the same mechanism stays within a few
  // polls are chained; `accrued_ns` carries the completed episodes and the
  // repeat-interval rate limit applies to the waiter as a whole.
  struct WaiterTrack {
    std::uint64_t mechanism = 0;
    std::uint64_t seq = 0;
    std::uint64_t episode_start_ns = 0;
    std::uint64_t accrued_ns = 0;
    std::uint64_t last_seen_ns = 0;
    std::uint64_t reported_at_ns = 0;
  };
  std::vector<WaiterTrack> tracks_;
};

}  // namespace semlock::runtime
