// Futex-style parking, one slot per conflict partition.
//
// Lock partitioning (Section 5.2) already splits an ADT's locking modes into
// the connected components of the conflict graph; a mode release can only
// unblock waiters inside its own component. The ParkingLot exploits that: it
// keeps one cache-line-padded {generation, parked} pair per partition, and
// waiters block on std::atomic<uint32_t>::wait (a futex on Linux) against the
// generation they observed. `unpark_all` bumps the generation and notifies —
// but only when the parked count says someone is actually asleep, so the
// uncontended unlock path pays one fence and one relaxed load.
//
// No-lost-wakeup protocol (a Dekker-style store/fence/load handshake with the
// mode counters of the lock mechanism):
//
//   waiter                               unlocker
//   ------                               --------
//   gen = prepare(p)                     counter(mode)-- (release)
//   announce(p): parked++, SC fence      if that hold was the last one:
//   re-validate conflicts_clear:           unpark_all(p): SC fence,
//     clear  -> retract(p), retry            if parked != 0:
//     held   -> park(p, gen)                   generation++ (release)
//                                              generation.notify_all()
//
// Either the waiter's re-validation observes the decremented counter (it does
// not park), or the unlocker's parked-count load observes the announcement
// (it bumps and notifies, and the waiter's wait on the stale generation
// returns immediately). Both sides order their store before their load with a
// seq_cst fence, so the classic both-sides-miss interleaving is impossible.
// The unlocker may skip unpark_all entirely when its decrement left other
// holders of the same mode behind: a counter that stays nonzero cannot turn
// any waiter's conflicts_clear from false to true, and the decrement that
// eventually releases the last hold performs the full handshake.
// Wakeups are permission to re-validate, not permission to acquire: the lock
// mechanism re-checks conflicts_clear after every wake.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "dct/hooks.h"
#include "util/align.h"

namespace semlock::runtime {

class ParkingLot {
 public:
  explicit ParkingLot(int num_partitions)
      : slots_(new Slot[static_cast<std::size_t>(
            num_partitions > 0 ? num_partitions : 1)]) {}

  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  // The generation a prospective waiter must observe BEFORE re-validating
  // its wait predicate. Parking against this value cannot miss a wakeup
  // published after the re-validation.
  std::uint32_t prepare(int partition) const noexcept {
    SEMLOCK_DCT_POINT("park.prepare", &slot(partition));
    return slot(partition).generation.load(std::memory_order_acquire);
  }

  // Announces intent to park. Must precede the caller's predicate
  // re-validation; the fence orders the parked-count increment before the
  // predicate loads (the waiter half of the Dekker handshake).
  void announce(int partition) noexcept {
    SEMLOCK_DCT_POINT("park.announce", &slot(partition));
    slot(partition).parked.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // Withdraws an announcement without sleeping (re-validation found the
  // predicate already satisfied).
  void retract(int partition) noexcept {
    SEMLOCK_DCT_POINT("park.retract", &slot(partition));
    slot(partition).parked.fetch_sub(1, std::memory_order_relaxed);
  }

  // Blocks until the partition's generation moves past `observed` (or a
  // spurious futex return). Pairs with a prior announce(); the announcement
  // is consumed on return. Callers must re-validate their predicate after
  // waking.
  void park(int partition, std::uint32_t observed) noexcept {
    Slot& s = slot(partition);
#if defined(SEMLOCK_DCT)
    // Under the DCT scheduler the futex wait becomes a cooperative block on
    // "generation moved past `observed`" — a schedule where no unlocker
    // bumps it is an exact, detectable deadlock.
    if (::semlock::dct::scheduled()) {
      ::semlock::dct::futex_wait(s.generation, observed);
      s.parked.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
#endif
    s.generation.wait(observed, std::memory_order_acquire);
    s.parked.fetch_sub(1, std::memory_order_relaxed);
  }

  // Wakes every waiter parked on `partition`. The caller must have already
  // published the state change that waiters re-validate (e.g. the mode
  // counter decrement) with at least release ordering; the fence here is the
  // unlocker half of the Dekker handshake.
  void unpark_all(int partition) noexcept {
    SEMLOCK_DCT_POINT("park.unpark", &slot(partition));
    std::atomic_thread_fence(std::memory_order_seq_cst);
    Slot& s = slot(partition);
    SEMLOCK_DCT_POINT("park.unpark.scan", &s);
    if (s.parked.load(std::memory_order_relaxed) == 0) return;
    s.generation.fetch_add(1, std::memory_order_release);
    s.generation.notify_all();
  }

  // Observability for tests and the stall watchdog (approximate under
  // concurrency; exact when quiescent).
  std::uint32_t parked(int partition) const noexcept {
    return slot(partition).parked.load(std::memory_order_acquire);
  }
  std::uint32_t generation(int partition) const noexcept {
    return slot(partition).generation.load(std::memory_order_acquire);
  }

 private:
  // One cache line per partition: commuting mode families already avoid
  // sharing mechanism metadata; their wakeup state must not false-share
  // either.
  struct alignas(util::kCacheLineSize) Slot {
    std::atomic<std::uint32_t> generation{0};
    std::atomic<std::uint32_t> parked{0};
  };
  static_assert(sizeof(Slot) == util::kCacheLineSize);

  Slot& slot(int partition) noexcept {
    return slots_[static_cast<std::size_t>(partition)];
  }
  const Slot& slot(int partition) const noexcept {
    return slots_[static_cast<std::size_t>(partition)];
  }

  std::unique_ptr<Slot[]> slots_;
};

}  // namespace semlock::runtime
