// Futex-style parking, one slot per conflict partition.
//
// Lock partitioning (Section 5.2) already splits an ADT's locking modes into
// the connected components of the conflict graph; a mode release can only
// unblock waiters inside its own component. The ParkingLot exploits that: it
// keeps one cache-line-padded {generation, parked} pair per partition, and
// waiters block on std::atomic<uint32_t>::wait (a futex on Linux) against the
// generation they observed. `unpark_all` bumps the generation and notifies —
// but only when the parked count says someone is actually asleep, so the
// uncontended unlock path pays one fence and one relaxed load.
//
// No-lost-wakeup protocol (a Dekker-style store/fence/load handshake with the
// mode counters of the lock mechanism):
//
//   waiter                               unlocker
//   ------                               --------
//   gen = prepare(p)                     counter(mode)-- (release)
//   announce(p): parked++, SC fence      unpark_all(p): SC fence,
//   re-validate conflicts_clear:           if parked != 0:
//     clear  -> retract(p), retry            generation++ (release)
//     held   -> park(p, gen)                 generation.notify_all()
//
// Either the waiter's re-validation observes the decremented counter (it does
// not park), or the unlocker's parked-count load observes the announcement
// (it bumps and notifies, and the waiter's wait on the stale generation
// returns immediately). Both sides order their store before their load with a
// seq_cst fence, so the classic both-sides-miss interleaving is impossible.
// Wakeups are permission to re-validate, not permission to acquire: the lock
// mechanism re-checks conflicts_clear after every wake.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/align.h"

namespace semlock::runtime {

class ParkingLot {
 public:
  explicit ParkingLot(int num_partitions)
      : slots_(new Slot[static_cast<std::size_t>(
            num_partitions > 0 ? num_partitions : 1)]) {}

  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  // The generation a prospective waiter must observe BEFORE re-validating
  // its wait predicate. Parking against this value cannot miss a wakeup
  // published after the re-validation.
  std::uint32_t prepare(int partition) const noexcept {
    return slot(partition).generation.load(std::memory_order_acquire);
  }

  // Announces intent to park. Must precede the caller's predicate
  // re-validation; the fence orders the parked-count increment before the
  // predicate loads (the waiter half of the Dekker handshake).
  void announce(int partition) noexcept {
    slot(partition).parked.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  // Withdraws an announcement without sleeping (re-validation found the
  // predicate already satisfied).
  void retract(int partition) noexcept {
    slot(partition).parked.fetch_sub(1, std::memory_order_relaxed);
  }

  // Blocks until the partition's generation moves past `observed` (or a
  // spurious futex return). Pairs with a prior announce(); the announcement
  // is consumed on return. Callers must re-validate their predicate after
  // waking.
  void park(int partition, std::uint32_t observed) noexcept {
    slot(partition).generation.wait(observed, std::memory_order_acquire);
    slot(partition).parked.fetch_sub(1, std::memory_order_relaxed);
  }

  // Wakes every waiter parked on `partition`. The caller must have already
  // published the state change that waiters re-validate (e.g. the mode
  // counter decrement) with at least release ordering; the fence here is the
  // unlocker half of the Dekker handshake.
  void unpark_all(int partition) noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    Slot& s = slot(partition);
    if (s.parked.load(std::memory_order_relaxed) == 0) return;
    s.generation.fetch_add(1, std::memory_order_release);
    s.generation.notify_all();
  }

  // Observability for tests and the stall watchdog (approximate under
  // concurrency; exact when quiescent).
  std::uint32_t parked(int partition) const noexcept {
    return slot(partition).parked.load(std::memory_order_acquire);
  }
  std::uint32_t generation(int partition) const noexcept {
    return slot(partition).generation.load(std::memory_order_acquire);
  }

 private:
  // One cache line per partition: commuting mode families already avoid
  // sharing mechanism metadata; their wakeup state must not false-share
  // either.
  struct alignas(util::kCacheLineSize) Slot {
    std::atomic<std::uint32_t> generation{0};
    std::atomic<std::uint32_t> parked{0};
  };
  static_assert(sizeof(Slot) == util::kCacheLineSize);

  Slot& slot(int partition) noexcept {
    return slots_[static_cast<std::size_t>(partition)];
  }
  const Slot& slot(int partition) const noexcept {
    return slots_[static_cast<std::size_t>(partition)];
  }

  std::unique_ptr<Slot[]> slots_;
};

}  // namespace semlock::runtime
