#include "runtime/wait_registry.h"

#include <chrono>
#include <ctime>

namespace semlock::runtime {

WaitRegistry& WaitRegistry::instance() {
  static WaitRegistry registry;
  return registry;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

namespace {

// Claims a registry slot for the thread's lifetime; scanning happens once
// per thread, not per wait.
struct ThreadSlotOwner {
  WaitRegistry::Slot* slot = nullptr;

  ThreadSlotOwner() = default;
  ~ThreadSlotOwner() {
    if (slot) slot->claimed.store(false, std::memory_order_release);
  }
};

}  // namespace

WaitRegistry::Slot* WaitRegistry::thread_slot() {
  thread_local ThreadSlotOwner owner;
  thread_local bool attempted = false;
  if (!attempted) {
    attempted = true;
    for (int i = 0; i < kSlots; ++i) {
      bool expected = false;
      if (slots_[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        owner.slot = &slots_[i];
        break;
      }
    }
  }
  return owner.slot;
}

WaitScope::WaitScope(const void* mechanism, int mode, int partition)
    : slot_(WaitRegistry::instance().thread_slot()) {
  if (!slot_) return;
  const std::uint64_t seq = slot_->seq.load(std::memory_order_relaxed);
  slot_->seq.store(seq + 1, std::memory_order_relaxed);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  slot_->mechanism.store(reinterpret_cast<std::uintptr_t>(mechanism),
                         std::memory_order_relaxed);
  slot_->mode.store(mode, std::memory_order_relaxed);
  slot_->partition.store(partition, std::memory_order_relaxed);
  slot_->start_ns.store(steady_now_ns(), std::memory_order_relaxed);
  slot_->seq.store(seq + 2, std::memory_order_release);  // even: published
}

WaitScope::~WaitScope() {
  if (!slot_) return;
  const std::uint64_t seq = slot_->seq.load(std::memory_order_relaxed);
  slot_->seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot_->mechanism.store(0, std::memory_order_relaxed);
  slot_->seq.store(seq + 2, std::memory_order_release);
}

}  // namespace semlock::runtime
