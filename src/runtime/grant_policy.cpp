#include "runtime/grant_policy.h"

#include <atomic>
#include <cstdlib>

#include "util/env.h"

namespace semlock::runtime {

namespace {

// -1 = no ambient override installed; otherwise the GrantPolicyKind value.
std::atomic<int> g_ambient_policy{-1};

GrantPolicyKind env_grant_policy() {
  static const GrantPolicyKind cached =
      grant_policy_from_env_text(std::getenv("SEMLOCK_GRANT_POLICY"));
  return cached;
}

std::uint32_t env_bypass_bound() {
  static const std::uint32_t cached =
      bypass_bound_from_env_text(std::getenv("SEMLOCK_BYPASS_BOUND"));
  return cached;
}

}  // namespace

GrantPolicyKind grant_policy_from_env_text(const char* text) {
  if (text == nullptr) return GrantPolicyKind::Free;
  if (const auto parsed = parse_grant_policy(text)) return *parsed;
  util::warn_invalid_env("SEMLOCK_GRANT_POLICY", text, "free");
  return GrantPolicyKind::Free;
}

const char* grant_policy_name(GrantPolicyKind kind) {
  switch (kind) {
    case GrantPolicyKind::Free:
      return "free";
    case GrantPolicyKind::Fifo:
      return "fifo";
    case GrantPolicyKind::PhaseFair:
      return "phase-fair";
    case GrantPolicyKind::BoundedBypass:
      return "bounded-bypass";
  }
  return "unknown";
}

std::optional<GrantPolicyKind> parse_grant_policy(std::string_view text) {
  if (text == "free") return GrantPolicyKind::Free;
  if (text == "fifo" || text == "ticket") return GrantPolicyKind::Fifo;
  if (text == "phase-fair" || text == "phasefair" || text == "pf") {
    return GrantPolicyKind::PhaseFair;
  }
  if (text == "bounded-bypass" || text == "boundedbypass" ||
      text == "bounded" || text == "bypass" || text == "bb") {
    return GrantPolicyKind::BoundedBypass;
  }
  return std::nullopt;
}

GrantPolicyKind default_grant_policy() {
  const int ambient = g_ambient_policy.load(std::memory_order_relaxed);
  if (ambient >= 0) return static_cast<GrantPolicyKind>(ambient);
  return env_grant_policy();
}

void set_ambient_grant_policy(std::optional<GrantPolicyKind> kind) {
  g_ambient_policy.store(kind ? static_cast<int>(*kind) : -1,
                         std::memory_order_relaxed);
}

ScopedGrantPolicy::ScopedGrantPolicy(GrantPolicyKind kind) {
  const int prev = g_ambient_policy.load(std::memory_order_relaxed);
  previous_ = prev >= 0 ? std::optional<GrantPolicyKind>(
                              static_cast<GrantPolicyKind>(prev))
                        : std::nullopt;
  set_ambient_grant_policy(kind);
}

ScopedGrantPolicy::~ScopedGrantPolicy() {
  set_ambient_grant_policy(previous_);
}

std::uint32_t bypass_bound_from_env_text(const char* text) {
  if (text == nullptr) return kDefaultBypassBound;
  const auto parsed = util::env_int_in_range("SEMLOCK_BYPASS_BOUND", text, 1,
                                             1 << 20, "16");
  return parsed ? static_cast<std::uint32_t>(*parsed) : kDefaultBypassBound;
}

std::uint32_t default_bypass_bound() { return env_bypass_bound(); }

}  // namespace semlock::runtime
