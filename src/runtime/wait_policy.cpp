#include "runtime/wait_policy.h"

#include <atomic>
#include <cstdlib>

#include "util/env.h"

namespace semlock::runtime {

namespace {

// -1 = no ambient override installed; otherwise the WaitPolicyKind value.
std::atomic<int> g_ambient_policy{-1};

WaitPolicyKind env_wait_policy() {
  static const WaitPolicyKind cached =
      wait_policy_from_env_text(std::getenv("SEMLOCK_WAIT_POLICY"));
  return cached;
}

}  // namespace

WaitPolicyKind wait_policy_from_env_text(const char* text) {
  if (text == nullptr) return WaitPolicyKind::SpinYield;
  if (const auto parsed = parse_wait_policy(text)) return *parsed;
  util::warn_invalid_env("SEMLOCK_WAIT_POLICY", text, "spin-yield");
  return WaitPolicyKind::SpinYield;
}

const char* wait_policy_name(WaitPolicyKind kind) {
  switch (kind) {
    case WaitPolicyKind::SpinYield:
      return "spin-yield";
    case WaitPolicyKind::SpinThenPark:
      return "spin-then-park";
    case WaitPolicyKind::AlwaysPark:
      return "always-park";
    case WaitPolicyKind::FutexWord:
      return "futex-word";
  }
  return "unknown";
}

std::optional<WaitPolicyKind> parse_wait_policy(std::string_view text) {
  if (text == "spin-yield" || text == "spin" || text == "spinyield") {
    return WaitPolicyKind::SpinYield;
  }
  if (text == "spin-then-park" || text == "adaptive" ||
      text == "spinthenpark") {
    return WaitPolicyKind::SpinThenPark;
  }
  if (text == "always-park" || text == "park" || text == "alwayspark") {
    return WaitPolicyKind::AlwaysPark;
  }
  if (text == "futex-word" || text == "futex" || text == "futexword") {
    return WaitPolicyKind::FutexWord;
  }
  return std::nullopt;
}

WaitPolicyKind default_wait_policy() {
  const int ambient = g_ambient_policy.load(std::memory_order_relaxed);
  if (ambient >= 0) return static_cast<WaitPolicyKind>(ambient);
  return env_wait_policy();
}

void set_ambient_wait_policy(std::optional<WaitPolicyKind> kind) {
  g_ambient_policy.store(kind ? static_cast<int>(*kind) : -1,
                         std::memory_order_relaxed);
}

ScopedWaitPolicy::ScopedWaitPolicy(WaitPolicyKind kind) {
  const int prev = g_ambient_policy.load(std::memory_order_relaxed);
  previous_ = prev >= 0 ? std::optional<WaitPolicyKind>(
                              static_cast<WaitPolicyKind>(prev))
                        : std::nullopt;
  set_ambient_wait_policy(kind);
}

ScopedWaitPolicy::~ScopedWaitPolicy() { set_ambient_wait_policy(previous_); }

}  // namespace semlock::runtime
