#include "runtime/stall_watchdog.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "runtime/wait_registry.h"
#include "semlock/lock_mechanism.h"
#include "util/env.h"

#if defined(SEMLOCK_OBS)
#include "obs/trace.h"
#include "obs/waitgraph.h"
#endif

namespace semlock::runtime {

namespace {
std::atomic<std::uint64_t> g_stalls_reported{0};
}  // namespace

std::uint64_t global_stalls_reported() noexcept {
  return g_stalls_reported.load(std::memory_order_relaxed);
}

std::string StallReport::to_string() const {
  std::string out = "[semlock-watchdog] mode " + std::to_string(mode) +
                    " (partition " + std::to_string(partition) +
                    ") waiting " +
                    std::to_string(wait_ns / 1'000'000) + " ms";
  if (cumulative_wait_ns > wait_ns) {
    out += " (" + std::to_string(cumulative_wait_ns / 1'000'000) +
           " ms across retried episodes)";
  }
  if (mechanism == nullptr) {
    out += " (mechanism not watched; no holder detail)";
    return out;
  }
  out += "; conflicting holders:";
  if (conflicting_holders.empty()) out += " none";
  for (const auto& [m, holders] : conflicting_holders) {
    out += " l" + std::to_string(m) + "=" + std::to_string(holders);
  }
  if (!forensics.empty()) {
    out += '\n';
    out += forensics;
  }
  return out;
}

StallWatchdog::StallWatchdog(Options options, Callback callback)
    : options_(options),
      callback_(std::move(callback)),
      tracks_(WaitRegistry::kSlots) {
  if (!callback_) {
    callback_ = [](const StallReport& report) {
      std::fprintf(stderr, "%s\n", report.to_string().c_str());
    };
  }
}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::watch(const LockMechanism& mechanism) {
  watched_mutex_.lock();
  if (std::find(watched_.begin(), watched_.end(), &mechanism) ==
      watched_.end()) {
    watched_.push_back(&mechanism);
  }
  watched_mutex_.unlock();
}

void StallWatchdog::unwatch(const LockMechanism& mechanism) {
  watched_mutex_.lock();
  watched_.erase(std::remove(watched_.begin(), watched_.end(), &mechanism),
                 watched_.end());
  watched_mutex_.unlock();
}

void StallWatchdog::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void StallWatchdog::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void StallWatchdog::run() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    sample();
    // Sleep in small steps so stop() stays responsive under long polls.
    auto remaining = options_.poll;
    constexpr auto kStep = std::chrono::milliseconds(10);
    while (remaining.count() > 0 &&
           !stop_requested_.load(std::memory_order_acquire)) {
      const auto nap = remaining < kStep ? remaining : kStep;
      std::this_thread::sleep_for(nap);
      remaining -= nap;
    }
  }
}

void StallWatchdog::sample() {
  const std::uint64_t now = steady_now_ns();
  const std::uint64_t threshold_ns =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              options_.threshold)
              .count());
  const std::uint64_t repeat_ns =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              options_.repeat_interval)
              .count());

  // Chain gap: a retrying waiter re-registers within a couple of polls; a
  // slot reused by an unrelated wait after sitting idle longer than this
  // starts a fresh track. Generous (4 polls) because an episode can start
  // and end entirely between two samples.
  const std::uint64_t chain_gap_ns =
      4 * static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  options_.poll)
                  .count());

  WaitRegistry::instance().for_each_active(
      [&](const WaitRegistry::ActiveWait& wait) {
        WaiterTrack& track =
            tracks_[static_cast<std::size_t>(wait.slot_index)];
        if (track.seq != wait.seq || track.mechanism != wait.mechanism) {
          // New episode in this slot. Same mechanism and a small gap since
          // the waiter was last seen = the same waiter retrying (possibly
          // under a different mode after a partial release): carry its
          // accrued wait forward. Anything else is a new waiter.
          if (track.mechanism == wait.mechanism && track.last_seen_ns > 0 &&
              track.last_seen_ns + chain_gap_ns > now) {
            if (track.last_seen_ns > track.episode_start_ns) {
              track.accrued_ns += track.last_seen_ns - track.episode_start_ns;
            }
          } else {
            track.accrued_ns = 0;
            track.reported_at_ns = 0;
          }
          track.mechanism = wait.mechanism;
          track.seq = wait.seq;
          track.episode_start_ns = wait.start_ns;
        }
        track.last_seen_ns = now;
        const std::uint64_t cumulative =
            track.accrued_ns + (now - wait.start_ns);
        if (cumulative < threshold_ns) return;
        if (repeat_ns > 0 && track.reported_at_ns != 0 &&
            track.reported_at_ns + repeat_ns > now) {
          return;  // this waiter was reported recently
        }

        StallReport report;
        report.mode = wait.mode;
        report.partition = wait.partition;
        report.wait_ns = now - wait.start_ns;
        report.cumulative_wait_ns = cumulative;

        watched_mutex_.lock();
        for (const LockMechanism* m : watched_) {
          if (reinterpret_cast<std::uintptr_t>(m) == wait.mechanism) {
            report.mechanism = m;
            break;
          }
        }
        if (report.mechanism != nullptr) {
          for (const std::int32_t other :
               report.mechanism->table().conflicts_of(wait.mode)) {
            report.conflicting_holders.emplace_back(
                other, report.mechanism->holders(other));
          }
        }
        watched_mutex_.unlock();

#if defined(SEMLOCK_OBS)
        if (report.mechanism != nullptr && report.mechanism->traced()) {
          // Leave a marker in the trace stream and attach the forensic dump:
          // held modes with the transaction that last acquired them, plus
          // the tail of the per-thread rings filtered to this instance.
          obs::emit(obs::EventType::kWatchdogStall, report.mechanism,
                    wait.mode);
          report.forensics = obs::stall_forensics(
              report.mechanism, wait.mode, report.conflicting_holders);
          // The full blocker chain (txn -> txn -> ...) from the live
          // wait-for graph, not just the immediate holder — when the stall
          // is transitive (A waits on B waits on C), the root cause is the
          // end of the chain.
          const std::string chain =
              obs::waitgraph_chain(report.mechanism, wait.mode);
          if (!chain.empty()) report.forensics += "  " + chain;
        }
#endif

        track.reported_at_ns = now;
        stalls_reported_.fetch_add(1, std::memory_order_acq_rel);
        g_stalls_reported.fetch_add(1, std::memory_order_relaxed);
        callback_(report);
      });
}

std::optional<std::chrono::milliseconds> StallWatchdog::parse_env_text(
    const char* text) {
  if (text == nullptr) return std::nullopt;
  // Cap at ~1 year: bigger values are always typos and would overflow the
  // nanosecond math in sample().
  constexpr long long kMaxMs = 1'000LL * 60 * 60 * 24 * 365;
  const std::optional<long long> ms = util::env_int_in_range(
      "SEMLOCK_WATCHDOG_MS", text, 0, kMaxMs, "watchdog disabled");
  if (!ms || *ms == 0) return std::nullopt;  // 0 = explicit silent disable
  return std::chrono::milliseconds(*ms);
}

std::unique_ptr<StallWatchdog> StallWatchdog::from_env(Callback callback) {
  const std::optional<std::chrono::milliseconds> threshold =
      parse_env_text(std::getenv("SEMLOCK_WATCHDOG_MS"));
  if (!threshold) return nullptr;
  Options options;
  options.threshold = *threshold;
  options.poll = std::max(std::chrono::milliseconds(1), *threshold / 4);
  auto watchdog =
      std::make_unique<StallWatchdog>(options, std::move(callback));
  watchdog->start();
  return watchdog;
}

}  // namespace semlock::runtime
