// Pluggable grant policies for the semantic-lock runtime.
//
// The wait policies (wait_policy.h) say HOW a blocked transaction waits; the
// grant policy says WHO gets the lock next. The default — Free — is the
// historical behavior: any arrival whose conflicting counters are clear
// acquires immediately, including the lock-free optimistic tier. That
// maximizes throughput but has a real liveness hole: a sustained stream of
// mutually-commuting arrivals (e.g. readers of a self-commuting mode) keeps
// the conflicting counters nonzero forever, and a non-commuting waiter is
// bypassed indefinitely. The StallWatchdog only *reports* that starvation;
// these policies bound it:
//
//   Free          — no admission control. The compatibility baseline; the
//                   mechanism's fast paths are byte-for-byte the PR 3 code.
//   Fifo          — strict ticket handoff: once anyone waits, every new
//                   arrival (including the optimistic tier, which checks the
//                   partition's barrier word before announcing) is diverted
//                   to the wait queue and grants happen in arrival order.
//                   Strongest fairness, pays head-of-line blocking: a
//                   commuting flood behind one conflicting waiter serializes
//                   through the ticket cursor.
//   PhaseFair     — phase-fair handoff (Brandenburg/Anderson-style): while
//                   waiters exist the fast path stays barred, and the queue
//                   drains in phases — every waiter present at phase start
//                   is granted (commuting ones overlap freely) before the
//                   tickets taken after the phase began get their turn.
//                   Alternates commuting batches and conflicting waiters
//                   without serializing the commuting batch.
//   BoundedBypass — the throughput/fairness dial: commuting arrivals may
//                   bypass the oldest waiter at most K times
//                   (SEMLOCK_BYPASS_BOUND); the K-th bypass raises the
//                   barrier and new arrivals divert to the queue until that
//                   waiter is granted, which resets the budget.
//
// Selection mirrors the wait policies: per ModeTable via
// ModeTableConfig::grant_policy, defaulting to the ambient override
// (ScopedGrantPolicy) else the strictly-parsed SEMLOCK_GRANT_POLICY
// environment variable, else Free. The bypass bound comes from
// ModeTableConfig::bypass_bound / SEMLOCK_BYPASS_BOUND.
//
// The DCT no-starvation oracle counts true overtakes only — grants to
// later arrivals while a waiter is queued; a FIFO queue draining in arrival
// order charges nothing. The certified bound adds an O(T) in-flight
// allowance on top of the policy's budget: every other thread may slip one
// doorway grant in (it passed its barrier check just before the barrier
// rose) and one ticket/registration-reorder grant; PHASE_FAIR may reorder
// a waiter behind later-ticketed peers of its own phase; and BOUNDED_BYPASS
// refills its K budget for each successive queue head, so K scales by the
// queue depth (at most T). FIFO/PHASE_FAIR certify 3x(T-1) and
// BOUNDED_BYPASS certifies KxT + 2x(T-1) (tests/dct_mutation_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace semlock::runtime {

enum class GrantPolicyKind {
  Free,
  Fifo,
  PhaseFair,
  BoundedBypass,
};

// Short stable name ("free", "fifo", "phase-fair", "bounded-bypass") used by
// benchmark tables, JSON output, and the environment knob.
const char* grant_policy_name(GrantPolicyKind kind);

// Accepts the canonical names plus the shorthands "phasefair", "pf",
// "bounded", "bypass", "bb". Returns nullopt for anything else.
std::optional<GrantPolicyKind> parse_grant_policy(std::string_view text);

// Resolves SEMLOCK_GRANT_POLICY text: recognized names parse as above;
// anything else (typos, empty) warns once on stderr and falls back to Free.
// Split out from the cached env lookup for testability.
GrantPolicyKind grant_policy_from_env_text(const char* text);

// Process-wide default policy: the ambient override if one is installed,
// else SEMLOCK_GRANT_POLICY (parsed once), else Free.
GrantPolicyKind default_grant_policy();

// Installs/clears the ambient override consulted by default_grant_policy().
// Passing nullopt restores the environment-derived default.
void set_ambient_grant_policy(std::optional<GrantPolicyKind> kind);

// RAII ambient override: every ModeTableConfig constructed inside the scope
// defaults to `kind`. Used by bench_fairness to sweep policies.
class ScopedGrantPolicy {
 public:
  explicit ScopedGrantPolicy(GrantPolicyKind kind);
  ScopedGrantPolicy(const ScopedGrantPolicy&) = delete;
  ScopedGrantPolicy& operator=(const ScopedGrantPolicy&) = delete;
  ~ScopedGrantPolicy();

 private:
  std::optional<GrantPolicyKind> previous_;
};

// BoundedBypass budget K. Range 1..2^20; the strict-parse contract of
// util/env applies (malformed SEMLOCK_BYPASS_BOUND warns once on stderr and
// falls back to the default of 16).
inline constexpr std::uint32_t kDefaultBypassBound = 16;
std::uint32_t bypass_bound_from_env_text(const char* text);
std::uint32_t default_bypass_bound();

}  // namespace semlock::runtime
