// Process-wide registry of in-flight lock waits, feeding the StallWatchdog.
//
// Every thread that enters the contended path of the lock mechanism claims a
// thread-local slot (released at thread exit) and publishes
// {mechanism, mode, partition, wait-start} for the duration of the wait. The
// watchdog samples the table from its own thread; a per-slot sequence number
// (seqlock discipline, but with every field atomic so the scheme is
// data-race-free under TSan) lets it skip slots caught mid-update.
//
// Publication is best-effort diagnostics: if more threads than kSlots wait
// simultaneously, the overflow waiters simply go unobserved — the lock
// mechanism itself never depends on the registry.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/align.h"

namespace semlock::runtime {

class WaitRegistry {
 public:
  static constexpr int kSlots = 512;

  struct alignas(util::kCacheLineSize) Slot {
    // Even = stable, odd = being written. Readers validate that the value
    // is even and unchanged around their field reads.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uintptr_t> mechanism{0};  // 0 = slot idle
    std::atomic<std::int32_t> mode{-1};
    std::atomic<std::int32_t> partition{-1};
    std::atomic<std::uint64_t> start_ns{0};  // steady_clock, ns since epoch
    std::atomic<bool> claimed{false};
  };

  static WaitRegistry& instance();

  // The calling thread's claimed slot, or nullptr if all kSlots are taken.
  Slot* thread_slot();

  // A consistent snapshot of one active wait.
  struct ActiveWait {
    std::uintptr_t mechanism;
    std::int32_t mode;
    std::int32_t partition;
    std::uint64_t start_ns;
    int slot_index;
    std::uint64_t seq;  // publication id: (slot, seq) names one wait episode
  };

  // Invokes `fn(const ActiveWait&)` for every slot publishing a wait that is
  // consistent at sampling time.
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    for (int i = 0; i < kSlots; ++i) {
      const Slot& s = slots_[i];
      const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 & 1) continue;
      ActiveWait w;
      w.mechanism = s.mechanism.load(std::memory_order_relaxed);
      w.mode = s.mode.load(std::memory_order_relaxed);
      w.partition = s.partition.load(std::memory_order_relaxed);
      w.start_ns = s.start_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq1) continue;
      if (w.mechanism == 0) continue;
      w.slot_index = i;
      w.seq = seq1;
      fn(static_cast<const ActiveWait&>(w));
    }
  }

 private:
  WaitRegistry() = default;
  Slot slots_[kSlots];
};

// Steady-clock nanoseconds, shared by publication and sampling.
std::uint64_t steady_now_ns();

// CPU nanoseconds charged to the calling thread (CLOCK_THREAD_CPUTIME_ID).
// The waiting subsystem's key observable: a spinning waiter accumulates
// thread CPU for its entire wait, a parked waiter only around the futex
// calls.
std::uint64_t thread_cpu_now_ns();

// RAII publication of one wait episode. Constructed on entry to the
// contended lock path, destroyed on acquisition. Null-slot safe.
class WaitScope {
 public:
  WaitScope(const void* mechanism, int mode, int partition);
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;
  ~WaitScope();

 private:
  WaitRegistry::Slot* slot_;
};

}  // namespace semlock::runtime
