// Pluggable waiting strategies for the semantic-lock runtime.
//
// The Fig. 20 mechanism originally waited by pure spin-then-yield, which
// burns a core per blocked transaction and collapses when the benchmark
// oversubscribes the machine. This header names the three strategies the
// runtime supports and the per-acquisition state machine that drives them:
//
//   SpinYield    — the historical behavior: exponential-backoff spinning that
//                  escalates to sched_yield. Never sleeps; lowest wakeup
//                  latency, highest CPU burn. Kept as the default so existing
//                  configurations are bit-for-bit compatible.
//   SpinThenPark — bounded adaptive spin (cheap when the conflicting holder
//                  leaves quickly), then futex-style parking on the
//                  partition's ParkingLot. The production default candidate.
//   AlwaysPark   — park immediately on the first failed attempt. Best CPU
//                  economy under heavy oversubscription; used by the
//                  no-lost-wakeup stress tests because it maximizes the
//                  park/notify interleavings.
//   FutexWord    — bounded spin, then sleep DIRECTLY on the packed lock
//                  word via C++20 std::atomic::wait/notify, bypassing the
//                  external ParkingLot (docs/FAST_PATH.md §7). Only the
//                  Packed storage policy has a single word to sleep on;
//                  mechanisms with flat/striped storage silently degrade
//                  this policy to SpinThenPark.
//
// Selection is per ModeTable (ModeTableConfig::wait_policy). The process-wide
// default honors the SEMLOCK_WAIT_POLICY environment variable and an ambient
// override (ScopedWaitPolicy) that the benchmark harness uses to sweep
// policies without rebuilding every module's config plumbing.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/spinlock.h"

namespace semlock::runtime {

enum class WaitPolicyKind {
  SpinYield,
  SpinThenPark,
  AlwaysPark,
  FutexWord,
};

// Short stable name ("spin-yield", "spin-then-park", "always-park",
// "futex-word") used by benchmark tables, JSON output, and the environment
// knob.
const char* wait_policy_name(WaitPolicyKind kind);

// Accepts the canonical names plus the shorthands "spin", "adaptive",
// "park" and "futex". Returns nullopt for anything else.
std::optional<WaitPolicyKind> parse_wait_policy(std::string_view text);

// Resolves SEMLOCK_WAIT_POLICY text: recognized names parse as above;
// anything else (typos, empty) warns once on stderr and falls back to
// SpinYield. Split out from the cached env lookup for testability.
WaitPolicyKind wait_policy_from_env_text(const char* text);

// Process-wide default policy: the ambient override if one is installed,
// else SEMLOCK_WAIT_POLICY (parsed once), else SpinYield.
WaitPolicyKind default_wait_policy();

// Installs/clears the ambient override consulted by default_wait_policy().
// Passing nullopt restores the environment-derived default.
void set_ambient_wait_policy(std::optional<WaitPolicyKind> kind);

// RAII ambient override: every ModeTableConfig constructed inside the scope
// defaults to `kind`. Used by the harness to sweep policies.
class ScopedWaitPolicy {
 public:
  explicit ScopedWaitPolicy(WaitPolicyKind kind);
  ScopedWaitPolicy(const ScopedWaitPolicy&) = delete;
  ScopedWaitPolicy& operator=(const ScopedWaitPolicy&) = delete;
  ~ScopedWaitPolicy();

 private:
  std::optional<WaitPolicyKind> previous_;
};

// Per-acquisition wait driver. Each failed acquisition attempt calls
// step(): the policy either performs one unit of spinning/yielding and
// returns false, or returns true to tell the caller to park on the
// ParkingLot. Once a SpinThenPark waiter exhausts its spin budget it keeps
// parking for the rest of the acquisition (re-spinning after every wakeup
// would re-burn the budget against the same long-held conflict).
class WaitState {
 public:
  WaitState(WaitPolicyKind kind, std::uint32_t spin_limit)
      : kind_(kind), spins_left_(spin_limit) {}

  bool step() noexcept {
    switch (kind_) {
      case WaitPolicyKind::SpinYield:
        backoff_.pause();
        return false;
      case WaitPolicyKind::SpinThenPark:
      case WaitPolicyKind::FutexWord:
        // FutexWord spins the same bounded budget; only WHERE the waiter
        // then sleeps differs (on the packed word instead of the
        // ParkingLot), and that is the mechanism's call, not this driver's.
        if (spins_left_ > 0) {
          --spins_left_;
          backoff_.pause();
          return false;
        }
        return true;
      case WaitPolicyKind::AlwaysPark:
        return true;
    }
    return false;  // unreachable
  }

 private:
  WaitPolicyKind kind_;
  std::uint32_t spins_left_;
  util::Backoff backoff_;
};

}  // namespace semlock::runtime
