// The GossipRouter benchmark (Section 6.2, Fig. 25): a routing server in the
// style of JGroups' GossipRouter. The main shared state is a routing table —
// a Map from group name to a per-group membership Map (address -> sink), an
// unbounded number of Map ADT instances.
//
// Atomic sections:
//   register(group, addr):   gm = table.get(group);
//                            if (gm == null) { gm = new; table.put(group, gm); }
//                            gm.put(addr, sink);
//   unregister(group, addr): gm = table.get(group); if (gm != null) gm.remove(addr);
//   route(group, msg):       gm = table.get(group);
//                            if (gm != null) foreach member: send(msg);
//
// The sends are I/O treated as thread-local operations (Section 6.2): here
// each simulated client connection accumulates a checksum, standing in for a
// socket write. Because semantic locking never rolls back, the irrevocable
// send can live inside the atomic section.
//
// Workload of Fig. 25: MPerf with 16 clients x 5000 messages each. The paper
// varies active cores; this reproduction varies worker threads (documented
// in EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "apps/compute_if_absent.h"  // Strategy enum
#include "commute/value.h"

namespace semlock::apps {

struct GossipParams {
  int num_clients = 16;        // members per group
  std::size_t num_groups = 8;  // groups in the routing table
  int abstract_values = 64;
};

class GossipRouter {
 public:
  virtual ~GossipRouter() = default;
  virtual void register_member(commute::Value group, commute::Value addr) = 0;
  virtual void unregister_member(commute::Value group,
                                 commute::Value addr) = 0;
  // Routes `msg` to every member of `group`; returns the number of sends.
  virtual std::size_t route(commute::Value group, std::int64_t msg) = 0;
  // Total bytes "sent" across all connections (validation).
  virtual std::uint64_t total_sends() const = 0;
};

std::unique_ptr<GossipRouter> make_gossip_router(Strategy strategy,
                                                 const GossipParams& params);

}  // namespace semlock::apps
