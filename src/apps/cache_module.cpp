#include "apps/cache_module.h"

#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "adt/striped_hash_map.h"
#include "baseline/global_lock.h"
#include "baseline/two_pl.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"
#include "util/align.h"

namespace semlock::apps {

namespace {

using commute::Value;

// --- Ours ------------------------------------------------------------------
//
// Lock sites (refined symbolic sets inferred for the two atomic sections):
//   eden     site 0: {get(k), put(k,*)}        (Get)
//   eden     site 1: {size(), clear(), put(k,*)}  (Put)
//   longterm site 0: {get(k)}                  (Get)
//   longterm site 1: {putAll()}                (Put)
// Mode-table structure that falls out: eden's Put modes all conflict with
// everything (size/clear), so the indistinguishable-mode merge collapses
// them into one writer mode; Get modes stripe by phi(k).
class CacheOurs final : public CacheModule {
 public:
  explicit CacheOurs(const CacheParams& params)
      : params_(params),
        eden_table_(ModeTable::compile(
            commute::map_spec(),
            {commute::SymbolicSet(
                 {commute::op("get", {commute::var("k")}),
                  commute::op("put", {commute::var("k"), commute::star()})}),
             commute::SymbolicSet(
                 {commute::op("size"), commute::op("clear"),
                  commute::op("put", {commute::var("k"), commute::star()})})},
            ModeTableConfig{.abstract_values = params.abstract_values})),
        longterm_table_(ModeTable::compile(
            commute::weakmap_spec(),
            {commute::SymbolicSet({commute::op("get", {commute::var("k")})}),
             commute::SymbolicSet({commute::op("putAll")})},
            ModeTableConfig{.abstract_values = params.abstract_values})),
        eden_lock_(eden_table_),
        longterm_lock_(longterm_table_),
        eden_(/*num_stripes=*/256),
        longterm_(/*num_stripes=*/256) {}

  std::optional<Value> get(Value key) override {
    const Value vals[1] = {key};
    const int em = eden_lock_.lock_site(0, vals);
    const int lm = longterm_lock_.lock_site(0, vals);
    std::optional<Value> v = eden_.get(key);
    if (!v) {
      v = longterm_.get(key);
      if (v) eden_.put(key, *v);
    }
    longterm_lock_.unlock(lm);
    eden_lock_.unlock(em);
    return v;
  }

  void put(Value key, Value value) override {
    const Value vals[1] = {key};
    const int em = eden_lock_.lock_site(1, vals);
    const int lm = longterm_lock_.lock_site(1, {});
    if (eden_.size() >= params_.size) {
      eden_.for_each([&](const Value& k, const Value& v) {
        longterm_.put(k, v);
      });
      eden_.clear();
    }
    eden_.put(key, value);
    longterm_lock_.unlock(lm);
    eden_lock_.unlock(em);
  }

 private:
  CacheParams params_;
  ModeTable eden_table_;
  ModeTable longterm_table_;
  SemanticLock eden_lock_;
  SemanticLock longterm_lock_;
  adt::StripedHashMap<Value, Value> eden_;
  adt::StripedHashMap<Value, Value> longterm_;
};

// --- Global ------------------------------------------------------------------
class CacheGlobal final : public CacheModule {
 public:
  explicit CacheGlobal(const CacheParams& params) : params_(params) {}

  std::optional<Value> get(Value key) override {
    baseline::GlobalSection g(global_);
    return get_impl(key);
  }
  void put(Value key, Value value) override {
    baseline::GlobalSection g(global_);
    put_impl(key, value);
  }

 private:
  std::optional<Value> get_impl(Value key) {
    auto it = eden_.find(key);
    if (it != eden_.end()) return it->second;
    auto lt = longterm_.find(key);
    if (lt == longterm_.end()) return std::nullopt;
    eden_.emplace(key, lt->second);
    return lt->second;
  }
  void put_impl(Value key, Value value) {
    if (eden_.size() >= params_.size) {
      longterm_.insert(eden_.begin(), eden_.end());
      eden_.clear();
    }
    eden_[key] = value;
  }

  CacheParams params_;
  baseline::GlobalLock global_;
  std::unordered_map<Value, Value> eden_;
  std::unordered_map<Value, Value> longterm_;
};

// --- 2PL ---------------------------------------------------------------------
class CacheTwoPL final : public CacheModule {
 public:
  explicit CacheTwoPL(const CacheParams& params) : params_(params) {}

  std::optional<Value> get(Value key) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&eden_lock_);  // order: eden < longterm, as synthesized
    txn.acquire(&longterm_lock_);
    auto it = eden_.find(key);
    if (it != eden_.end()) return it->second;
    auto lt = longterm_.find(key);
    if (lt == longterm_.end()) return std::nullopt;
    eden_.emplace(key, lt->second);
    return lt->second;
  }
  void put(Value key, Value value) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&eden_lock_);
    txn.acquire(&longterm_lock_);
    if (eden_.size() >= params_.size) {
      longterm_.insert(eden_.begin(), eden_.end());
      eden_.clear();
    }
    eden_[key] = value;
  }

 private:
  CacheParams params_;
  baseline::InstanceLock eden_lock_;
  baseline::InstanceLock longterm_lock_;
  std::unordered_map<Value, Value> eden_;
  std::unordered_map<Value, Value> longterm_;
};

// --- Manual ------------------------------------------------------------------
// Hand-crafted readers/writer-plus-striping scheme: Gets take a per-key
// stripe lock in shared fashion (stripe spinlock) plus a shared "no demotion
// in progress" gate; Put normally takes only its stripe; an overflowing Put
// takes the writer gate exclusively. This mirrors what a careful engineer
// would write for the Tomcat cache.
class CacheManual final : public CacheModule {
 public:
  explicit CacheManual(const CacheParams& params)
      : params_(params),
        stripes_(kStripes),
        eden_(/*num_stripes=*/256),
        longterm_(/*num_stripes=*/256) {}

  std::optional<Value> get(Value key) override {
    CountedSharedGuard gate(gate_);
    CountedGuard g(stripe(key));
    std::optional<Value> v = eden_.get(key);
    if (!v) {
      v = longterm_.get(key);
      if (v) eden_.put(key, *v);
    }
    return v;
  }

  void put(Value key, Value value) override {
    {
      CountedSharedGuard gate(gate_);
      if (eden_.size() < params_.size) {
        CountedGuard g(stripe(key));
        eden_.put(key, value);
        return;
      }
    }
    CountedGuard gate(gate_);  // exclusive: demote
    if (eden_.size() >= params_.size) {
      eden_.for_each(
          [&](const Value& k, const Value& v) { longterm_.put(k, v); });
      eden_.clear();
    }
    eden_.put(key, value);
  }

 private:
  static constexpr std::size_t kStripes = 64;
  util::Spinlock& stripe(Value v) {
    return stripes_[static_cast<std::size_t>(v) % kStripes].value;
  }

  CacheParams params_;
  std::shared_mutex gate_;
  std::vector<util::CacheLinePadded<util::Spinlock>> stripes_;
  adt::StripedHashMap<Value, Value> eden_;
  adt::StripedHashMap<Value, Value> longterm_;
};

}  // namespace

std::unique_ptr<CacheModule> make_cache_module(Strategy strategy,
                                               const CacheParams& params) {
  switch (strategy) {
    case Strategy::Ours: return std::make_unique<CacheOurs>(params);
    case Strategy::Global: return std::make_unique<CacheGlobal>(params);
    case Strategy::TwoPL: return std::make_unique<CacheTwoPL>(params);
    case Strategy::Manual: return std::make_unique<CacheManual>(params);
    case Strategy::V8: return nullptr;  // not part of Fig. 23
  }
  return nullptr;
}

}  // namespace semlock::apps
