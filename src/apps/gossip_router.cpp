#include "apps/gossip_router.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "adt/striped_hash_map.h"
#include "baseline/global_lock.h"
#include "baseline/two_pl.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"
#include "util/spinlock.h"

namespace semlock::apps {

namespace {

using commute::Value;

// A simulated client connection: "sending" accumulates into an atomic
// checksum, standing in for the socket write (thread-local I/O in the
// paper's treatment — it never communicates between router threads).
struct Sink {
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> checksum{0};

  void send(std::int64_t msg) {
    bytes.fetch_add(64, std::memory_order_relaxed);
    checksum.fetch_xor(static_cast<std::uint64_t>(msg) * 0x9e3779b97f4a7c15ULL,
                       std::memory_order_relaxed);
  }
};

class SinkArena {
 public:
  Sink* create() {
    std::scoped_lock guard(lock_);
    sinks_.push_back(std::make_unique<Sink>());
    return sinks_.back().get();
  }
  std::uint64_t total_sends() const {
    std::scoped_lock guard(lock_);
    std::uint64_t total = 0;
    for (const auto& s : sinks_) {
      total += s->bytes.load(std::memory_order_relaxed) / 64;
    }
    return total;
  }

 private:
  mutable util::Spinlock lock_;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

// Commutativity specification of the per-group membership Map, including the
// iteration used by route(). forEach conflicts with the mutators but
// commutes with itself — concurrent routes to the same group proceed in
// parallel (the scalability Fig. 25 depends on).
const commute::AdtSpec& group_map_spec() {
  static const commute::AdtSpec spec = [] {
    commute::AdtSpec::Builder b("GroupMap");
    b.method("put", 2).method("remove", 1).method("forEach", 0);
    b.commute("put", "put", commute::CommCondition::differ(0, 0));
    b.commute("put", "remove", commute::CommCondition::differ(0, 0));
    b.commute("remove", "remove", commute::CommCondition::always());
    b.commute("forEach", "forEach", commute::CommCondition::always());
    return b.build();
  }();
  return spec;
}

// --- Ours ------------------------------------------------------------------
class GossipOurs final : public GossipRouter {
 public:
  explicit GossipOurs(const GossipParams& params)
      : table_table_(ModeTable::compile(
            commute::map_spec(),
            {commute::SymbolicSet(
                 {commute::op("get", {commute::var("g")}),
                  commute::op("put", {commute::var("g"), commute::star()})}),
             commute::SymbolicSet({commute::op("get", {commute::var("g")})})},
            ModeTableConfig{.abstract_values = params.abstract_values})),
        group_table_(ModeTable::compile(
            group_map_spec(),
            {commute::SymbolicSet(
                 {commute::op("put", {commute::var("a"), commute::star()})}),
             commute::SymbolicSet({commute::op("remove", {commute::var("a")})}),
             commute::SymbolicSet({commute::op("forEach")})},
            ModeTableConfig{.abstract_values = params.abstract_values})),
        table_lock_(table_table_),
        table_(/*num_stripes=*/64) {}

  void register_member(Value group, Value addr) override {
    const Value gv[1] = {group};
    const int tm = table_lock_.lock_site(0, gv);
    auto entry = table_.get(group);
    std::shared_ptr<GroupState> gs;
    if (!entry) {
      gs = std::make_shared<GroupState>(group_table_);
      table_.put(group, gs);
    } else {
      gs = *entry;
    }
    const Value av[1] = {addr};
    const int gm = gs->lock.lock_site(0, av);
    gs->members.put(addr, arena_.create());
    gs->lock.unlock(gm);
    table_lock_.unlock(tm);
  }

  void unregister_member(Value group, Value addr) override {
    const Value gv[1] = {group};
    const int tm = table_lock_.lock_site(1, gv);
    auto entry = table_.get(group);
    if (entry) {
      const Value av[1] = {addr};
      const int gm = (*entry)->lock.lock_site(1, av);
      (*entry)->members.remove(addr);
      (*entry)->lock.unlock(gm);
    }
    table_lock_.unlock(tm);
  }

  std::size_t route(Value group, std::int64_t msg) override {
    const Value gv[1] = {group};
    const int tm = table_lock_.lock_site(1, gv);
    std::size_t sends = 0;
    auto entry = table_.get(group);
    if (entry) {
      const int gm = (*entry)->lock.lock_site(2, {});
      (*entry)->members.for_each([&](const Value&, Sink* const& sink) {
        sink->send(msg);  // irrevocable I/O inside the atomic section
        ++sends;
      });
      (*entry)->lock.unlock(gm);
    }
    table_lock_.unlock(tm);
    return sends;
  }

  std::uint64_t total_sends() const override { return arena_.total_sends(); }

 private:
  struct GroupState {
    explicit GroupState(const ModeTable& t) : lock(t), members(16) {}
    SemanticLock lock;
    adt::StripedHashMap<Value, Sink*> members;
  };

  ModeTable table_table_;
  ModeTable group_table_;
  SemanticLock table_lock_;
  adt::StripedHashMap<Value, std::shared_ptr<GroupState>> table_;
  SinkArena arena_;
};

// --- Global ------------------------------------------------------------------
class GossipGlobal final : public GossipRouter {
 public:
  void register_member(Value group, Value addr) override {
    baseline::GlobalSection g(global_);
    table_[group][addr] = arena_.create();
  }
  void unregister_member(Value group, Value addr) override {
    baseline::GlobalSection g(global_);
    auto it = table_.find(group);
    if (it != table_.end()) it->second.erase(addr);
  }
  std::size_t route(Value group, std::int64_t msg) override {
    baseline::GlobalSection g(global_);
    auto it = table_.find(group);
    if (it == table_.end()) return 0;
    for (auto& [addr, sink] : it->second) sink->send(msg);
    return it->second.size();
  }
  std::uint64_t total_sends() const override { return arena_.total_sends(); }

 private:
  baseline::GlobalLock global_;
  std::unordered_map<Value, std::unordered_map<Value, Sink*>> table_;
  SinkArena arena_;
};

// --- 2PL ---------------------------------------------------------------------
class GossipTwoPL final : public GossipRouter {
 public:
  void register_member(Value group, Value addr) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&table_ilock_);
    auto& gs = table_[group];
    if (!gs) gs = std::make_shared<GroupState>();
    txn.acquire(&gs->ilock);
    gs->members[addr] = arena_.create();
  }
  void unregister_member(Value group, Value addr) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&table_ilock_);
    auto it = table_.find(group);
    if (it == table_.end()) return;
    txn.acquire(&it->second->ilock);
    it->second->members.erase(addr);
  }
  std::size_t route(Value group, std::int64_t msg) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&table_ilock_);
    auto it = table_.find(group);
    if (it == table_.end()) return 0;
    txn.acquire(&it->second->ilock);
    for (auto& [addr, sink] : it->second->members) sink->send(msg);
    return it->second->members.size();
  }
  std::uint64_t total_sends() const override { return arena_.total_sends(); }

 private:
  struct GroupState {
    baseline::InstanceLock ilock;
    std::unordered_map<Value, Sink*> members;
  };

  baseline::InstanceLock table_ilock_;
  std::unordered_map<Value, std::shared_ptr<GroupState>> table_;
  SinkArena arena_;
};

// --- Manual ------------------------------------------------------------------
// Hand-optimized reader/writer scheme: the routing table and each group map
// are guarded by shared_mutexes; route takes both in shared mode (sends use
// atomics), membership changes take the group exclusively, and only group
// creation takes the table exclusively.
class GossipManual final : public GossipRouter {
 public:
  void register_member(Value group, Value addr) override {
    GroupState* gs = find_or_create(group);
    CountedGuard guard(gs->mutex);
    gs->members[addr] = arena_.create();
  }
  void unregister_member(Value group, Value addr) override {
    GroupState* gs = find(group);
    if (!gs) return;
    CountedGuard guard(gs->mutex);
    gs->members.erase(addr);
  }
  std::size_t route(Value group, std::int64_t msg) override {
    GroupState* gs = find(group);
    if (!gs) return 0;
    CountedSharedGuard guard(gs->mutex);
    for (auto& [addr, sink] : gs->members) sink->send(msg);
    return gs->members.size();
  }
  std::uint64_t total_sends() const override { return arena_.total_sends(); }

 private:
  struct GroupState {
    std::shared_mutex mutex;
    std::unordered_map<Value, Sink*> members;
  };

  GroupState* find(Value group) {
    std::shared_lock guard(table_mutex_);
    auto it = table_.find(group);
    return it == table_.end() ? nullptr : it->second.get();
  }
  GroupState* find_or_create(Value group) {
    if (GroupState* gs = find(group)) return gs;
    std::unique_lock guard(table_mutex_);
    auto& gs = table_[group];
    if (!gs) gs = std::make_unique<GroupState>();
    return gs.get();
  }

  std::shared_mutex table_mutex_;
  std::unordered_map<Value, std::unique_ptr<GroupState>> table_;
  SinkArena arena_;
};

}  // namespace

std::unique_ptr<GossipRouter> make_gossip_router(Strategy strategy,
                                                 const GossipParams& params) {
  switch (strategy) {
    case Strategy::Ours: return std::make_unique<GossipOurs>(params);
    case Strategy::Global: return std::make_unique<GossipGlobal>();
    case Strategy::TwoPL: return std::make_unique<GossipTwoPL>();
    case Strategy::Manual: return std::make_unique<GossipManual>();
    case Strategy::V8: return nullptr;  // not part of Fig. 25
  }
  return nullptr;
}

}  // namespace semlock::apps
