#include "apps/graph_module.h"

#include <mutex>
#include <span>
#include <vector>

#include "adt/seq_models.h"
#include "adt/striped_multimap.h"
#include "baseline/global_lock.h"
#include "baseline/two_pl.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"
#include "util/align.h"

namespace semlock::apps {

namespace {

using commute::Value;

// --- Ours ------------------------------------------------------------------
//
// The points-to abstraction separates `succ` and `pred` (two distinct
// fields), so they form two equivalence classes with a fixed lock order
// succ < pred and identical mode tables. Lock sites (refined symbolic sets):
//   site 0: {getAll(k)}            (find procedures)
//   site 1: {put(k,v)}             (insertEdge)
//   site 2: {removeEntry(k,v)}     (removeEdge)
class GraphOurs final : public GraphModule {
 public:
  explicit GraphOurs(const GraphParams& params)
      : table_(ModeTable::compile(
            commute::multimap_spec(),
            {commute::SymbolicSet({commute::op("getAll", {commute::var("k")})}),
             commute::SymbolicSet({commute::op(
                 "put", {commute::var("k"), commute::var("v")})}),
             commute::SymbolicSet({commute::op(
                 "removeEntry", {commute::var("k"), commute::var("v")})})},
            ModeTableConfig{.abstract_values = params.abstract_values,
                            .max_modes = params.max_modes})),
        succ_lock_(table_),
        pred_lock_(table_) {}

  // The mode bound N may have widened a site's trailing variable away
  // (Section 5.3); pass only the values of the surviving variables.
  int lock_trimmed(SemanticLock& lk, int site, std::span<const Value> vals) {
    const std::size_t k = table_.site_variables(site).size();
    return lk.lock_site(site, vals.subspan(0, k));
  }

  void insert_edge(Value a, Value b) override {
    const Value sv[2] = {a, b};
    const Value pv[2] = {b, a};
    const int sm = lock_trimmed(succ_lock_, 1, sv);
    const int pm = lock_trimmed(pred_lock_, 1, pv);
    succ_.put(a, b);
    pred_.put(b, a);
    pred_lock_.unlock(pm);
    succ_lock_.unlock(sm);
  }

  void remove_edge(Value a, Value b) override {
    const Value sv[2] = {a, b};
    const Value pv[2] = {b, a};
    const int sm = lock_trimmed(succ_lock_, 2, sv);
    const int pm = lock_trimmed(pred_lock_, 2, pv);
    succ_.remove_entry(a, b);
    pred_.remove_entry(b, a);
    pred_lock_.unlock(pm);
    succ_lock_.unlock(sm);
  }

  std::size_t find_successors(Value a) override {
    const Value v[1] = {a};
    const int m = succ_lock_.lock_site(0, v);
    const std::size_t n = succ_.get_all(a).size();
    succ_lock_.unlock(m);
    return n;
  }

  std::size_t find_predecessors(Value a) override {
    const Value v[1] = {a};
    const int m = pred_lock_.lock_site(0, v);
    const std::size_t n = pred_.get_all(a).size();
    pred_lock_.unlock(m);
    return n;
  }

 private:
  ModeTable table_;
  SemanticLock succ_lock_;
  SemanticLock pred_lock_;
  adt::StripedMultimap<Value, Value> succ_;
  adt::StripedMultimap<Value, Value> pred_;
};

// --- Global ------------------------------------------------------------------
class GraphGlobal final : public GraphModule {
 public:
  void insert_edge(Value a, Value b) override {
    baseline::GlobalSection g(global_);
    succ_.put(a, b);
    pred_.put(b, a);
  }
  void remove_edge(Value a, Value b) override {
    baseline::GlobalSection g(global_);
    succ_.remove_entry(a, b);
    pred_.remove_entry(b, a);
  }
  std::size_t find_successors(Value a) override {
    baseline::GlobalSection g(global_);
    return succ_.get_all(a).size();
  }
  std::size_t find_predecessors(Value a) override {
    baseline::GlobalSection g(global_);
    return pred_.get_all(a).size();
  }

 private:
  baseline::GlobalLock global_;
  adt::SeqMultimap succ_;
  adt::SeqMultimap pred_;
};

// --- 2PL ---------------------------------------------------------------------
class GraphTwoPL final : public GraphModule {
 public:
  void insert_edge(Value a, Value b) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&succ_lock_);  // static order: succ before pred
    txn.acquire(&pred_lock_);
    succ_.put(a, b);
    pred_.put(b, a);
  }
  void remove_edge(Value a, Value b) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&succ_lock_);
    txn.acquire(&pred_lock_);
    succ_.remove_entry(a, b);
    pred_.remove_entry(b, a);
  }
  std::size_t find_successors(Value a) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&succ_lock_);
    return succ_.get_all(a).size();
  }
  std::size_t find_predecessors(Value a) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&pred_lock_);
    return pred_.get_all(a).size();
  }

 private:
  baseline::InstanceLock succ_lock_;
  baseline::InstanceLock pred_lock_;
  adt::SeqMultimap succ_;
  adt::SeqMultimap pred_;
};

// --- Manual ------------------------------------------------------------------
// Hand-optimized fine-grained locking in the spirit of the paper's Manual
// (an optimized version of the Foresight-generated code): per-node striped
// locks; a two-node operation takes its two stripes in address order.
class GraphManual final : public GraphModule {
 public:
  GraphManual() : stripes_(kStripes) {}

  void insert_edge(Value a, Value b) override {
    auto [l1, l2] = two_stripes(a, b);
    CountedGuard g1(*l1);
    if (l2) {
      CountedGuard g2(*l2);
      succ_.put(a, b);
      pred_.put(b, a);
      return;
    }
    succ_.put(a, b);
    pred_.put(b, a);
  }
  void remove_edge(Value a, Value b) override {
    auto [l1, l2] = two_stripes(a, b);
    CountedGuard g1(*l1);
    if (l2) {
      CountedGuard g2(*l2);
      succ_.remove_entry(a, b);
      pred_.remove_entry(b, a);
      return;
    }
    succ_.remove_entry(a, b);
    pred_.remove_entry(b, a);
  }
  std::size_t find_successors(Value a) override {
    CountedGuard g(stripe(a));
    return succ_.get_all(a).size();
  }
  std::size_t find_predecessors(Value a) override {
    CountedGuard g(stripe(a));
    return pred_.get_all(a).size();
  }

 private:
  static constexpr std::size_t kStripes = 64;

  util::Spinlock& stripe(Value v) {
    return stripes_[static_cast<std::size_t>(v) % kStripes].value;
  }
  std::pair<util::Spinlock*, util::Spinlock*> two_stripes(Value a, Value b) {
    util::Spinlock* x = &stripe(a);
    util::Spinlock* y = &stripe(b);
    if (x == y) return {x, nullptr};
    if (x > y) std::swap(x, y);
    return {x, y};
  }

  std::vector<util::CacheLinePadded<util::Spinlock>> stripes_;
  adt::StripedMultimap<Value, Value> succ_;
  adt::StripedMultimap<Value, Value> pred_;
};

}  // namespace

std::unique_ptr<GraphModule> make_graph_module(Strategy strategy,
                                               const GraphParams& params) {
  switch (strategy) {
    case Strategy::Ours: return std::make_unique<GraphOurs>(params);
    case Strategy::Global: return std::make_unique<GraphGlobal>();
    case Strategy::TwoPL: return std::make_unique<GraphTwoPL>();
    case Strategy::Manual: return std::make_unique<GraphManual>();
    case Strategy::V8: return nullptr;  // not part of Fig. 22
  }
  return nullptr;
}

}  // namespace semlock::apps
