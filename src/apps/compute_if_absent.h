// The ComputeIfAbsent composite module (Section 6.1, Fig. 21).
//
// The atomic section is the classic check-then-act pattern over a Map:
//
//   atomic {
//     if (!map.containsKey(key)) {
//       value = <pure computation: allocate 128 bytes>;
//       map.put(key, value);
//     }
//   }
//
// Five implementations:
//   Ours   — semantic locking; the synthesized symbolic set is
//            {containsKey(key), put(key,*)}, whose 64 alpha-modes partition
//            into 64 independent mechanisms (lock striping falls out of the
//            algorithm).
//   Global — one global mutex.
//   TwoPL  — one standard lock per ADT instance; with a single Map instance
//            this degenerates to a global lock, as in the paper.
//   Manual — hand-made lock striping with 64 locks over a concurrent map.
//   V8     — ConcurrentHashMapV8-style computeIfAbsent (per-bucket locking).
#pragma once

#include <cstddef>
#include <memory>

#include "commute/value.h"

namespace semlock::apps {

enum class Strategy { Ours, Global, TwoPL, Manual, V8 };
const char* strategy_name(Strategy s);

struct CiaParams {
  std::size_t key_range = 1 << 20;
  std::size_t payload_bytes = 128;
  int abstract_values = 64;  // phi range for Ours
  std::size_t manual_stripes = 64;
};

class CiaModule {
 public:
  virtual ~CiaModule() = default;
  // The atomic section: insert a freshly computed value if key is absent.
  virtual void compute_if_absent(commute::Value key) = 0;
  // Quiescent-state accessors for validation.
  virtual std::size_t map_size() const = 0;
};

std::unique_ptr<CiaModule> make_cia_module(Strategy strategy,
                                           const CiaParams& params);

}  // namespace semlock::apps
