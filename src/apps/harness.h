// Shared benchmark-driver utilities: thread sweeps, fixed-op workloads,
// throughput reporting. Mirrors the paper's methodology (Section 6.1): each
// pass performs a fixed number of randomly chosen procedure invocations per
// thread; a warm-up pass precedes the timed passes; results are averaged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/hooks.h"
#include "runtime/wait_policy.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_team.h"

namespace semlock::apps {

struct SweepConfig {
  std::vector<std::size_t> thread_counts{1, 2, 4, 8, 16, 32};
  std::size_t ops_per_thread = 200'000;
  int timed_passes = 2;
  int warmup_passes = 1;
  std::uint64_t seed = 1;
  // Waiting strategy installed (as the ambient ModeTableConfig default)
  // while measure() builds module state, so every strategy in a sweep waits
  // the same way. Defaults to SEMLOCK_WAIT_POLICY / spin-yield.
  runtime::WaitPolicyKind wait_policy = runtime::default_wait_policy();
};

// One strategy's run at one thread count: the factory builds a fresh module
// state; `worker(state, thread_id, rng, ops)` performs the per-thread
// workload. Returns throughput in operations per millisecond.
template <typename State>
double measure(const SweepConfig& cfg, std::size_t threads,
               const std::function<std::unique_ptr<State>()>& make_state,
               const std::function<void(State&, std::size_t, util::Xoshiro256&,
                                        std::size_t)>& worker) {
  std::vector<double> samples;
  const runtime::ScopedWaitPolicy wait_policy_scope(cfg.wait_policy);
  for (int pass = 0; pass < cfg.warmup_passes + cfg.timed_passes; ++pass) {
    auto state = make_state();
    // Pass boundary marker so a trace (SEMLOCK_TRACE=1) can be cut into
    // warm-up and timed sections; the mode field carries the pass index.
    SEMLOCK_OBS_EVENT(kMark, nullptr, pass);
    const auto result = util::run_team(threads, [&](std::size_t tid) {
      util::Xoshiro256 rng(util::derive_seed(
          cfg.seed, static_cast<std::uint64_t>(pass * 1000 + tid)));
      worker(*state, tid, rng, cfg.ops_per_thread);
    });
    if (pass >= cfg.warmup_passes) {
      const double total_ops =
          static_cast<double>(threads) *
          static_cast<double>(cfg.ops_per_thread);
      samples.push_back(total_ops / (result.wall_seconds * 1e3));
    }
  }
  return util::mean(samples);
}

}  // namespace semlock::apps
