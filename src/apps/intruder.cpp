#include "apps/intruder.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "adt/striped_hash_map.h"
#include "adt/two_lock_queue.h"
#include "baseline/global_lock.h"
#include "baseline/two_pl.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"
#include "util/align.h"
#include "util/rng.h"
#include "util/spinlock.h"

namespace semlock::apps {

namespace {

using commute::Value;

constexpr std::uint8_t kSignature[] = {'A', 'T', 'T', 'A', 'C', 'K', '!'};
constexpr std::size_t kFragmentBytes = 64;

// Reassembly buffer for one flow. Internally linearizable: under semantic
// locking, add() invocations commute and may run concurrently.
class Assembly {
 public:
  explicit Assembly(std::int32_t num_fragments)
      : fragments_(static_cast<std::size_t>(num_fragments)) {}

  // Stores a fragment; returns the number of fragments received so far.
  std::int32_t add(const Packet& p) {
    std::scoped_lock guard(lock_);
    auto& slot = fragments_[static_cast<std::size_t>(p.fragment_id)];
    if (slot.empty()) {
      slot = p.data;
      ++received_;
    }
    return received_;
  }

  std::int32_t total() const {
    return static_cast<std::int32_t>(fragments_.size());
  }

  // Reassembled payload (call only after completion).
  std::vector<std::uint8_t> reassemble() const {
    std::scoped_lock guard(lock_);
    std::vector<std::uint8_t> out;
    for (const auto& f : fragments_) out.insert(out.end(), f.begin(), f.end());
    return out;
  }

 private:
  mutable util::Spinlock lock_;
  std::vector<std::vector<std::uint8_t>> fragments_;
  std::int32_t received_ = 0;
};

bool contains_signature(const std::vector<std::uint8_t>& data) {
  if (data.size() < sizeof(kSignature)) return false;
  for (std::size_t i = 0; i + sizeof(kSignature) <= data.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < sizeof(kSignature); ++j) {
      if (data[i + j] != kSignature[j]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

// Shared detection bookkeeping + assembly arena.
class IntruderBase : public IntruderSystem {
 public:
  std::size_t flows_detected() const override {
    return flows_.load(std::memory_order_relaxed);
  }
  std::size_t attacks_found() const override {
    return attacks_.load(std::memory_order_relaxed);
  }

 protected:
  Assembly* new_assembly(std::int32_t fragments) {
    auto a = std::make_unique<Assembly>(fragments);
    std::scoped_lock guard(arena_lock_);
    arena_.push_back(std::move(a));
    return arena_.back().get();
  }

  // Signature scan (irrevocable local work, outside any lock).
  bool detect(const Assembly* a) {
    const bool attack = contains_signature(a->reassemble());
    flows_.fetch_add(1, std::memory_order_relaxed);
    if (attack) attacks_.fetch_add(1, std::memory_order_relaxed);
    return attack;
  }

 private:
  util::Spinlock arena_lock_;
  std::vector<std::unique_ptr<Assembly>> arena_;
  std::atomic<std::size_t> flows_{0};
  std::atomic<std::size_t> attacks_{0};
};

// --- Ours ------------------------------------------------------------------
//
// Lock sites (the Fig. 2 output):
//   map:   site 0 = {get(fid), put(fid,*), remove(fid)}  -> 64 alpha modes,
//          each self-conflicting, pairwise commuting: key striping.
//   set:   site 0 = {add(*)} -> one self-commuting mode (adds in parallel).
//   queue: site 0 = {enqueue(*)} (Pool spec: enqueues commute),
//          site 1 = {dequeue()} (exclusive).
class IntruderOurs final : public IntruderBase {
 public:
  explicit IntruderOurs(const IntruderParams& params)
      : map_table_(ModeTable::compile(
            commute::map_spec(),
            {commute::SymbolicSet(
                {commute::op("get", {commute::var("fid")}),
                 commute::op("put", {commute::var("fid"), commute::star()}),
                 commute::op("remove", {commute::var("fid")})})},
            ModeTableConfig{.abstract_values = params.abstract_values})),
        set_table_(ModeTable::compile(
            commute::set_spec(),
            {commute::SymbolicSet({commute::op("add", {commute::star()})})})),
        queue_table_(ModeTable::compile(
            commute::pool_spec(),
            {commute::SymbolicSet({commute::op("enqueue", {commute::star()})}),
             commute::SymbolicSet({commute::op("dequeue")})})),
        map_lock_(map_table_),
        queue_lock_(queue_table_),
        fragmented_(/*num_stripes=*/256) {}

  bool process(const Packet& p) override {
    // Decode: the Fig. 2 generated section (lock order map < set < queue;
    // queue released early).
    Assembly* completed = nullptr;
    {
      const Value vals[1] = {p.flow_id};
      const int mm = map_lock_.lock_site(0, vals);
      auto entry = fragmented_.get(p.flow_id);
      Entry assembly;
      if (!entry) {
        assembly.ptr = new_assembly(p.num_fragments);
        assembly.lock = std::make_shared<SemanticLock>(set_table_);
        fragmented_.put(p.flow_id, assembly);
      } else {
        assembly = *entry;
      }
      const int sm = assembly.lock->lock_site(0, {});
      const std::int32_t have = assembly.ptr->add(p);
      if (have == assembly.ptr->total()) {
        const int qm = queue_lock_.lock_site(0, {});
        completed_.enqueue(assembly.ptr);
        queue_lock_.unlock(qm);  // early release (Fig. 17 line 8)
        fragmented_.remove(p.flow_id);
        completed = assembly.ptr;  // hint: try detection next
      }
      assembly.lock->unlock(sm);
      map_lock_.unlock(mm);
    }

    // Detect: drain one completed flow, scanning outside any lock.
    bool attack = false;
    if (completed != nullptr) {
      const int dm = queue_lock_.lock_site(1, {});
      std::optional<Assembly*> a = completed_.dequeue();
      queue_lock_.unlock(dm);
      if (a) attack = detect(*a);
    }
    return attack;
  }

 private:
  struct Entry {
    Assembly* ptr = nullptr;
    std::shared_ptr<SemanticLock> lock;
  };

  ModeTable map_table_;
  ModeTable set_table_;
  ModeTable queue_table_;
  SemanticLock map_lock_;
  SemanticLock queue_lock_;
  adt::StripedHashMap<Value, Entry> fragmented_;
  adt::TwoLockQueue<Assembly*> completed_;
};

// --- Global ------------------------------------------------------------------
class IntruderGlobal final : public IntruderBase {
 public:
  bool process(const Packet& p) override {
    Assembly* hint = nullptr;
    {
      baseline::GlobalSection g(global_);
      hint = decode(p);
    }
    if (hint == nullptr) return false;
    Assembly* a = nullptr;
    {
      baseline::GlobalSection g(global_);
      if (!completed_.empty()) {
        a = completed_.front();
        completed_.pop_front();
      }
    }
    return a ? detect(a) : false;
  }

 private:
  Assembly* decode(const Packet& p) {
    auto it = fragmented_.find(p.flow_id);
    Assembly* a;
    if (it == fragmented_.end()) {
      a = new_assembly(p.num_fragments);
      fragmented_.emplace(p.flow_id, a);
    } else {
      a = it->second;
    }
    if (a->add(p) == a->total()) {
      completed_.push_back(a);
      fragmented_.erase(p.flow_id);
      return a;
    }
    return nullptr;
  }

  baseline::GlobalLock global_;
  std::unordered_map<Value, Assembly*> fragmented_;
  std::deque<Assembly*> completed_;
};

// --- 2PL ---------------------------------------------------------------------
class IntruderTwoPL final : public IntruderBase {
 public:
  bool process(const Packet& p) override {
    Assembly* hint = nullptr;
    {
      baseline::TwoPLTxn txn;
      txn.acquire(&map_ilock_);  // order: map < assembly < queue
      auto it = fragmented_.find(p.flow_id);
      Entry e;
      if (it == fragmented_.end()) {
        e.ptr = new_assembly(p.num_fragments);
        e.lock = std::make_shared<baseline::InstanceLock>();
        fragmented_.emplace(p.flow_id, e);
      } else {
        e = it->second;
      }
      txn.acquire(e.lock.get());
      if (e.ptr->add(p) == e.ptr->total()) {
        txn.acquire(&queue_ilock_);
        completed_.push_back(e.ptr);
        fragmented_.erase(p.flow_id);
        hint = e.ptr;
      }
    }
    if (hint == nullptr) return false;
    Assembly* a = nullptr;
    {
      baseline::TwoPLTxn txn;
      txn.acquire(&queue_ilock_);
      if (!completed_.empty()) {
        a = completed_.front();
        completed_.pop_front();
      }
    }
    return a ? detect(a) : false;
  }

 private:
  struct Entry {
    Assembly* ptr = nullptr;
    std::shared_ptr<baseline::InstanceLock> lock;
  };

  baseline::InstanceLock map_ilock_;
  baseline::InstanceLock queue_ilock_;
  std::unordered_map<Value, Entry> fragmented_;
  std::deque<Assembly*> completed_;
};

// --- Manual ------------------------------------------------------------------
// Ad-hoc synchronization combining lock striping (by flow id) with
// linearizable Map and Queue implementations, as in the paper.
class IntruderManual final : public IntruderBase {
 public:
  IntruderManual() : stripes_(kStripes), fragmented_(/*num_stripes=*/256) {}

  bool process(const Packet& p) override {
    Assembly* hint = nullptr;
    {
      CountedGuard g(stripe(p.flow_id));
      auto entry = fragmented_.get(p.flow_id);
      Assembly* a;
      if (!entry) {
        a = new_assembly(p.num_fragments);
        fragmented_.put(p.flow_id, a);
      } else {
        a = *entry;
      }
      if (a->add(p) == a->total()) {
        completed_.enqueue(a);  // linearizable queue: no extra lock
        fragmented_.remove(p.flow_id);
        hint = a;
      }
    }
    if (hint == nullptr) return false;
    std::optional<Assembly*> a = completed_.dequeue();
    return a ? detect(*a) : false;
  }

 private:
  static constexpr std::size_t kStripes = 64;
  util::Spinlock& stripe(Value v) {
    return stripes_[static_cast<std::size_t>(v) % kStripes].value;
  }

  std::vector<util::CacheLinePadded<util::Spinlock>> stripes_;
  adt::StripedHashMap<Value, Assembly*> fragmented_;
  adt::TwoLockQueue<Assembly*> completed_;
};

}  // namespace

PacketTrace PacketTrace::generate(const IntruderParams& params) {
  PacketTrace trace;
  util::Xoshiro256 rng(params.seed);
  for (std::size_t f = 0; f < params.num_flows; ++f) {
    const std::size_t length = 16 + rng.next_below(
        static_cast<std::uint64_t>(params.max_length - 15));
    std::vector<std::uint8_t> payload(length);
    for (auto& b : payload) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const bool attack =
        rng.chance_percent(static_cast<std::uint32_t>(params.attack_percent));
    if (attack && length >= sizeof(kSignature)) {
      const std::size_t pos =
          rng.next_below(length - sizeof(kSignature) + 1);
      std::copy(std::begin(kSignature), std::end(kSignature),
                payload.begin() + static_cast<std::ptrdiff_t>(pos));
      ++trace.num_attacks;
    }
    const std::int32_t nfrag = static_cast<std::int32_t>(
        (length + kFragmentBytes - 1) / kFragmentBytes);
    for (std::int32_t i = 0; i < nfrag; ++i) {
      Packet p;
      p.flow_id = static_cast<Value>(f);
      p.fragment_id = i;
      p.num_fragments = nfrag;
      const std::size_t lo = static_cast<std::size_t>(i) * kFragmentBytes;
      const std::size_t hi = std::min(lo + kFragmentBytes, length);
      p.data.assign(payload.begin() + static_cast<std::ptrdiff_t>(lo),
                    payload.begin() + static_cast<std::ptrdiff_t>(hi));
      trace.packets.push_back(std::move(p));
    }
  }
  // Interleave fragments of different flows (the shuffled arrival order).
  for (std::size_t i = trace.packets.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(trace.packets[i - 1], trace.packets[j]);
  }
  return trace;
}

std::unique_ptr<IntruderSystem> make_intruder_system(
    Strategy strategy, const IntruderParams& params) {
  switch (strategy) {
    case Strategy::Ours: return std::make_unique<IntruderOurs>(params);
    case Strategy::Global: return std::make_unique<IntruderGlobal>();
    case Strategy::TwoPL: return std::make_unique<IntruderTwoPL>();
    case Strategy::Manual: return std::make_unique<IntruderManual>();
    case Strategy::V8: return nullptr;  // not part of Fig. 24
  }
  return nullptr;
}

}  // namespace semlock::apps
