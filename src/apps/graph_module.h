// The Graph composite module (Section 6.1, Fig. 22), after Hawkins et al.
// (PLDI'12): a directed graph maintained as two Multimap instances holding
// successor and predecessor edges. Four public procedures, each an atomic
// section over the two multimaps:
//
//   insertEdge(a,b): succ.put(a,b); pred.put(b,a);
//   removeEdge(a,b): succ.removeEntry(a,b); pred.removeEntry(b,a);
//   findSuccessors(a): succ.getAll(a);
//   findPredecessors(a): pred.getAll(a);
//
// Workload mix of Fig. 22: 35% find-successors, 35% find-predecessors,
// 20% insert-edge, 10% remove-edge.
#pragma once

#include <cstddef>
#include <memory>

#include "apps/compute_if_absent.h"  // Strategy enum
#include "commute/value.h"

namespace semlock::apps {

struct GraphParams {
  commute::Value node_range = 1 << 16;
  int abstract_values = 64;
  // Mode bound N (Section 5.3): with two-variable symbolic sets, the bound
  // widens the edge-target argument so modes stripe by source node.
  int max_modes = 256;
};

class GraphModule {
 public:
  virtual ~GraphModule() = default;
  virtual void insert_edge(commute::Value a, commute::Value b) = 0;
  virtual void remove_edge(commute::Value a, commute::Value b) = 0;
  // Return the out/in degree (stand-in for the returned collections).
  virtual std::size_t find_successors(commute::Value a) = 0;
  virtual std::size_t find_predecessors(commute::Value a) = 0;
};

std::unique_ptr<GraphModule> make_graph_module(Strategy strategy,
                                               const GraphParams& params);

}  // namespace semlock::apps
