// The Intruder benchmark (Section 6.2, Fig. 24): signature-based network
// intrusion detection after STAMP's intruder, using its Java port's atomic
// sections. Configuration "-a 10 -l 256 -n 16384 -s 1": 10% attack flows,
// maximum flow length 256 bytes, 16384 flows, seed 1.
//
// Each flow is split into fragments which arrive interleaved. The decoder's
// atomic section is exactly Fig. 1's pattern:
//
//   atomic {
//     assembly = fragmented.get(flowId);
//     if (assembly == null) { assembly = new Assembly(); fragmented.put(flowId, assembly); }
//     assembly.add(fragment);
//     if (assembly.complete()) {
//       completed.enqueue(assembly);
//       fragmented.remove(flowId);
//     }
//   }
//
// A second atomic section dequeues a completed flow, which is then scanned
// for attack signatures outside any lock (irrevocable local work). The
// completed-flow queue is given the Pool (unordered) specification: the
// detector does not observe element order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/compute_if_absent.h"  // Strategy enum

namespace semlock::apps {

struct IntruderParams {
  int attack_percent = 10;     // -a
  int max_length = 256;        // -l (bytes per flow)
  std::size_t num_flows = 16384;  // -n
  std::uint64_t seed = 1;      // -s
  int abstract_values = 64;
};

struct Packet {
  std::int64_t flow_id = 0;
  std::int32_t fragment_id = 0;
  std::int32_t num_fragments = 0;
  std::vector<std::uint8_t> data;
};

// Pre-generated shuffled packet trace shared by every strategy.
struct PacketTrace {
  std::vector<Packet> packets;
  std::size_t num_attacks = 0;  // ground truth for validation

  static PacketTrace generate(const IntruderParams& params);
};

class IntruderSystem {
 public:
  virtual ~IntruderSystem() = default;
  // Processes one packet: decode (atomic), then detect if a flow completed.
  // Returns true if the processed packet completed an attack flow.
  virtual bool process(const Packet& packet) = 0;
  // Flows fully detected so far (for end-of-run validation).
  virtual std::size_t flows_detected() const = 0;
  virtual std::size_t attacks_found() const = 0;
};

std::unique_ptr<IntruderSystem> make_intruder_system(
    Strategy strategy, const IntruderParams& params);

}  // namespace semlock::apps
