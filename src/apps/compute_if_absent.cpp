#include "apps/compute_if_absent.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "adt/chm_v8.h"
#include "adt/striped_hash_map.h"
#include "baseline/global_lock.h"
#include "baseline/two_pl.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"
#include "util/align.h"
#include "util/spinlock.h"

namespace semlock::apps {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Ours: return "Ours";
    case Strategy::Global: return "Global";
    case Strategy::TwoPL: return "2PL";
    case Strategy::Manual: return "Manual";
    case Strategy::V8: return "V8";
  }
  return "?";
}

namespace {

using commute::Value;

// The "pure computation" of the benchmark: allocate payload_bytes and touch
// them (the paper emulates the computed value by allocating 128 bytes).
using Payload = std::shared_ptr<std::vector<char>>;
Payload compute_payload(std::size_t bytes) {
  auto p = std::make_shared<std::vector<char>>(bytes);
  (*p)[0] = 1;
  (*p)[bytes - 1] = 2;
  return p;
}

// --- Ours ------------------------------------------------------------------
class CiaOurs final : public CiaModule {
 public:
  explicit CiaOurs(const CiaParams& params)
      : params_(params),
        table_(ModeTable::compile(
            commute::map_spec(),
            // Site 0: the refined symbolic set the compiler infers for the
            // atomic section (Fig. 2-style output; verified by
            // tests/synthesis_bench_test).
            {commute::SymbolicSet({
                commute::op("containsKey", {commute::var("key")}),
                commute::op("put", {commute::var("key"), commute::star()}),
            })},
            ModeTableConfig{.abstract_values = params.abstract_values})),
        lock_(table_),
        map_(/*num_stripes=*/256) {}

  void compute_if_absent(Value key) override {
    // Generated form: map.lock({containsKey(key),put(key,*)}); body;
    // map.unlockAll();
    const Value vals[1] = {key};
    const int mode = lock_.lock_site(0, vals);
    if (!map_.contains_key(key)) {
      map_.put(key, compute_payload(params_.payload_bytes));
    }
    lock_.unlock(mode);
  }

  std::size_t map_size() const override { return map_.size(); }

 private:
  CiaParams params_;
  ModeTable table_;
  SemanticLock lock_;
  adt::StripedHashMap<Value, Payload> map_;
};

// --- Global ------------------------------------------------------------------
class CiaGlobal final : public CiaModule {
 public:
  explicit CiaGlobal(const CiaParams& params) : params_(params) {}

  void compute_if_absent(Value key) override {
    baseline::GlobalSection guard(global_);
    if (!map_.count(key)) map_.emplace(key, compute_payload(params_.payload_bytes));
  }

  std::size_t map_size() const override { return map_.size(); }

 private:
  CiaParams params_;
  baseline::GlobalLock global_;
  std::unordered_map<Value, Payload> map_;
};

// --- 2PL ---------------------------------------------------------------------
class CiaTwoPL final : public CiaModule {
 public:
  explicit CiaTwoPL(const CiaParams& params) : params_(params) {}

  void compute_if_absent(Value key) override {
    baseline::TwoPLTxn txn;
    txn.acquire(&map_lock_);  // single ADT instance -> one lock
    if (!map_.count(key)) map_.emplace(key, compute_payload(params_.payload_bytes));
  }

  std::size_t map_size() const override { return map_.size(); }

 private:
  CiaParams params_;
  baseline::InstanceLock map_lock_;
  std::unordered_map<Value, Payload> map_;
};

// --- Manual (lock striping, 64 locks) ---------------------------------------
class CiaManual final : public CiaModule {
 public:
  explicit CiaManual(const CiaParams& params)
      : params_(params),
        stripes_(params.manual_stripes),
        map_(/*num_stripes=*/256) {}

  void compute_if_absent(Value key) override {
    util::Spinlock& stripe =
        stripes_[static_cast<std::size_t>(key) % stripes_.size()].value;
    CountedGuard guard(stripe);
    if (!map_.contains_key(key)) {
      map_.put(key, compute_payload(params_.payload_bytes));
    }
  }

  std::size_t map_size() const override { return map_.size(); }

 private:
  CiaParams params_;
  std::vector<util::CacheLinePadded<util::Spinlock>> stripes_;
  adt::StripedHashMap<Value, Payload> map_;
};

// --- V8 ----------------------------------------------------------------------
class CiaV8 final : public CiaModule {
 public:
  explicit CiaV8(const CiaParams& params) : params_(params), map_(256) {}

  void compute_if_absent(Value key) override {
    map_.compute_if_absent(
        key, [&] { return compute_payload(params_.payload_bytes); });
  }

  std::size_t map_size() const override { return map_.size(); }

 private:
  CiaParams params_;
  adt::ChmV8Map<Value, Payload> map_;
};

}  // namespace

std::unique_ptr<CiaModule> make_cia_module(Strategy strategy,
                                           const CiaParams& params) {
  switch (strategy) {
    case Strategy::Ours: return std::make_unique<CiaOurs>(params);
    case Strategy::Global: return std::make_unique<CiaGlobal>(params);
    case Strategy::TwoPL: return std::make_unique<CiaTwoPL>(params);
    case Strategy::Manual: return std::make_unique<CiaManual>(params);
    case Strategy::V8: return std::make_unique<CiaV8>(params);
  }
  return nullptr;
}

}  // namespace semlock::apps
