// The Cache composite module (Section 6.1, Fig. 23): Tomcat's
// ConcurrentCache, built from an "eden" Map and a "longterm" WeakMap.
//
//   get(k):  v = eden.get(k);
//            if (v == null) { v = longterm.get(k); if (v != null) eden.put(k,v); }
//            return v;                       // NOT read-only
//   put(k,v): if (eden.size() >= size) {     // overflow: demote eden
//               longterm.putAll(eden); eden.clear();
//             }
//             eden.put(k, v);
//
// Workload of Fig. 23: 90% Get, 10% Put. The paper runs size=5000K; the
// parameter scales the eden capacity.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "apps/compute_if_absent.h"  // Strategy enum
#include "commute/value.h"

namespace semlock::apps {

struct CacheParams {
  std::size_t size = 200'000;  // eden capacity before demotion
  commute::Value key_range = 1 << 20;
  int abstract_values = 64;
};

class CacheModule {
 public:
  virtual ~CacheModule() = default;
  virtual std::optional<commute::Value> get(commute::Value key) = 0;
  virtual void put(commute::Value key, commute::Value value) = 0;
};

std::unique_ptr<CacheModule> make_cache_module(Strategy strategy,
                                               const CacheParams& params);

}  // namespace semlock::apps
