#include "commute/builtin_specs.h"

namespace semlock::commute {

namespace {
CommCondition key_differs() { return CommCondition::differ(0, 0); }
}  // namespace

const AdtSpec& set_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Set");
    b.method("add", 1)
        .method("remove", 1)
        .method("contains", 1, /*has_result=*/true)
        .method("size", 0, true)
        .method("clear", 0);
    // Fig. 3(b), row by row.
    b.commute("add", "add", CommCondition::always());
    b.commute("add", "remove", key_differs());
    b.commute("add", "contains", key_differs());
    b.commute("add", "size", CommCondition::never());
    b.commute("add", "clear", CommCondition::never());
    b.commute("remove", "remove", CommCondition::always());
    b.commute("remove", "contains", key_differs());
    b.commute("remove", "size", CommCondition::never());
    b.commute("remove", "clear", CommCondition::never());
    b.commute("contains", "contains", CommCondition::always());
    b.commute("contains", "size", CommCondition::always());
    b.commute("contains", "clear", CommCondition::never());
    b.commute("size", "size", CommCondition::always());
    b.commute("size", "clear", CommCondition::never());
    b.commute("clear", "clear", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& map_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Map");
    b.method("get", 1, true)
        .method("put", 2)
        .method("remove", 1)
        .method("containsKey", 1, true)
        .method("size", 0, true)
        .method("clear", 0);
    b.commute("get", "get", CommCondition::always());
    b.commute("get", "put", key_differs());
    b.commute("get", "remove", key_differs());
    b.commute("get", "containsKey", CommCondition::always());
    b.commute("get", "size", CommCondition::always());
    b.commute("get", "clear", CommCondition::never());
    // put/put on the same key: final value depends on order -> conflict.
    b.commute("put", "put", key_differs());
    b.commute("put", "remove", key_differs());
    b.commute("put", "containsKey", key_differs());
    b.commute("put", "size", CommCondition::never());
    b.commute("put", "clear", CommCondition::never());
    // remove returns void here, so same-key remove/remove commute.
    b.commute("remove", "remove", CommCondition::always());
    b.commute("remove", "containsKey", key_differs());
    b.commute("remove", "size", CommCondition::never());
    b.commute("remove", "clear", CommCondition::never());
    b.commute("containsKey", "containsKey", CommCondition::always());
    b.commute("containsKey", "size", CommCondition::always());
    b.commute("containsKey", "clear", CommCondition::never());
    b.commute("size", "size", CommCondition::always());
    b.commute("size", "clear", CommCondition::never());
    b.commute("clear", "clear", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& fifo_queue_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Queue");
    b.method("enqueue", 1)
        .method("dequeue", 0, true)
        .method("isEmpty", 0, true)
        .method("qsize", 0, true);
    // Strict FIFO: both enqueue order and dequeue results are observable.
    b.commute("enqueue", "enqueue", CommCondition::never());
    b.commute("enqueue", "dequeue", CommCondition::never());
    b.commute("enqueue", "isEmpty", CommCondition::never());
    b.commute("enqueue", "qsize", CommCondition::never());
    b.commute("dequeue", "dequeue", CommCondition::never());
    b.commute("dequeue", "isEmpty", CommCondition::never());
    b.commute("dequeue", "qsize", CommCondition::never());
    b.commute("isEmpty", "isEmpty", CommCondition::always());
    b.commute("isEmpty", "qsize", CommCondition::always());
    b.commute("qsize", "qsize", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& pool_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Pool");
    b.method("enqueue", 1)
        .method("dequeue", 0, true)
        .method("isEmpty", 0, true);
    // Unordered bag: adds commute with each other; a take can observe an
    // add (empty vs non-empty result) and takes race on elements.
    b.commute("enqueue", "enqueue", CommCondition::always());
    b.commute("enqueue", "dequeue", CommCondition::never());
    b.commute("enqueue", "isEmpty", CommCondition::never());
    b.commute("dequeue", "dequeue", CommCondition::never());
    b.commute("dequeue", "isEmpty", CommCondition::never());
    b.commute("isEmpty", "isEmpty", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& multimap_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Multimap");
    b.method("put", 2)
        .method("removeEntry", 2)
        .method("getAll", 1, true)
        .method("removeAll", 1)
        .method("mmsize", 0, true);
    // Set-semantics multimap: put(k,v)/put(k',v') commute even on the same
    // entry (both orders leave the entry present); removeEntry likewise.
    b.commute("put", "put", CommCondition::always());
    b.commute("removeEntry", "removeEntry", CommCondition::always());
    // put vs removeEntry conflict only on the identical (k,v) entry.
    b.commute("put", "removeEntry",
              CommCondition::any_differ({{0, 0}, {1, 1}}));
    b.commute("put", "getAll", key_differs());
    b.commute("removeEntry", "getAll", key_differs());
    b.commute("put", "removeAll", key_differs());
    b.commute("removeEntry", "removeAll", key_differs());
    b.commute("getAll", "getAll", CommCondition::always());
    b.commute("getAll", "removeAll", key_differs());
    b.commute("removeAll", "removeAll", CommCondition::always());
    b.commute("put", "mmsize", CommCondition::never());
    b.commute("removeEntry", "mmsize", CommCondition::never());
    b.commute("removeAll", "mmsize", CommCondition::never());
    b.commute("getAll", "mmsize", CommCondition::always());
    b.commute("mmsize", "mmsize", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& weakmap_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("WeakMap");
    b.method("get", 1, true)
        .method("put", 2)
        .method("remove", 1)
        .method("size", 0, true)
        .method("clear", 0)
        .method("putAll", 0);  // bulk copy; argument is an entire map
    b.commute("get", "get", CommCondition::always());
    b.commute("get", "put", key_differs());
    b.commute("get", "remove", key_differs());
    b.commute("put", "put", key_differs());
    b.commute("put", "remove", key_differs());
    b.commute("remove", "remove", CommCondition::always());
    b.commute("size", "size", CommCondition::always());
    b.commute("size", "get", CommCondition::always());
    b.commute("clear", "clear", CommCondition::always());
    // putAll touches an unbounded set of keys: conflicts with everything
    // except another idempotent-free pair we cannot prove — keep `never`
    // for all pairs involving putAll (the builder default).
    return b.build();
  }();
  return spec;
}

const AdtSpec& counter_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Counter");
    b.method("inc", 0).method("dec", 0).method("read", 0, true);
    b.always_commute({"inc", "dec"});
    b.commute("read", "read", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& register_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Register");
    b.method("write", 1).method("readCell", 0, true);
    b.commute("readCell", "readCell", CommCondition::always());
    return b.build();
  }();
  return spec;
}

const AdtSpec& account_spec() {
  static const AdtSpec spec = [] {
    AdtSpec::Builder b("Account");
    b.method("deposit", 1).method("withdraw", 1).method("balance", 0, true);
    b.always_commute({"deposit", "withdraw"});
    b.commute("balance", "balance", CommCondition::always());
    return b.build();
  }();
  return spec;
}

}  // namespace semlock::commute
