// Built-in commutativity specifications for the ADTs used by the paper's
// examples and benchmarks. Each function returns a process-lifetime
// singleton.
//
// The conditions mirror Fig. 3(b) (Set) and its natural extensions:
// operations commute exactly when neither can observe the other's effect and
// their return values are unaffected by the ordering.
#pragma once

#include "commute/spec.h"

namespace semlock::commute {

// Set: add(v), remove(v), contains(v)->bool, size()->int, clear().
// This is exactly Fig. 3 of the paper (add/remove return void, so same-value
// add/add and remove/remove pairs commute).
const AdtSpec& set_spec();

// Map: get(k)->v, put(k,v), remove(k), containsKey(k)->bool, size()->int,
// clear(). Key-based conditions: ops on different keys commute; put/put on
// the same key do not (last writer wins differs); size/clear conflict with
// all mutators.
const AdtSpec& map_spec();

// FIFO queue: enqueue(v), dequeue()->v, isEmpty()->bool, qsize()->int.
// Strict FIFO state: enqueue/enqueue do NOT commute (the resulting order
// differs), so a FIFO queue admits almost no semantic parallelism.
const AdtSpec& fifo_queue_spec();

// Pool ("unordered queue"): add(v), take()->v, isEmpty()->bool.
// Element order is not observable, so add/add commute. The paper's Intruder
// benchmark enqueues completed flows for detection where processing order is
// semantically irrelevant — the Queue in Fig. 1/Fig. 2 is given this
// specification (otherwise the lock on {enqueue(set)} would serialize all
// producers and Fig. 24's scaling would be impossible).
const AdtSpec& pool_spec();

// Multimap with set semantics (Guava-style; used by the Graph benchmark):
// put(k,v), removeEntry(k,v), getAll(k)->list, removeAll(k), mmsize()->int.
// put/put always commute; put/removeEntry commute unless both key and value
// match; getAll conflicts with same-key mutators.
const AdtSpec& multimap_spec();

// Weak map used by the Tomcat cache's longterm area. Same interface shape as
// Map plus putAll(m) which conflicts with everything.
const AdtSpec& weakmap_spec();

// Shared counter: inc(), dec(), read()->int. inc/inc, dec/dec, inc/dec all
// commute; read conflicts with mutators.
const AdtSpec& counter_spec();

// Single mutable cell: write(v), readCell()->v. Writes of possibly-different
// values conflict; reads commute with reads.
const AdtSpec& register_spec();

// Accumulator register: deposit(v), withdraw(v), balance()->v. deposit and
// withdraw commute with each other (addition is commutative); balance
// conflicts with both. Used by the bank-account example.
const AdtSpec& account_spec();

}  // namespace semlock::commute
