// Symbolic operations and symbolic sets (Section 2.2.1).
//
// A symbolic operation is `p(a1, ..., an)` where each `ai` is a program
// variable, a literal constant, or `*` (all values). A symbolic set is a set
// of symbolic operations; it is the static parameter of the `lock` method.
#pragma once

#include <string>
#include <vector>

#include "commute/value.h"

namespace semlock::commute {

struct SymArg {
  enum class Kind { Star, Const, Var };

  Kind kind = Kind::Star;
  Value constant = 0;   // valid when kind == Const
  std::string var;      // valid when kind == Var

  static SymArg star() { return SymArg{}; }
  static SymArg of_const(Value v) { return SymArg{Kind::Const, v, {}}; }
  static SymArg of_var(std::string name) {
    return SymArg{Kind::Var, 0, std::move(name)};
  }

  bool operator==(const SymArg& o) const {
    return kind == o.kind && (kind != Kind::Const || constant == o.constant) &&
           (kind != Kind::Var || var == o.var);
  }

  std::string to_string() const;
};

struct SymOp {
  std::string method;
  std::vector<SymArg> args;

  bool operator==(const SymOp& o) const {
    return method == o.method && args == o.args;
  }

  // True if `this` represents every runtime operation `o` represents (i.e.
  // same method and each of our args is `*` or equal to the corresponding
  // arg of `o`).
  bool subsumes(const SymOp& o) const;

  std::string to_string() const;
};

// A set of symbolic operations. Kept as a normalized vector: duplicates and
// subsumed operations removed, in first-insertion order (which keeps golden
// prints deterministic).
class SymbolicSet {
 public:
  SymbolicSet() = default;
  explicit SymbolicSet(std::vector<SymOp> ops);

  void insert(SymOp op);
  // Union with another set (normalizing).
  void merge(const SymbolicSet& other);

  bool empty() const { return ops_.empty(); }
  const std::vector<SymOp>& ops() const { return ops_; }

  // A constant symbolic set has no Var arguments (Section 5.1).
  bool is_constant() const;

  // Distinct variable names appearing in the set, in order of appearance.
  std::vector<std::string> variables() const;

  // Replaces every occurrence of variable `name` with `*` — used when the
  // backward analysis crosses an assignment to `name` (Section 4) and when
  // the mode bound forces widening (Section 5.3, optimization 3).
  void widen_variable(const std::string& name);

  bool operator==(const SymbolicSet& o) const { return ops_ == o.ops_; }

  // Rendered like the paper: "{get(id),put(id,*),remove(id)}".
  std::string to_string() const;

 private:
  void normalize();
  std::vector<SymOp> ops_;
};

// Convenience constructors used throughout tests and benchmarks.
SymOp op(std::string method, std::vector<SymArg> args = {});
inline SymArg star() { return SymArg::star(); }
inline SymArg cst(Value v) { return SymArg::of_const(v); }
inline SymArg var(std::string name) { return SymArg::of_var(std::move(name)); }

}  // namespace semlock::commute
