// The commutativity-condition language of commutativity specifications
// (Section 5.2, Fig. 3b).
//
// For a pair of operations (o, o') a specification gives a condition I_{o,o'}
// under which o and o' commute. The conditions that appear in the paper (and
// in every spec we ship) are boolean combinations of argument disequalities,
// so the language is:
//
//   cond ::= true | false | DNF of conjunctions of "o.arg_i != o'.arg_j"
//
// e.g. Set:      add(v) / remove(v')      ->  v != v'
//      Multimap: put(k,v) / remove(k',v') ->  k != k'  OR  v != v'
#pragma once

#include <string>
#include <vector>

namespace semlock::commute {

// One disequality atom: argument `lhs_arg` of the first operation differs
// from argument `rhs_arg` of the second operation.
struct ArgsDiffer {
  int lhs_arg = 0;
  int rhs_arg = 0;

  bool operator==(const ArgsDiffer&) const = default;
};

class CommCondition {
 public:
  enum class Kind { Always, Never, Dnf };

  static CommCondition always() { return CommCondition(Kind::Always); }
  static CommCondition never() { return CommCondition(Kind::Never); }
  // Single atom: args differ.
  static CommCondition differ(int lhs_arg, int rhs_arg);
  // Conjunction: all listed pairs differ.
  static CommCondition all_differ(std::vector<ArgsDiffer> atoms);
  // Disjunction of single atoms: at least one listed pair differs.
  static CommCondition any_differ(std::vector<ArgsDiffer> atoms);
  // General DNF.
  static CommCondition dnf(std::vector<std::vector<ArgsDiffer>> clauses);

  Kind kind() const { return kind_; }
  const std::vector<std::vector<ArgsDiffer>>& clauses() const {
    return clauses_;
  }

  // The same condition with operand roles swapped — used to derive the
  // (m2, m1) specification entry from the (m1, m2) entry.
  CommCondition mirrored() const;

  // Concrete evaluation given the runtime argument vectors of both
  // operations (used by the spec-soundness property tests).
  bool evaluate(const std::vector<std::int64_t>& lhs_args,
                const std::vector<std::int64_t>& rhs_args) const;

  std::string to_string() const;

 private:
  explicit CommCondition(Kind k) : kind_(k) {}

  Kind kind_;
  std::vector<std::vector<ArgsDiffer>> clauses_;  // valid when kind == Dnf
};

}  // namespace semlock::commute
