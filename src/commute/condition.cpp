#include "commute/condition.h"

#include <stdexcept>

namespace semlock::commute {

CommCondition CommCondition::differ(int lhs_arg, int rhs_arg) {
  return all_differ({ArgsDiffer{lhs_arg, rhs_arg}});
}

CommCondition CommCondition::all_differ(std::vector<ArgsDiffer> atoms) {
  return dnf({std::move(atoms)});
}

CommCondition CommCondition::any_differ(std::vector<ArgsDiffer> atoms) {
  std::vector<std::vector<ArgsDiffer>> clauses;
  clauses.reserve(atoms.size());
  for (const auto& a : atoms) clauses.push_back({a});
  return dnf(std::move(clauses));
}

CommCondition CommCondition::dnf(
    std::vector<std::vector<ArgsDiffer>> clauses) {
  if (clauses.empty()) return never();
  CommCondition c(Kind::Dnf);
  c.clauses_ = std::move(clauses);
  return c;
}

CommCondition CommCondition::mirrored() const {
  if (kind_ != Kind::Dnf) return *this;
  std::vector<std::vector<ArgsDiffer>> swapped;
  swapped.reserve(clauses_.size());
  for (const auto& clause : clauses_) {
    std::vector<ArgsDiffer> sc;
    sc.reserve(clause.size());
    for (const auto& a : clause) sc.push_back(ArgsDiffer{a.rhs_arg, a.lhs_arg});
    swapped.push_back(std::move(sc));
  }
  return dnf(std::move(swapped));
}

bool CommCondition::evaluate(const std::vector<std::int64_t>& lhs_args,
                             const std::vector<std::int64_t>& rhs_args) const {
  switch (kind_) {
    case Kind::Always:
      return true;
    case Kind::Never:
      return false;
    case Kind::Dnf:
      for (const auto& clause : clauses_) {
        bool all = true;
        for (const auto& atom : clause) {
          if (atom.lhs_arg >= static_cast<int>(lhs_args.size()) ||
              atom.rhs_arg >= static_cast<int>(rhs_args.size())) {
            throw std::out_of_range("condition references missing argument");
          }
          if (lhs_args[static_cast<std::size_t>(atom.lhs_arg)] ==
              rhs_args[static_cast<std::size_t>(atom.rhs_arg)]) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
      return false;
  }
  return false;
}

std::string CommCondition::to_string() const {
  switch (kind_) {
    case Kind::Always:
      return "true";
    case Kind::Never:
      return "false";
    case Kind::Dnf: {
      std::string out;
      for (std::size_t c = 0; c < clauses_.size(); ++c) {
        if (c) out += " | ";
        for (std::size_t a = 0; a < clauses_[c].size(); ++a) {
          if (a) out += " & ";
          out += "a" + std::to_string(clauses_[c][a].lhs_arg) + "!=b" +
                 std::to_string(clauses_[c][a].rhs_arg);
        }
      }
      return out;
    }
  }
  return "?";
}

}  // namespace semlock::commute
