// Runtime value domain for ADT operation arguments.
//
// The paper's ADT operations carry Java values; for the reproduction all
// operation arguments are modelled as 64-bit integers (keys, node ids,
// element values, and opaque references such as "the Set pointed to by
// `set`" — references are identified by address cast to Value).
#pragma once

#include <cstdint>

namespace semlock::commute {

using Value = std::int64_t;

// The abstraction function phi : Value -> {alpha_0 .. alpha_{n-1}} of
// Section 5.1. The paper uses an arbitrary hash; we use a transparent
// modulus so tests can predict alpha assignments (e.g. Fig. 19 fixes
// phi(5) = alpha_1; with n = 2, 5 mod 2 = 1 reproduces it directly).
class ValueAbstraction {
 public:
  // `num_abstract` is n, the number of abstract values (paper uses up to 64).
  explicit constexpr ValueAbstraction(int num_abstract) noexcept
      : n_(num_abstract > 0 ? num_abstract : 1) {}

  constexpr int size() const noexcept { return n_; }

  // phi(v): non-negative remainder of v modulo n.
  constexpr int alpha_of(Value v) const noexcept {
    const Value m = v % n_;
    return static_cast<int>(m < 0 ? m + n_ : m);
  }

 private:
  int n_;
};

}  // namespace semlock::commute
