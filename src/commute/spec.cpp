#include "commute/spec.h"

#include <stdexcept>

namespace semlock::commute {

int AdtSpec::method_index(const std::string& method) const {
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i].name == method) return static_cast<int>(i);
  }
  return -1;
}

const CommCondition& AdtSpec::condition(int m1, int m2) const {
  const auto n = methods_.size();
  if (m1 < 0 || m2 < 0 || static_cast<std::size_t>(m1) >= n ||
      static_cast<std::size_t>(m2) >= n) {
    throw std::out_of_range("AdtSpec::condition: bad method index");
  }
  return matrix_[static_cast<std::size_t>(m1) * n +
                 static_cast<std::size_t>(m2)];
}

int AdtSpec::Builder::index_of(const std::string& method_name) const {
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i].name == method_name) return static_cast<int>(i);
  }
  return -1;
}

void AdtSpec::Builder::initMatrix() {
  const auto n = methods_.size();
  matrix_.assign(n * n, CommCondition::never());
  matrix_built_ = true;
}

AdtSpec::Builder& AdtSpec::Builder::method(std::string name, int arity,
                                           bool has_result) {
  if (matrix_built_) {
    throw std::logic_error("declare all methods before commute() entries");
  }
  if (index_of(name) >= 0) {
    throw std::invalid_argument("duplicate method: " + name);
  }
  methods_.push_back(MethodSig{std::move(name), arity, has_result});
  return *this;
}

AdtSpec::Builder& AdtSpec::Builder::commute(const std::string& m1,
                                            const std::string& m2,
                                            CommCondition cond) {
  const int i = index_of(m1);
  const int j = index_of(m2);
  if (i < 0 || j < 0) {
    throw std::invalid_argument("commute() on undeclared method: " + m1 +
                                "/" + m2);
  }
  if (!matrix_built_) initMatrix();
  const auto n = methods_.size();
  matrix_[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] =
      cond;
  matrix_[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)] =
      cond.mirrored();
  return *this;
}

AdtSpec::Builder& AdtSpec::Builder::always_commute(
    const std::vector<std::string>& method_names) {
  for (std::size_t i = 0; i < method_names.size(); ++i) {
    for (std::size_t j = i; j < method_names.size(); ++j) {
      commute(method_names[i], method_names[j], CommCondition::always());
    }
  }
  return *this;
}

AdtSpec AdtSpec::Builder::build() {
  if (!matrix_built_) initMatrix();
  return AdtSpec(std::move(name_), std::move(methods_), std::move(matrix_));
}

}  // namespace semlock::commute
