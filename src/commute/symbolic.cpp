#include "commute/symbolic.h"

#include <algorithm>

namespace semlock::commute {

std::string SymArg::to_string() const {
  switch (kind) {
    case Kind::Star:
      return "*";
    case Kind::Const:
      return std::to_string(constant);
    case Kind::Var:
      return var;
  }
  return "?";
}

bool SymOp::subsumes(const SymOp& o) const {
  if (method != o.method || args.size() != o.args.size()) return false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].kind == SymArg::Kind::Star) continue;
    if (!(args[i] == o.args[i])) return false;
  }
  return true;
}

std::string SymOp::to_string() const {
  std::string out = method + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    out += args[i].to_string();
  }
  out += ")";
  return out;
}

SymbolicSet::SymbolicSet(std::vector<SymOp> ops) : ops_(std::move(ops)) {
  normalize();
}

void SymbolicSet::insert(SymOp oper) {
  ops_.push_back(std::move(oper));
  normalize();
}

void SymbolicSet::merge(const SymbolicSet& other) {
  for (const auto& o : other.ops_) ops_.push_back(o);
  normalize();
}

bool SymbolicSet::is_constant() const {
  for (const auto& o : ops_) {
    for (const auto& a : o.args) {
      if (a.kind == SymArg::Kind::Var) return false;
    }
  }
  return true;
}

std::vector<std::string> SymbolicSet::variables() const {
  std::vector<std::string> names;
  for (const auto& o : ops_) {
    for (const auto& a : o.args) {
      if (a.kind == SymArg::Kind::Var &&
          std::find(names.begin(), names.end(), a.var) == names.end()) {
        names.push_back(a.var);
      }
    }
  }
  return names;
}

void SymbolicSet::widen_variable(const std::string& name) {
  for (auto& o : ops_) {
    for (auto& a : o.args) {
      if (a.kind == SymArg::Kind::Var && a.var == name) a = SymArg::star();
    }
  }
  normalize();
}

void SymbolicSet::normalize() {
  std::vector<SymOp> kept;
  for (auto& candidate : ops_) {
    bool subsumed = false;
    for (const auto& k : kept) {
      if (k.subsumes(candidate)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    // Remove previously kept ops that the candidate subsumes.
    std::erase_if(kept,
                  [&](const SymOp& k) { return candidate.subsumes(k); });
    kept.push_back(std::move(candidate));
  }
  // Canonical order: by method name, then argument spelling. Keeps set
  // equality structural and golden prints deterministic.
  std::sort(kept.begin(), kept.end(), [](const SymOp& a, const SymOp& b) {
    if (a.method != b.method) return a.method < b.method;
    return a.to_string() < b.to_string();
  });
  ops_ = std::move(kept);
}

std::string SymbolicSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i) out += ",";
    out += ops_[i].to_string();
  }
  out += "}";
  return out;
}

SymOp op(std::string method, std::vector<SymArg> args) {
  return SymOp{std::move(method), std::move(args)};
}

}  // namespace semlock::commute
