// ADT descriptors and commutativity specifications (Section 5.2).
//
// An AdtSpec names an abstract data type, lists its method signatures, and
// holds for every (method, method) pair the condition under which two
// invocations commute. Missing entries default to `never` (conservative).
#pragma once

#include <string>
#include <vector>

#include "commute/condition.h"

namespace semlock::commute {

struct MethodSig {
  std::string name;
  int arity = 0;
  bool has_result = false;  // whether the method returns a value
};

class AdtSpec {
 public:
  const std::string& name() const { return name_; }
  const std::vector<MethodSig>& methods() const { return methods_; }

  // Index of `method` in methods(), or -1 if unknown.
  int method_index(const std::string& method) const;
  const MethodSig& method(int index) const {
    return methods_[static_cast<std::size_t>(index)];
  }
  int num_methods() const { return static_cast<int>(methods_.size()); }

  // The commutativity condition for an (op of m1, op of m2) pair. Argument
  // indices in the condition refer to (m1's args, m2's args) respectively.
  const CommCondition& condition(int m1, int m2) const;

  class Builder {
   public:
    explicit Builder(std::string adt_name) : name_(std::move(adt_name)) {}

    Builder& method(std::string name, int arity, bool has_result = false);

    // Declares the condition for (m1, m2) and automatically installs the
    // mirrored condition for (m2, m1). `m1`/`m2` must already be declared.
    Builder& commute(const std::string& m1, const std::string& m2,
                     CommCondition cond);

    // Shorthand: all pairs among `methods` always commute with each other
    // (including self pairs).
    Builder& always_commute(const std::vector<std::string>& methods);

    AdtSpec build();

   private:
    int index_of(const std::string& name) const;
    void initMatrix();

    std::string name_;
    std::vector<MethodSig> methods_;
    std::vector<CommCondition> matrix_;
    bool matrix_built_ = false;
  };

 private:
  AdtSpec(std::string name, std::vector<MethodSig> methods,
          std::vector<CommCondition> matrix)
      : name_(std::move(name)),
        methods_(std::move(methods)),
        matrix_(std::move(matrix)) {}

  std::string name_;
  std::vector<MethodSig> methods_;
  // Row-major matrix [m1][m2].
  std::vector<CommCondition> matrix_;
};

}  // namespace semlock::commute
