#include "server/cc_backend.h"

#include <atomic>
#include <memory>
#include <vector>

#include "baseline/global_lock.h"
#include "baseline/occ.h"
#include "baseline/two_pl.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"
#include "semlock/transaction.h"
#include "util/spinlock.h"

namespace semlock::server {

const char* cc_mode_name(CCMode m) {
  switch (m) {
    case CCMode::kSemantic: return "SEMANTIC";
    case CCMode::kSerial: return "SERIAL";
    case CCMode::kGlobalLock: return "GLOBAL_LOCK";
    case CCMode::kTwoPL: return "TWO_PL";
    case CCMode::kOcc: return "OCC";
  }
  return "?";
}

std::optional<CCMode> parse_cc_mode(std::string_view text) {
  if (text == "semantic") return CCMode::kSemantic;
  if (text == "serial") return CCMode::kSerial;
  if (text == "global") return CCMode::kGlobalLock;
  if (text == "2pl") return CCMode::kTwoPL;
  if (text == "occ") return CCMode::kOcc;
  return std::nullopt;
}

namespace {

using commute::Value;

// Flattened cell index space shared by every backend: the same Request
// always addresses the same logical record in every mode.
struct Layout {
  explicit Layout(const StoreConfig& cfg)
      : A(cfg.accounts), K(cfg.kv_keys), N(cfg.nodes) {}

  std::size_t total() const {
    return static_cast<std::size_t>(A + K + N * N + 2 * N);
  }
  std::size_t acct(std::int64_t i) const { return static_cast<std::size_t>(i); }
  std::size_t kv(std::int64_t k) const {
    return static_cast<std::size_t>(A + k);
  }
  std::size_t edge(std::int64_t a, std::int64_t b) const {
    return static_cast<std::size_t>(A + K + a * N + b);
  }
  std::size_t succ(std::int64_t a) const {
    return static_cast<std::size_t>(A + K + N * N + a);
  }
  std::size_t pred(std::int64_t b) const {
    return static_cast<std::size_t>(A + K + N * N + N + b);
  }

  std::int64_t A, K, N;
};

// The value ComputeIfAbsent installs: any nonzero pure function of the key
// (zero encodes "absent").
std::int64_t cia_value(std::int64_t key) { return key + 1; }

// Logical operations the bodies perform, mapped once to (spec, method) for
// the checked mode's history events. Cells are recorded as individual ADT
// instances: accounts under account_spec, kv/edge cells as registers,
// degree cells as counters — the finest-grained truth the serializability
// oracle can be held to.
enum class LogOp : std::uint8_t {
  kKvGet,      // register readCell
  kKvPut,      // register write(v)
  kWithdraw,   // account withdraw(amt)
  kDeposit,    // account deposit(amt)
  kBalance,    // account balance()
  kEdgeGet,    // register readCell
  kEdgePut,    // register write(v)
  kDegInc,     // counter inc()
  kDegDec,     // counter dec()
  kDegRead,    // counter read()
};

struct SpecIds {
  const commute::AdtSpec* account = &commute::account_spec();
  int deposit = account->method_index("deposit");
  int withdraw = account->method_index("withdraw");
  int balance = account->method_index("balance");
  const commute::AdtSpec* reg = &commute::register_spec();
  int write = reg->method_index("write");
  int read_cell = reg->method_index("readCell");
  const commute::AdtSpec* counter = &commute::counter_spec();
  int inc = counter->method_index("inc");
  int dec = counter->method_index("dec");
  int read = counter->method_index("read");
};

const SpecIds& spec_ids() {
  static const SpecIds ids;
  return ids;
}

struct LogEntry {
  std::size_t cell;
  LogOp op;
  Value arg;
};

void record_entry(HistoryRecorder* rec, std::uint64_t txn, const void* inst,
                  LogOp op, Value arg) {
  const SpecIds& ids = spec_ids();
  const commute::AdtSpec* spec = nullptr;
  int method = -1;
  std::vector<Value> args;
  switch (op) {
    case LogOp::kKvGet:
    case LogOp::kEdgeGet:
      spec = ids.reg;
      method = ids.read_cell;
      break;
    case LogOp::kKvPut:
    case LogOp::kEdgePut:
      spec = ids.reg;
      method = ids.write;
      args = {arg};
      break;
    case LogOp::kWithdraw:
      spec = ids.account;
      method = ids.withdraw;
      args = {arg};
      break;
    case LogOp::kDeposit:
      spec = ids.account;
      method = ids.deposit;
      args = {arg};
      break;
    case LogOp::kBalance:
      spec = ids.account;
      method = ids.balance;
      break;
    case LogOp::kDegInc:
      spec = ids.counter;
      method = ids.inc;
      break;
    case LogOp::kDegDec:
      spec = ids.counter;
      method = ids.dec;
      break;
    case LogOp::kDegRead:
      spec = ids.counter;
      method = ids.read;
      break;
  }
  rec->record(txn, inst, spec, method, std::move(args));
}

// One request body, generic over the storage discipline. `St` provides
//   load(cell) / store(cell, v) / add(cell, delta) / note(cell, op, arg)
// so the identical logic runs over the pessimistic backends' atomic cells
// (note = record inline, locks held) and OCC's buffered read/write sets
// (note = append to the attempt's op log, recorded at commit).
template <typename St>
ExecResult run_body(const Request& r, const Layout& L, St& st) {
  ExecResult res;
  switch (r.kind) {
    case RequestKind::kComputeIfAbsent: {
      const std::size_t c = L.kv(r.a);
      const std::int64_t cur = st.load(c);
      st.note(c, LogOp::kKvGet, 0);
      if (cur == 0) {
        const std::int64_t v = cia_value(r.a);
        st.store(c, v);
        st.note(c, LogOp::kKvPut, v);
        res.observed = 1;
      }
      break;
    }
    case RequestKind::kTransfer: {
      st.add(L.acct(r.a), -r.amount);
      st.note(L.acct(r.a), LogOp::kWithdraw, r.amount);
      st.add(L.acct(r.b), r.amount);
      st.note(L.acct(r.b), LogOp::kDeposit, r.amount);
      break;
    }
    case RequestKind::kAudit: {
      res.observed = st.load(L.acct(r.a)) + st.load(L.acct(r.b));
      st.note(L.acct(r.a), LogOp::kBalance, 0);
      st.note(L.acct(r.b), LogOp::kBalance, 0);
      break;
    }
    case RequestKind::kInsertEdge: {
      const std::size_t e = L.edge(r.a, r.b);
      const std::int64_t cur = st.load(e);
      st.note(e, LogOp::kEdgeGet, 0);
      if (cur == 0) {
        st.store(e, 1);
        st.note(e, LogOp::kEdgePut, 1);
        st.add(L.succ(r.a), 1);
        st.note(L.succ(r.a), LogOp::kDegInc, 0);
        st.add(L.pred(r.b), 1);
        st.note(L.pred(r.b), LogOp::kDegInc, 0);
        res.observed = 1;
      }
      break;
    }
    case RequestKind::kRemoveEdge: {
      const std::size_t e = L.edge(r.a, r.b);
      const std::int64_t cur = st.load(e);
      st.note(e, LogOp::kEdgeGet, 0);
      if (cur != 0) {
        st.store(e, 0);
        st.note(e, LogOp::kEdgePut, 0);
        st.add(L.succ(r.a), -1);
        st.note(L.succ(r.a), LogOp::kDegDec, 0);
        st.add(L.pred(r.b), -1);
        st.note(L.pred(r.b), LogOp::kDegDec, 0);
        res.observed = 1;
      }
      break;
    }
    case RequestKind::kDegree: {
      res.observed = st.load(L.succ(r.a));
      st.note(L.succ(r.a), LogOp::kDegRead, 0);
      break;
    }
  }
  return res;
}

// --- Pessimistic backends (shared atomic-cell store) -------------------------
//
// Cells are atomics because the SEMANTIC mode legitimately runs commuting
// operations concurrently (two transfers depositing into the same hot
// account hold the same self-commuting Move mode at once); fetch_add makes
// that linearizable, exactly the "linearizable ADT under a semantic lock"
// contract of Section 2.2. The serialized modes pay a relaxed-atomic cost
// that is noise next to their locking.
class PlainStoreBackend : public CCBackend {
 public:
  PlainStoreBackend(const StoreConfig& cfg, HistoryRecorder* recorder)
      : layout_(cfg), cells_(layout_.total()), recorder_(recorder) {
    for (std::int64_t i = 0; i < layout_.A; ++i) {
      cells_[layout_.acct(i)].store(cfg.initial_balance,
                                    std::memory_order_relaxed);
    }
  }

  std::int64_t balance_total() const override {
    std::int64_t sum = 0;
    for (std::int64_t i = 0; i < layout_.A; ++i) {
      sum += cells_[layout_.acct(i)].load(std::memory_order_relaxed);
    }
    return sum;
  }
  std::int64_t kv_inserted() const override {
    std::int64_t n = 0;
    for (std::int64_t k = 0; k < layout_.K; ++k) {
      n += cells_[layout_.kv(k)].load(std::memory_order_relaxed) != 0;
    }
    return n;
  }
  std::int64_t edges_present() const override {
    std::int64_t n = 0;
    for (std::int64_t a = 0; a < layout_.N; ++a) {
      for (std::int64_t b = 0; b < layout_.N; ++b) {
        n += cells_[layout_.edge(a, b)].load(std::memory_order_relaxed) != 0;
      }
    }
    return n;
  }
  std::uint64_t digest() const override {
    std::uint64_t h = 1469598103934665603ULL;
    for (const auto& c : cells_) {
      h ^= static_cast<std::uint64_t>(c.load(std::memory_order_relaxed));
      h *= 1099511628211ULL;
    }
    return h;
  }

 protected:
  struct Storage {
    std::vector<std::atomic<std::int64_t>>* cells;
    HistoryRecorder* rec;
    std::uint64_t txn;

    std::int64_t load(std::size_t c) const {
      return (*cells)[c].load(std::memory_order_acquire);
    }
    void store(std::size_t c, std::int64_t v) {
      (*cells)[c].store(v, std::memory_order_release);
    }
    void add(std::size_t c, std::int64_t d) {
      (*cells)[c].fetch_add(d, std::memory_order_acq_rel);
    }
    void note(std::size_t c, LogOp op, Value arg) {
      if (rec) record_entry(rec, txn, &(*cells)[c], op, arg);
    }
  };

  // Runs the body with locks already held by the caller.
  ExecResult locked_body(const Request& r) {
    Storage st{&cells_, recorder_,
               recorder_ ? recorder_->begin_txn() : 0};
    return run_body(r, layout_, st);
  }

  Layout layout_;
  std::vector<std::atomic<std::int64_t>> cells_;
  HistoryRecorder* recorder_;
};

class SerialBackend final : public PlainStoreBackend {
 public:
  using PlainStoreBackend::PlainStoreBackend;
  CCMode mode() const override { return CCMode::kSerial; }
  // Precondition: a single executor (the server clamps SERIAL to 1 worker).
  ExecResult execute(const Request& r) override { return locked_body(r); }
};

class GlobalLockBackend final : public PlainStoreBackend {
 public:
  using PlainStoreBackend::PlainStoreBackend;
  CCMode mode() const override { return CCMode::kGlobalLock; }
  ExecResult execute(const Request& r) override {
    baseline::GlobalSection section(global_);
    return locked_body(r);
  }

 private:
  baseline::GlobalLock global_;
};

class TwoPLBackend final : public PlainStoreBackend {
 public:
  TwoPLBackend(const StoreConfig& cfg, HistoryRecorder* recorder)
      : PlainStoreBackend(cfg, recorder),
        account_locks_(static_cast<std::size_t>(cfg.accounts)) {}

  CCMode mode() const override { return CCMode::kTwoPL; }

  ExecResult execute(const Request& r) override {
    // One standard lock per ADT instance (the paper's 2PL baseline): the kv
    // Map and the graph's three containers are each ONE instance — their
    // locks serialize whole tables — while each account is its own
    // instance, locked in address order like Fig. 12's dynamic ordering.
    baseline::TwoPLTxn txn;
    switch (r.kind) {
      case RequestKind::kComputeIfAbsent:
        txn.acquire(&kv_lock_);
        break;
      case RequestKind::kTransfer:
      case RequestKind::kAudit: {
        baseline::InstanceLock* pair[2] = {
            &account_locks_[static_cast<std::size_t>(r.a)],
            &account_locks_[static_cast<std::size_t>(r.b)]};
        txn.acquire_ordered(pair);
        break;
      }
      case RequestKind::kInsertEdge:
      case RequestKind::kRemoveEdge:
        txn.acquire(&edge_lock_);
        txn.acquire(&succ_lock_);
        txn.acquire(&pred_lock_);
        break;
      case RequestKind::kDegree:
        txn.acquire(&succ_lock_);
        break;
    }
    return locked_body(r);
  }

 private:
  std::vector<baseline::InstanceLock> account_locks_;
  baseline::InstanceLock kv_lock_;
  baseline::InstanceLock edge_lock_;
  baseline::InstanceLock succ_lock_;
  baseline::InstanceLock pred_lock_;
};

class SemanticBackend final : public PlainStoreBackend {
 public:
  SemanticBackend(const StoreConfig& cfg, HistoryRecorder* recorder)
      : PlainStoreBackend(cfg, recorder),
        account_table_(make_account_table()),
        map_table_(make_map_table(cfg.abstract_values)),
        kv_lock_(map_table_),
        edge_lock_(map_table_),
        succ_lock_(map_table_),
        pred_lock_(map_table_) {
    move_mode_ = account_table_.resolve_constant(0);
    audit_mode_ = account_table_.resolve_constant(1);
    account_locks_.reserve(static_cast<std::size_t>(cfg.accounts));
    for (std::int64_t i = 0; i < cfg.accounts; ++i) {
      account_locks_.push_back(std::make_unique<SemanticLock>(account_table_));
    }
  }

  CCMode mode() const override { return CCMode::kSemantic; }

  ExecResult execute(const Request& r) override {
    Transaction txn;  // OS2PL prologue/epilogue: releases on scope exit
    switch (r.kind) {
      case RequestKind::kComputeIfAbsent: {
        const Value vals[1] = {r.a};
        txn.lv(&kv_lock_, kUpdateSite, vals);
        break;
      }
      case RequestKind::kTransfer:
      case RequestKind::kAudit: {
        const int mode =
            r.kind == RequestKind::kTransfer ? move_mode_ : audit_mode_;
        Transaction::DynTarget targets[2] = {
            {account_locks_[static_cast<std::size_t>(r.a)].get(), mode},
            {account_locks_[static_cast<std::size_t>(r.b)].get(), mode}};
        txn.lv_ordered(targets);
        break;
      }
      case RequestKind::kInsertEdge:
      case RequestKind::kRemoveEdge: {
        // Static container order (edge, succ, pred) on keyed update modes;
        // same order for insert and remove, so no cross-kind deadlock.
        const Value eid[1] = {r.a * layout_.N + r.b};
        const Value src[1] = {r.a};
        const Value dst[1] = {r.b};
        txn.lv(&edge_lock_, kUpdateSite, eid);
        txn.lv(&succ_lock_, kUpdateSite, src);
        txn.lv(&pred_lock_, kUpdateSite, dst);
        break;
      }
      case RequestKind::kDegree: {
        const Value src[1] = {r.a};
        txn.lv(&succ_lock_, kReadSite, src);
        break;
      }
    }
    return locked_body(r);
  }

 private:
  // Lock sites mirroring what the synthesis infers for these bodies
  // (tests/synth_golden_test pins the shapes): a read mode {get(k)} that
  // self-commutes, and the check-then-act update mode {get(k), put(k,*)}.
  static constexpr int kReadSite = 0;
  static constexpr int kUpdateSite = 1;

  static ModeTable make_account_table() {
    using commute::op;
    using commute::star;
    using commute::SymbolicSet;
    return ModeTable::compile(
        commute::account_spec(),
        {
            // Move: deposit/withdraw commute, so transfers touching the
            // same hot account still run in parallel — the semantic win.
            SymbolicSet({op("deposit", {star()}), op("withdraw", {star()})}),
            SymbolicSet({op("balance")}),
        },
        ModeTableConfig{});
  }

  static ModeTable make_map_table(int abstract_values) {
    using commute::op;
    using commute::star;
    using commute::SymbolicSet;
    using commute::var;
    ModeTableConfig cfg;
    cfg.abstract_values = abstract_values;
    return ModeTable::compile(
        commute::map_spec(),
        {
            SymbolicSet({op("get", {var("k")})}),
            SymbolicSet({op("get", {var("k")}), op("put", {var("k"), star()})}),
        },
        cfg);
  }

  ModeTable account_table_;
  ModeTable map_table_;
  std::vector<std::unique_ptr<SemanticLock>> account_locks_;
  SemanticLock kv_lock_;
  SemanticLock edge_lock_;
  SemanticLock succ_lock_;
  SemanticLock pred_lock_;
  int move_mode_ = 0;
  int audit_mode_ = 0;
};

// --- OCC ---------------------------------------------------------------------

class OccBackend final : public CCBackend {
 public:
  OccBackend(const StoreConfig& cfg, HistoryRecorder* recorder)
      : layout_(cfg), cells_(layout_.total()), recorder_(recorder) {
    for (std::int64_t i = 0; i < layout_.A; ++i) {
      cells_[layout_.acct(i)].val.store(cfg.initial_balance,
                                        std::memory_order_relaxed);
    }
  }

  CCMode mode() const override { return CCMode::kOcc; }

  ExecResult execute(const Request& r) override {
    thread_local baseline::OccTxn txn;
    thread_local std::uint64_t backoff_state = 0x9e3779b97f4a7c15ULL;
    thread_local std::vector<LogEntry> oplog;

    std::uint32_t aborts = 0;
    for (;;) {
      txn.reset();
      oplog.clear();
      Storage st{&cells_, &txn, recorder_ ? &oplog : nullptr};
      ExecResult res = run_body(r, layout_, st);
      bool committed;
      if (recorder_) {
        // Checked mode: commit and history append are one critical section,
        // so event sequence numbers are exactly commit order and the oracle
        // never sees a half-committed interleaving. Aborted attempts are
        // retried without recording anything.
        std::scoped_lock lk(checked_commit_lock_);
        committed = txn.commit();
        if (committed) {
          const std::uint64_t id = recorder_->begin_txn();
          for (const LogEntry& e : oplog) {
            record_entry(recorder_, id, &cells_[e.cell], e.op, e.arg);
          }
        }
      } else {
        committed = txn.commit();
      }
      if (committed) {
        res.retries = aborts;
        return res;
      }
      ++aborts;
      backoff_state ^= backoff_state << 13;
      backoff_state ^= backoff_state >> 7;
      backoff_state ^= backoff_state << 17;
      const std::uint32_t cap = 1u << (aborts < 10 ? aborts : 10);
      for (std::uint32_t i = backoff_state % cap; i > 0; --i) {
        util::cpu_relax();
      }
    }
  }

  std::int64_t balance_total() const override {
    std::int64_t sum = 0;
    for (std::int64_t i = 0; i < layout_.A; ++i) {
      sum += cells_[layout_.acct(i)].val.load(std::memory_order_relaxed);
    }
    return sum;
  }
  std::int64_t kv_inserted() const override {
    std::int64_t n = 0;
    for (std::int64_t k = 0; k < layout_.K; ++k) {
      n += cells_[layout_.kv(k)].val.load(std::memory_order_relaxed) != 0;
    }
    return n;
  }
  std::int64_t edges_present() const override {
    std::int64_t n = 0;
    for (std::int64_t a = 0; a < layout_.N; ++a) {
      for (std::int64_t b = 0; b < layout_.N; ++b) {
        n += cells_[layout_.edge(a, b)].val.load(std::memory_order_relaxed) !=
             0;
      }
    }
    return n;
  }
  std::uint64_t digest() const override {
    std::uint64_t h = 1469598103934665603ULL;
    for (const auto& c : cells_) {
      h ^= static_cast<std::uint64_t>(c.val.load(std::memory_order_relaxed));
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  struct Storage {
    std::vector<baseline::OccCell>* cells;
    baseline::OccTxn* txn;
    std::vector<LogEntry>* oplog;  // null when unchecked

    std::int64_t load(std::size_t c) { return txn->read(&(*cells)[c]); }
    void store(std::size_t c, std::int64_t v) { txn->write(&(*cells)[c], v); }
    void add(std::size_t c, std::int64_t d) {
      txn->write(&(*cells)[c], txn->read(&(*cells)[c]) + d);
    }
    void note(std::size_t c, LogOp op, Value arg) {
      if (oplog) oplog->push_back(LogEntry{c, op, arg});
    }
  };

  Layout layout_;
  std::vector<baseline::OccCell> cells_;
  HistoryRecorder* recorder_;
  util::Spinlock checked_commit_lock_;
};

}  // namespace

std::unique_ptr<CCBackend> make_cc_backend(CCMode mode, const StoreConfig& cfg,
                                           HistoryRecorder* recorder) {
  switch (mode) {
    case CCMode::kSemantic:
      return std::make_unique<SemanticBackend>(cfg, recorder);
    case CCMode::kSerial:
      return std::make_unique<SerialBackend>(cfg, recorder);
    case CCMode::kGlobalLock:
      return std::make_unique<GlobalLockBackend>(cfg, recorder);
    case CCMode::kTwoPL:
      return std::make_unique<TwoPLBackend>(cfg, recorder);
    case CCMode::kOcc:
      return std::make_unique<OccBackend>(cfg, recorder);
  }
  return nullptr;
}

}  // namespace semlock::server
