#include "server/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/waitgraph.h"
#include "obs/window.h"
#include "runtime/stall_watchdog.h"
#include "util/env.h"

namespace semlock::server {

// --- the stats provider ------------------------------------------------------

namespace {

std::mutex g_provider_mu;
AdminStatsProvider g_provider;

HealthSample sample_provider() {
  std::lock_guard<std::mutex> g(g_provider_mu);
  if (!g_provider) return HealthSample{};
  return g_provider();
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void set_admin_stats_provider(AdminStatsProvider provider) {
  std::lock_guard<std::mutex> g(g_provider_mu);
  g_provider = std::move(provider);
}

void clear_admin_stats_provider() {
  std::lock_guard<std::mutex> g(g_provider_mu);
  g_provider = nullptr;
}

// --- admission state ---------------------------------------------------------

int admission_state(const HealthSample& s) {
  if (s.shed > 0) return 2;
  if (s.queue_capacity > 0 && s.queue_depth_max * 2 >= s.queue_capacity) {
    return 1;
  }
  return 0;
}

const char* admission_state_name(int state) {
  switch (state) {
    case 0: return "ok";
    case 1: return "saturated";
    case 2: return "overloaded";
    default: return "unknown";
  }
}

// --- routing -----------------------------------------------------------------

namespace {

std::string metrics_body() {
  // The lock-runtime families from the obs layer, then the server family
  // appended with the same builder so the page stays one valid exposition.
  std::string out = obs::render_prometheus(obs::collect_metrics(),
                                           obs::event_count_totals(),
                                           obs::global_windows().snapshot());
  const HealthSample s = sample_provider();
  obs::PromBuilder b;

  b.help("semlock_server_offered_total", "Requests offered to the server");
  b.type("semlock_server_offered_total", "counter");
  b.value_u64("semlock_server_offered_total", {}, s.offered);

  b.help("semlock_server_completed_total",
         "Requests completed, by concurrency-control backend");
  b.type("semlock_server_completed_total", "counter");
  b.value_u64("semlock_server_completed_total",
              {{"cc_backend", s.cc_backend}}, s.completed);

  b.help("semlock_server_shed_total",
         "Requests shed by admission control (full shard queue)");
  b.type("semlock_server_shed_total", "counter");
  b.value_u64("semlock_server_shed_total", {}, s.shed);

  b.help("semlock_server_queue_depth", "Current queue depth, by shard");
  b.type("semlock_server_queue_depth", "gauge");
  for (std::size_t q = 0; q < s.queue_depths.size(); ++q) {
    char shard[16];
    std::snprintf(shard, sizeof(shard), "%zu", q);
    b.value_u64("semlock_server_queue_depth", {{"shard", shard}},
                s.queue_depths[q]);
  }

  b.help("semlock_server_queue_high_watermark",
         "Lifetime max queue depth across shards");
  b.type("semlock_server_queue_high_watermark", "gauge");
  b.value_u64("semlock_server_queue_high_watermark", {},
              s.queue_high_watermark);

  b.help("semlock_server_admission_state",
         "0 = ok, 1 = saturated, 2 = overloaded (sticky once shedding)");
  b.type("semlock_server_admission_state", "gauge");
  b.value_u64("semlock_server_admission_state", {},
              static_cast<std::uint64_t>(admission_state(s)));

  b.help("semlock_watchdog_stalls_total",
         "Stall reports from every watchdog since process start");
  b.type("semlock_watchdog_stalls_total", "counter");
  b.value_u64("semlock_watchdog_stalls_total", {},
              runtime::global_stalls_reported());

  out += b.text();
  return out;
}

std::string metrics_json_body() {
  std::string out = "{\"schema\": \"semlock-metrics-live-v1\", \"windowed\": ";
  out += obs::global_windows().to_json();
  out += ", \"cumulative\": ";
  out += obs::collect_metrics().to_json();
  out += '}';
  return out;
}

std::string healthz_body(int* status) {
  const HealthSample s = sample_provider();
  const int state = admission_state(s);
  *status = state == 2 ? 503 : 200;
  std::string out = "{\"status\": \"";
  out += admission_state_name(state);
  out += "\", \"admission_state\": ";
  append_u64(out, static_cast<std::uint64_t>(state));
  out += ", \"server_running\": ";
  out += s.server_running ? "true" : "false";
  out += ", \"cc_backend\": \"";
  out += s.cc_backend;
  out += "\", \"workers\": ";
  append_u64(out, static_cast<std::uint64_t>(s.workers));
  out += ", \"shards\": ";
  append_u64(out, static_cast<std::uint64_t>(s.shards));
  out += ", \"offered\": ";
  append_u64(out, s.offered);
  out += ", \"completed\": ";
  append_u64(out, s.completed);
  out += ", \"shed\": ";
  append_u64(out, s.shed);
  out += ", \"queue_capacity\": ";
  append_u64(out, s.queue_capacity);
  out += ", \"queue_depth_max\": ";
  append_u64(out, s.queue_depth_max);
  out += ", \"queue_depth_total\": ";
  append_u64(out, s.queue_depth_total);
  out += ", \"queue_high_watermark\": ";
  append_u64(out, s.queue_high_watermark);
  out += ", \"watchdog_stalls\": ";
  append_u64(out, runtime::global_stalls_reported());
  out += ", \"window_rotations\": ";
  append_u64(out, obs::global_windows().rotations());
  out += '}';
  return out;
}

}  // namespace

std::string AdminEndpoint::handle(const std::string& target, int* status,
                                  std::string* content_type) {
  *status = 200;
  if (target == "/metrics") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return metrics_body();
  }
  if (target == "/metrics.json") {
    *content_type = "application/json";
    return metrics_json_body();
  }
  if (target == "/healthz") {
    *content_type = "application/json";
    return healthz_body(status);
  }
  if (target == "/waitgraph") {
    *content_type = "application/json";
    return obs::waitgraph_json();
  }
  if (target == "/waitgraph.dot") {
    *content_type = "text/plain; charset=utf-8";
    return obs::waitgraph_dot();
  }
  *status = 404;
  *content_type = "text/plain; charset=utf-8";
  return "not found\n";
}

// --- the socket loop ---------------------------------------------------------

AdminEndpoint::AdminEndpoint(std::uint16_t port) : port_(port) {}

AdminEndpoint::~AdminEndpoint() { stop(); }

bool AdminEndpoint::start(std::string* error) {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) *error = "bind/listen: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void AdminEndpoint::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblocks the accept(): shutdown makes the blocked accept return with
  // an error, and the loop sees running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminEndpoint::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() from stop(), or a real error either way the loop
      // re-checks running_.
      continue;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
      ::close(fd);
      continue;
    }
    buf[n] = '\0';

    // Request line: METHOD SP target SP version. Anything unparsable or
    // non-GET gets a 400/405 — one scraper, no need for more.
    std::string target;
    bool is_get = false;
    {
      const char* sp1 = std::strchr(buf, ' ');
      const char* eol = std::strstr(buf, "\r\n");
      if (sp1 != nullptr && eol != nullptr && sp1 < eol) {
        const char* sp2 =
            static_cast<const char*>(memchr(sp1 + 1, ' ',
                                            static_cast<std::size_t>(
                                                eol - sp1 - 1)));
        if (sp2 != nullptr) {
          is_get = std::strncmp(buf, "GET ", 4) == 0;
          target.assign(sp1 + 1, sp2);
        }
      }
    }

    int status = 400;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "bad request\n";
    if (!target.empty()) {
      if (is_get) {
        body = handle(target, &status, &content_type);
      } else {
        status = 405;
        body = "method not allowed\n";
      }
    }

    const char* reason = status == 200   ? "OK"
                         : status == 404 ? "Not Found"
                         : status == 405 ? "Method Not Allowed"
                         : status == 503 ? "Service Unavailable"
                                         : "Bad Request";
    std::string resp = "HTTP/1.0 ";
    char code[8];
    std::snprintf(code, sizeof(code), "%d ", status);
    resp += code;
    resp += reason;
    resp += "\r\nContent-Type: ";
    resp += content_type;
    resp += "\r\nContent-Length: ";
    append_u64(resp, body.size());
    resp += "\r\nConnection: close\r\n\r\n";
    resp += body;

    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t sent =
          ::send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
      if (sent <= 0) break;
      off += static_cast<std::size_t>(sent);
    }
    ::close(fd);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

// --- env wiring --------------------------------------------------------------

int metrics_port_from_env_text(const char* text) {
  return static_cast<int>(
      util::env_int_in_range("SEMLOCK_METRICS_PORT", text, 1, 65535,
                             "metrics endpoint disabled")
          .value_or(0));
}

std::unique_ptr<AdminEndpoint> start_admin_endpoint_from_env() {
  const int port = metrics_port_from_env_text(
      std::getenv("SEMLOCK_METRICS_PORT"));
  if (port == 0) return nullptr;
  obs::start_window_collector_from_env();
  auto ep = std::make_unique<AdminEndpoint>(static_cast<std::uint16_t>(port));
  std::string error;
  if (!ep->start(&error)) {
    std::fprintf(stderr,
                 "[semlock] SEMLOCK_METRICS_PORT=%d: endpoint not started "
                 "(%s)\n",
                 port, error.c_str());
    return nullptr;
  }
  std::fprintf(stderr, "[semlock] metrics endpoint on 127.0.0.1:%u\n",
               static_cast<unsigned>(ep->port()));
  return ep;
}

}  // namespace semlock::server
