#include "server/traffic_gen.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "server/zipf.h"
#include "util/rng.h"

namespace semlock::server {

namespace {

constexpr double kNanosPerMilli = 1e6;
constexpr double kNanosPerSecond = 1e9;

// Exp(1) variate from a uniform draw; clamped away from log(0).
double exp_variate(util::Xoshiro256& rng) {
  const double u =
      (static_cast<double>(rng.next() >> 11) + 1.0) / 9007199254740993.0;
  return -std::log(u);
}

struct KindSampler {
  explicit KindSampler(const TrafficMix& mix) {
    int acc = 0;
    for (int k = 0; k < kNumRequestKinds; ++k) {
      acc += mix.pct[k];
      cumulative[k] = acc;
    }
  }
  RequestKind sample(util::Xoshiro256& rng) const {
    const int roll = static_cast<int>(rng.next_below(100));
    for (int k = 0; k < kNumRequestKinds; ++k) {
      if (roll < cumulative[k]) return static_cast<RequestKind>(k);
    }
    return RequestKind::kComputeIfAbsent;
  }
  int cumulative[kNumRequestKinds] = {};
};

// Fills everything except id and arrival_ns.
void fill_body(Request* r, const KindSampler& kinds,
               const ZipfSampler& accounts, const ZipfSampler& kv_keys,
               const ZipfSampler& nodes, util::Xoshiro256& rng) {
  r->kind = kinds.sample(rng);
  switch (r->kind) {
    case RequestKind::kComputeIfAbsent:
      r->a = static_cast<std::int64_t>(kv_keys.next_key(rng));
      r->b = 0;
      r->amount = 0;
      break;
    case RequestKind::kTransfer:
    case RequestKind::kAudit: {
      const auto a = static_cast<std::int64_t>(accounts.next_key(rng));
      auto b = static_cast<std::int64_t>(accounts.next_key(rng));
      if (b == a) {
        // Self-transfers are legal but uninteresting; step to a neighbor.
        b = (a + 1) % static_cast<std::int64_t>(accounts.n());
      }
      r->a = a;
      r->b = b;
      r->amount =
          r->kind == RequestKind::kTransfer ? rng.next_in(1, 100) : 0;
      break;
    }
    case RequestKind::kInsertEdge:
    case RequestKind::kRemoveEdge:
    case RequestKind::kDegree:
      r->a = static_cast<std::int64_t>(nodes.next_key(rng));
      r->b = static_cast<std::int64_t>(nodes.next_key(rng));
      r->amount = 0;
      break;
  }
}

}  // namespace

bool parse_traffic_mix(const char* name, TrafficMix* out) {
  if (name == nullptr) return false;
  TrafficMix m;
  auto set = [&m](int cia, int xfer, int audit, int ins, int rem, int deg) {
    m.pct[static_cast<int>(RequestKind::kComputeIfAbsent)] = cia;
    m.pct[static_cast<int>(RequestKind::kTransfer)] = xfer;
    m.pct[static_cast<int>(RequestKind::kAudit)] = audit;
    m.pct[static_cast<int>(RequestKind::kInsertEdge)] = ins;
    m.pct[static_cast<int>(RequestKind::kRemoveEdge)] = rem;
    m.pct[static_cast<int>(RequestKind::kDegree)] = deg;
  };
  if (std::strcmp(name, "kv") == 0) {
    set(100, 0, 0, 0, 0, 0);
  } else if (std::strcmp(name, "bank") == 0) {
    set(0, 70, 30, 0, 0, 0);
  } else if (std::strcmp(name, "graph") == 0) {
    set(0, 0, 0, 40, 30, 30);
  } else if (std::strcmp(name, "mixed") == 0) {
    set(40, 25, 10, 10, 5, 10);
  } else {
    return false;
  }
  *out = m;
  return true;
}

std::vector<Request> generate_schedule(const TrafficConfig& cfg) {
  TrafficMix mix = cfg.mix;
  int total = 0;
  for (int p : mix.pct) total += p;
  if (total != 100) parse_traffic_mix("mixed", &mix);

  const KindSampler kinds(mix);
  const ZipfSampler accounts(static_cast<std::uint64_t>(cfg.store.accounts),
                             cfg.zipf_theta);
  const ZipfSampler kv_keys(static_cast<std::uint64_t>(cfg.store.kv_keys),
                            cfg.zipf_theta);
  // Graph nodes stay uniform: the Graph workload's contention comes from the
  // three shared containers, not from key skew.
  const ZipfSampler nodes(static_cast<std::uint64_t>(cfg.store.nodes), 0.0);

  const auto horizon_ns =
      static_cast<std::uint64_t>(cfg.duration_ms * kNanosPerMilli);
  std::vector<Request> out;

  if (cfg.think_users > 0) {
    // Partly-open: per-user arrival chains, merged by sort below.
    const double think_ns = std::max(1.0, cfg.think_ms * kNanosPerMilli);
    for (int u = 0; u < cfg.think_users; ++u) {
      util::Xoshiro256 rng(
          util::derive_seed(cfg.seed, static_cast<std::uint64_t>(u)));
      // Stagger session starts uniformly across one think interval so the
      // users do not arrive in phase.
      double t = exp_variate(rng) * think_ns;
      while (t < static_cast<double>(horizon_ns)) {
        Request r;
        r.arrival_ns = static_cast<std::uint64_t>(t);
        fill_body(&r, kinds, accounts, kv_keys, nodes, rng);
        out.push_back(r);
        t += exp_variate(rng) * think_ns;
      }
    }
  } else {
    // Open loop: Poisson process whose instantaneous rate follows a square
    // wave — base rate for the first half of every burst period,
    // burst_factor * base for the second half.
    util::Xoshiro256 rng(cfg.seed);
    const double base_rate =
        std::max(1.0, cfg.rate_rps) / kNanosPerSecond;  // req per ns
    const auto period_ns = static_cast<std::uint64_t>(
        std::max<std::uint64_t>(1, cfg.burst_period_ms) * kNanosPerMilli);
    const int factor = std::max(1, cfg.burst_factor);
    double t = 0.0;
    for (;;) {
      const auto now = static_cast<std::uint64_t>(t);
      if (now >= horizon_ns) break;
      const bool bursting = factor > 1 && (now % period_ns) * 2 >= period_ns;
      const double rate = bursting ? base_rate * factor : base_rate;
      t += exp_variate(rng) / rate;
      if (t >= static_cast<double>(horizon_ns)) break;
      Request r;
      r.arrival_ns = static_cast<std::uint64_t>(t);
      fill_body(&r, kinds, accounts, kv_keys, nodes, rng);
      out.push_back(r);
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_ns < b.arrival_ns;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = i;
  }
  return out;
}

std::uint32_t shard_of(const Request& r, std::uint32_t num_shards) {
  if (num_shards == 0) return 0;
  // Keyspace salt keeps account 5, kv key 5, and node 5 off one shard.
  std::uint64_t domain = 0;
  switch (r.kind) {
    case RequestKind::kComputeIfAbsent: domain = 1; break;
    case RequestKind::kTransfer:
    case RequestKind::kAudit: domain = 2; break;
    case RequestKind::kInsertEdge:
    case RequestKind::kRemoveEdge:
    case RequestKind::kDegree: domain = 3; break;
  }
  std::uint64_t x = static_cast<std::uint64_t>(r.a) + (domain << 56);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % num_shards);
}

}  // namespace semlock::server
