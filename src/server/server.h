// semlock-server: a sharded transaction-processing service over the
// pluggable concurrency-control backends (cc_backend.h).
//
// Architecture (docs/SERVER.md):
//
//   dispatcher (caller thread)          workers (static pool)
//   ─ replays the pre-generated        ─ worker w owns every shard s with
//     schedule, pacing each request       s % workers == w; sweeps its
//     to its intended arrival_ns          queues round-robin
//   ─ routes by shard_of(request)      ─ executes each request as one
//   ─ bounded queues: a full shard       atomic section in the backend
//     queue SHEDS the request with a   ─ records completion latency from
//     retry-after hint derived from      the request's INTENDED arrival
//     queue depth x EMA service time     (open-loop: queueing is charged
//                                        to the mode that caused it)
//
// Shutdown is drain-and-stop: after the last request is dispatched the
// workers finish every enqueued request before exiting, so for every run
// completed + shed == offered, exactly (server_test.cpp holds this under
// TSan).
//
// SERIAL mode is clamped to one worker — that backend's contract is a
// single executor, and the clamp is the honest way to benchmark "no
// concurrency control" as the paper's lower bound.
#pragma once

#include <cstdint>
#include <vector>

#include "server/cc_backend.h"
#include "server/config.h"
#include "server/request.h"
#include "util/stats.h"

namespace semlock::server {

struct ServerReport {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;        // OCC aborted attempts (0 elsewhere)
  std::uint64_t max_queue_depth = 0;  // high watermark across shards
  std::uint64_t last_retry_after_ns = 0;  // hint attached to the last shed
  double wall_seconds = 0.0;        // dispatch start to last worker done
  util::Log2Histogram latency_ns;   // completion - intended arrival
  std::int64_t observed_sum = 0;    // sum of read results (activity check)

  double throughput_rps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

class Server {
 public:
  // `backend` must outlive the Server. Worker count is clamped to
  // [1, shards], and to 1 for a SERIAL backend.
  Server(const ServerConfig& cfg, CCBackend* backend);

  // Replays `schedule` once and drains. `paced` replays in real time
  // against each request's arrival_ns (the open-loop measurement mode);
  // unpaced dispatches as fast as admission control allows (the drain /
  // stress mode used by tests).
  ServerReport run(const std::vector<Request>& schedule, bool paced);

  int workers() const { return workers_; }
  int shards() const { return shards_; }

 private:
  CCBackend* backend_;
  int workers_;
  int shards_;
  int queue_capacity_;
};

}  // namespace semlock::server
