// Bounded per-shard request queue with shed-on-full admission control.
//
// The server routes every request to one of S shards (shard_of in
// traffic_gen.h) and each worker owns a fixed subset of shards, so a queue
// has many producers (the dispatcher today; multiple ingress threads
// tomorrow) and exactly one consumer. Capacity is the admission-control
// surface: a full queue means the server is past its service capacity at
// this shard, and the honest open-loop response is to SHED the request with
// a retry-after hint rather than to let an unbounded queue convert overload
// into unbounded latency for everyone behind it.
//
// A spinlocked ring keeps the implementation obviously correct under TSan;
// the queues are not the bottleneck (every pop leads into an atomic section
// that dwarfs the push/pop critical sections).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "server/request.h"
#include "util/spinlock.h"

namespace semlock::server {

class ShardQueue {
 public:
  explicit ShardQueue(std::size_t capacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  // False = queue full: the request is shed, never enqueued.
  bool try_push(const Request& r) {
    std::scoped_lock lk(lock_);
    const std::size_t depth = size_.load(std::memory_order_relaxed);
    if (depth == ring_.size()) return false;
    ring_[tail_] = r;
    tail_ = (tail_ + 1) % ring_.size();
    size_.store(depth + 1, std::memory_order_relaxed);
    if (depth + 1 > high_watermark_.load(std::memory_order_relaxed)) {
      high_watermark_.store(depth + 1, std::memory_order_relaxed);
    }
    return true;
  }

  bool try_pop(Request* out) {
    std::scoped_lock lk(lock_);
    const std::size_t depth = size_.load(std::memory_order_relaxed);
    if (depth == 0) return false;
    *out = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    size_.store(depth - 1, std::memory_order_relaxed);
    return true;
  }

  // Racy by design: admission control and watermark reporting want a cheap
  // current-depth estimate, not a linearizable one.
  std::size_t depth() const { return size_.load(std::memory_order_relaxed); }
  std::size_t high_watermark() const {
    return high_watermark_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return ring_.size(); }

 private:
  util::Spinlock lock_;
  std::vector<Request> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> high_watermark_{0};
};

}  // namespace semlock::server
