// Pluggable concurrency control for the semlock-server transaction engine.
//
// All five modes execute the IDENTICAL logical schema — a fixed-size typed
// store of int64 records (bank accounts, a kv table for ComputeIfAbsent,
// and a graph kept as edge-presence plus degree tables) — and differ only in
// how atomic sections synchronize:
//
//   SEMANTIC     the paper's mechanism: per-ADT-instance SemanticLocks with
//                keyed (alpha-striped) modes; commuting transfers and
//                different-key kv/graph sections run in parallel.
//   SERIAL       no synchronization at all; the server clamps execution to a
//                single worker. The lower bound the paper's figures anchor
//                on, and the reference for differential checks.
//   GLOBAL_LOCK  one process-wide mutex per atomic section (src/baseline).
//   TWO_PL       one standard lock per ADT instance, acquired in address
//                order (src/baseline/two_pl.h): per-account locks, one lock
//                for the whole kv map, three for the graph's containers.
//   OCC          versioned-cell optimistic execution with commit-time
//                validation and retry (src/baseline/occ.h).
//
// Checked mode: constructed with a HistoryRecorder, every backend records
// the standard operations of each committed transaction, and the DCT
// harness's conflict-serializability oracle (semlock/history.h) is run over
// the merged history after drain. OCC records only at commit, so aborted
// attempts — which are retried, never observed — cannot create precedence
// edges.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "semlock/history.h"
#include "server/request.h"

namespace semlock::server {

enum class CCMode : std::uint8_t {
  kSemantic = 0,
  kSerial,
  kGlobalLock,
  kTwoPL,
  kOcc,
};
inline constexpr int kNumCCModes = 5;

const char* cc_mode_name(CCMode m);
// Strict parse of a mode name ("semantic", "serial", "global", "2pl",
// "occ"); nullopt on anything else.
std::optional<CCMode> parse_cc_mode(std::string_view text);

// Key-space shape of the shared store. All backends derive their record
// layout from this, so the same Request stream addresses the same logical
// state in every mode.
struct StoreConfig {
  std::int64_t accounts = 512;
  std::int64_t kv_keys = 1 << 16;
  std::int64_t nodes = 256;            // graph: edge cells = nodes * nodes
  std::int64_t initial_balance = 1000;
  int abstract_values = 64;            // phi range for the SEMANTIC mode
};

class CCBackend {
 public:
  virtual ~CCBackend() = default;

  // Executes one request to completion, including any internal aborts and
  // retries. Thread-safe for every mode except SERIAL, which documents a
  // single-executor precondition (the server enforces it).
  virtual ExecResult execute(const Request& req) = 0;

  virtual CCMode mode() const = 0;
  const char* name() const { return cc_mode_name(mode()); }

  // Quiescent-state observables for differential and drain tests (call only
  // with no execute() in flight).
  virtual std::int64_t balance_total() const = 0;    // conservation invariant
  virtual std::int64_t kv_inserted() const = 0;      // # non-absent kv cells
  virtual std::int64_t edges_present() const = 0;    // # set edge cells
  // FNV-style digest over the full store in cell order, for exact
  // cross-mode comparison of final states.
  virtual std::uint64_t digest() const = 0;
};

// `recorder`, when non-null, switches the backend into checked mode.
std::unique_ptr<CCBackend> make_cc_backend(CCMode mode, const StoreConfig& cfg,
                                           HistoryRecorder* recorder = nullptr);

}  // namespace semlock::server
