// Open-loop traffic generation for semlock-server.
//
// The generator is a PURE function from (TrafficConfig, seed) to a request
// schedule: every request carries its intended arrival offset, pre-stamped
// before any mode runs. That is what makes the cross-mode comparison honest —
// all five concurrency-control modes replay the byte-identical stream, and
// latency is measured from the INTENDED arrival, so a slow mode that falls
// behind accrues queueing delay instead of quietly slowing the generator
// down (the coordinated-omission trap of closed-loop harnesses).
//
// Two population models, both pre-generated:
//   open loop    Poisson arrivals at `rate_rps`, optionally modulated by a
//                square-wave burst (burst_factor x rate for the second half
//                of every burst_period): the classic "requests arrive
//                whether or not you are keeping up" model.
//   partly open  `think_users` independent users, each issuing a request,
//                thinking Exp(think_ms), and issuing the next. Matches
//                session-style traffic; degrades to the open-loop model when
//                think_users == 0.
//
// Key skew is Zipfian (zipf.h) over each keyspace, so hot accounts and hot
// kv keys contend the way the paper's Fig. 21-25 workloads do.
#pragma once

#include <cstdint>
#include <vector>

#include "server/cc_backend.h"
#include "server/request.h"

namespace semlock::server {

// Percentage of the stream issued per request kind; must sum to 100.
struct TrafficMix {
  int pct[kNumRequestKinds] = {0, 0, 0, 0, 0, 0};
};

// Named mixes drawn from the repo's benchmark workloads:
//   "kv"     100% compute_if_absent            (Fig. 21 / apps CIA loops)
//   "bank"   70% transfer, 30% audit           (examples/bank_transfer)
//   "graph"  40% insert, 30% remove, 30% degree (Fig. 22 Graph)
//   "mixed"  40% CIA, 25% transfer, 10% audit, 10/5/10 graph (default)
// Returns false (leaving `out` untouched) for any other name.
bool parse_traffic_mix(const char* name, TrafficMix* out);

struct TrafficConfig {
  double rate_rps = 20000.0;       // open-loop offered rate
  std::uint64_t duration_ms = 500; // schedule horizon
  double zipf_theta = 0.6;         // key skew for accounts and kv keys
  int burst_factor = 1;            // 1 = no bursts; k = k*rate half the time
  std::uint64_t burst_period_ms = 100;
  int think_users = 0;             // >0 switches to the partly-open model
  double think_ms = 1.0;           // mean think time per user
  TrafficMix mix;                  // defaults to "mixed" if left all-zero
  StoreConfig store;               // keyspace bounds
  std::uint64_t seed = 42;
};

// Deterministic: equal (cfg, cfg.seed) gives a byte-identical schedule,
// sorted by arrival_ns, with ids 0..n-1 in arrival order.
std::vector<Request> generate_schedule(const TrafficConfig& cfg);

// Shard routing: stable hash of the request's primary key, salted by the
// keyspace it addresses (accounts / kv / graph), so equal numeric keys in
// different keyspaces do not pile onto the same shard.
std::uint32_t shard_of(const Request& r, std::uint32_t num_shards);

}  // namespace semlock::server
