// Zipfian key sampler for the traffic generator (Gray et al., SIGMOD'94 —
// the generator YCSB popularized). Key popularity follows P(rank i) ∝ 1/i^θ;
// θ=0 is uniform, θ→1 concentrates traffic on a few hot keys, which is what
// makes millions of simulated users contend the way real caches and account
// stores do. The harmonic normalizers are precomputed once per (n, θ), so
// sampling is a handful of flops per draw.
//
// Ranks are scrambled through a SplitMix64-style hash before being returned
// as keys: without scrambling, the hottest keys are 0,1,2,... and every
// workload's hot set collides with its initialization pattern.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace semlock::server {

class ZipfSampler {
 public:
  // `n` keys in [0, n), skew theta in [0, 1). theta == 0 degrades to a
  // uniform sampler without the harmonic setup cost.
  ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (n_ == 0) n_ = 1;
    if (theta_ <= 0.0) return;
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  // Popularity rank in [0, n): rank 0 is the hottest key.
  std::uint64_t next_rank(util::Xoshiro256& rng) const {
    if (theta_ <= 0.0) return rng.next_below(n_);
    const double u =
        static_cast<double>(rng.next()) / 18446744073709551616.0;  // [0,1)
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  // Scrambled key in [0, n): rank popularity, hash-spread identity.
  std::uint64_t next_key(util::Xoshiro256& rng) const {
    return scramble(next_rank(rng)) % n_;
  }

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  static std::uint64_t scramble(std::uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace semlock::server
