// Request vocabulary of the semlock-server transaction-processing service.
//
// A request names one atomic section drawn from the repo's benchmark
// workloads (docs/SERVER.md): the check-then-act ComputeIfAbsent of Fig. 21,
// bank-transfer-style multi-instance transactions over Account ADTs
// (examples/bank_transfer), and the Graph edge/degree operations of Fig. 22.
// The traffic generator pre-stamps each request with its intended arrival
// offset, so the identical stream can be replayed under every concurrency-
// control mode and open-loop latency is measured from when the request was
// *supposed* to arrive (no coordinated omission).
#pragma once

#include <cstdint>

namespace semlock::server {

enum class RequestKind : std::uint8_t {
  kComputeIfAbsent = 0,  // kv: if (get(a) == absent) put(a, f(a))
  kTransfer,             // accounts: withdraw(a, amount); deposit(b, amount)
  kAudit,                // accounts: balance(a) + balance(b) (read-only)
  kInsertEdge,           // graph: edge(a,b) += succ_deg(a)/pred_deg(b) upkeep
  kRemoveEdge,           // graph: inverse of kInsertEdge
  kDegree,               // graph: read succ_deg(a) (read-only)
};
inline constexpr int kNumRequestKinds = 6;

struct Request {
  std::uint64_t id = 0;          // dense stream index (stable across modes)
  RequestKind kind = RequestKind::kComputeIfAbsent;
  std::int64_t a = 0;            // primary key: account/kv key/source node
  std::int64_t b = 0;            // secondary key (transfer target, edge dst)
  std::int64_t amount = 0;       // transfer amount
  std::uint64_t arrival_ns = 0;  // intended arrival, relative to stream start
};

// Outcome of executing one request inside a CC backend.
struct ExecResult {
  std::int64_t observed = 0;   // read result (audit sum, degree, CIA hit)
  std::uint32_t retries = 0;   // aborted attempts (OCC; 0 for pessimistic)
};

inline const char* request_kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kComputeIfAbsent: return "compute_if_absent";
    case RequestKind::kTransfer: return "transfer";
    case RequestKind::kAudit: return "audit";
    case RequestKind::kInsertEdge: return "insert_edge";
    case RequestKind::kRemoveEdge: return "remove_edge";
    case RequestKind::kDegree: return "degree";
  }
  return "?";
}

}  // namespace semlock::server
