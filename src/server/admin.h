// Embedded admin endpoint: /metrics, /metrics.json, /healthz (ISSUE 9,
// tentpole layer 2).
//
// A deliberately tiny HTTP/1.0 server — blocking accept loop on its own
// thread, one request per connection, no keep-alive, no dependencies beyond
// POSIX sockets — because its job is to be scraped every few seconds by one
// Prometheus/curl, not to serve traffic. It binds 127.0.0.1 only: the
// exposition includes lock-site ids and instance addresses, which are
// diagnostics for the operator, not the network.
//
//   GET /metrics       Prometheus text 0.0.4 (obs/exposition.h) — the lock
//                      runtime families plus, when a Server is running, the
//                      semlock_server_* family from the registered stats
//                      provider.
//   GET /metrics.json  {"schema": "semlock-metrics-live-v1", "windows":
//                      <window ring>, "cumulative": <MetricsSnapshot>} —
//                      the machine-readable view `semlock-trace metrics
//                      --watch` polls.
//   GET /healthz       admission state (ok / saturated / overloaded with
//                      queue depths, shed counts, watchdog stalls); HTTP
//                      503 when overloaded so load balancers and the CI
//                      smoke test can alert on status alone.
//
// Off by default: nothing listens unless SEMLOCK_METRICS_PORT is set (or a
// test constructs AdminEndpoint directly with port 0 for an ephemeral
// port). This header is only compiled under SEMLOCK_OBS — the exposition it
// serves does not exist otherwise — and tools guard their use with
// #if defined(SEMLOCK_OBS).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace semlock::server {

// One point-in-time health sample from the running Server (or whatever else
// registers a provider). Everything is a plain copy — the provider reads
// its own atomics; the endpoint never touches server internals.
struct HealthSample {
  bool server_running = false;
  const char* cc_backend = "";
  int workers = 0;
  int shards = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t queue_capacity = 0;       // per-shard bound
  std::uint64_t queue_depth_max = 0;      // current max across shards
  std::uint64_t queue_depth_total = 0;    // current sum across shards
  std::uint64_t queue_high_watermark = 0; // lifetime max across shards
  std::vector<std::uint64_t> queue_depths;  // current depth per shard
};

// Admission state derived from a sample: 0 ok, 1 saturated (some queue at
// or past half capacity), 2 overloaded (requests have been shed). Shed is
// cumulative, so overloaded is sticky for the run — by design: a server
// that shed load is not healthy until someone looks at why.
int admission_state(const HealthSample& s);
const char* admission_state_name(int state);

// Server::run registers a provider for its lifetime; nullptr clears. The
// endpoint calls the provider from its serve thread, so the provider must
// be safe to call concurrently with the server's workers (read atomics,
// copy, return).
using AdminStatsProvider = std::function<HealthSample()>;
void set_admin_stats_provider(AdminStatsProvider provider);
void clear_admin_stats_provider();

// The serve thread plus its listening socket.
class AdminEndpoint {
 public:
  // port 0 = ephemeral (tests); port() reports the bound port after
  // start(). Binds 127.0.0.1 only.
  explicit AdminEndpoint(std::uint16_t port);
  AdminEndpoint(const AdminEndpoint&) = delete;
  AdminEndpoint& operator=(const AdminEndpoint&) = delete;
  ~AdminEndpoint();  // stop()s

  // Binds, listens, and starts the serve thread. False (with *error set)
  // on socket failure — e.g. the port is taken.
  bool start(std::string* error = nullptr);
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  // Total requests served (any path), for tests.
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // The routing core, exposed for in-process tests: maps a request target
  // ("/metrics") to (status, content type, body).
  static std::string handle(const std::string& target, int* status,
                            std::string* content_type);

 private:
  void serve_loop();

  std::uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
};

// Strict parse of SEMLOCK_METRICS_PORT: 1..65535, anything else warns and
// returns 0 (= endpoint disabled). Unset is silently 0.
int metrics_port_from_env_text(const char* text);

// Reads SEMLOCK_METRICS_PORT; when set to a valid port, starts the global
// window collector (obs/window.h) and an endpoint on that port, returning
// it (caller owns; destruction stops it). Returns nullptr when the knob is
// unset/invalid or the port cannot be bound (after a one-line warning).
std::unique_ptr<AdminEndpoint> start_admin_endpoint_from_env();

}  // namespace semlock::server
