#include "server/server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "server/shard_queue.h"
#include "server/traffic_gen.h"

#if defined(SEMLOCK_OBS)
#include "obs/span.h"
#include "obs/trace.h"
#include "server/admin.h"
#endif

namespace semlock::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

struct WorkerState {
  // Atomic so the admin endpoint's health provider can read completion
  // progress while the worker runs. Single writer (the owning worker), so
  // updates are load+store, never an RMW — no fast-path cost.
  std::atomic<std::uint64_t> completed{0};
  std::uint64_t retries = 0;
  std::int64_t observed_sum = 0;
  util::Log2Histogram latency_ns;
  // Exponential moving average of service time, published for the
  // dispatcher's retry-after hints. Seeded at 1us so the first hints are
  // sane before any sample lands.
  std::atomic<std::uint64_t> ema_service_ns{1000};
};

}  // namespace

Server::Server(const ServerConfig& cfg, CCBackend* backend)
    : backend_(backend),
      workers_(cfg.workers < 1 ? 1 : cfg.workers),
      shards_(cfg.shards < 1 ? 1 : cfg.shards),
      queue_capacity_(cfg.queue_capacity < 1 ? 1 : cfg.queue_capacity) {
  if (backend_->mode() == CCMode::kSerial) workers_ = 1;
  if (workers_ > shards_) workers_ = shards_;
}

ServerReport Server::run(const std::vector<Request>& schedule, bool paced) {
  ServerReport report;
  report.offered = schedule.size();

  std::vector<std::unique_ptr<ShardQueue>> queues;
  queues.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    queues.push_back(std::make_unique<ShardQueue>(
        static_cast<std::size_t>(queue_capacity_)));
  }

  std::vector<std::unique_ptr<WorkerState>> states;
  states.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    states.push_back(std::make_unique<WorkerState>());
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  Clock::time_point start_tp;  // written before go, read after (acq/rel)

  // Live dispatch progress for the admin endpoint's health provider.
  // Single writer (the dispatcher), load+store only.
  std::atomic<std::uint64_t> offered_live{0};
  std::atomic<std::uint64_t> shed_live{0};

#if defined(SEMLOCK_OBS)
  // /healthz and semlock_server_* scrape through this for the duration of
  // the run; every captured local outlives the clear below.
  set_admin_stats_provider([&, this]() {
    HealthSample s;
    s.server_running = true;
    s.cc_backend = backend_->name();
    s.workers = workers_;
    s.shards = shards_;
    s.offered = offered_live.load(std::memory_order_relaxed);
    s.shed = shed_live.load(std::memory_order_relaxed);
    for (const auto& st : states) {
      s.completed += st->completed.load(std::memory_order_relaxed);
    }
    s.queue_capacity = static_cast<std::uint64_t>(queue_capacity_);
    s.queue_depths.reserve(queues.size());
    for (const auto& q : queues) {
      const std::uint64_t d = q->depth();
      s.queue_depths.push_back(d);
      s.queue_depth_total += d;
      if (d > s.queue_depth_max) s.queue_depth_max = d;
      if (q->high_watermark() > s.queue_high_watermark) {
        s.queue_high_watermark = q->high_watermark();
      }
    }
    return s;
  });
#endif

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    threads.emplace_back([&, w] {
      WorkerState& st = *states[static_cast<std::size_t>(w)];
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const Clock::time_point start = start_tp;
      std::uint64_t ema = st.ema_service_ns.load(std::memory_order_relaxed);
      Request r;
      for (;;) {
        bool any = false;
        for (int s = w; s < shards_; s += workers_) {
          if (!queues[static_cast<std::size_t>(s)]->try_pop(&r)) continue;
          any = true;
          const std::uint64_t t0 = ns_since(start);
#if defined(SEMLOCK_OBS)
          // Admission span: the request waited [arrival, t0) in its shard
          // queue. Run times are relative to start, span clocks absolute, so
          // shift by the run epoch; the transaction id the request executed
          // as is picked up after the fact via last_completed_txn (the
          // backend opens/closes the Transaction internally).
          const bool span_on =
              obs::runtime_enabled() && obs::spans_enabled();
          const std::uint64_t txn_before =
              span_on ? obs::last_completed_txn() : 0;
#endif
          const ExecResult res = backend_->execute(r);
          const std::uint64_t t1 = ns_since(start);
#if defined(SEMLOCK_OBS)
          if (span_on) {
            const std::uint64_t txn_after = obs::last_completed_txn();
            const std::uint64_t epoch_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    start.time_since_epoch())
                    .count());
            obs::record_queue_wait_span(
                txn_after != txn_before ? txn_after : 0,
                epoch_ns + r.arrival_ns, epoch_ns + t0);
          }
#endif
          st.completed.store(st.completed.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
          st.retries += res.retries;
          st.observed_sum += res.observed;
          st.latency_ns.add(t1 > r.arrival_ns ? t1 - r.arrival_ns : 0);
          const std::uint64_t service = t1 - t0;
          ema = ema - ema / 16 + service / 16;
          st.ema_service_ns.store(ema, std::memory_order_relaxed);
        }
        if (!any) {
          if (stop.load(std::memory_order_acquire)) {
            // stop is set only after the final dispatch, so empty-once
            // after observing it means drained for good.
            bool drained = true;
            for (int s = w; s < shards_; s += workers_) {
              if (queues[static_cast<std::size_t>(s)]->depth() != 0) {
                drained = false;
                break;
              }
            }
            if (drained) break;
          } else {
            std::this_thread::yield();
          }
        }
      }
    });
  }

  while (ready.load(std::memory_order_acquire) < workers_) {
    std::this_thread::yield();
  }
  start_tp = Clock::now();
  go.store(true, std::memory_order_release);

  for (const Request& r : schedule) {
    if (paced) {
      // Sleep down to ~100us before the intended arrival, then yield-spin:
      // coarse sleep keeps the single-core container's workers fed, the
      // final spin keeps dispatch jitter well under the latency buckets.
      for (;;) {
        const std::uint64_t now = ns_since(start_tp);
        if (now >= r.arrival_ns) break;
        const std::uint64_t ahead = r.arrival_ns - now;
        if (ahead > 100000) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(ahead - 50000));
        } else {
          std::this_thread::yield();
        }
      }
    }
    const std::uint32_t shard =
        shard_of(r, static_cast<std::uint32_t>(shards_));
    offered_live.store(offered_live.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    ShardQueue& q = *queues[shard];
    if (!q.try_push(r)) {
      // Admission control: shed with a retry-after hint — the time this
      // shard needs to work off its current depth at its recent pace. The
      // pace is the OWNING worker's EMA (worker w owns shards ≡ w mod W):
      // averaging across all workers lets the idle ones dilute a hot
      // shard's hint, under-reporting exactly the backlog being shed.
      const std::uint64_t ema =
          states[shard % static_cast<std::uint32_t>(workers_)]
              ->ema_service_ns.load(std::memory_order_relaxed);
      report.shed += 1;
      shed_live.store(report.shed, std::memory_order_relaxed);
      report.last_retry_after_ns =
          (static_cast<std::uint64_t>(q.depth()) + 1) * ema;
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
#if defined(SEMLOCK_OBS)
  // The provider captures this frame's locals by reference; detach it
  // before they go out of scope.
  clear_admin_stats_provider();
#endif
  report.wall_seconds =
      static_cast<double>(ns_since(start_tp)) / 1e9;

  for (const auto& st : states) {
    report.completed += st->completed.load(std::memory_order_relaxed);
    report.retries += st->retries;
    report.observed_sum += st->observed_sum;
    report.latency_ns.merge(st->latency_ns);
  }
  for (const auto& q : queues) {
    if (q->high_watermark() > report.max_queue_depth) {
      report.max_queue_depth = q->high_watermark();
    }
  }
  return report;
}

}  // namespace semlock::server
