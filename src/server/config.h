// semlock-server configuration and its SEMLOCK_SERVER_* environment knobs.
//
// Every knob follows the repo's strict-parsing convention (util/env): a
// malformed or out-of-range value is rejected with one stderr line naming
// the variable, the offending text, and the default it fell back to —
// a typo'd knob must never silently become 0. The parsing core is the pure
// function server_config_from_env_text, which takes the raw text of every
// variable explicitly so tests (tests/env_config_test.cpp) can exercise the
// full matrix without touching the process environment.
//
// Knobs (docs/SERVER.md documents each in detail):
//   SEMLOCK_SERVER_WORKERS        worker threads, 1..1024
//                                 (default: hardware concurrency)
//   SEMLOCK_SERVER_SHARDS         request shards, 1..65536    (default 16)
//   SEMLOCK_SERVER_QUEUE_CAP      per-shard queue bound, 1..2^20 (default 1024)
//   SEMLOCK_SERVER_MODE           semantic|serial|global|2pl|occ
//                                 (default semantic)
//   SEMLOCK_SERVER_CHECKED       0|1: record history + serializability oracle
//   SEMLOCK_SERVER_RATE           open-loop offered load, req/s, 1..10^9
//   SEMLOCK_SERVER_DURATION_MS    schedule horizon, 1..600000
//   SEMLOCK_SERVER_ZIPF_THETA     key skew, 0 <= theta <= 0.99
//   SEMLOCK_SERVER_BURST_X        burst rate multiplier, 1..1000 (1 = none)
//   SEMLOCK_SERVER_BURST_PERIOD_MS burst square-wave period, 1..60000
//   SEMLOCK_SERVER_THINK_USERS    partly-open users, 0..10^6 (0 = open loop)
//   SEMLOCK_SERVER_THINK_MS       mean think time, 0.001..60000
//   SEMLOCK_SERVER_MIX            kv|bank|graph|mixed (default mixed)
//   SEMLOCK_SERVER_SEED           schedule seed, 0..2^62
#pragma once

#include "server/cc_backend.h"
#include "server/traffic_gen.h"

namespace semlock::server {

struct ServerConfig {
  int workers = 0;  // 0 = use hardware concurrency (resolved by from_env)
  int shards = 16;
  int queue_capacity = 1024;
  CCMode mode = CCMode::kSemantic;
  bool checked = false;
  TrafficConfig traffic;
};

// Raw environment text, nullptr for unset. Field names match the knob
// suffixes above.
struct ServerEnvText {
  const char* workers = nullptr;
  const char* shards = nullptr;
  const char* queue_cap = nullptr;
  const char* mode = nullptr;
  const char* checked = nullptr;
  const char* rate = nullptr;
  const char* duration_ms = nullptr;
  const char* zipf_theta = nullptr;
  const char* burst_x = nullptr;
  const char* burst_period_ms = nullptr;
  const char* think_users = nullptr;
  const char* think_ms = nullptr;
  const char* mix = nullptr;
  const char* seed = nullptr;
};

// Pure: applies every knob in `env` on top of the defaults, with strict
// parsing and per-knob fallback. workers == 0 is left unresolved so the
// caller (or the server) can substitute hardware concurrency.
ServerConfig server_config_from_env_text(const ServerEnvText& env);

// getenv() wrapper around the above; also resolves workers = hardware
// concurrency when the knob is unset.
ServerConfig server_config_from_env();

}  // namespace semlock::server
