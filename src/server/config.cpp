#include "server/config.h"

#include <cstdlib>
#include <string>
#include <thread>

#include "util/env.h"

namespace semlock::server {

namespace {

// Int knob with the standard strict-parse-or-fallback contract, applied in
// place so unset/invalid both leave the default.
template <typename T>
void apply_int(const char* name, const char* text, long long min,
               long long max, T* slot) {
  const std::string fallback = std::to_string(static_cast<long long>(*slot));
  if (const auto v =
          util::env_int_in_range(name, text, min, max, fallback.c_str())) {
    *slot = static_cast<T>(*v);
  }
}

void apply_double(const char* name, const char* text, double min, double max,
                  double* slot) {
  const std::string fallback = std::to_string(*slot);
  if (const auto v =
          util::env_double_in_range(name, text, min, max, fallback.c_str())) {
    *slot = *v;
  }
}

}  // namespace

ServerConfig server_config_from_env_text(const ServerEnvText& env) {
  ServerConfig cfg;
  parse_traffic_mix("mixed", &cfg.traffic.mix);

  apply_int("SEMLOCK_SERVER_WORKERS", env.workers, 1, 1024, &cfg.workers);
  apply_int("SEMLOCK_SERVER_SHARDS", env.shards, 1, 65536, &cfg.shards);
  apply_int("SEMLOCK_SERVER_QUEUE_CAP", env.queue_cap, 1, 1 << 20,
            &cfg.queue_capacity);

  if (env.mode != nullptr) {
    if (const auto m = parse_cc_mode(env.mode)) {
      cfg.mode = *m;
    } else {
      util::warn_invalid_env("SEMLOCK_SERVER_MODE", env.mode, "semantic");
    }
  }
  if (const auto b = util::env_bool_01("SEMLOCK_SERVER_CHECKED", env.checked,
                                       "unchecked")) {
    cfg.checked = *b;
  }

  apply_double("SEMLOCK_SERVER_RATE", env.rate, 1.0, 1e9,
               &cfg.traffic.rate_rps);
  apply_int("SEMLOCK_SERVER_DURATION_MS", env.duration_ms, 1, 600000,
            &cfg.traffic.duration_ms);
  apply_double("SEMLOCK_SERVER_ZIPF_THETA", env.zipf_theta, 0.0, 0.99,
               &cfg.traffic.zipf_theta);
  apply_int("SEMLOCK_SERVER_BURST_X", env.burst_x, 1, 1000,
            &cfg.traffic.burst_factor);
  apply_int("SEMLOCK_SERVER_BURST_PERIOD_MS", env.burst_period_ms, 1, 60000,
            &cfg.traffic.burst_period_ms);
  apply_int("SEMLOCK_SERVER_THINK_USERS", env.think_users, 0, 1000000,
            &cfg.traffic.think_users);
  apply_double("SEMLOCK_SERVER_THINK_MS", env.think_ms, 0.001, 60000.0,
               &cfg.traffic.think_ms);

  if (env.mix != nullptr && !parse_traffic_mix(env.mix, &cfg.traffic.mix)) {
    util::warn_invalid_env("SEMLOCK_SERVER_MIX", env.mix, "mixed");
  }
  apply_int("SEMLOCK_SERVER_SEED", env.seed, 0,
            (1LL << 62), &cfg.traffic.seed);
  return cfg;
}

ServerConfig server_config_from_env() {
  ServerEnvText env;
  env.workers = std::getenv("SEMLOCK_SERVER_WORKERS");
  env.shards = std::getenv("SEMLOCK_SERVER_SHARDS");
  env.queue_cap = std::getenv("SEMLOCK_SERVER_QUEUE_CAP");
  env.mode = std::getenv("SEMLOCK_SERVER_MODE");
  env.checked = std::getenv("SEMLOCK_SERVER_CHECKED");
  env.rate = std::getenv("SEMLOCK_SERVER_RATE");
  env.duration_ms = std::getenv("SEMLOCK_SERVER_DURATION_MS");
  env.zipf_theta = std::getenv("SEMLOCK_SERVER_ZIPF_THETA");
  env.burst_x = std::getenv("SEMLOCK_SERVER_BURST_X");
  env.burst_period_ms = std::getenv("SEMLOCK_SERVER_BURST_PERIOD_MS");
  env.think_users = std::getenv("SEMLOCK_SERVER_THINK_USERS");
  env.think_ms = std::getenv("SEMLOCK_SERVER_THINK_MS");
  env.mix = std::getenv("SEMLOCK_SERVER_MIX");
  env.seed = std::getenv("SEMLOCK_SERVER_SEED");

  ServerConfig cfg = server_config_from_env_text(env);
  if (cfg.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg.workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return cfg;
}

}  // namespace semlock::server
