#include "dct/starvation.h"

#if defined(SEMLOCK_DCT)

#include <atomic>

namespace semlock::dct {

namespace {

// The active tracker. Plain pointer behind an atomic: install/uninstall
// happen outside the measured region (between schedules), and report sites
// only load it.
std::atomic<StarvationTracker*> g_tracker{nullptr};

}  // namespace

StarvationTracker::StarvationTracker() = default;

StarvationTracker::~StarvationTracker() { uninstall(); }

void StarvationTracker::install() {
  g_tracker.store(this, std::memory_order_release);
}

void StarvationTracker::uninstall() {
  StarvationTracker* expected = this;
  g_tracker.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

std::uint64_t StarvationTracker::max_bypasses() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t max = 0;
  for (const Episode& e : episodes_) {
    if (e.bypasses > max) max = e.bypasses;
  }
  return max;
}

std::uint64_t StarvationTracker::episodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return episodes_.size();
}

std::string StarvationTracker::describe() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (std::size_t i = 0; i < episodes_.size(); ++i) {
    const Episode& e = episodes_[i];
    if (!out.empty()) out += ", ";
    out += "#" + std::to_string(i) + " p" + std::to_string(e.partition) +
           " " + std::to_string(e.bypasses) + "x" + (e.open ? " open" : "");
  }
  return out;
}

StarvationWaitScope::StarvationWaitScope(const void* mechanism, int partition)
    : tracker_(g_tracker.load(std::memory_order_acquire)), index_(0) {
  if (tracker_ == nullptr) return;
  std::lock_guard<std::mutex> lk(tracker_->mu_);
  index_ = tracker_->episodes_.size();
  tracker_->episodes_.push_back({mechanism, partition, 0, true});
}

void StarvationWaitScope::granted() {
  if (tracker_ == nullptr) return;
  std::lock_guard<std::mutex> lk(tracker_->mu_);
  StarvationTracker::Episode& own = tracker_->episodes_[index_];
  if (!own.open) return;  // already closed: don't double-bump on destruction
  own.open = false;
  // This grant overtakes exactly the waiters that entered the wait loop
  // before this one and are still waiting. Later-registered waiters were
  // behind this episode all along — a grant in arrival order is not a
  // bypass, or FIFO itself would look starving.
  for (std::size_t i = 0; i < index_; ++i) {
    StarvationTracker::Episode& e = tracker_->episodes_[i];
    if (e.open && e.mechanism == own.mechanism &&
        e.partition == own.partition) {
      ++e.bypasses;
    }
  }
}

StarvationWaitScope::~StarvationWaitScope() { granted(); }

void starvation_on_grant(const void* mechanism, int partition) {
  StarvationTracker* tracker = g_tracker.load(std::memory_order_acquire);
  if (tracker == nullptr) return;
  std::lock_guard<std::mutex> lk(tracker->mu_);
  for (StarvationTracker::Episode& e : tracker->episodes_) {
    if (e.open && e.mechanism == mechanism && e.partition == partition) {
      ++e.bypasses;
    }
  }
}

}  // namespace semlock::dct

#endif  // SEMLOCK_DCT
