#include "dct/explorer.h"

#if defined(SEMLOCK_DCT)

#include <utility>

#include "util/rng.h"

namespace semlock::dct {

namespace {

// One schedule under one exact seed, oracle included.
ExploreResult run_one(const SchedulerOptions& sched_opts, std::uint64_t seed,
                      const WorkloadFactory& factory) {
  ExploreResult result;
  SchedulerOptions opts = sched_opts;
  opts.seed = seed;

  Workload workload = factory();
  Scheduler scheduler(opts);
  ScheduleResult schedule = scheduler.run(std::move(workload.threads));
  result.schedules_run = 1;

  std::string oracle_failure;
  if (!schedule.hung() && workload.check) oracle_failure = workload.check();
  if (schedule.hung() || !oracle_failure.empty()) {
    result.ok = false;
    result.failing_seed = seed;
    result.oracle_failure = std::move(oracle_failure);
    result.schedule = std::move(schedule);
    result.failure = "strategy " +
                     std::string(strategy_name(opts.strategy)) + ", seed " +
                     std::to_string(seed) + ": " +
                     (result.oracle_failure.empty()
                          ? result.schedule.to_string()
                          : "oracle: " + result.oracle_failure + "\n" +
                                result.schedule.to_string()) +
                     "\nreplay: dct::replay(opts.sched, " +
                     std::to_string(seed) + "ULL, factory)";
  }
  return result;
}

}  // namespace

std::string ExploreResult::to_string() const {
  if (ok) {
    return "explored " + std::to_string(schedules_run) +
           " schedules, all clean";
  }
  return "failure on schedule " + std::to_string(schedules_run) + ": " +
         failure;
}

ExploreResult explore(const ExploreOptions& opts,
                      const WorkloadFactory& factory) {
  ExploreResult total;
  for (int i = 0; i < opts.schedules; ++i) {
    const std::uint64_t seed =
        util::derive_seed(opts.base_seed, static_cast<std::uint64_t>(i));
    ExploreResult one = run_one(opts.sched, seed, factory);
    ++total.schedules_run;
    if (!one.ok) {
      one.schedules_run = total.schedules_run;
      return one;
    }
  }
  return total;
}

ExploreResult replay(const SchedulerOptions& sched, std::uint64_t seed,
                     const WorkloadFactory& factory) {
  return run_one(sched, seed, factory);
}

std::function<std::string()> serializability_oracle(
    std::shared_ptr<HistoryRecorder> recorder) {
  return [recorder] {
    const SerializabilityReport report =
        check_conflict_serializability(recorder->snapshot());
    return report.serializable ? std::string() : report.to_string();
  };
}

}  // namespace semlock::dct

#endif  // SEMLOCK_DCT
