// Compile-time hook layer for the deterministic concurrency-testing (DCT)
// harness (src/dct/scheduler.h).
//
// Built with the SEMLOCK_DCT CMake option, the synchronization primitives of
// the runtime — util::Spinlock acquire/release, the prepare/announce/park/
// unpark steps of runtime::ParkingLot, and the mode-counter loads/RMWs of
// semlock::LockMechanism — report every interesting step to the active
// dct::Scheduler, which serializes the program onto one running thread and
// picks the next step per its exploration strategy. Blocking primitives
// (spinlock spin, futex park) become cooperative blocks with an explicit wait
// predicate, which is what makes deadlock detection exact: a schedule hangs
// iff every live virtual thread is blocked on an unsatisfiable predicate.
//
// Without the option every hook compiles to nothing — production builds and
// the tier-1 test suite are untouched. With the option but no Scheduler
// running (or on a thread the Scheduler does not own), every hook is an
// inline thread-local check that falls through to the real primitive.
#pragma once

#if defined(SEMLOCK_DCT)

#include <atomic>
#include <cstdint>

namespace semlock::dct {

// True when the calling thread is a virtual thread of a running Scheduler.
bool scheduled() noexcept;

// Hands control to the scheduler at a named step. `object` identifies the
// synchronization object involved (for schedule dumps only).
void sched_point(const char* point, const void* object);

// Cooperative replacements for the blocking primitives. Callers check
// scheduled() first; these must only run on a virtual thread.
void spinlock_acquire(std::atomic<bool>& flag);
bool spinlock_try_acquire(std::atomic<bool>& flag);
void spinlock_release(std::atomic<bool>& flag);

// Cooperative stand-in for std::atomic<uint32_t>::wait: blocks the virtual
// thread until `word` differs from `observed`.
void futex_wait(std::atomic<std::uint32_t>& word, std::uint32_t observed);
// Same for the packed 64-bit lock word (futex-word wait policy,
// docs/FAST_PATH.md §7).
void futex_wait(std::atomic<std::uint64_t>& word, std::uint64_t observed);

// --- test-only fault injection ---------------------------------------------
// When set, LockMechanism::lock_contended parks WITHOUT re-validating its
// conflicts after announcing — the textbook lost-wakeup bug the harness must
// catch (tests/dct_mutation_test.cpp validates the detector against it).
void set_mutation_drop_announce_revalidate(bool on) noexcept;
bool mutation_drop_announce_revalidate() noexcept;

// When set, a failed optimistic acquisition retracts its announcement
// WITHOUT replaying the last-release wakeup handshake — a waiter that parked
// against the transient announcement sleeps forever (the lost-wakeup bug of
// the optimistic tier; see LockMechanism::announce_validate and
// docs/FAST_PATH.md).
void set_mutation_drop_retract_rewake(bool on) noexcept;
bool mutation_drop_retract_rewake() noexcept;

// When set, the bypass tiers skip the grant-policy barrier check — commuting
// arrivals overtake queued waiters exactly as under the Free policy, so a
// fair policy silently loses its no-starvation bound (the regression the DCT
// no-starvation oracle must catch; see LockMechanism::fast_path_admitted).
void set_mutation_drop_barrier_check(bool on) noexcept;
bool mutation_drop_barrier_check() noexcept;

// When set, the Packed storage policy's acquisition CAS skips the
// compiled conflict-mask test (`word & conflict_mask[m]`) — conflicting
// holders stop excluding each other, and the DCT serializability oracle
// must catch the resulting lost updates (see
// LockMechanism::packed_try_acquire and tests/dct_mutation_test.cpp).
void set_mutation_drop_packed_mask_check(bool on) noexcept;
bool mutation_drop_packed_mask_check() noexcept;

}  // namespace semlock::dct

#define SEMLOCK_DCT_POINT(point, object)                  \
  do {                                                    \
    if (::semlock::dct::scheduled())                      \
      ::semlock::dct::sched_point((point), (object));     \
  } while (0)

#else  // !SEMLOCK_DCT

#define SEMLOCK_DCT_POINT(point, object) ((void)0)

#endif  // SEMLOCK_DCT
