// Schedule exploration on top of the DCT scheduler: run a workload under
// many seeds, check every completed schedule against an oracle, and hand
// back a deterministically replayable seed on the first failure.
//
// A Workload is rebuilt from scratch for every schedule (fresh mechanism,
// fresh history), so schedules are independent; `check` runs after a
// schedule completes and returns "" for acceptable outcomes. Hangs
// (deadlock/livelock) are failures regardless of the oracle. The canonical
// oracle is the conflict-serializability checker of src/semlock/history.h,
// wired via serializability_oracle(): the harness then proves schedules for
// *atomicity*, not just termination.
//
// Replay workflow: a failing explore() prints the derived per-schedule seed;
//   dct::replay(opts.sched, failing_seed, factory)
// re-runs exactly that schedule (same strategy, same seed, one run).
#pragma once

#if defined(SEMLOCK_DCT)

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dct/scheduler.h"
#include "semlock/history.h"

namespace semlock::dct {

struct Workload {
  std::vector<std::function<void()>> threads;
  // Post-run oracle over the workload's final state; "" = acceptable. Only
  // invoked for schedules that complete.
  std::function<std::string()> check;
};
// Invoked once per schedule; must build fresh state each time.
using WorkloadFactory = std::function<Workload()>;

struct ExploreOptions {
  // Strategy/bounds for every schedule. `sched.seed` is ignored: each
  // schedule i runs under derive_seed(base_seed, i).
  SchedulerOptions sched;
  std::uint64_t base_seed = 1;
  int schedules = 1'000;
};

struct ExploreResult {
  bool ok = true;
  int schedules_run = 0;
  // Populated on failure:
  std::uint64_t failing_seed = 0;  // pass to replay() verbatim
  ScheduleResult schedule;         // the failing schedule
  std::string oracle_failure;      // non-empty iff the oracle flagged it
  std::string failure;             // full human-readable report

  std::string to_string() const;
};

// Explores up to opts.schedules schedules; stops at the first failure.
ExploreResult explore(const ExploreOptions& opts,
                      const WorkloadFactory& factory);

// Re-runs the single schedule identified by `seed` (as printed by a failing
// explore) and re-applies the workload's oracle.
ExploreResult replay(const SchedulerOptions& sched, std::uint64_t seed,
                     const WorkloadFactory& factory);

// Oracle adapter: snapshots `recorder` after the schedule and runs the
// conflict-serializability checker; returns the report on violation.
std::function<std::string()> serializability_oracle(
    std::shared_ptr<HistoryRecorder> recorder);

}  // namespace semlock::dct

#endif  // SEMLOCK_DCT
