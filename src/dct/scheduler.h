// Deterministic concurrency testing: a cooperative virtual-thread scheduler.
//
// OS2PL has no rollback (Section 4), so a lost wakeup or a missed conflict
// re-validation in the Fig. 20 mechanism is a permanent hang — a liveness
// property TSan cannot see because no data race is involved. This scheduler
// makes such interleavings *enumerable*: the bodies passed to run() execute
// on real OS threads, but only one runs at a time, and control changes hands
// exclusively at the hook points instrumented via src/dct/hooks.h (spinlock
// acquire/release, parking-lot handshake steps, mode-counter accesses). The
// scheduler picks who runs next per an exploration strategy:
//
//   RoundRobin — cycles through runnable threads; one canonical schedule.
//   Random     — uniform choice at every step, seeded; the workhorse.
//   Pct        — PCT-style priority schedules (Burckhardt et al.): random
//                distinct priorities, the highest runnable priority runs,
//                and at d random change points the running thread is demoted.
//                Finds bugs of depth d with known probability bounds.
//
// Blocking primitives become predicates: a virtual thread that would spin or
// park instead declares "runnable when pred() holds" and yields. The
// scheduler re-evaluates predicates after every step, so
//   - deadlock is exact: every live thread blocked on a false predicate;
//   - livelock is bounded: a schedule exceeding max_steps is reported.
// On either outcome the schedule so far is dumped and the stuck threads are
// abandoned in place (they hold only harness state, shared via shared_ptr,
// and are detached — the failing process is about to report and exit).
//
// Given the same seed and a workload free of its own nondeterminism (no
// address-order dependence, no real clocks), a schedule replays exactly —
// the basis of the one-line replay in src/dct/explorer.h.
#pragma once

#if defined(SEMLOCK_DCT)

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace semlock::dct {

enum class StrategyKind { RoundRobin, Random, Pct };
const char* strategy_name(StrategyKind kind);

struct SchedulerOptions {
  StrategyKind strategy = StrategyKind::Random;
  std::uint64_t seed = 1;
  // Livelock bound: scheduling decisions per run (not wall time).
  std::uint64_t max_steps = 50'000;
  // Pct: number of priority change points and the expected schedule length
  // they are drawn from (the d and k of the PCT guarantee).
  int pct_priority_changes = 3;
  std::uint64_t pct_expected_steps = 2'000;
  // Most recent scheduling decisions kept for failure dumps.
  std::size_t trace_limit = 4'096;
};

struct ScheduleStep {
  std::uint64_t index;  // scheduling decision number, from 1
  int thread;           // virtual thread granted the step
  const char* point;    // hook label the thread resumed from
  const void* object;   // synchronization object at that hook
};

struct ScheduleResult {
  enum class Outcome { Completed, Deadlock, Livelock };
  Outcome outcome = Outcome::Completed;
  std::uint64_t steps = 0;

  struct StuckThread {
    int thread;
    const char* point;  // where it sat when the schedule was declared stuck
    bool blocked;       // true: waiting on a predicate; false: never granted
  };
  std::vector<StuckThread> stuck;  // non-empty on Deadlock/Livelock

  std::deque<ScheduleStep> trace;  // most recent decisions (trace_limit)

  bool hung() const { return outcome != Outcome::Completed; }
  // Human-readable outcome + stuck threads + tail of the schedule.
  std::string to_string(std::size_t max_trace_lines = 64) const;
};

// One Scheduler explores exactly one schedule; construct a fresh one per run
// (the explorer does). The constructing thread becomes the controller and
// must not touch any instrumented primitive while run() is in flight.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options) : options_(options) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Runs each body as one virtual thread until all complete or the schedule
  // is declared stuck. May be called once per Scheduler.
  ScheduleResult run(std::vector<std::function<void()>> bodies);

 private:
  SchedulerOptions options_;
};

}  // namespace semlock::dct

#endif  // SEMLOCK_DCT
