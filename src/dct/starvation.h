// No-starvation schedule oracle support for the DCT harness.
//
// The grant policies bound how often a conflicting waiter can be bypassed
// (src/runtime/grant_policy.h). To certify that bound under exhaustive
// schedule exploration, the mechanism reports two things here, compiled only
// under SEMLOCK_DCT and free when no tracker is installed:
//
//   - StarvationWaitScope: RAII around one contended wait episode in
//     LockMechanism::lock_contended. Registered when the waiter enters the
//     wait loop; granted() closes the episode and charges one bypass to
//     every EARLIER-registered episode still waiting on the same
//     (mechanism, partition) — those are exactly the waiters this grant
//     overtook. Later-registered waiters were behind it all along, so a
//     grant in arrival order (FIFO draining its queue) counts nothing.
//   - starvation_on_grant(mechanism, partition): called at the fast-path
//     grant sites (optimistic hit, uncontended arbitrated grant, try_lock
//     success), where the grantee arrived later than every registered
//     waiter by definition. Bumps every open episode on the partition.
//
// A workload installs a StarvationTracker for the duration of a schedule and
// asserts on max_bypasses() in its check() function: the oracle fails the
// schedule when any single wait episode was overtaken more often than the
// policy's certified bound — K plus the in-flight doorway allowance (a
// thread that passed the barrier check before the barrier rose may still
// announce once), see tests/dct_mutation_test.cpp.
//
// Virtual DCT threads are real std::threads serialized by the Scheduler, so
// the tracker's mutex is never contended; it exists for the non-scheduled
// uses (a tracker installed around ordinary concurrent code works too).
#pragma once

#if defined(SEMLOCK_DCT)

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace semlock::dct {

class StarvationTracker {
 public:
  StarvationTracker();
  StarvationTracker(const StarvationTracker&) = delete;
  StarvationTracker& operator=(const StarvationTracker&) = delete;
  // Uninstalls itself if still the active tracker.
  ~StarvationTracker();

  // Makes this tracker the process-wide sink for wait/grant reports. At most
  // one tracker is active; installing replaces the previous one.
  void install();
  void uninstall();

  // Largest number of grants that overtook any single wait episode observed
  // so far (including episodes still open).
  std::uint64_t max_bypasses() const;
  // Total wait episodes registered (sanity: did the workload contend at all).
  std::uint64_t episodes() const;
  // One line per episode in registration order ("#i p<partition> <n>x"),
  // for oracle failure messages.
  std::string describe() const;

 private:
  friend class StarvationWaitScope;
  friend void starvation_on_grant(const void* mechanism, int partition);

  struct Episode {
    const void* mechanism;
    int partition;
    std::uint64_t bypasses;
    bool open;
  };

  mutable std::mutex mu_;
  std::vector<Episode> episodes_;
};

// RAII wait episode; see header comment. Safe to construct when no tracker
// is installed (all operations no-op).
class StarvationWaitScope {
 public:
  StarvationWaitScope(const void* mechanism, int partition);
  StarvationWaitScope(const StarvationWaitScope&) = delete;
  StarvationWaitScope& operator=(const StarvationWaitScope&) = delete;
  // Closes the episode; further grants no longer count against it. Called
  // before the waiter reports its own grant. The destructor closes too (a
  // waiter abandoned by an exception just stops accruing).
  void granted();
  ~StarvationWaitScope();

 private:
  StarvationTracker* tracker_;
  std::size_t index_;
};

// Reports one grant on (mechanism, partition) to the active tracker, if any.
void starvation_on_grant(const void* mechanism, int partition);

}  // namespace semlock::dct

#endif  // SEMLOCK_DCT
