#include "dct/scheduler.h"

#if defined(SEMLOCK_DCT)

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "dct/hooks.h"
#include "util/rng.h"

namespace semlock::dct {

namespace {

struct ThreadRec {
  enum class St { Ready, Running, Blocked, Finished };
  St st = St::Ready;
  std::function<bool()> pred;  // wait predicate while Blocked
  const char* point = "start";
  const void* object = nullptr;
};

// Everything the controller and the virtual threads share. Held via
// shared_ptr by every party so that threads abandoned after a deadlock
// verdict (parked on `cv` forever, then detached) never touch freed state.
struct Control {
  std::mutex mu;
  std::condition_variable cv;
  int running = -1;  // tid granted the step; -1 = controller decides
  int finished = 0;
  std::vector<ThreadRec> threads;
  std::uint64_t steps = 0;
  std::deque<ScheduleStep> trace;
  std::size_t trace_limit = 0;
};

thread_local std::shared_ptr<Control> tls_ctl;
thread_local int tls_tid = -1;

void worker_main(std::shared_ptr<Control> ctl, int tid,
                 std::function<void()> body) {
  tls_ctl = ctl;
  tls_tid = tid;
  {
    std::unique_lock lk(ctl->mu);
    ctl->cv.wait(lk, [&] { return ctl->running == tid; });
  }
  body();
  {
    std::unique_lock lk(ctl->mu);
    ctl->threads[static_cast<std::size_t>(tid)].st = ThreadRec::St::Finished;
    ++ctl->finished;
    ctl->running = -1;
    ctl->cv.notify_all();
  }
  tls_ctl.reset();
  tls_tid = -1;
}

// Parks the calling virtual thread (Ready if it can be re-granted at will,
// Blocked with `pred` otherwise) and waits to be granted the next step.
void surrender(const char* point, const void* object,
               std::function<bool()> pred) {
  std::shared_ptr<Control> ctl = tls_ctl;  // keep alive across the wait
  const int tid = tls_tid;
  std::unique_lock lk(ctl->mu);
  ThreadRec& me = ctl->threads[static_cast<std::size_t>(tid)];
  me.st = pred ? ThreadRec::St::Blocked : ThreadRec::St::Ready;
  me.pred = std::move(pred);
  me.point = point;
  me.object = object;
  ctl->running = -1;
  ctl->cv.notify_all();
  // After a Deadlock/Livelock verdict the controller never grants again and
  // this wait is permanent by design (the thread is then detached).
  ctl->cv.wait(lk, [&] { return ctl->running == tid; });
}

std::atomic<bool> g_mutation_drop_announce_revalidate{false};
std::atomic<bool> g_mutation_drop_retract_rewake{false};
std::atomic<bool> g_mutation_drop_barrier_check{false};
std::atomic<bool> g_mutation_drop_packed_mask_check{false};

}  // namespace

bool scheduled() noexcept { return tls_ctl != nullptr; }

void sched_point(const char* point, const void* object) {
  surrender(point, object, nullptr);
}

void spinlock_acquire(std::atomic<bool>& flag) {
  sched_point("spin.acquire", &flag);
  while (flag.exchange(true, std::memory_order_acquire)) {
    std::atomic<bool>* f = &flag;
    surrender("spin.blocked", f,
              [f] { return !f->load(std::memory_order_relaxed); });
  }
}

bool spinlock_try_acquire(std::atomic<bool>& flag) {
  sched_point("spin.try", &flag);
  return !flag.load(std::memory_order_relaxed) &&
         !flag.exchange(true, std::memory_order_acquire);
}

void spinlock_release(std::atomic<bool>& flag) {
  sched_point("spin.release", &flag);
  flag.store(false, std::memory_order_release);
}

void futex_wait(std::atomic<std::uint32_t>& word, std::uint32_t observed) {
  std::atomic<std::uint32_t>* w = &word;
  surrender("park.wait", w, [w, observed] {
    return w->load(std::memory_order_relaxed) != observed;
  });
}

void futex_wait(std::atomic<std::uint64_t>& word, std::uint64_t observed) {
  std::atomic<std::uint64_t>* w = &word;
  surrender("word.wait", w, [w, observed] {
    return w->load(std::memory_order_relaxed) != observed;
  });
}

void set_mutation_drop_announce_revalidate(bool on) noexcept {
  g_mutation_drop_announce_revalidate.store(on, std::memory_order_relaxed);
}

bool mutation_drop_announce_revalidate() noexcept {
  return g_mutation_drop_announce_revalidate.load(std::memory_order_relaxed);
}

void set_mutation_drop_retract_rewake(bool on) noexcept {
  g_mutation_drop_retract_rewake.store(on, std::memory_order_relaxed);
}

bool mutation_drop_retract_rewake() noexcept {
  return g_mutation_drop_retract_rewake.load(std::memory_order_relaxed);
}

void set_mutation_drop_barrier_check(bool on) noexcept {
  g_mutation_drop_barrier_check.store(on, std::memory_order_relaxed);
}

bool mutation_drop_barrier_check() noexcept {
  return g_mutation_drop_barrier_check.load(std::memory_order_relaxed);
}

void set_mutation_drop_packed_mask_check(bool on) noexcept {
  g_mutation_drop_packed_mask_check.store(on, std::memory_order_relaxed);
}

bool mutation_drop_packed_mask_check() noexcept {
  return g_mutation_drop_packed_mask_check.load(std::memory_order_relaxed);
}

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::RoundRobin:
      return "round-robin";
    case StrategyKind::Random:
      return "random";
    case StrategyKind::Pct:
      return "pct";
  }
  return "unknown";
}

std::string ScheduleResult::to_string(std::size_t max_trace_lines) const {
  std::string out = "schedule ";
  switch (outcome) {
    case Outcome::Completed:
      out += "completed";
      break;
    case Outcome::Deadlock:
      out += "DEADLOCK";
      break;
    case Outcome::Livelock:
      out += "LIVELOCK (step bound exceeded)";
      break;
  }
  out += " after " + std::to_string(steps) + " steps";
  for (const StuckThread& s : stuck) {
    out += "\n  stuck: thread " + std::to_string(s.thread) + " at " +
           s.point + (s.blocked ? " (blocked)" : " (never ran)");
  }
  if (!trace.empty()) {
    const std::size_t n = std::min(max_trace_lines, trace.size());
    out += "\n  last " + std::to_string(n) + " decisions:";
    for (std::size_t i = trace.size() - n; i < trace.size(); ++i) {
      out += "\n    #" + std::to_string(trace[i].index) + " t" +
             std::to_string(trace[i].thread) + " " + trace[i].point;
    }
  }
  return out;
}

ScheduleResult Scheduler::run(std::vector<std::function<void()>> bodies) {
  const int n = static_cast<int>(bodies.size());
  auto ctl = std::make_shared<Control>();
  ctl->threads.resize(static_cast<std::size_t>(n));
  ctl->trace_limit = options_.trace_limit;

  util::Xoshiro256 rng(options_.seed);

  // Pct state: distinct random priorities (higher runs first); change points
  // drawn over the expected schedule length demote the running thread.
  std::vector<std::int64_t> priority(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> change_points;
  std::int64_t low_water = 0;
  if (options_.strategy == StrategyKind::Pct) {
    for (int i = 0; i < n; ++i) priority[static_cast<std::size_t>(i)] = i + 1;
    for (int i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(priority[static_cast<std::size_t>(i)], priority[j]);
    }
    const std::uint64_t span =
        std::max<std::uint64_t>(1, options_.pct_expected_steps);
    for (int i = 0; i < options_.pct_priority_changes; ++i) {
      change_points.push_back(1 + rng.next_below(span));
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers.emplace_back(worker_main, ctl, i, std::move(bodies[i]));
  }

  ScheduleResult result;
  int last_pick = -1;
  {
    std::unique_lock lk(ctl->mu);
    for (;;) {
      ctl->cv.wait(lk, [&] { return ctl->running == -1; });
      if (ctl->finished == n) break;

      // Promote blocked threads whose wait predicate now holds. Predicates
      // only read atomics and no virtual thread is mid-step here, so the
      // evaluation is race-free and deterministic.
      for (ThreadRec& t : ctl->threads) {
        if (t.st == ThreadRec::St::Blocked && t.pred && t.pred()) {
          t.st = ThreadRec::St::Ready;
          t.pred = nullptr;
        }
      }
      std::vector<int> ready;
      for (int i = 0; i < n; ++i) {
        if (ctl->threads[static_cast<std::size_t>(i)].st ==
            ThreadRec::St::Ready) {
          ready.push_back(i);
        }
      }
      if (ready.empty()) {
        result.outcome = ScheduleResult::Outcome::Deadlock;
        break;
      }
      if (ctl->steps >= options_.max_steps) {
        result.outcome = ScheduleResult::Outcome::Livelock;
        break;
      }

      int pick = ready.front();
      switch (options_.strategy) {
        case StrategyKind::RoundRobin:
          for (int r : ready) {
            if (r > last_pick) {
              pick = r;
              break;
            }
          }
          break;
        case StrategyKind::Random:
          pick = ready[static_cast<std::size_t>(
              rng.next_below(ready.size()))];
          break;
        case StrategyKind::Pct: {
          for (int r : ready) {
            if (priority[static_cast<std::size_t>(r)] >
                priority[static_cast<std::size_t>(pick)]) {
              pick = r;
            }
          }
          if (std::find(change_points.begin(), change_points.end(),
                        ctl->steps + 1) != change_points.end()) {
            priority[static_cast<std::size_t>(pick)] = --low_water;
          }
          break;
        }
      }
      last_pick = pick;

      ++ctl->steps;
      ThreadRec& t = ctl->threads[static_cast<std::size_t>(pick)];
      if (ctl->trace.size() == ctl->trace_limit) ctl->trace.pop_front();
      ctl->trace.push_back(ScheduleStep{ctl->steps, pick, t.point, t.object});
      t.st = ThreadRec::St::Running;
      ctl->running = pick;
      ctl->cv.notify_all();
    }

    result.steps = ctl->steps;
    result.trace = ctl->trace;
    if (result.hung()) {
      for (int i = 0; i < n; ++i) {
        const ThreadRec& t = ctl->threads[static_cast<std::size_t>(i)];
        if (t.st != ThreadRec::St::Finished) {
          result.stuck.push_back(ScheduleResult::StuckThread{
              i, t.point, t.st == ThreadRec::St::Blocked});
        }
      }
    }
  }

  if (result.hung()) {
    // Stuck workers sleep forever on `cv` (never granted again); they keep
    // the Control block alive through their shared_ptr and are abandoned.
    for (std::thread& w : workers) w.detach();
  } else {
    for (std::thread& w : workers) w.join();
  }
  return result;
}

}  // namespace semlock::dct

#endif  // SEMLOCK_DCT
