#include "semlock/mode.h"

namespace semlock {

std::string AbstractArg::to_string() const {
  switch (kind) {
    case Kind::Star:
      return "*";
    case Kind::Const:
      return std::to_string(constant);
    case Kind::Alpha:
      return "a" + std::to_string(alpha + 1);  // 1-based like the paper's α1
  }
  return "?";
}

std::string Mode::to_string(const commute::AdtSpec& spec) const {
  std::string out = "{";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i) out += ",";
    out += spec.method(ops[i].method).name + "(";
    for (std::size_t j = 0; j < ops[i].args.size(); ++j) {
      if (j) out += ",";
      out += ops[i].args[j].to_string();
    }
    out += ")";
  }
  out += "}";
  return out;
}

bool definitely_differ(const AbstractArg& a, const AbstractArg& b,
                       const commute::ValueAbstraction& phi) {
  using Kind = AbstractArg::Kind;
  if (a.kind == Kind::Star || b.kind == Kind::Star) return false;
  if (a.kind == Kind::Const && b.kind == Kind::Const) {
    return a.constant != b.constant;
  }
  if (a.kind == Kind::Alpha && b.kind == Kind::Alpha) {
    return a.alpha != b.alpha;
  }
  // Mixed Const/Alpha: phi partitions the value domain, so a constant whose
  // abstract value differs from alpha_k can never equal a value mapped to
  // alpha_k.
  const auto& c = (a.kind == Kind::Const) ? a : b;
  const auto& al = (a.kind == Kind::Alpha) ? a : b;
  return phi.alpha_of(c.constant) != al.alpha;
}

bool abstract_ops_commute(const commute::AdtSpec& spec,
                          const commute::ValueAbstraction& phi,
                          const AbstractOp& a, const AbstractOp& b) {
  const commute::CommCondition& cond = spec.condition(a.method, b.method);
  switch (cond.kind()) {
    case commute::CommCondition::Kind::Always:
      return true;
    case commute::CommCondition::Kind::Never:
      return false;
    case commute::CommCondition::Kind::Dnf:
      for (const auto& clause : cond.clauses()) {
        bool all = true;
        for (const auto& atom : clause) {
          if (!definitely_differ(
                  a.args[static_cast<std::size_t>(atom.lhs_arg)],
                  b.args[static_cast<std::size_t>(atom.rhs_arg)], phi)) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
      return false;
  }
  return false;
}

bool modes_commute(const commute::AdtSpec& spec,
                   const commute::ValueAbstraction& phi, const Mode& a,
                   const Mode& b) {
  for (const auto& oa : a.ops) {
    for (const auto& ob : b.ops) {
      if (!abstract_ops_commute(spec, phi, oa, ob)) return false;
    }
  }
  return true;
}

}  // namespace semlock
