// Thread-local acquisition statistics (cheap; used by benchmarks and tests
// to observe contention rather than infer it).
//
// Split out of lock_mechanism.h so the observability layer (src/obs) can
// aggregate the counters without pulling in the whole mechanism. With
// SEMLOCK_OBS compiled in, the thread-local instance lives inside the
// obs thread state and is merged into the process-wide MetricsRegistry at
// thread exit, so cross-thread totals are exact rather than limited to the
// threads still alive at report time (src/obs/metrics.h).
#pragma once

#include <cstdint>

namespace semlock {

struct AcquireStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;  // acquisitions that waited at least once
  std::uint64_t parks = 0;      // times a waiter blocked in the ParkingLot
  // Acquisitions won by the lock-free optimistic tier (no spinlock touched)
  // and announcements retracted after a failed validation — together they
  // attribute throughput to the tier that produced it (ISSUE 3 ablations).
  std::uint64_t optimistic_hits = 0;
  std::uint64_t retracts = 0;
  std::uint64_t wait_ns = 0;    // total wall time spent in contended waits
  // Thread CPU time charged to this thread while it waited. The policy
  // discriminator: spinners burn CPU for the whole wait, parked waiters
  // only around the futex calls.
  std::uint64_t wait_cpu_ns = 0;
  // Longest single contended wait. The fairness headline: under the Free
  // grant policy a commuting flood makes this unbounded while the averages
  // look fine (docs/RUNTIME_WAITING.md §5).
  std::uint64_t max_wait_ns = 0;
  // Grant-policy traffic: arrivals the barrier word diverted to the wait
  // path, and ticketed grants that woke the partition to hand off to the
  // next eligible waiter. Both stay 0 under the Free policy.
  std::uint64_t diverted = 0;
  std::uint64_t handoffs = 0;
  void reset() { *this = AcquireStats{}; }

  void merge(const AcquireStats& other) {
    acquisitions += other.acquisitions;
    contended += other.contended;
    parks += other.parks;
    optimistic_hits += other.optimistic_hits;
    retracts += other.retracts;
    wait_ns += other.wait_ns;
    wait_cpu_ns += other.wait_cpu_ns;
    if (other.max_wait_ns > max_wait_ns) max_wait_ns = other.max_wait_ns;
    diverted += other.diverted;
    handoffs += other.handoffs;
  }
};

AcquireStats& local_acquire_stats();

}  // namespace semlock
