// SemanticLock: the per-ADT-instance synchronization facade (Section 2.2).
//
// An "ADT with semantic locking" pairs a linearizable data structure with one
// of these. Transactions address it through the `lock(site, values...)` /
// `unlock` API; the symbolic-set semantics live in the shared ModeTable.
#pragma once

#include <cstdint>
#include <span>

#include "semlock/lock_mechanism.h"
#include "semlock/mode_table.h"

namespace semlock {

class SemanticLock {
 public:
  explicit SemanticLock(const ModeTable& table)
      : mechanism_(table) {}

  const ModeTable& table() const { return mechanism_.table(); }

  // Resolves lock site `site` under the runtime `values` of its symbolic
  // variables and acquires the resulting mode. Returns the mode id, which
  // the caller passes back to unlock (or hands to a Transaction). The
  // (site, values) context rides along for the conflict-attribution
  // profiler; it costs nothing when attribution is off.
  int lock_site(int site, std::span<const commute::Value> values) {
    const int mode = table().resolve(site, values);
    const LockSiteArgs args{site, values, 0};
    mechanism_.lock(mode, &args);
    return mode;
  }

  // Direct mode-level interface (used when the mode is known statically,
  // i.e. constant symbolic sets).
  void lock(int mode, const LockSiteArgs* args = nullptr) {
    mechanism_.lock(mode, args);
  }
  bool try_lock(int mode, const LockSiteArgs* args = nullptr) {
    return mechanism_.try_lock(mode, args);
  }
  void unlock(int mode) { mechanism_.unlock(mode); }

  std::uint32_t holders(int mode) const { return mechanism_.holders(mode); }

  // The underlying mechanism — the instance identity that trace events and
  // the StallWatchdog report (tests and forensics match against its address).
  const LockMechanism& mechanism() const { return mechanism_; }

  // Unique ADT-instance identifier used for the dynamic lock ordering of
  // same-equivalence-class instances (Fig. 12 `unique`).
  std::uintptr_t unique_id() const {
    return reinterpret_cast<std::uintptr_t>(this);
  }

 private:
  LockMechanism mechanism_;
};

}  // namespace semlock
