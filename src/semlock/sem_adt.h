// Ready-made "ADTs with semantic locking" (Section 2.2): linearizable data
// structures bundled with a SemanticLock and a standard palette of lock
// intents, for users who want the paper's programming model without running
// the synthesis compiler. Each intent corresponds to a symbolic set the
// compiler commonly infers; acquire() returns an RAII guard.
//
//   SemMap<int64_t, std::string> map;
//   {
//     auto g = map.acquire(MapIntent::UpdateKey, k);   // {get(k),put(k,*),remove(k)}
//     if (!map.get(k)) map.put(k, make_value());
//   }                                                  // released
//
// Same-key updates serialize; different-alpha keys run in parallel; Readers
// (ReadKey) never block each other; Exclusive conflicts with everything
// (size/clear semantics).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <utility>

#include "adt/striped_hash_map.h"
#include "adt/striped_hash_set.h"
#include "adt/two_lock_queue.h"
#include "commute/builtin_specs.h"
#include "commute/symbolic.h"
#include "semlock/semantic_lock.h"

#if defined(SEMLOCK_OBS)
#include "obs/attribution.h"
#include "obs/trace.h"
// Executed-op note for the conflict-attribution profiler's MODE_OVERAPPROX
// class: each data-method call records its method bit against (mechanism,
// caller identity), so the classifier can tell which of the locked mode's
// ops the blocking transaction actually executed on this instance. Gated
// exactly like the lock path: traced mechanism + attribution on.
#define SEMLOCK_ADT_NOTE(midx)                                           \
  do {                                                                   \
    if (lock_.mechanism().traced() && obs::attribution_enabled()) {      \
      obs::note_executed_op(&lock_.mechanism(), obs::current_owner_id(), \
                            (midx));                                     \
    }                                                                    \
  } while (0)
#else
#define SEMLOCK_ADT_NOTE(midx) ((void)0)
#endif

namespace semlock {

// RAII hold on one acquired mode. Movable, not copyable.
class ModeGuard {
 public:
  ModeGuard() = default;
  ModeGuard(SemanticLock* lk, int mode) : lk_(lk), mode_(mode) {}
  ModeGuard(ModeGuard&& o) noexcept : lk_(o.lk_), mode_(o.mode_) {
    o.lk_ = nullptr;
  }
  ModeGuard& operator=(ModeGuard&& o) noexcept {
    release();
    lk_ = o.lk_;
    mode_ = o.mode_;
    o.lk_ = nullptr;
    return *this;
  }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;
  ~ModeGuard() { release(); }

  void release() {
    if (lk_) lk_->unlock(mode_);
    lk_ = nullptr;
  }
  int mode() const { return mode_; }
  bool held() const { return lk_ != nullptr; }

 private:
  SemanticLock* lk_ = nullptr;
  int mode_ = 0;
};

namespace detail {

// Constant-site mode memo: a site whose symbolic set kept no variables
// always resolves to the same mode, so acquire() can skip the per-call O(k)
// tuple hash in ModeTable::resolve. -1 marks keyed sites.
template <std::size_t N>
std::array<int, N> memoize_constant_sites(const ModeTable& table) {
  std::array<int, N> memo;
  for (int s = 0; s < static_cast<int>(N); ++s) {
    memo[static_cast<std::size_t>(s)] =
        table.site_variables(s).empty() ? table.resolve_constant(s) : -1;
  }
  return memo;
}

}  // namespace detail

enum class MapIntent {
  ReadKey,    // {get(k), containsKey(k)}           — readers never conflict
  WriteKey,   // {put(k,*), remove(k)}              — same-alpha writes conflict
  UpdateKey,  // {get(k), containsKey(k), put(k,*), remove(k)}
  Exclusive,  // {size(), clear(), put(*,*), remove(*)} — conflicts with all
};

template <typename K, typename V, typename Hash = std::hash<K>>
class SemMap {
 public:
  explicit SemMap(int abstract_values = 64, std::size_t num_stripes = 64)
      : table_(make_table(abstract_values)),
        constant_mode_(detail::memoize_constant_sites<4>(table_)),
        lock_(table_),
        map_(num_stripes) {
#if defined(SEMLOCK_OBS)
    midx_get_ = table_.spec().method_index("get");
    midx_contains_ = table_.spec().method_index("containsKey");
    midx_put_ = table_.spec().method_index("put");
    midx_remove_ = table_.spec().method_index("remove");
    midx_size_ = table_.spec().method_index("size");
    midx_clear_ = table_.spec().method_index("clear");
#endif
  }

  // `key_id` is the abstraction key for keyed intents (usually the key
  // itself when K is integral); ignored for Exclusive.
  ModeGuard acquire(MapIntent intent, commute::Value key_id = 0) {
    const int site = static_cast<int>(intent);
    const int memo = constant_mode_[static_cast<std::size_t>(site)];
    if (memo >= 0) {
      const LockSiteArgs args{site, {}, 0};
      lock_.lock(memo, &args);
      return ModeGuard(&lock_, memo);
    }
    const commute::Value vals[1] = {key_id};
    const int mode =
        lock_.lock_site(site, std::span<const commute::Value>(vals));
    return ModeGuard(&lock_, mode);
  }

  // Standard API — call only while holding a covering guard.
  std::optional<V> get(const K& k) const {
    SEMLOCK_ADT_NOTE(midx_get_);
    return map_.get(k);
  }
  bool contains_key(const K& k) const {
    SEMLOCK_ADT_NOTE(midx_contains_);
    return map_.contains_key(k);
  }
  bool put(const K& k, V v) {
    SEMLOCK_ADT_NOTE(midx_put_);
    return map_.put(k, std::move(v));
  }
  bool put_if_absent(const K& k, V v) {
    SEMLOCK_ADT_NOTE(midx_put_);
    return map_.put_if_absent(k, std::move(v));
  }
  bool remove(const K& k) {
    SEMLOCK_ADT_NOTE(midx_remove_);
    return map_.remove(k);
  }
  std::size_t size() const {
    SEMLOCK_ADT_NOTE(midx_size_);
    return map_.size();
  }
  void clear() {
    SEMLOCK_ADT_NOTE(midx_clear_);
    map_.clear();
  }

  const ModeTable& mode_table() const { return table_; }

 private:
  static ModeTable make_table(int abstract_values) {
    using commute::op;
    using commute::star;
    using commute::SymbolicSet;
    using commute::var;
    ModeTableConfig cfg;
    cfg.abstract_values = abstract_values;
    return ModeTable::compile(
        commute::map_spec(),
        {
            SymbolicSet({op("get", {var("k")}),
                         op("containsKey", {var("k")})}),
            SymbolicSet({op("put", {var("k"), star()}),
                         op("remove", {var("k")})}),
            SymbolicSet({op("get", {var("k")}), op("containsKey", {var("k")}),
                         op("put", {var("k"), star()}),
                         op("remove", {var("k")})}),
            SymbolicSet({op("size"), op("clear"), op("put", {star(), star()}),
                         op("remove", {star()})}),
        },
        cfg);
  }

  ModeTable table_;
  std::array<int, 4> constant_mode_;
  SemanticLock lock_;
  adt::StripedHashMap<K, V, Hash> map_;
#if defined(SEMLOCK_OBS)
  // Memoized AdtSpec method indices for the executed-op notes.
  int midx_get_ = -1;
  int midx_contains_ = -1;
  int midx_put_ = -1;
  int midx_remove_ = -1;
  int midx_size_ = -1;
  int midx_clear_ = -1;
#endif
};

enum class SetIntent {
  ReadElem,    // {contains(v)}
  WriteElem,   // {add(v), remove(v)}
  AddAny,      // {add(*)} — bulk insertion, commutes with itself
  Exclusive,   // {size(), clear(), add(*), remove(*)}
};

template <typename K, typename Hash = std::hash<K>>
class SemSet {
 public:
  explicit SemSet(int abstract_values = 64, std::size_t num_stripes = 64)
      : table_(make_table(abstract_values)),
        constant_mode_(detail::memoize_constant_sites<4>(table_)),
        lock_(table_),
        set_(num_stripes) {
#if defined(SEMLOCK_OBS)
    midx_add_ = table_.spec().method_index("add");
    midx_remove_ = table_.spec().method_index("remove");
    midx_contains_ = table_.spec().method_index("contains");
    midx_size_ = table_.spec().method_index("size");
    midx_clear_ = table_.spec().method_index("clear");
#endif
  }

  ModeGuard acquire(SetIntent intent, commute::Value elem_id = 0) {
    const int site = static_cast<int>(intent);
    const int memo = constant_mode_[static_cast<std::size_t>(site)];
    if (memo >= 0) {
      const LockSiteArgs args{site, {}, 0};
      lock_.lock(memo, &args);
      return ModeGuard(&lock_, memo);
    }
    const commute::Value vals[1] = {elem_id};
    const int mode =
        lock_.lock_site(site, std::span<const commute::Value>(vals));
    return ModeGuard(&lock_, mode);
  }

  bool add(const K& k) {
    SEMLOCK_ADT_NOTE(midx_add_);
    return set_.add(k);
  }
  bool remove(const K& k) {
    SEMLOCK_ADT_NOTE(midx_remove_);
    return set_.remove(k);
  }
  bool contains(const K& k) const {
    SEMLOCK_ADT_NOTE(midx_contains_);
    return set_.contains(k);
  }
  std::size_t size() const {
    SEMLOCK_ADT_NOTE(midx_size_);
    return set_.size();
  }
  void clear() {
    SEMLOCK_ADT_NOTE(midx_clear_);
    set_.clear();
  }

  const ModeTable& mode_table() const { return table_; }

 private:
  static ModeTable make_table(int abstract_values) {
    using commute::op;
    using commute::star;
    using commute::SymbolicSet;
    using commute::var;
    ModeTableConfig cfg;
    cfg.abstract_values = abstract_values;
    return ModeTable::compile(
        commute::set_spec(),
        {
            SymbolicSet({op("contains", {var("v")})}),
            SymbolicSet({op("add", {var("v")}), op("remove", {var("v")})}),
            SymbolicSet({op("add", {star()})}),
            SymbolicSet({op("size"), op("clear"), op("add", {star()}),
                         op("remove", {star()})}),
        },
        cfg);
  }

  ModeTable table_;
  std::array<int, 4> constant_mode_;
  SemanticLock lock_;
  adt::StripedHashSet<K, Hash> set_;
#if defined(SEMLOCK_OBS)
  int midx_add_ = -1;
  int midx_remove_ = -1;
  int midx_contains_ = -1;
  int midx_size_ = -1;
  int midx_clear_ = -1;
#endif
};

enum class PoolIntent {
  Produce,  // {enqueue(*)} — producers run in parallel (Pool spec)
  Consume,  // {dequeue()}  — exclusive vs producers and consumers
};

template <typename T>
class SemPool {
 public:
  explicit SemPool()
      : table_(make_table()),
        constant_mode_(detail::memoize_constant_sites<2>(table_)),
        lock_(table_) {}

  ModeGuard acquire(PoolIntent intent) {
    // Both Pool sites are constant, so the memo always hits.
    const int mode =
        constant_mode_[static_cast<std::size_t>(static_cast<int>(intent))];
    const LockSiteArgs args{static_cast<int>(intent), {}, 0};
    lock_.lock(mode, &args);
    return ModeGuard(&lock_, mode);
  }

  void enqueue(T value) { queue_.enqueue(std::move(value)); }
  std::optional<T> dequeue() { return queue_.dequeue(); }
  bool is_empty() const { return queue_.is_empty(); }

  const ModeTable& mode_table() const { return table_; }

 private:
  static ModeTable make_table() {
    using commute::op;
    using commute::star;
    using commute::SymbolicSet;
    return ModeTable::compile(
        commute::pool_spec(),
        {
            SymbolicSet({op("enqueue", {star()})}),
            SymbolicSet({op("dequeue")}),
        },
        ModeTableConfig{});
  }

  ModeTable table_;
  std::array<int, 2> constant_mode_;
  SemanticLock lock_;
  adt::TwoLockQueue<T> queue_;
};

}  // namespace semlock

#undef SEMLOCK_ADT_NOTE
