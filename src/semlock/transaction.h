// Transaction-side bookkeeping for the OS2PL protocol (Sections 2.3 and 3).
//
// A Transaction plays the role of the generated prologue/epilogue plus the
// thread-local LOCAL_SET: it remembers which ADT instances are locked (and in
// which mode), skips re-locking (the LV macro of Fig. 5), orders
// same-equivalence-class instances dynamically by unique id (Fig. 12), and
// releases everything at the end of the atomic section — or earlier, for the
// early-release optimization of Appendix A.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "obs/hooks.h"
#include "semlock/semantic_lock.h"

namespace semlock {

class Transaction {
 public:
  Transaction() {
    entries_.reserve(8);
    // Stamp a process-unique transaction id into the thread's trace state:
    // every event emitted while this (outermost) transaction is open carries
    // it, which is what lets forensics name the holder.
    SEMLOCK_OBS_TXN_BEGIN();
#if defined(SEMLOCK_OBS)
    exec_start_ns_ = SEMLOCK_OBS_SPAN_CLOCK();
#endif
  }
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  ~Transaction() {
#if defined(SEMLOCK_OBS)
    // Exec span ends where the epilogue begins; the commit span covers
    // unlock_all. Recorded before TXN_END so the spans carry this txn's id.
    const std::uint64_t commit_start_ns =
        exec_start_ns_ != 0 ? ::semlock::obs::span_now_ns() : 0;
    const int released = static_cast<int>(entries_.size());
#endif
    unlock_all();
#if defined(SEMLOCK_OBS)
    if (exec_start_ns_ != 0) {
      ::semlock::obs::record_txn_spans(exec_start_ns_, commit_start_ns,
                                       ::semlock::obs::span_now_ns(),
                                       released);
    }
#endif
    SEMLOCK_OBS_TXN_END();
  }

  // LV(x) of Fig. 5: lock `lk` in the mode resolved for (site, values)
  // unless this transaction already holds it. Null `lk` is a no-op, like
  // the null check in LV.
  void lv(SemanticLock* lk, int site,
          std::span<const commute::Value> values = {}) {
    if (lk == nullptr || holds(lk)) return;
    const int mode = lk->lock_site(site, values);
    entries_.push_back(Entry{lk, mode});
    on_entry_added();
  }

  // Mode-level LV for callers that resolved the mode themselves.
  void lv_mode(SemanticLock* lk, int mode) {
    if (lk == nullptr || holds(lk)) return;
    lk->lock(mode);
    entries_.push_back(Entry{lk, mode});
    on_entry_added();
  }

  // LV2/LVn (Fig. 12): lock several same-equivalence-class instances in
  // ascending unique-id order. Each element pairs an instance with the mode
  // to acquire. Null instances are skipped.
  struct DynTarget {
    SemanticLock* lk = nullptr;
    int mode = 0;
  };
  void lv_ordered(std::span<DynTarget> targets);

  // Membership test behind every LV: a linear scan is fastest while the
  // LOCAL_SET is small (the common case — generated prologues lock a
  // handful of instances), but the LVn-heavy shapes of Fig. 12 can hold
  // hundreds, turning each atomic section into an O(N^2) scan. Past
  // kInlineHeldScan entries the set is mirrored into a hash index.
  bool holds(const SemanticLock* lk) const {
    if (index_live_) return index_.count(lk) != 0;
    for (const auto& e : entries_) {
      if (e.lk == lk) return true;
    }
    return false;
  }

  struct HeldEntry {
    SemanticLock* lk;
    int mode;
  };
  // The instances/modes currently held (introspection for protocol checks).
  std::vector<HeldEntry> held() const {
    std::vector<HeldEntry> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(HeldEntry{e.lk, e.mode});
    return out;
  }

  std::size_t num_held() const { return entries_.size(); }

  // Early lock release for one instance (Appendix A): unlocks every mode
  // this transaction holds on `lk`. No-op if none are held.
  void unlock_instance(SemanticLock* lk);

  // The epilogue: release everything.
  void unlock_all();

 private:
  struct Entry {
    SemanticLock* lk;
    int mode;
  };

  // Largest held-set size still served by the inline linear scan.
  static constexpr std::size_t kInlineHeldScan = 64;

  void on_entry_added() {
    if (index_live_) {
      index_.insert(entries_.back().lk);
    } else if (entries_.size() > kInlineHeldScan) {
      index_.reserve(entries_.size() * 2);
      for (const auto& e : entries_) index_.insert(e.lk);
      index_live_ = true;
    }
  }

  std::vector<Entry> entries_;
  // Hash mirror of entries_' instances; live once the set outgrows the
  // inline scan, reset by unlock_all (instances, not modes: an instance
  // appears in entries_ at most once).
  std::unordered_set<const SemanticLock*> index_;
  bool index_live_ = false;
#if defined(SEMLOCK_OBS)
  // Span-clock stamp of construction; 0 = span recording was off, so the
  // destructor records nothing.
  std::uint64_t exec_start_ns_ = 0;
#endif
};

}  // namespace semlock
