// Flat counter storage: one std::atomic<uint32_t> per canonical mode, the
// paper's Fig. 20 layout (see storage_policy.h for the policy overview).
//
// The counters live in a raw byte slab so the stride is configurable —
// sizeof(atomic) packed, or a full cache line per counter when
// ModeTableConfig::pad_counters is set. Each slot is created by placement-
// new in the constructor and every access goes through std::launder: the
// placement-new ends the lifetime of the std::byte array elements and
// starts an atomic's, and the slab pointer alone does not formally point to
// that new object — launder reclaims a usable pointer (this was the
// UB-adjacent reinterpret_cast called out by ISSUE 8). std::atomic<uint32_t>
// is trivially destructible, so the destructor has nothing to do.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "semlock/mode_table.h"
#include "util/align.h"

namespace semlock {

class FlatStorage {
 public:
  static constexpr bool kPacked = false;

  explicit FlatStorage(const ModeTable& table)
      : stride_(table.config().pad_counters
                    ? util::kCacheLineSize
                    : sizeof(std::atomic<std::uint32_t>)),
        num_modes_(table.num_modes()),
        counters_(new std::byte[static_cast<std::size_t>(table.num_modes()) *
                                stride_]) {
    for (int m = 0; m < num_modes_; ++m) {
      new (counters_.get() + static_cast<std::size_t>(m) * stride_)
          std::atomic<std::uint32_t>(0);
    }
  }

  FlatStorage(FlatStorage&&) noexcept = default;

  std::atomic<std::uint32_t>& counter(int mode) {
    return *std::launder(reinterpret_cast<std::atomic<std::uint32_t>*>(
        counters_.get() + static_cast<std::size_t>(mode) * stride_));
  }
  const std::atomic<std::uint32_t>& counter(int mode) const {
    return *std::launder(reinterpret_cast<const std::atomic<std::uint32_t>*>(
        counters_.get() + static_cast<std::size_t>(mode) * stride_));
  }

  std::uint32_t holder_count(int mode, std::memory_order order) const {
    return counter(mode).load(order);
  }

  void increment(int mode, std::memory_order order) {
    counter(mode).fetch_add(1, order);
  }

  // Releases one hold; true when the caller must wake the partition (this
  // was the mode's last hold and the wait policy can park).
  bool release_one(int mode, bool can_park) {
    const std::uint32_t prev =
        counter(mode).fetch_sub(1, std::memory_order_release);
    return can_park && prev == 1;
  }

  // Stable identity of the mode's synchronization object for DCT schedule
  // points.
  const void* dct_id(int mode) const { return &counter(mode); }

  bool mode_striped(int) const { return false; }
  std::uint32_t stripes() const { return 1; }

  // Heap bytes owned by this storage (footprint_bytes accounting).
  std::size_t heap_bytes() const {
    return static_cast<std::size_t>(num_modes_) * stride_;
  }

 private:
  std::size_t stride_;
  int num_modes_;
  std::unique_ptr<std::byte[]> counters_;
};

}  // namespace semlock
