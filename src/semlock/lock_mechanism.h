// The runtime locking mechanism of Fig. 20.
//
// Per ADT instance, one atomic counter per (canonical) locking mode holds the
// number of transactions currently holding that mode. `lock(l)` first spins
// outside the internal lock until no conflicting mode is held (the fast-path
// pre-check of Fig. 20 lines 3–4), then revalidates under the internal lock
// and increments C_l. `unlock(l)` just decrements C_l.
//
// Lock partitioning (Section 5.2) gives each connected component of the
// conflict graph its own internal lock, so commuting mode families never
// contend on mechanism metadata — this is what turns the synthesized
// synchronization into, e.g., key striping for ComputeIfAbsent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "semlock/mode_table.h"
#include "util/spinlock.h"

namespace semlock {

// Thread-local acquisition statistics (cheap; used by benchmarks and tests
// to observe contention rather than infer it).
struct AcquireStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;  // acquisitions that waited at least once
  void reset() { *this = AcquireStats{}; }
};
AcquireStats& local_acquire_stats();

// Counted RAII acquisition of any BasicLockable with try_lock — used by the
// Manual baselines so the contention benchmark observes every strategy
// through the same thread-local counters.
template <typename Lockable>
class CountedGuard {
 public:
  explicit CountedGuard(Lockable& l) : lock_(&l) {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (lock_->try_lock()) return;
    ++stats.contended;
    lock_->lock();
  }
  CountedGuard(const CountedGuard&) = delete;
  CountedGuard& operator=(const CountedGuard&) = delete;
  ~CountedGuard() { lock_->unlock(); }

 private:
  Lockable* lock_;
};

// Shared-mode variant for std::shared_mutex-style locks.
template <typename SharedLockable>
class CountedSharedGuard {
 public:
  explicit CountedSharedGuard(SharedLockable& l) : lock_(&l) {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (lock_->try_lock_shared()) return;
    ++stats.contended;
    lock_->lock_shared();
  }
  CountedSharedGuard(const CountedSharedGuard&) = delete;
  CountedSharedGuard& operator=(const CountedSharedGuard&) = delete;
  ~CountedSharedGuard() { lock_->unlock_shared(); }

 private:
  SharedLockable* lock_;
};

class LockMechanism {
 public:
  // `table` must outlive the mechanism; it is shared by all instances of the
  // same (ADT class, pointer class).
  explicit LockMechanism(const ModeTable& table);

  LockMechanism(const LockMechanism&) = delete;
  LockMechanism& operator=(const LockMechanism&) = delete;

  // Blocks until no other transaction holds a mode conflicting with `mode`,
  // then registers the caller as a holder. (Fig. 20 `lock`.)
  void lock(int mode);

  // Non-blocking variant: returns false instead of waiting.
  bool try_lock(int mode);

  // Releases one hold on `mode`. (Fig. 20 `unlock`.)
  void unlock(int mode);

  // Number of transactions currently holding `mode` (approximate under
  // concurrency; exact when quiescent).
  std::uint32_t holders(int mode) const {
    return counter(mode).load(std::memory_order_acquire);
  }

  const ModeTable& table() const { return *table_; }

 private:
  bool conflicts_clear(int mode) const;

  std::atomic<std::uint32_t>& counter(int mode) {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(
        counters_.get() + static_cast<std::size_t>(mode) * stride_);
  }
  const std::atomic<std::uint32_t>& counter(int mode) const {
    return *reinterpret_cast<const std::atomic<std::uint32_t>*>(
        counters_.get() + static_cast<std::size_t>(mode) * stride_);
  }

  const ModeTable* table_;
  // Counter storage with configurable stride: sizeof(atomic) packed, or a
  // full cache line per counter when ModeTableConfig::pad_counters is set.
  std::size_t stride_;
  std::unique_ptr<std::byte[]> counters_;
  std::unique_ptr<util::Spinlock[]> partition_locks_;
};

}  // namespace semlock
