// The runtime locking mechanism of Fig. 20.
//
// Per ADT instance, the mechanism tracks, per (canonical) locking mode, the
// number of transactions currently holding that mode. HOW those counts are
// represented is a storage policy (semlock/storage_policy.h) chosen per
// mode table: Flat (one atomic per mode, the paper's layout), Striped
// (PR 3's banks for self-commuting modes), or Packed (the whole table in
// one 64-bit word with compiled conflict masks). Acquisition runs through
// up to four tiers (docs/FAST_PATH.md):
//
//   T0 (elision, optional): under the SEMLOCK_ELISION build with RTM/TME
//      hardware and a Packed table, run the critical section as a hardware
//      transaction with the quiescent lock word in the read set — no
//      counter is written at all; an abort falls back to T1.
//   T1 (optimistic, default): announce by incrementing C_l, seq_cst fence,
//      validate that the conflicting counters are clear; retract + replay
//      the wakeup handshake on failure, with a few randomized-backoff
//      retries. Lock-free — the common commuting acquisition never touches
//      the partition spinlock. Packed storage fuses announce+validate into
//      one CAS, so the packed fast path has no retract and no rewake.
//   T2 (arbitrated): the same protocol under the partition's internal
//      spinlock, so conflicting waiters make progress in turn. With
//      optimistic_acquire off this is the first tier, using the historical
//      check-then-increment (sound because then EVERY increment happens
//      under the spinlock).
//   T3 (waiting): between T2 attempts, spin/yield/park per the table's wait
//      policy. Under the futex-word policy, packed waiters sleep directly
//      on the lock word via std::atomic::wait instead of the ParkingLot.
//
// `unlock(l)` decrements C_l and, when that was the mode's last hold and the
// wait policy can park, wakes the released mode's conflict partition.
//
// Lock partitioning (Section 5.2) gives each connected component of the
// conflict graph its own internal lock, so commuting mode families never
// contend on mechanism metadata — this is what turns the synthesized
// synchronization into, e.g., key striping for ComputeIfAbsent. The same
// partitioning scopes wakeups: a release bumps only its own partition's
// ParkingLot generation, so waiters in unrelated conflict components never
// stampede (src/runtime/parking_lot.h documents the no-lost-wakeup
// handshake; ModeTableConfig::wait_policy selects how waiters wait).
//
// Under a non-Free grant policy (ModeTableConfig::grant_policy,
// src/runtime/grant_policy.h) every bypass tier additionally consults the
// partition's barrier before acquiring: once a conflicting waiter has
// queued (Fifo/PhaseFair) or exhausted its bypass budget (BoundedBypass),
// new arrivals — including T1 — divert to the wait path and grants hand off
// through a ticket cursor, bounding how long a commuting flood can starve a
// conflicting waiter (docs/RUNTIME_WAITING.md §5). With Packed storage the
// barrier state lives in spare bits of the lock word itself, so the T1
// doorway check stays one load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "commute/value.h"
#include "runtime/grant_policy.h"
#include "runtime/parking_lot.h"
#include "runtime/wait_policy.h"
#include "semlock/acquire_stats.h"
#include "semlock/mode_table.h"
#include "semlock/storage_flat.h"
#include "semlock/storage_packed.h"
#include "semlock/storage_policy.h"
#include "semlock/storage_striped.h"
#include "util/align.h"
#include "util/spinlock.h"

namespace semlock {

#if defined(SEMLOCK_OBS)
namespace obs {
struct AttrRecord;
}  // namespace obs
#endif

// Optional call-site context for an acquisition, used by the conflict-
// attribution profiler (src/obs/attribution.h): the mode table's lock site
// and the concrete argument values the site was resolved against. `values`
// must stay alive for the duration of the lock()/try_lock() call (callers
// pass their own argument storage). `logical_instance`, when nonzero,
// identifies the logical ADT instance within a coarser physical lock — a
// caller multiplexing several logical maps behind one mechanism (the §3.4
// global-wrapper collapse) tags each with a distinct id so waits between
// different logical instances can be attributed to wrapper coarsening.
// Plain data with no obs dependency; passing it costs nothing when
// attribution is off.
struct LockSiteArgs {
  std::int32_t site = -1;
  std::span<const commute::Value> values;
  std::uint64_t logical_instance = 0;
};

// Counted RAII acquisition of any BasicLockable with try_lock — used by the
// Manual baselines so the contention benchmark observes every strategy
// through the same thread-local counters.
template <typename Lockable>
class CountedGuard {
 public:
  explicit CountedGuard(Lockable& l) : lock_(&l) {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (lock_->try_lock()) return;
    ++stats.contended;
    lock_->lock();
  }
  CountedGuard(const CountedGuard&) = delete;
  CountedGuard& operator=(const CountedGuard&) = delete;
  ~CountedGuard() { lock_->unlock(); }

 private:
  Lockable* lock_;
};

// Shared-mode variant for std::shared_mutex-style locks.
template <typename SharedLockable>
class CountedSharedGuard {
 public:
  explicit CountedSharedGuard(SharedLockable& l) : lock_(&l) {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (lock_->try_lock_shared()) return;
    ++stats.contended;
    lock_->lock_shared();
  }
  CountedSharedGuard(const CountedSharedGuard&) = delete;
  CountedSharedGuard& operator=(const CountedSharedGuard&) = delete;
  ~CountedSharedGuard() { lock_->unlock_shared(); }

 private:
  SharedLockable* lock_;
};

class LockMechanism {
 public:
  // `table` must outlive the mechanism; it is shared by all instances of the
  // same (ADT class, pointer class).
  explicit LockMechanism(const ModeTable& table);
  ~LockMechanism();

  LockMechanism(const LockMechanism&) = delete;
  LockMechanism& operator=(const LockMechanism&) = delete;

  // Blocks until no other transaction holds a mode conflicting with `mode`,
  // then registers the caller as a holder. (Fig. 20 `lock`.) `args`, when
  // given, carries the call site's concrete argument values for the
  // conflict-attribution profiler; it is ignored unless this mechanism is
  // traced and attribution is on.
  void lock(int mode, const LockSiteArgs* args = nullptr);

  // Non-blocking variant: returns false instead of waiting. Honors the same
  // fast-path pre-check knob as lock() and charges refused attempts to the
  // contended/wait counters.
  bool try_lock(int mode, const LockSiteArgs* args = nullptr);

  // Releases one hold on `mode` and, when that was the mode's last hold,
  // wakes the waiters parked on its conflict partition. (Fig. 20 `unlock`.)
  void unlock(int mode);

  // Number of transactions currently holding `mode` (approximate under
  // concurrency; exact when quiescent — striped modes sum their stripes,
  // which is exact mod 2^32, see util/striped_counter.h).
  std::uint32_t holders(int mode) const {
    return holder_count(mode, std::memory_order_acquire);
  }

  const ModeTable& table() const { return *table_; }

  // The counter representation actually in use: the config's storage kind,
  // except that a Packed request over a table with no packed layout (> 8
  // canonical modes) falls back to Flat.
  StorageKind storage() const { return storage_kind_; }

  // True when the HTM elision tier is armed: ModeTableConfig::elide_locks,
  // the SEMLOCK_ELISION build, runtime RTM/TME support, and Packed storage
  // all present. (docs/FAST_PATH.md §8.)
  bool elision_enabled() const { return elide_; }

  // Total per-instance memory of this mechanism: the object itself plus
  // every heap allocation it owns (counter storage, partition locks,
  // ParkingLot, grant slots, attribution records). Logical bytes as
  // requested from the allocator; bench_footprint compares the storage
  // policies with it.
  std::size_t footprint_bytes() const;

  // Waiting-subsystem observability (tests, watchdog, benches). The
  // ParkingLot exists unless waiters sleep on the packed word itself
  // (Packed storage under the futex-word policy); callers in that
  // configuration must not ask for it.
  const runtime::ParkingLot& parking_lot() const { return *parking_; }
  bool has_parking_lot() const { return parking_ != nullptr; }
  runtime::WaitPolicyKind wait_policy() const { return policy_; }
  runtime::GrantPolicyKind grant_policy() const { return grant_policy_; }
  std::uint32_t bypass_bound() const { return bypass_bound_; }

  // Fast-path observability (tests, docs/FAST_PATH.md examples).
  bool optimistic() const { return optimistic_; }
  // True when this mechanism emits src/obs trace events and metrics
  // (ModeTableConfig::trace_events; always false without SEMLOCK_OBS). The
  // StallWatchdog consults this before asking obs for forensics.
  bool traced() const { return trace_; }
  bool mode_striped(int mode) const;
  std::uint32_t stripes() const;

 private:
  // Per-partition grant state (docs/RUNTIME_WAITING.md §5), allocated only
  // when the table's grant policy is not Free — with the default Free policy
  // grant_slots_ is nullptr and every fast path is the unmodified PR 3 code.
  //
  // The barrier word is the one field the lock-free tiers read: 0 = open
  // (commuting arrivals may acquire without queueing), 1 = BoundedBypass
  // counting (arrivals charge `bypasses` and the K-th raises the barrier),
  // 2 = closed (arrivals divert to the wait path). With Packed storage the
  // barrier STATE lives in the lock word's closed/counting bits instead and
  // this word stays 0 — the ticket and budget state here is authoritative
  // for every storage. The ticket cursor (next_ticket/granted/phase_end) is
  // written only under the partition's internal spinlock; waiters read it
  // lock-free in the park re-validation, which is sound because eligibility
  // is monotone — a ticket never becomes ineligible again before its grant.
  // `waiting`/`phase_remaining` are plain ints touched exclusively under the
  // internal lock.
  struct alignas(util::kCacheLineSize) GrantSlot {
    std::atomic<std::uint32_t> barrier{0};
    std::atomic<std::uint32_t> bypasses{0};
    std::atomic<std::uint64_t> next_ticket{0};
    std::atomic<std::uint64_t> granted{0};
    std::atomic<std::uint64_t> phase_end{0};
    std::uint32_t waiting = 0;
    std::uint32_t phase_remaining = 0;
  };

  enum class PackedAttempt { Acquired, Blocked, Contended };

  using StorageVariant =
      std::variant<FlatStorage, StripedStorage, PackedStorage>;

  static StorageVariant make_storage(const ModeTable& table, StorageKind kind);

  // --- storage-generic algorithm (defined in lock_mechanism.cpp; each
  // member template is instantiated there for the three policies, with
  // `if constexpr (Storage::kPacked)` carrying the packed-word variants of
  // the protocol steps). ----------------------------------------------------
  template <class Storage>
  void lock_impl(Storage& s, int mode, const LockSiteArgs* args);
  template <class Storage>
  bool try_lock_impl(Storage& s, int mode, const LockSiteArgs* args);
  template <class Storage>
  void unlock_impl(Storage& s, int mode);
  template <class Storage>
  void lock_contended(Storage& s, int mode, int partition,
                      util::Spinlock& internal, AcquireStats& stats,
                      const LockSiteArgs* args);

  template <class Storage>
  bool conflicts_clear(const Storage& s, int mode) const;
  // Validation once our own announcement is already counted: `self_allow`
  // holds of `mode` itself are ours, not a conflict (a self-conflicting mode
  // appears in its own conflicts_of row). The optimistic tier validates with
  // seq_cst loads (free on x86) to close the Dekker argument against the
  // seq_cst announce RMW. (Packed storage never announces transiently, so
  // its conflicts_clear ignores self_allow and is one masked load.)
  template <class Storage>
  bool conflicts_clear_impl(const Storage& s, int mode,
                            std::uint32_t self_allow,
                            std::memory_order order) const;

  // The optimistic announce/validate/retract step (tiers T1 and T2 when
  // optimistic_acquire is on), flat/striped storages only. Returns true when
  // `mode` was acquired; on failure the announcement has been retracted and,
  // if it might have parked a conflicting waiter, the partition rewoken.
  template <class Storage>
  bool announce_validate(Storage& s, int mode, int partition,
                         AcquireStats& stats);

  // Packed equivalent of announce_validate + fast_path_admitted: one bounded
  // CAS-loop attempt. `doorway` selects whether the folded grant-barrier
  // bits are honored (the bypass tiers) or ignored (the ticketed arbitrated
  // tier). Returns Acquired, Blocked (conflict/saturation/barrier — charged
  // to stats when diverted by the barrier) or Contended (CAS churn without a
  // visible blocker).
  PackedAttempt packed_try_acquire(PackedStorage& s, int mode, int partition,
                                   AcquireStats& stats, bool doorway);
  // Sleep on the packed word until it differs from `observed` (futex-word
  // policy; cooperative under DCT).
  static void packed_word_wait(PackedStorage& s, std::uint64_t observed);

  // T0: attempt to elide the acquisition entirely as a hardware transaction
  // (util/htm.h). True when the caller is now inside a live transaction
  // with the word in its read set; unlock_impl commits it.
  bool try_elide(PackedStorage& s, int mode);

  // Doorway check for the bypass tiers (T1, the historical uncontended
  // grant, try_lock) of the flat/striped storages: may this arrival acquire
  // without a ticket? Charges stats.diverted and emits kBarrierDivert when
  // it says no. Lock-free; an arrival that passed the check before the
  // barrier rose may still announce (the "doorway race"), which is why the
  // certified bypass bound is K plus an in-flight allowance, not exactly K.
  // (Packed storage folds this check into packed_try_acquire.)
  bool fast_path_admitted(int partition, AcquireStats& stats, int mode);
  // Takes a ticket and raises the barrier per policy (in the GrantSlot or,
  // for Packed, in the word's barrier bits). Called once per contended
  // acquisition, under the partition's internal lock.
  template <class Storage>
  std::uint64_t enqueue_waiter(Storage& s, int partition);
  // May the holder of `ticket` attempt the arbitrated grant now? Lock-free
  // and monotone (see GrantSlot).
  bool waiter_eligible(int partition, std::uint64_t ticket) const;
  // Bookkeeping after a ticketed grant, under the internal lock: advances
  // the cursor, re-arms or drops the barrier, and returns whether the caller
  // must wake the partition so the next eligible waiter re-validates.
  template <class Storage>
  bool grant_complete(Storage& s, int partition);
  // Wake every waiter of `partition`: ParkingLot unpark, or the futex-word
  // clear-waiters-bit + notify protocol for packed words.
  template <class Storage>
  void wake_partition(Storage& s, int partition);

  std::uint32_t holder_count(int mode, std::memory_order order) const;

  const ModeTable* table_;
  StorageKind storage_kind_;
  StorageVariant storage_;
  std::unique_ptr<util::Spinlock[]> partition_locks_;
  // Null only for Packed storage under the futex-word policy, where waiters
  // sleep on the lock word itself and the per-partition slots would be dead
  // weight at "millions of instances" scale.
  std::unique_ptr<runtime::ParkingLot> parking_;
  runtime::WaitPolicyKind policy_;
  std::uint32_t spin_limit_;
  // False under SpinYield: unlock skips the wakeup fence entirely, keeping
  // the historical release path (one relaxed RMW) intact.
  bool can_park_;
  bool optimistic_;
  bool trace_;
  // Packed + futex-word: waiters sleep on the word (parking_ is null).
  bool futex_word_;
  // HTM elision tier armed (see elision_enabled()).
  bool elide_;
  runtime::GrantPolicyKind grant_policy_;
  std::uint32_t bypass_bound_;
  // One slot per conflict partition; nullptr under the Free policy.
  std::unique_ptr<GrantSlot[]> grant_slots_;
  // Elision abort backoff: aborts in the current streak, and how many
  // acquisitions must pass before elision is attempted again.
  std::atomic<std::uint32_t> elision_aborts_{0};
  std::atomic<std::uint32_t> elision_pause_{0};
#if defined(SEMLOCK_OBS)
  // One seqlock-protected last-acquirer record per mode, allocated only when
  // this mechanism traces (nullptr otherwise). Written at every grant that
  // carries LockSiteArgs; read by the attribution classifier when a waiter
  // blocks against the mode. (src/obs/attribution.h.)
  std::unique_ptr<obs::AttrRecord[]> attr_records_;
#endif
};

}  // namespace semlock
