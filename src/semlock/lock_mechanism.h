// The runtime locking mechanism of Fig. 20.
//
// Per ADT instance, one atomic counter per (canonical) locking mode holds the
// number of transactions currently holding that mode. Acquisition runs
// through up to three tiers (docs/FAST_PATH.md):
//
//   T1 (optimistic, default): announce by incrementing C_l, seq_cst fence,
//      validate that the conflicting counters are clear; retract + replay
//      the wakeup handshake on failure, with a few randomized-backoff
//      retries. Lock-free — the common commuting acquisition never touches
//      the partition spinlock.
//   T2 (arbitrated): the same announce/validate under the partition's
//      internal spinlock, so conflicting waiters make progress in turn.
//      With optimistic_acquire off this is the first tier, using the
//      historical check-then-increment (sound because then EVERY increment
//      happens under the spinlock).
//   T3 (waiting): between T2 attempts, spin/yield/park per the table's wait
//      policy.
//
// `unlock(l)` decrements C_l and, when that was the mode's last hold and the
// wait policy can park, wakes the released mode's conflict partition.
// Self-commuting modes optionally spread C_l over cache-line-padded stripes
// (util/striped_counter.h); validation and the last-hold test then sum the
// stripes behind the same fences.
//
// Lock partitioning (Section 5.2) gives each connected component of the
// conflict graph its own internal lock, so commuting mode families never
// contend on mechanism metadata — this is what turns the synthesized
// synchronization into, e.g., key striping for ComputeIfAbsent. The same
// partitioning scopes wakeups: a release bumps only its own partition's
// ParkingLot generation, so waiters in unrelated conflict components never
// stampede (src/runtime/parking_lot.h documents the no-lost-wakeup
// handshake; ModeTableConfig::wait_policy selects how waiters wait).
//
// Under a non-Free grant policy (ModeTableConfig::grant_policy,
// src/runtime/grant_policy.h) every bypass tier additionally consults the
// partition's barrier word before acquiring: once a conflicting waiter has
// queued (Fifo/PhaseFair) or exhausted its bypass budget (BoundedBypass),
// new arrivals — including T1 — divert to the wait path and grants hand off
// through a ticket cursor, bounding how long a commuting flood can starve a
// conflicting waiter (docs/RUNTIME_WAITING.md §5).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "commute/value.h"
#include "runtime/grant_policy.h"
#include "runtime/parking_lot.h"
#include "runtime/wait_policy.h"
#include "semlock/acquire_stats.h"
#include "semlock/mode_table.h"
#include "util/align.h"
#include "util/spinlock.h"
#include "util/striped_counter.h"

namespace semlock {

#if defined(SEMLOCK_OBS)
namespace obs {
struct AttrRecord;
}  // namespace obs
#endif

// Optional call-site context for an acquisition, used by the conflict-
// attribution profiler (src/obs/attribution.h): the mode table's lock site
// and the concrete argument values the site was resolved against. `values`
// must stay alive for the duration of the lock()/try_lock() call (callers
// pass their own argument storage). `logical_instance`, when nonzero,
// identifies the logical ADT instance within a coarser physical lock — a
// caller multiplexing several logical maps behind one mechanism (the §3.4
// global-wrapper collapse) tags each with a distinct id so waits between
// different logical instances can be attributed to wrapper coarsening.
// Plain data with no obs dependency; passing it costs nothing when
// attribution is off.
struct LockSiteArgs {
  std::int32_t site = -1;
  std::span<const commute::Value> values;
  std::uint64_t logical_instance = 0;
};

// Counted RAII acquisition of any BasicLockable with try_lock — used by the
// Manual baselines so the contention benchmark observes every strategy
// through the same thread-local counters.
template <typename Lockable>
class CountedGuard {
 public:
  explicit CountedGuard(Lockable& l) : lock_(&l) {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (lock_->try_lock()) return;
    ++stats.contended;
    lock_->lock();
  }
  CountedGuard(const CountedGuard&) = delete;
  CountedGuard& operator=(const CountedGuard&) = delete;
  ~CountedGuard() { lock_->unlock(); }

 private:
  Lockable* lock_;
};

// Shared-mode variant for std::shared_mutex-style locks.
template <typename SharedLockable>
class CountedSharedGuard {
 public:
  explicit CountedSharedGuard(SharedLockable& l) : lock_(&l) {
    auto& stats = local_acquire_stats();
    ++stats.acquisitions;
    if (lock_->try_lock_shared()) return;
    ++stats.contended;
    lock_->lock_shared();
  }
  CountedSharedGuard(const CountedSharedGuard&) = delete;
  CountedSharedGuard& operator=(const CountedSharedGuard&) = delete;
  ~CountedSharedGuard() { lock_->unlock_shared(); }

 private:
  SharedLockable* lock_;
};

class LockMechanism {
 public:
  // `table` must outlive the mechanism; it is shared by all instances of the
  // same (ADT class, pointer class).
  explicit LockMechanism(const ModeTable& table);
  ~LockMechanism();

  LockMechanism(const LockMechanism&) = delete;
  LockMechanism& operator=(const LockMechanism&) = delete;

  // Blocks until no other transaction holds a mode conflicting with `mode`,
  // then registers the caller as a holder. (Fig. 20 `lock`.) `args`, when
  // given, carries the call site's concrete argument values for the
  // conflict-attribution profiler; it is ignored unless this mechanism is
  // traced and attribution is on.
  void lock(int mode, const LockSiteArgs* args = nullptr);

  // Non-blocking variant: returns false instead of waiting. Honors the same
  // fast-path pre-check knob as lock() and charges refused attempts to the
  // contended/wait counters.
  bool try_lock(int mode, const LockSiteArgs* args = nullptr);

  // Releases one hold on `mode` and, when that was the mode's last hold,
  // wakes the waiters parked on its conflict partition. (Fig. 20 `unlock`.)
  void unlock(int mode);

  // Number of transactions currently holding `mode` (approximate under
  // concurrency; exact when quiescent — striped modes sum their stripes,
  // which is exact mod 2^32, see util/striped_counter.h).
  std::uint32_t holders(int mode) const {
    return holder_count(mode, std::memory_order_acquire);
  }

  const ModeTable& table() const { return *table_; }

  // Waiting-subsystem observability (tests, watchdog, benches).
  const runtime::ParkingLot& parking_lot() const { return parking_; }
  runtime::WaitPolicyKind wait_policy() const { return policy_; }
  runtime::GrantPolicyKind grant_policy() const { return grant_policy_; }
  std::uint32_t bypass_bound() const { return bypass_bound_; }

  // Fast-path observability (tests, docs/FAST_PATH.md examples).
  bool optimistic() const { return optimistic_; }
  // True when this mechanism emits src/obs trace events and metrics
  // (ModeTableConfig::trace_events; always false without SEMLOCK_OBS). The
  // StallWatchdog consults this before asking obs for forensics.
  bool traced() const { return trace_; }
  bool mode_striped(int mode) const {
    return striped_row_[static_cast<std::size_t>(mode)] >= 0;
  }
  std::uint32_t stripes() const { return bank_ ? bank_->stripes() : 1; }

 private:
  // Per-partition grant state (docs/RUNTIME_WAITING.md §5), allocated only
  // when the table's grant policy is not Free — with the default Free policy
  // grant_slots_ is nullptr and every fast path is the unmodified PR 3 code.
  //
  // The barrier word is the one field the lock-free tiers read: 0 = open
  // (commuting arrivals may acquire without queueing), 1 = BoundedBypass
  // counting (arrivals charge `bypasses` and the K-th raises the barrier),
  // 2 = closed (arrivals divert to the wait path). The ticket cursor
  // (next_ticket/granted/phase_end) is written only under the partition's
  // internal spinlock; waiters read it lock-free in the park re-validation,
  // which is sound because eligibility is monotone — a ticket never becomes
  // ineligible again before its grant. `waiting`/`phase_remaining` are plain
  // ints touched exclusively under the internal lock.
  struct alignas(util::kCacheLineSize) GrantSlot {
    std::atomic<std::uint32_t> barrier{0};
    std::atomic<std::uint32_t> bypasses{0};
    std::atomic<std::uint64_t> next_ticket{0};
    std::atomic<std::uint64_t> granted{0};
    std::atomic<std::uint64_t> phase_end{0};
    std::uint32_t waiting = 0;
    std::uint32_t phase_remaining = 0;
  };

  // Doorway check for the bypass tiers (T1, the historical uncontended
  // grant, try_lock): may this arrival acquire without a ticket? Charges
  // stats.diverted and emits kBarrierDivert when it says no. Lock-free; an
  // arrival that passed the check before the barrier rose may still announce
  // (the "doorway race"), which is why the certified bypass bound is K plus
  // an in-flight allowance, not exactly K.
  bool fast_path_admitted(int partition, AcquireStats& stats, int mode);
  // Takes a ticket and raises the barrier per policy. Called once per
  // contended acquisition, under the partition's internal lock.
  std::uint64_t enqueue_waiter(int partition);
  // May the holder of `ticket` attempt the arbitrated grant now? Lock-free
  // and monotone (see GrantSlot).
  bool waiter_eligible(int partition, std::uint64_t ticket) const;
  // Bookkeeping after a ticketed grant, under the internal lock: advances
  // the cursor, re-arms or drops the barrier, and returns whether the caller
  // must wake the partition so the next eligible waiter re-validates.
  bool grant_complete(int partition);

  bool conflicts_clear(int mode) const { return conflicts_clear_impl(mode, 0); }
  // Validation once our own announcement is already counted: `self_allow`
  // holds of `mode` itself are ours, not a conflict (a self-conflicting mode
  // appears in its own conflicts_of row). The optimistic tier validates with
  // seq_cst loads (free on x86) to close the Dekker argument against the
  // seq_cst announce RMW.
  bool conflicts_clear_impl(
      int mode, std::uint32_t self_allow,
      std::memory_order order = std::memory_order_acquire) const;

  // The optimistic announce/validate/retract step (tiers T1 and T2 when
  // optimistic_acquire is on). Returns true when `mode` was acquired; on
  // failure the announcement has been retracted and, if it might have parked
  // a conflicting waiter, the partition rewoken.
  bool announce_validate(int mode, int partition, AcquireStats& stats);

  // Logical counter ops that hide the striped/flat representation.
  std::uint32_t holder_count(int mode, std::memory_order order) const;
  void increment(int mode,
                 std::memory_order order = std::memory_order_relaxed);
  // Releases one hold; true when the caller must wake the partition (the
  // hold released may have been the mode's last and the policy can park).
  bool release_one(int mode);

  // The wait loop: spins, yields or parks per the table's wait policy until
  // the mode is acquired. Split out so the uncontended path stays small.
  void lock_contended(int mode, int partition, util::Spinlock& internal,
                      AcquireStats& stats, const LockSiteArgs* args);

  std::atomic<std::uint32_t>& counter(int mode) {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(
        counters_.get() + static_cast<std::size_t>(mode) * stride_);
  }
  const std::atomic<std::uint32_t>& counter(int mode) const {
    return *reinterpret_cast<const std::atomic<std::uint32_t>*>(
        counters_.get() + static_cast<std::size_t>(mode) * stride_);
  }

  const ModeTable* table_;
  // Counter storage with configurable stride: sizeof(atomic) packed, or a
  // full cache line per counter when ModeTableConfig::pad_counters is set.
  // Striped modes keep their flat slot (it stays 0 and doubles as the mode's
  // stable identity for DCT schedule points) but count holds in bank_.
  std::size_t stride_;
  std::unique_ptr<std::byte[]> counters_;
  // striped_row_[mode] is the mode's row in bank_, or -1 for flat modes.
  std::vector<std::int32_t> striped_row_;
  std::unique_ptr<util::StripedCounterBank> bank_;
  std::unique_ptr<util::Spinlock[]> partition_locks_;
  runtime::ParkingLot parking_;
  runtime::WaitPolicyKind policy_;
  std::uint32_t spin_limit_;
  // False under SpinYield: unlock skips the wakeup fence entirely, keeping
  // the historical release path (one relaxed RMW) intact.
  bool can_park_;
  bool optimistic_;
  bool trace_;
  runtime::GrantPolicyKind grant_policy_;
  std::uint32_t bypass_bound_;
  // One slot per conflict partition; nullptr under the Free policy.
  std::unique_ptr<GrantSlot[]> grant_slots_;
#if defined(SEMLOCK_OBS)
  // One seqlock-protected last-acquirer record per mode, allocated only when
  // this mechanism traces (nullptr otherwise). Written at every grant that
  // carries LockSiteArgs; read by the attribution classifier when a waiter
  // blocks against the mode. (src/obs/attribution.h.)
  std::unique_ptr<obs::AttrRecord[]> attr_records_;
#endif
};

}  // namespace semlock
