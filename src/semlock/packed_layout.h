// Bit layout of the Packed storage policy's single 64-bit lock word,
// precomputed once per ModeTable (ModeTable::compile) and shared immutably
// by every instance (docs/FAST_PATH.md §7).
//
// Word layout (least significant bits first):
//
//   [ mode 0 field | mode 1 field | ... | mode M-1 field |  (low bits)
//     ...spare... |
//     counting(P-1) closed(P-1) | ... | counting(0) closed(0) |
//     W ]                                                     (bit 63)
//
// Each mode field is a `bits_per_mode`-wide holder mini-counter; a field at
// its all-ones value (`field_max`) is SATURATED and further acquisitions of
// that mode divert to the arbitrated/wait tier until a release drops it.
// The per-partition closed/counting bits mirror the grant-policy barrier
// states of GrantSlot::barrier (docs/RUNTIME_WAITING.md §5) so the T1
// doorway check — "no conflicting holder AND my partition's barrier is
// open" — stays a single `word & doorway_mask[m]` test on one load. Bit 63
// (W) is the futex-word waiters-present bit: set by waiters before they
// sleep on the word via std::atomic::wait, cleared (then notify_all) by the
// wakeup paths, the classic futex-mutex protocol.
//
// Eligibility: at most kMaxPackedModes canonical modes and a field width of
// at least 4 bits once the aux bits are carved out. Partitions never exceed
// modes, so every table with <= 8 modes fits (8 modes x 5 bits + 1 + 16
// aux = 57 <= 64). Ineligible tables requested as Packed fall back to Flat.
#pragma once

#include <array>
#include <cstdint>

namespace semlock {

inline constexpr int kMaxPackedModes = 8;

struct PackedLayout {
  int num_modes = 0;
  int num_partitions = 0;
  std::uint32_t bits_per_mode = 0;
  // Saturation value of one (unshifted) field: (1 << bits_per_mode) - 1.
  std::uint64_t field_max = 0;
  // Futex-word waiters-present bit (bit 63).
  std::uint64_t waiters_bit = 0;
  // Per-mode field geometry: field m occupies bits
  // [shift[m], shift[m] + bits_per_mode).
  std::array<std::uint32_t, kMaxPackedModes> shift{};
  std::array<std::uint64_t, kMaxPackedModes> inc{};         // 1 << shift[m]
  std::array<std::uint64_t, kMaxPackedModes> field_mask{};  // field_max << shift[m]
  // OR of field_mask over conflicts_of(m) — `word & conflict_mask[m]` is
  // nonzero iff some conflicting mode (possibly m itself, when
  // self-conflicting) is held. This is conflicts_clear(m) as one AND.
  std::array<std::uint64_t, kMaxPackedModes> conflict_mask{};
  // conflict_mask[m] | closed_bit[partition_of(m)]: the bypass-tier doorway
  // check (conflicts clear AND barrier open) as one AND.
  std::array<std::uint64_t, kMaxPackedModes> doorway_mask{};
  // Grant-barrier state bits, indexed by partition: closed == barrier state
  // 2 (arrivals divert), counting == state 1 (BoundedBypass budget
  // charging). Both clear == open.
  std::array<std::uint64_t, kMaxPackedModes> closed_bit{};
  std::array<std::uint64_t, kMaxPackedModes> counting_bit{};
};

}  // namespace semlock
