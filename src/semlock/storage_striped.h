// Striped counter storage: Flat plus PR 3's BRAVO/SNZI-style striped banks
// for the self-commuting modes (see storage_policy.h for the policy
// overview, util/striped_counter.h for the bank).
//
// Self-commuting modes are exactly the modes whose holders never exclude
// each other, so their counter line is pure mechanism overhead worth
// de-sharing. Self-conflicting modes stay flat — their holders serialize
// anyway, and the flat prev==1 release test is cheaper than a stripe sum.
// Striped modes keep their flat slot (it stays 0 and doubles as the mode's
// stable identity for DCT schedule points) but count holds in the bank.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "semlock/mode_table.h"
#include "semlock/storage_flat.h"
#include "util/striped_counter.h"

namespace semlock {

class StripedStorage {
 public:
  static constexpr bool kPacked = false;

  explicit StripedStorage(const ModeTable& table)
      : flat_(table),
        striped_row_(static_cast<std::size_t>(table.num_modes()), -1) {
    if (table.config().stripe_self_commuting &&
        table.config().counter_stripes > 0) {
      std::uint32_t rows = 0;
      for (int m = 0; m < table.num_modes(); ++m) {
        if (table.commutes(m, m)) {
          striped_row_[static_cast<std::size_t>(m)] =
              static_cast<std::int32_t>(rows++);
        }
      }
      if (rows > 0) {
        bank_ = std::make_unique<util::StripedCounterBank>(
            rows,
            static_cast<std::uint32_t>(table.config().counter_stripes));
      }
    }
  }

  StripedStorage(StripedStorage&&) noexcept = default;

  std::uint32_t holder_count(int mode, std::memory_order order) const {
    const std::int32_t row = striped_row_[static_cast<std::size_t>(mode)];
    if (row >= 0) return bank_->sum(static_cast<std::uint32_t>(row), order);
    return flat_.holder_count(mode, order);
  }

  void increment(int mode, std::memory_order order) {
    const std::int32_t row = striped_row_[static_cast<std::size_t>(mode)];
    if (row >= 0) {
      bank_->local_slot(static_cast<std::uint32_t>(row)).fetch_add(1, order);
    } else {
      flat_.increment(mode, order);
    }
  }

  bool release_one(int mode, bool can_park) {
    const std::int32_t row = striped_row_[static_cast<std::size_t>(mode)];
    if (row < 0) return flat_.release_one(mode, can_park);
    if (!can_park) {
      // Nobody can be parked: skip the last-hold test and keep the release
      // a single RMW, mirroring the flat path under SpinYield.
      bank_->local_slot(static_cast<std::uint32_t>(row))
          .fetch_sub(1, std::memory_order_release);
      return false;
    }
    // The striped last-hold test: seq_cst decrement, then seq_cst sum.
    // Against a concurrent releaser on another stripe this is Dekker: in
    // the seq_cst total order one of the two decrements comes second, and
    // the sum of that releaser sees both, so at least one of two racing
    // final releasers observes the zero and wakes the partition.
    bank_->local_slot(static_cast<std::uint32_t>(row))
        .fetch_sub(1, std::memory_order_seq_cst);
    return bank_->sum(static_cast<std::uint32_t>(row),
                      std::memory_order_seq_cst) == 0;
  }

  const void* dct_id(int mode) const { return flat_.dct_id(mode); }

  bool mode_striped(int mode) const {
    return striped_row_[static_cast<std::size_t>(mode)] >= 0;
  }
  std::uint32_t stripes() const { return bank_ ? bank_->stripes() : 1; }

  std::size_t heap_bytes() const {
    std::size_t total = flat_.heap_bytes();
    total += striped_row_.capacity() * sizeof(std::int32_t);
    if (bank_) total += sizeof(util::StripedCounterBank) + bank_->heap_bytes();
    return total;
  }

 private:
  FlatStorage flat_;
  // striped_row_[mode] is the mode's row in bank_, or -1 for flat modes.
  std::vector<std::int32_t> striped_row_;
  std::unique_ptr<util::StripedCounterBank> bank_;
};

}  // namespace semlock
