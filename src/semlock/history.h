// Execution histories and a conflict-serializability checker.
//
// The paper's correctness argument (Section 2.3) is that S2PL executions
// are serializable. This module lets us CHECK that empirically: the
// interpreter records every standard operation (transaction id, target
// instance, method, arguments, global sequence number); the checker builds
// the precedence graph — an edge T_a -> T_b whenever an operation of T_a
// precedes a NON-COMMUTING operation of T_b on the same instance (per the
// ADT's commutativity specification) — and reports any cycle, i.e. any
// execution not equivalent to a serial order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "commute/spec.h"
#include "commute/value.h"
#include "util/spinlock.h"

namespace semlock {

struct HistoryEvent {
  std::uint64_t seq = 0;     // global order of the (linearizable) operation
  std::uint64_t txn = 0;     // transaction id
  const void* instance = nullptr;
  const commute::AdtSpec* spec = nullptr;
  int method = -1;
  std::vector<commute::Value> args;
};

// Thread-safe append-only event log.
class HistoryRecorder {
 public:
  std::uint64_t begin_txn() {
    return next_txn_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void record(std::uint64_t txn, const void* instance,
              const commute::AdtSpec* spec, int method,
              std::vector<commute::Value> args) {
    HistoryEvent e;
    e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    e.txn = txn;
    e.instance = instance;
    e.spec = spec;
    e.method = method;
    e.args = std::move(args);
    std::scoped_lock guard(lock_);
    events_.push_back(std::move(e));
  }

  std::vector<HistoryEvent> snapshot() const {
    std::scoped_lock guard(lock_);
    return events_;
  }

  void clear() {
    std::scoped_lock guard(lock_);
    events_.clear();
  }

 private:
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_txn_{0};
  mutable util::Spinlock lock_;
  std::vector<HistoryEvent> events_;
};

struct SerializabilityReport {
  bool serializable = true;
  // A cycle of transaction ids witnessing non-serializability (empty when
  // serializable).
  std::vector<std::uint64_t> cycle;
  std::size_t precedence_edges = 0;
  std::string to_string() const;
};

// Checks conflict-serializability of a recorded history.
SerializabilityReport check_conflict_serializability(
    const std::vector<HistoryEvent>& events);

}  // namespace semlock
