#include "semlock/lock_mechanism.h"

#include <new>

#include "dct/hooks.h"
#include "runtime/wait_registry.h"
#include "util/align.h"

#if defined(SEMLOCK_DCT)
#include "dct/starvation.h"
// Grant hook for the DCT no-starvation oracle: every grant on a partition
// bumps the bypass count of the wait episodes still queued there. Compiles
// to nothing outside the harness.
#define LM_DCT_GRANT(partition) \
  ::semlock::dct::starvation_on_grant(this, (partition))
#else
#define LM_DCT_GRANT(partition) ((void)0)
#endif

#if defined(SEMLOCK_OBS)
#include "obs/attribution.h"
#include "obs/trace.h"
// Mechanism-level trace hook: gated on this mechanism's cached
// ModeTableConfig::trace_events flag (trace_), not the global switch, so
// per-table overrides work and the disabled cost is one predictable branch.
#define LM_OBS_EVENT(type, mode)                                     \
  do {                                                               \
    if (trace_) [[unlikely]]                                         \
      ::semlock::obs::emit(::semlock::obs::EventType::type, this,    \
                           (mode));                                  \
  } while (0)
// Grant hook for the conflict-attribution profiler: refresh the mode's
// last-acquirer record with this caller's identity and concrete argument
// values. Same trace_ gate as LM_OBS_EVENT, so the traced-off cost stays one
// predictable branch.
#define LM_ATTR_GRANT(mode, args)                                    \
  do {                                                               \
    if (trace_) [[unlikely]] {                                       \
      if (attr_records_ != nullptr && obs::attribution_enabled()) {  \
        obs::attr_record_grant(                                      \
            attr_records_[static_cast<std::size_t>(mode)],           \
            obs::current_owner_id(), (args));                        \
      }                                                              \
    }                                                                \
  } while (0)
#else
#define LM_OBS_EVENT(type, mode) ((void)0)
#define LM_ATTR_GRANT(mode, args) ((void)0)
#endif

namespace semlock {

namespace {

// Bounded retries for the lock-free optimistic tier before falling back to
// the spinlock-arbitrated slow path. Small on purpose: a validation failure
// means a conflicting mode is actually held, and repeated announce/retract
// cycles only disturb that holder's cache lines.
constexpr int kOptimisticAttempts = 4;

// Randomized backoff between optimistic retries: two racing conflicting
// announcers that failed against each other must not re-announce in
// lockstep. SplitMix64 per thread; only the pause count is randomized, never
// control flow, so DCT replay stays deterministic.
std::uint32_t backoff_jitter() noexcept {
  thread_local std::uint64_t state = [] {
    return 0x9E3779B97F4A7C15ull *
           (0x2545F4914F6CDD1Dull +
            reinterpret_cast<std::uintptr_t>(&state));
  }();
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::uint32_t>(z >> 32);
}

void backoff_pause(int attempt) noexcept {
  const std::uint32_t ceiling = 8u << (attempt < 8 ? attempt : 8);
  const std::uint32_t spins = backoff_jitter() & (ceiling - 1);
  for (std::uint32_t i = 0; i < spins; ++i) util::cpu_relax();
}

}  // namespace

AcquireStats& local_acquire_stats() {
#if defined(SEMLOCK_OBS)
  // The counters live inside the obs thread state so they are merged into
  // the process-wide MetricsRegistry when the thread exits — cross-thread
  // totals stay exact instead of losing whatever exited early.
  return obs::thread_acquire_stats();
#else
  thread_local AcquireStats stats;
  return stats;
#endif
}

LockMechanism::LockMechanism(const ModeTable& table)
    : table_(&table),
      stride_(table.config().pad_counters
                  ? util::kCacheLineSize
                  : sizeof(std::atomic<std::uint32_t>)),
      counters_(new std::byte[static_cast<std::size_t>(table.num_modes()) *
                              stride_]),
      striped_row_(static_cast<std::size_t>(table.num_modes()), -1),
      partition_locks_(
          new util::Spinlock[static_cast<std::size_t>(
              table.num_partitions())]),
      parking_(table.num_partitions()),
      policy_(table.config().wait_policy),
      spin_limit_(table.config().park_spin_limit > 0
                      ? static_cast<std::uint32_t>(
                            table.config().park_spin_limit)
                      : 0),
      can_park_(policy_ != runtime::WaitPolicyKind::SpinYield),
      optimistic_(table.config().optimistic_acquire),
#if defined(SEMLOCK_OBS)
      trace_(table.config().trace_events),
#else
      trace_(false),
#endif
      grant_policy_(table.config().grant_policy),
      bypass_bound_(table.config().bypass_bound > 0
                        ? static_cast<std::uint32_t>(
                              table.config().bypass_bound)
                        : 1) {
  if (grant_policy_ != runtime::GrantPolicyKind::Free) {
    grant_slots_ = std::make_unique<GrantSlot[]>(
        static_cast<std::size_t>(table.num_partitions()));
  }
  for (int m = 0; m < table.num_modes(); ++m) {
    new (counters_.get() + static_cast<std::size_t>(m) * stride_)
        std::atomic<std::uint32_t>(0);
  }
  // Stripe the self-commuting modes: those are exactly the modes whose
  // holders never exclude each other, so their counter line is pure
  // mechanism overhead worth de-sharing. Self-conflicting modes stay flat —
  // their holders serialize anyway, and the flat prev==1 release test is
  // cheaper than a stripe sum.
  if (table.config().stripe_self_commuting &&
      table.config().counter_stripes > 0) {
    std::uint32_t rows = 0;
    for (int m = 0; m < table.num_modes(); ++m) {
      if (table.commutes(m, m)) {
        striped_row_[static_cast<std::size_t>(m)] =
            static_cast<std::int32_t>(rows++);
      }
    }
    if (rows > 0) {
      bank_ = std::make_unique<util::StripedCounterBank>(
          rows, static_cast<std::uint32_t>(table.config().counter_stripes));
    }
  }
#if defined(SEMLOCK_OBS)
  if (trace_) {
    attr_records_ = std::make_unique<obs::AttrRecord[]>(
        static_cast<std::size_t>(table.num_modes()));
  }
#endif
}

// Out of line: obs::AttrRecord is incomplete in the header.
LockMechanism::~LockMechanism() = default;

std::uint32_t LockMechanism::holder_count(int mode,
                                          std::memory_order order) const {
  const std::int32_t row = striped_row_[static_cast<std::size_t>(mode)];
  if (row >= 0) return bank_->sum(static_cast<std::uint32_t>(row), order);
  return counter(mode).load(order);
}

void LockMechanism::increment(int mode, std::memory_order order) {
  const std::int32_t row = striped_row_[static_cast<std::size_t>(mode)];
  if (row >= 0) {
    bank_->local_slot(static_cast<std::uint32_t>(row)).fetch_add(1, order);
  } else {
    counter(mode).fetch_add(1, order);
  }
}

bool LockMechanism::release_one(int mode) {
  const std::int32_t row = striped_row_[static_cast<std::size_t>(mode)];
  if (row < 0) {
    const std::uint32_t prev =
        counter(mode).fetch_sub(1, std::memory_order_release);
    return can_park_ && prev == 1;
  }
  if (!can_park_) {
    // Nobody can be parked: skip the last-hold test and keep the release a
    // single RMW, mirroring the flat path under SpinYield.
    bank_->local_slot(static_cast<std::uint32_t>(row))
        .fetch_sub(1, std::memory_order_release);
    return false;
  }
  // The striped last-hold test: seq_cst decrement, then seq_cst sum. Against
  // a concurrent releaser on another stripe this is Dekker: in the seq_cst
  // total order one of the two decrements comes second, and the sum of that
  // releaser sees both, so at least one of two racing final releasers
  // observes the zero and wakes the partition.
  bank_->local_slot(static_cast<std::uint32_t>(row))
      .fetch_sub(1, std::memory_order_seq_cst);
  return bank_->sum(static_cast<std::uint32_t>(row),
                    std::memory_order_seq_cst) == 0;
}

bool LockMechanism::conflicts_clear_impl(int mode, std::uint32_t self_allow,
                                         std::memory_order order) const {
  for (const std::int32_t other : table_->conflicts_of(mode)) {
    SEMLOCK_DCT_POINT("mode.check", &counter(other));
    const std::uint32_t allow = other == mode ? self_allow : 0;
    if (holder_count(other, order) > allow) {
      return false;
    }
  }
  return true;
}

bool LockMechanism::announce_validate(int mode, int partition,
                                      AcquireStats& stats) {
  SEMLOCK_DCT_POINT("mode.announce", &counter(mode));
  // Announce-before-validate on both sides, all seq_cst: in the seq_cst
  // total order, of two conflicting announcers one increments second, and
  // that one's validation loads (also seq_cst) then see the other's
  // announcement (Dekker / SB litmus) — they cannot both validate. A seq_cst
  // RMW is the same instruction as a relaxed one on x86 and folds the
  // barrier into the load/add on ARM, which is why this beats a relaxed
  // announce plus a standalone fence. self_allow=1 discounts our own
  // announcement when the mode conflicts with itself.
  increment(mode, std::memory_order_seq_cst);
  if (conflicts_clear_impl(mode, 1, std::memory_order_seq_cst)) return true;
  ++stats.retracts;
  LM_OBS_EVENT(kRetract, mode);
  SEMLOCK_DCT_POINT("mode.retract", &counter(mode));
#if defined(SEMLOCK_DCT)
  if (dct::mutation_drop_retract_rewake()) {
    // Test-only mutation: retract without the rewake — a conflicting waiter
    // that parked against our transient announcement is never woken
    // (tests/dct_mutation_test.cpp validates the detector against it).
    (void)release_one(mode);
    return false;
  }
#endif
  if (release_one(mode)) {
    // Our transient announcement may have parked a conflicting waiter whose
    // real blocker released in the meantime; since ours was possibly the
    // last visible hold, replay the unlock wakeup so that waiter
    // re-validates instead of sleeping forever.
    parking_.unpark_all(partition);
  }
  return false;
}

bool LockMechanism::fast_path_admitted(int partition, AcquireStats& stats,
                                       int mode) {
  if (grant_slots_ == nullptr) return true;
#if defined(SEMLOCK_DCT)
  // Test-only mutation: ignore the barrier — the bypass tiers behave as
  // under Free and the no-starvation oracle must notice.
  if (dct::mutation_drop_barrier_check()) return true;
#endif
  GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  SEMLOCK_DCT_POINT("grant.barrier", &slot.barrier);
  const std::uint32_t barrier = slot.barrier.load(std::memory_order_acquire);
  if (barrier == 0) return true;
  if (barrier == 1) {
    // BoundedBypass counting: charge the budget; the admission that exhausts
    // it closes the barrier for everyone after. A straggler that loaded
    // barrier==1 before a reset can only over-count — the bound holds.
    const std::uint32_t before =
        slot.bypasses.fetch_add(1, std::memory_order_acq_rel);
    if (before + 1 >= bypass_bound_) {
      std::uint32_t expected = 1;
      slot.barrier.compare_exchange_strong(expected, 2,
                                           std::memory_order_acq_rel);
    }
    if (before < bypass_bound_) return true;
  }
  ++stats.diverted;
  LM_OBS_EVENT(kBarrierDivert, mode);
  return false;
}

std::uint64_t LockMechanism::enqueue_waiter(int partition) {
  GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  SEMLOCK_DCT_POINT("grant.enqueue", &slot.barrier);
  const std::uint64_t ticket =
      slot.next_ticket.fetch_add(1, std::memory_order_relaxed);
  ++slot.waiting;
  switch (grant_policy_) {
    case runtime::GrantPolicyKind::Fifo:
      // Strict handoff: the moment anyone queues, every bypass tier closes.
      slot.barrier.store(2, std::memory_order_release);
      break;
    case runtime::GrantPolicyKind::PhaseFair:
      slot.barrier.store(2, std::memory_order_release);
      if (slot.phase_remaining == 0) {
        // Open the first phase: just this waiter. Later arrivals queue for
        // the next phase, which grant_complete sizes when this one drains.
        slot.phase_remaining = 1;
        slot.phase_end.store(ticket + 1, std::memory_order_release);
      }
      break;
    case runtime::GrantPolicyKind::BoundedBypass:
      if (slot.waiting == 1) {
        // First waiter arms the counting barrier with a fresh budget. CAS:
        // never demote a barrier a concurrent exhaustion already closed.
        slot.bypasses.store(0, std::memory_order_relaxed);
        std::uint32_t expected = 0;
        slot.barrier.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel);
      }
      break;
    case runtime::GrantPolicyKind::Free:
      break;
  }
  return ticket;
}

bool LockMechanism::waiter_eligible(int partition,
                                    std::uint64_t ticket) const {
  if (grant_slots_ == nullptr) return true;
  const GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  switch (grant_policy_) {
    case runtime::GrantPolicyKind::Fifo:
    case runtime::GrantPolicyKind::BoundedBypass:
      // Tickets are unique, so once granted == ticket the cursor cannot move
      // past us — eligibility is monotone and this lock-free read is final.
      return slot.granted.load(std::memory_order_acquire) == ticket;
    case runtime::GrantPolicyKind::PhaseFair:
      // phase_end only grows, same monotonicity argument.
      return ticket < slot.phase_end.load(std::memory_order_acquire);
    case runtime::GrantPolicyKind::Free:
      break;
  }
  return true;
}

bool LockMechanism::grant_complete(int partition) {
  GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  --slot.waiting;
  slot.granted.fetch_add(1, std::memory_order_release);
  switch (grant_policy_) {
    case runtime::GrantPolicyKind::Fifo:
      if (slot.waiting == 0) slot.barrier.store(0, std::memory_order_release);
      break;
    case runtime::GrantPolicyKind::PhaseFair:
      if (--slot.phase_remaining == 0) {
        if (slot.waiting > 0) {
          // Phase drained with a queue behind it: everyone ticketed by now
          // forms the next phase (commuting members overlap freely; a
          // conflicting member simply waits its turn inside the phase).
          slot.phase_remaining = slot.waiting;
          slot.phase_end.store(
              slot.next_ticket.load(std::memory_order_relaxed),
              std::memory_order_release);
        } else {
          slot.barrier.store(0, std::memory_order_release);
        }
      }
      break;
    case runtime::GrantPolicyKind::BoundedBypass:
      // The waiter the budget protected is gone: refresh the budget for the
      // next one, or reopen the fast path when the queue is empty.
      slot.bypasses.store(0, std::memory_order_relaxed);
      slot.barrier.store(slot.waiting > 0 ? 1 : 0, std::memory_order_release);
      break;
    case runtime::GrantPolicyKind::Free:
      break;
  }
  // Waiters park against both "conflicts held" and "not my turn"; advancing
  // the cursor changes the latter, so the caller must replay the wakeup
  // (after dropping the internal lock) exactly like a releasing unlock does.
  return slot.waiting > 0;
}

void LockMechanism::lock(int mode, const LockSiteArgs* args) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  LM_OBS_EVENT(kAcquireBegin, mode);
  const int partition = table_->partition_of(mode);
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(partition)];
  const bool precheck = table_->config().fast_path_precheck;
  if (optimistic_) {
    // Tier T1: lock-free attempts. The pre-check keeps the ablation knob
    // meaningful (and skips a futile announce when a conflict is visibly
    // held); validation inside announce_validate is unconditional. Under a
    // non-Free grant policy every attempt first consults the partition's
    // barrier word — a raised barrier sends this arrival to the wait path.
    for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
      if (!fast_path_admitted(partition, stats, mode)) break;
      if (precheck && !conflicts_clear(mode)) break;
      if (announce_validate(mode, partition, stats)) {
        ++stats.optimistic_hits;
        LM_OBS_EVENT(kOptimisticHit, mode);
        LM_ATTR_GRANT(mode, args);
        LM_DCT_GRANT(partition);
        return;
      }
      backoff_pause(attempt);
    }
    lock_contended(mode, partition, internal, stats, args);
    return;
  }
  // Historical arbitrated path (optimistic_acquire off): check-then-
  // increment is sound here because every increment happens under the
  // partition's internal lock. This uncontended grant is ticketless, so it
  // is a bypass too and obeys the same barrier.
  if ((!precheck || conflicts_clear(mode)) &&
      fast_path_admitted(partition, stats, mode)) {
    internal.lock();
    if (conflicts_clear(mode)) {
      SEMLOCK_DCT_POINT("mode.acquire", &counter(mode));
      increment(mode);
      internal.unlock();
      LM_OBS_EVENT(kAcquireGrant, mode);
      LM_ATTR_GRANT(mode, args);
      LM_DCT_GRANT(partition);
      return;
    }
    internal.unlock();
  }
  lock_contended(mode, partition, internal, stats, args);
}

void LockMechanism::lock_contended(int mode, int partition,
                                   util::Spinlock& internal,
                                   AcquireStats& stats,
                                   const LockSiteArgs* args) {
  ++stats.contended;
  LM_OBS_EVENT(kContendedWait, mode);
#if defined(SEMLOCK_OBS)
  if (trace_) {
    // Sample the blocked-by conflict matrix: which non-commuting modes were
    // actually held when this waiter gave up on the fast path. The walk is
    // over conflicts_of(mode) only, so commuting pairs can never appear.
    // When attribution is on (and this wait drew a sample), also classify
    // the wait against each blocking mode's last-acquirer record: true
    // semantic conflict, or which abstraction artifact (obs/attribution.h).
    const bool classify = attr_records_ != nullptr &&
                          obs::attribution_enabled() &&
                          obs::attribution_should_sample();
    for (const std::int32_t other : table_->conflicts_of(mode)) {
      if (holder_count(other, std::memory_order_acquire) > 0) {
        obs::record_blocked_by(this, mode, other);
        if (classify) {
          obs::record_attribution(
              this, *table_, mode, args, other,
              &attr_records_[static_cast<std::size_t>(other)]);
        }
      }
    }
  }
#endif
  const std::uint64_t wait_start = runtime::steady_now_ns();
  const std::uint64_t cpu_start = runtime::thread_cpu_now_ns();
  runtime::WaitScope watchdog_scope(this, mode, partition);
#if defined(SEMLOCK_DCT)
  dct::StarvationWaitScope starvation_scope(this, partition);
#endif
  // Under a non-Free grant policy this waiter takes a ticket (raising the
  // barrier per policy) and only attempts the arbitrated grant when the
  // cursor says it is its turn; the grant then hands the cursor off to the
  // next waiter. kMaxTicket marks the Free policy's ticketless waiters.
  constexpr std::uint64_t kMaxTicket = ~std::uint64_t{0};
  std::uint64_t ticket = kMaxTicket;
  if (grant_slots_ != nullptr) {
    internal.lock();
    ticket = enqueue_waiter(partition);
    internal.unlock();
  }
  runtime::WaitState wait(policy_, spin_limit_);
  const bool precheck = table_->config().fast_path_precheck;
  for (;;) {
    const bool eligible =
        ticket == kMaxTicket || waiter_eligible(partition, ticket);
    if (eligible && (!precheck || conflicts_clear(mode))) {
      internal.lock();
      bool acquired;
      if (optimistic_) {
        // Tier T2: same announce/validate protocol, but arbitrated — the
        // internal lock serializes the slow-path waiters of this partition
        // so they cannot starve each other with dueling announcements.
        // (Plain check-then-increment would race with the lock-free T1
        // announcers, which never take this lock.)
        acquired = announce_validate(mode, partition, stats);
      } else {
        acquired = conflicts_clear(mode);
        if (acquired) {
          SEMLOCK_DCT_POINT("mode.acquire", &counter(mode));
          increment(mode);
        }
      }
      bool handoff = false;
      if (acquired && ticket != kMaxTicket) {
        handoff = grant_complete(partition);
      }
      internal.unlock();
      if (acquired) {
        if (handoff) {
          // The cursor moved: wake the partition so the newly eligible
          // waiter re-validates instead of sleeping on a stale turn.
          parking_.unpark_all(partition);
          ++stats.handoffs;
          LM_OBS_EVENT(kGrantHandoff, mode);
        }
        const std::uint64_t waited = runtime::steady_now_ns() - wait_start;
        stats.wait_ns += waited;
        if (waited > stats.max_wait_ns) stats.max_wait_ns = waited;
        stats.wait_cpu_ns += runtime::thread_cpu_now_ns() - cpu_start;
        LM_OBS_EVENT(kAcquireGrant, mode);
        LM_ATTR_GRANT(mode, args);
#if defined(SEMLOCK_DCT)
        // A contended grant is an overtake only of waiters that entered the
        // wait loop BEFORE this one (granted() bumps exactly those); the
        // unconditional LM_DCT_GRANT is for the fast-path sites, where the
        // grantee arrived later than every registered waiter by definition.
        starvation_scope.granted();
#endif
#if defined(SEMLOCK_OBS)
        if (trace_) obs::record_wait(this, mode, waited);
#endif
        return;
      }
    }
    // One unit of waiting: the policy spins/yields itself (step() == false)
    // or asks us to park. Parking re-validates after announcing so a release
    // racing with the announcement is never missed (see parking_lot.h); with
    // a ticket the re-validation covers eligibility too, since the handoff
    // wakeup above races with this announcement the same way a release does.
    if (wait.step()) {
      const std::uint32_t gen = parking_.prepare(partition);
      parking_.announce(partition);
      const bool turn_ok =
          ticket == kMaxTicket || waiter_eligible(partition, ticket);
#if defined(SEMLOCK_DCT)
      // Test-only mutation: park blind, skipping the re-validation half of
      // the handshake — the lost-wakeup bug the DCT harness must detect.
      const bool revalidated = !dct::mutation_drop_announce_revalidate() &&
                               turn_ok && conflicts_clear(mode);
#else
      const bool revalidated = turn_ok && conflicts_clear(mode);
#endif
      if (revalidated) {
        parking_.retract(partition);
      } else {
        LM_OBS_EVENT(kPark, mode);
        parking_.park(partition, gen);
        ++stats.parks;
        LM_OBS_EVENT(kUnpark, mode);
      }
    }
  }
}

bool LockMechanism::try_lock(int mode, const LockSiteArgs* args) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  LM_OBS_EVENT(kAcquireBegin, mode);
  const int partition = table_->partition_of(mode);
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(partition)];
  // Mirrors lock(): the pre-check is the Fig. 20 fast path and obeys the
  // same ablation knob, and a refused attempt charges its duration to the
  // wait counters just like a contended lock() does.
  const std::uint64_t wait_start = runtime::steady_now_ns();
  const std::uint64_t cpu_start = runtime::thread_cpu_now_ns();
  const bool precheck = table_->config().fast_path_precheck;
  bool ok = false;
  // A try_lock never queues, so under a raised grant barrier it simply
  // refuses — overtaking the queued waiters here would reopen the
  // starvation channel the barrier exists to close.
  if ((!precheck || conflicts_clear(mode)) &&
      fast_path_admitted(partition, stats, mode)) {
    if (optimistic_) {
      // One lock-free attempt, then one arbitrated attempt. The fallback
      // keeps try_lock as decisive as the historical path: two conflicting
      // try_locks that retract against each other's announcements settle
      // under the internal lock, where exactly one of them revalidates.
      ok = announce_validate(mode, partition, stats);
      if (ok) {
        ++stats.optimistic_hits;
        LM_OBS_EVENT(kOptimisticHit, mode);
        LM_ATTR_GRANT(mode, args);
        LM_DCT_GRANT(partition);
      } else {
        internal.lock();
        ok = announce_validate(mode, partition, stats);
        internal.unlock();
        if (ok) {
          LM_OBS_EVENT(kAcquireGrant, mode);
          LM_ATTR_GRANT(mode, args);
          LM_DCT_GRANT(partition);
        }
      }
    } else {
      internal.lock();
      ok = conflicts_clear(mode);
      if (ok) {
        SEMLOCK_DCT_POINT("mode.acquire", &counter(mode));
        increment(mode);
      }
      internal.unlock();
      if (ok) {
        LM_OBS_EVENT(kAcquireGrant, mode);
        LM_ATTR_GRANT(mode, args);
        LM_DCT_GRANT(partition);
      }
    }
  }
  if (!ok) {
    ++stats.contended;
    stats.wait_ns += runtime::steady_now_ns() - wait_start;
    stats.wait_cpu_ns += runtime::thread_cpu_now_ns() - cpu_start;
  }
  return ok;
}

void LockMechanism::unlock(int mode) {
  LM_OBS_EVENT(kRelease, mode);
  SEMLOCK_DCT_POINT("mode.release", &counter(mode));
  if (release_one(mode)) {
    // Wake only when this was the mode's last hold: a counter that stays
    // nonzero cannot turn any waiter's conflicts_clear from false to true,
    // so waking earlier would only stampede waiters into re-parking. Scoped
    // to the released mode's conflict partition; unrelated mode families
    // keep sleeping. unpark_all is a no-op (fence + relaxed load) when
    // nobody is parked.
    parking_.unpark_all(table_->partition_of(mode));
  }
}

}  // namespace semlock
