#include "semlock/lock_mechanism.h"

#include <new>

#include "dct/hooks.h"
#include "runtime/wait_registry.h"
#include "util/align.h"
#include "util/htm.h"

#if defined(SEMLOCK_DCT)
#include "dct/starvation.h"
// Grant hook for the DCT no-starvation oracle: every grant on a partition
// bumps the bypass count of the wait episodes still queued there. Compiles
// to nothing outside the harness.
#define LM_DCT_GRANT(partition) \
  ::semlock::dct::starvation_on_grant(this, (partition))
#else
#define LM_DCT_GRANT(partition) ((void)0)
#endif

#if defined(SEMLOCK_OBS)
#include "obs/attribution.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/waitgraph.h"
// Mechanism-level trace hook: gated on this mechanism's cached
// ModeTableConfig::trace_events flag (trace_), not the global switch, so
// per-table overrides work and the disabled cost is one predictable branch.
#define LM_OBS_EVENT(type, mode)                                     \
  do {                                                               \
    if (trace_) [[unlikely]]                                         \
      ::semlock::obs::emit(::semlock::obs::EventType::type, this,    \
                           (mode));                                  \
  } while (0)
// Grant hook for the conflict-attribution profiler: refresh the mode's
// last-acquirer record with this caller's identity and concrete argument
// values. Same trace_ gate as LM_OBS_EVENT, so the traced-off cost stays one
// predictable branch.
#define LM_ATTR_GRANT(mode, args)                                    \
  do {                                                               \
    if (trace_) [[unlikely]] {                                       \
      if (attr_records_ != nullptr && obs::attribution_enabled()) {  \
        obs::attr_record_grant(                                      \
            attr_records_[static_cast<std::size_t>(mode)],           \
            obs::current_owner_id(), (args));                        \
      }                                                              \
    }                                                                \
  } while (0)
// Site hook for the hold-time profiler: stash the caller's lock site at
// acquisition entry so the grant event (whichever tier lands it) can stamp
// its OpenHold with the code path that took the lock.
#define LM_OBS_SITE(args)                                            \
  do {                                                               \
    if (trace_) [[unlikely]]                                         \
      ::semlock::obs::note_lock_site((args) != nullptr ? (args)->site \
                                                       : -1);        \
  } while (0)
#else
#define LM_OBS_EVENT(type, mode) ((void)0)
#define LM_ATTR_GRANT(mode, args) ((void)0)
#define LM_OBS_SITE(args) ((void)0)
#endif

namespace semlock {

namespace {

// Bounded retries for the lock-free optimistic tier before falling back to
// the spinlock-arbitrated slow path. Small on purpose: a validation failure
// means a conflicting mode is actually held, and repeated announce/retract
// cycles only disturb that holder's cache lines.
constexpr int kOptimisticAttempts = 4;

// Bounded CAS retries inside one packed acquisition attempt before reporting
// Contended. A CAS failure here is not a conflict — a commuting neighbor
// moved the word — so a couple of immediate retries usually land; past that
// the caller backs off or arbitrates.
constexpr int kPackedCasRetries = 4;

// Randomized backoff between optimistic retries: two racing conflicting
// announcers that failed against each other must not re-announce in
// lockstep. SplitMix64 per thread; only the pause count is randomized, never
// control flow, so DCT replay stays deterministic.
std::uint32_t backoff_jitter() noexcept {
  thread_local std::uint64_t state = [] {
    return 0x9E3779B97F4A7C15ull *
           (0x2545F4914F6CDD1Dull +
            reinterpret_cast<std::uintptr_t>(&state));
  }();
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::uint32_t>(z >> 32);
}

void backoff_pause(int attempt) noexcept {
  const std::uint32_t ceiling = 8u << (attempt < 8 ? attempt : 8);
  const std::uint32_t spins = backoff_jitter() & (ceiling - 1);
  for (std::uint32_t i = 0; i < spins; ++i) util::cpu_relax();
}

// The futex-word policy degrades to SpinThenPark unless the storage is
// Packed — only a packed table has a single word to sleep on. Resolved once
// here so every consumer (parking allocation, can_park_, the public
// wait_policy() accessor) agrees on the effective policy.
runtime::WaitPolicyKind effective_wait_policy(const ModeTable& table,
                                              StorageKind kind) {
  const runtime::WaitPolicyKind p = table.config().wait_policy;
  if (p == runtime::WaitPolicyKind::FutexWord &&
      kind != StorageKind::Packed) {
    return runtime::WaitPolicyKind::SpinThenPark;
  }
  return p;
}

bool uses_futex_word(const ModeTable& table, StorageKind kind) {
  return kind == StorageKind::Packed &&
         effective_wait_policy(table, kind) ==
             runtime::WaitPolicyKind::FutexWord;
}

bool elision_armed(const ModeTable& table, StorageKind kind) {
#if defined(SEMLOCK_DCT)
  // A hardware transaction cannot surrender at schedule points (everything
  // inside it is invisible until commit), so elision is never armed under
  // the DCT harness — the deterministic schedules exercise the software
  // tiers only.
  (void)table;
  (void)kind;
  return false;
#else
  return table.config().elide_locks && kind == StorageKind::Packed &&
         util::htm_compiled && util::htm_supported();
#endif
}

// T0 elision bookkeeping. The slot is WRITTEN inside the hardware
// transaction, so an abort rolls it back — `active` is truthful on every
// path. One slot per thread suffices because a nested acquisition inside an
// elided section aborts the transaction instead of stacking.
struct ElisionSlot {
  const void* mech = nullptr;
  int mode = -1;
  bool active = false;
};

ElisionSlot& elision_slot() noexcept {
  thread_local ElisionSlot slot;
  return slot;
}

// Abort-streak backoff: after this many consecutive failed elision attempts,
// skip elision entirely for the next kElisionPausePeriod acquisitions —
// a workload whose sections genuinely conflict (or overflow the HTM write
// set) must not pay the begin/abort tax on every lock.
constexpr int kElisionRetries = 3;
constexpr std::uint32_t kElisionAbortThreshold = 4;
constexpr std::uint32_t kElisionPausePeriod = 64;

}  // namespace

AcquireStats& local_acquire_stats() {
#if defined(SEMLOCK_OBS)
  // The counters live inside the obs thread state so they are merged into
  // the process-wide MetricsRegistry when the thread exits — cross-thread
  // totals stay exact instead of losing whatever exited early.
  return obs::thread_acquire_stats();
#else
  thread_local AcquireStats stats;
  return stats;
#endif
}

LockMechanism::StorageVariant LockMechanism::make_storage(
    const ModeTable& table, StorageKind kind) {
  switch (kind) {
    case StorageKind::Flat:
      return StorageVariant(std::in_place_type<FlatStorage>, table);
    case StorageKind::Striped:
      return StorageVariant(std::in_place_type<StripedStorage>, table);
    case StorageKind::Packed:
      return StorageVariant(std::in_place_type<PackedStorage>,
                            *table.packed_layout());
  }
  return StorageVariant(std::in_place_type<FlatStorage>, table);
}

LockMechanism::LockMechanism(const ModeTable& table)
    : table_(&table),
      // A Packed request over a table with no packed layout (> 8 canonical
      // modes, too many partitions, ...) silently becomes Flat; storage()
      // reports the representation actually in use.
      storage_kind_(table.config().storage == StorageKind::Packed &&
                            table.packed_layout() == nullptr
                        ? StorageKind::Flat
                        : table.config().storage),
      storage_(make_storage(table, storage_kind_)),
      partition_locks_(
          new util::Spinlock[static_cast<std::size_t>(
              table.num_partitions())]),
      parking_(uses_futex_word(table, storage_kind_)
                   ? nullptr
                   : std::make_unique<runtime::ParkingLot>(
                         table.num_partitions())),
      policy_(effective_wait_policy(table, storage_kind_)),
      spin_limit_(table.config().park_spin_limit > 0
                      ? static_cast<std::uint32_t>(
                            table.config().park_spin_limit)
                      : 0),
      can_park_(policy_ != runtime::WaitPolicyKind::SpinYield),
      optimistic_(table.config().optimistic_acquire),
#if defined(SEMLOCK_OBS)
      trace_(table.config().trace_events),
#else
      trace_(false),
#endif
      futex_word_(uses_futex_word(table, storage_kind_)),
      elide_(elision_armed(table, storage_kind_)),
      grant_policy_(table.config().grant_policy),
      bypass_bound_(table.config().bypass_bound > 0
                        ? static_cast<std::uint32_t>(
                              table.config().bypass_bound)
                        : 1) {
  if (grant_policy_ != runtime::GrantPolicyKind::Free) {
    grant_slots_ = std::make_unique<GrantSlot[]>(
        static_cast<std::size_t>(table.num_partitions()));
  }
#if defined(SEMLOCK_OBS)
  if (trace_) {
    attr_records_ = std::make_unique<obs::AttrRecord[]>(
        static_cast<std::size_t>(table.num_modes()));
  }
#endif
}

// Out of line: obs::AttrRecord is incomplete in the header.
LockMechanism::~LockMechanism() = default;

std::uint32_t LockMechanism::holder_count(int mode,
                                          std::memory_order order) const {
  return std::visit(
      [&](const auto& s) { return s.holder_count(mode, order); }, storage_);
}

bool LockMechanism::mode_striped(int mode) const {
  return std::visit([&](const auto& s) { return s.mode_striped(mode); },
                    storage_);
}

std::uint32_t LockMechanism::stripes() const {
  return std::visit([](const auto& s) { return s.stripes(); }, storage_);
}

std::size_t LockMechanism::footprint_bytes() const {
  const auto partitions = static_cast<std::size_t>(table_->num_partitions());
  std::size_t total = sizeof(LockMechanism);
  total += std::visit([](const auto& s) { return s.heap_bytes(); }, storage_);
  total += partitions * sizeof(util::Spinlock);
  if (parking_ != nullptr) {
    // The lot object plus its one cache-line slot per partition
    // (runtime/parking_lot.h).
    total += sizeof(runtime::ParkingLot) + partitions * util::kCacheLineSize;
  }
  if (grant_slots_ != nullptr) total += partitions * sizeof(GrantSlot);
#if defined(SEMLOCK_OBS)
  if (attr_records_ != nullptr) {
    total += static_cast<std::size_t>(table_->num_modes()) *
             sizeof(obs::AttrRecord);
  }
#endif
  return total;
}

template <class Storage>
bool LockMechanism::conflicts_clear_impl(const Storage& s, int mode,
                                         std::uint32_t self_allow,
                                         std::memory_order order) const {
  if constexpr (Storage::kPacked) {
    // The whole conflict row is one masked load against the compiled mask.
    // A saturated own-mode field also blocks (acquiring would corrupt the
    // mini-counter), which is the saturation fallback: the arrival waits
    // like a conflicted one until a release drops the field. Packed storage
    // never announces transiently, so self_allow is moot.
    (void)self_allow;
    const PackedLayout& layout = s.layout();
    const auto mi = static_cast<std::size_t>(mode);
    SEMLOCK_DCT_POINT("word.check", &s.word());
    const std::uint64_t w = s.word().load(order);
    return (w & layout.conflict_mask[mi]) == 0 &&
           (w & layout.field_mask[mi]) != layout.field_mask[mi];
  } else {
    for (const std::int32_t other : table_->conflicts_of(mode)) {
      SEMLOCK_DCT_POINT("mode.check", s.dct_id(other));
      const std::uint32_t allow = other == mode ? self_allow : 0;
      if (s.holder_count(other, order) > allow) {
        return false;
      }
    }
    return true;
  }
}

template <class Storage>
bool LockMechanism::conflicts_clear(const Storage& s, int mode) const {
  return conflicts_clear_impl(s, mode, 0, std::memory_order_acquire);
}

template <class Storage>
bool LockMechanism::announce_validate(Storage& s, int mode, int partition,
                                      AcquireStats& stats) {
  static_assert(!Storage::kPacked,
                "packed storage acquires via packed_try_acquire");
  SEMLOCK_DCT_POINT("mode.announce", s.dct_id(mode));
  // Announce-before-validate on both sides, all seq_cst: in the seq_cst
  // total order, of two conflicting announcers one increments second, and
  // that one's validation loads (also seq_cst) then see the other's
  // announcement (Dekker / SB litmus) — they cannot both validate. A seq_cst
  // RMW is the same instruction as a relaxed one on x86 and folds the
  // barrier into the load/add on ARM, which is why this beats a relaxed
  // announce plus a standalone fence. self_allow=1 discounts our own
  // announcement when the mode conflicts with itself.
  s.increment(mode, std::memory_order_seq_cst);
  if (conflicts_clear_impl(s, mode, 1, std::memory_order_seq_cst)) {
    return true;
  }
  ++stats.retracts;
  LM_OBS_EVENT(kRetract, mode);
  SEMLOCK_DCT_POINT("mode.retract", s.dct_id(mode));
#if defined(SEMLOCK_DCT)
  if (dct::mutation_drop_retract_rewake()) {
    // Test-only mutation: retract without the rewake — a conflicting waiter
    // that parked against our transient announcement is never woken
    // (tests/dct_mutation_test.cpp validates the detector against it).
    (void)s.release_one(mode, can_park_);
    return false;
  }
#endif
  if (s.release_one(mode, can_park_)) {
    // Our transient announcement may have parked a conflicting waiter whose
    // real blocker released in the meantime; since ours was possibly the
    // last visible hold, replay the unlock wakeup so that waiter
    // re-validates instead of sleeping forever.
    parking_->unpark_all(partition);
  }
  return false;
}

LockMechanism::PackedAttempt LockMechanism::packed_try_acquire(
    PackedStorage& s, int mode, int partition, AcquireStats& stats,
    bool doorway) {
  const PackedLayout& layout = s.layout();
  std::atomic<std::uint64_t>& word = s.word();
  const auto mi = static_cast<std::size_t>(mode);
  const auto pi = static_cast<std::size_t>(partition);
  // Whether the folded grant-barrier bits still gate this attempt. The
  // ticketed arbitrated tier (doorway=false) ignores them, exactly as the
  // flat contended tier never consults fast_path_admitted.
  bool barrier_passed = grant_slots_ == nullptr || !doorway;
#if defined(SEMLOCK_DCT)
  // Test-only mutation: ignore the barrier — the bypass tiers behave as
  // under Free and the no-starvation oracle must notice.
  if (dct::mutation_drop_barrier_check()) barrier_passed = true;
#endif
  std::uint64_t w = word.load(std::memory_order_seq_cst);
  for (int attempt = 0;; ++attempt) {
    SEMLOCK_DCT_POINT("word.check", &word);
    std::uint64_t conflict = layout.conflict_mask[mi];
#if defined(SEMLOCK_DCT)
    // Test-only mutation: skip the compiled conflict-mask test — holders of
    // conflicting modes stop excluding each other and the serializability
    // oracle must catch the damage (tests/dct_mutation_test.cpp).
    if (dct::mutation_drop_packed_mask_check()) conflict = 0;
#endif
    if ((w & conflict) != 0) return PackedAttempt::Blocked;
    if ((w & layout.field_mask[mi]) == layout.field_mask[mi]) {
      // Mini-counter saturated: another increment would overflow into the
      // neighbor field, so this arrival falls back to the arbitrated/wait
      // tier until a release drops the field below field_max (releases from
      // saturation replay the wakeup; see unlock_impl).
      return PackedAttempt::Blocked;
    }
    if (!barrier_passed) {
      SEMLOCK_DCT_POINT("grant.barrier", &word);
      if ((w & layout.closed_bit[pi]) != 0) {
        ++stats.diverted;
        LM_OBS_EVENT(kBarrierDivert, mode);
        return PackedAttempt::Blocked;
      }
      if ((w & layout.counting_bit[pi]) != 0) {
        // BoundedBypass counting: charge the budget once per attempt
        // series; the admission that exhausts it closes the barrier for
        // everyone after. A straggler that loaded a stale counting bit can
        // only over-count — the bound holds. The budget itself stays in the
        // external GrantSlot (it does not fit the word); only the 0/1/2
        // barrier STATE is folded into the bits.
        GrantSlot& slot = grant_slots_[pi];
        const std::uint32_t before =
            slot.bypasses.fetch_add(1, std::memory_order_acq_rel);
        if (before + 1 >= bypass_bound_) {
          std::uint64_t cur = word.load(std::memory_order_relaxed);
          while ((cur & layout.counting_bit[pi]) != 0 &&
                 !word.compare_exchange_weak(
                     cur,
                     (cur | layout.closed_bit[pi]) & ~layout.counting_bit[pi],
                     std::memory_order_acq_rel)) {
          }
        }
        if (before >= bypass_bound_) {
          ++stats.diverted;
          LM_OBS_EVENT(kBarrierDivert, mode);
          return PackedAttempt::Blocked;
        }
        // Admitted: like the flat doorway, a barrier that rises after this
        // point (possibly by our own hand just above) no longer diverts us.
        barrier_passed = true;
        w = word.load(std::memory_order_seq_cst);
        continue;
      }
      barrier_passed = true;
    }
    // The CAS fuses announce+validate: it claims the field ONLY if the word
    // it validated is still the word it saw, so there is no transient
    // announcement, hence no retract and no rewake on this path.
    SEMLOCK_DCT_POINT("word.cas", &word);
    if (word.compare_exchange_weak(w, w + layout.inc[mi],
                                   std::memory_order_seq_cst,
                                   std::memory_order_seq_cst)) {
      return PackedAttempt::Acquired;
    }
    // compare_exchange reloaded w; re-run the checks on the fresh value.
    if (attempt >= kPackedCasRetries) return PackedAttempt::Contended;
  }
}

void LockMechanism::packed_word_wait(PackedStorage& s,
                                     std::uint64_t observed) {
#if defined(SEMLOCK_DCT)
  if (dct::scheduled()) {
    dct::futex_wait(s.word(), observed);
    return;
  }
#endif
  s.word().wait(observed, std::memory_order_seq_cst);
}

bool LockMechanism::try_elide(PackedStorage& s, int mode) {
  if (!util::htm_compiled) return false;
  ElisionSlot& slot = elision_slot();
  if (slot.active) {
    // Nested acquisition inside an elided section (of this or any other
    // mechanism): abort back to the outer htm_begin, whose retry logic
    // falls back to the real path; the rollback resets slot.active.
    util::htm_abort();
    return false;  // not reached while a transaction is live
  }
  const std::uint32_t pause =
      elision_pause_.load(std::memory_order_relaxed);
  if (pause != 0) {
    elision_pause_.store(pause - 1, std::memory_order_relaxed);
    return false;
  }
  for (int attempt = 0; attempt < kElisionRetries; ++attempt) {
    const unsigned code = util::htm_begin();
    if (code == util::kHtmStarted) {
      if (s.word().load(std::memory_order_relaxed) != 0) {
        // The word is busy — a real holder, waiter bit, or barrier bit
        // exists — so elision would have to reason about conflicts it
        // cannot see. Abort (explicit, non-retryable) back to htm_begin.
        util::htm_abort();
      }
      // Quiescent word in the read set: any concurrent real acquisition
      // CASes the word and aborts this transaction, and vice versa this
      // section publishes nothing until commit. Serializable by hardware.
      slot.mech = this;
      slot.mode = mode;
      slot.active = true;
      return true;
    }
    if (!util::htm_retryable(code)) break;
  }
  const std::uint32_t streak =
      elision_aborts_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= kElisionAbortThreshold) {
    elision_aborts_.store(0, std::memory_order_relaxed);
    elision_pause_.store(kElisionPausePeriod, std::memory_order_relaxed);
  }
  return false;
}

bool LockMechanism::fast_path_admitted(int partition, AcquireStats& stats,
                                       int mode) {
  if (grant_slots_ == nullptr) return true;
#if defined(SEMLOCK_DCT)
  // Test-only mutation: ignore the barrier — the bypass tiers behave as
  // under Free and the no-starvation oracle must notice.
  if (dct::mutation_drop_barrier_check()) return true;
#endif
  GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  SEMLOCK_DCT_POINT("grant.barrier", &slot.barrier);
  const std::uint32_t barrier = slot.barrier.load(std::memory_order_acquire);
  if (barrier == 0) return true;
  if (barrier == 1) {
    // BoundedBypass counting: charge the budget; the admission that exhausts
    // it closes the barrier for everyone after. A straggler that loaded
    // barrier==1 before a reset can only over-count — the bound holds.
    const std::uint32_t before =
        slot.bypasses.fetch_add(1, std::memory_order_acq_rel);
    if (before + 1 >= bypass_bound_) {
      std::uint32_t expected = 1;
      slot.barrier.compare_exchange_strong(expected, 2,
                                           std::memory_order_acq_rel);
    }
    if (before < bypass_bound_) return true;
  }
  ++stats.diverted;
  LM_OBS_EVENT(kBarrierDivert, mode);
  return false;
}

template <class Storage>
std::uint64_t LockMechanism::enqueue_waiter(Storage& s, int partition) {
  GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  SEMLOCK_DCT_POINT("grant.enqueue", &slot.barrier);
  const std::uint64_t ticket =
      slot.next_ticket.fetch_add(1, std::memory_order_relaxed);
  ++slot.waiting;
  // Barrier-state writes are representation-switched: flat/striped keep the
  // PR 7 GrantSlot barrier word; packed raises the closed/counting bits in
  // the lock word so the bypass tiers' doorway stays one load.
  switch (grant_policy_) {
    case runtime::GrantPolicyKind::Fifo:
      // Strict handoff: the moment anyone queues, every bypass tier closes.
      if constexpr (Storage::kPacked) {
        s.word().fetch_or(s.layout().closed_bit[static_cast<std::size_t>(
                              partition)],
                          std::memory_order_seq_cst);
      } else {
        slot.barrier.store(2, std::memory_order_release);
      }
      break;
    case runtime::GrantPolicyKind::PhaseFair:
      if constexpr (Storage::kPacked) {
        s.word().fetch_or(s.layout().closed_bit[static_cast<std::size_t>(
                              partition)],
                          std::memory_order_seq_cst);
      } else {
        slot.barrier.store(2, std::memory_order_release);
      }
      if (slot.phase_remaining == 0) {
        // Open the first phase: just this waiter. Later arrivals queue for
        // the next phase, which grant_complete sizes when this one drains.
        slot.phase_remaining = 1;
        slot.phase_end.store(ticket + 1, std::memory_order_release);
      }
      break;
    case runtime::GrantPolicyKind::BoundedBypass:
      if (slot.waiting == 1) {
        // First waiter arms the counting barrier with a fresh budget —
        // never demoting a barrier a concurrent exhaustion already closed.
        slot.bypasses.store(0, std::memory_order_relaxed);
        if constexpr (Storage::kPacked) {
          const PackedLayout& layout = s.layout();
          const auto pi = static_cast<std::size_t>(partition);
          std::uint64_t cur = s.word().load(std::memory_order_relaxed);
          while ((cur & layout.closed_bit[pi]) == 0 &&
                 !s.word().compare_exchange_weak(
                     cur, cur | layout.counting_bit[pi],
                     std::memory_order_acq_rel)) {
          }
        } else {
          std::uint32_t expected = 0;
          slot.barrier.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel);
        }
      }
      break;
    case runtime::GrantPolicyKind::Free:
      break;
  }
  return ticket;
}

bool LockMechanism::waiter_eligible(int partition,
                                    std::uint64_t ticket) const {
  if (grant_slots_ == nullptr) return true;
  const GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  switch (grant_policy_) {
    case runtime::GrantPolicyKind::Fifo:
    case runtime::GrantPolicyKind::BoundedBypass:
      // Tickets are unique, so once granted == ticket the cursor cannot move
      // past us — eligibility is monotone and this lock-free read is final.
      return slot.granted.load(std::memory_order_acquire) == ticket;
    case runtime::GrantPolicyKind::PhaseFair:
      // phase_end only grows, same monotonicity argument.
      return ticket < slot.phase_end.load(std::memory_order_acquire);
    case runtime::GrantPolicyKind::Free:
      break;
  }
  return true;
}

template <class Storage>
bool LockMechanism::grant_complete(Storage& s, int partition) {
  GrantSlot& slot = grant_slots_[static_cast<std::size_t>(partition)];
  const auto pi = static_cast<std::size_t>(partition);
  --slot.waiting;
  slot.granted.fetch_add(1, std::memory_order_release);
  switch (grant_policy_) {
    case runtime::GrantPolicyKind::Fifo:
      if (slot.waiting == 0) {
        if constexpr (Storage::kPacked) {
          s.word().fetch_and(~s.layout().closed_bit[pi],
                             std::memory_order_seq_cst);
        } else {
          slot.barrier.store(0, std::memory_order_release);
        }
      }
      break;
    case runtime::GrantPolicyKind::PhaseFair:
      if (--slot.phase_remaining == 0) {
        if (slot.waiting > 0) {
          // Phase drained with a queue behind it: everyone ticketed by now
          // forms the next phase (commuting members overlap freely; a
          // conflicting member simply waits its turn inside the phase).
          slot.phase_remaining = slot.waiting;
          slot.phase_end.store(
              slot.next_ticket.load(std::memory_order_relaxed),
              std::memory_order_release);
        } else {
          if constexpr (Storage::kPacked) {
            s.word().fetch_and(~s.layout().closed_bit[pi],
                               std::memory_order_seq_cst);
          } else {
            slot.barrier.store(0, std::memory_order_release);
          }
        }
      }
      break;
    case runtime::GrantPolicyKind::BoundedBypass:
      // The waiter the budget protected is gone: refresh the budget for the
      // next one, or reopen the fast path when the queue is empty.
      slot.bypasses.store(0, std::memory_order_relaxed);
      if constexpr (Storage::kPacked) {
        const PackedLayout& layout = s.layout();
        if (slot.waiting > 0) {
          // Re-arm counting before reopening closed; the transient
          // closed+counting overlap can only divert conservatively.
          s.word().fetch_or(layout.counting_bit[pi],
                            std::memory_order_seq_cst);
          s.word().fetch_and(~layout.closed_bit[pi],
                             std::memory_order_seq_cst);
        } else {
          s.word().fetch_and(
              ~(layout.closed_bit[pi] | layout.counting_bit[pi]),
              std::memory_order_seq_cst);
        }
      } else {
        slot.barrier.store(slot.waiting > 0 ? 1 : 0,
                           std::memory_order_release);
      }
      break;
    case runtime::GrantPolicyKind::Free:
      break;
  }
  // Waiters park against both "conflicts held" and "not my turn"; advancing
  // the cursor changes the latter, so the caller must replay the wakeup
  // (after dropping the internal lock) exactly like a releasing unlock does.
  return slot.waiting > 0;
}

template <class Storage>
void LockMechanism::wake_partition(Storage& s, int partition) {
  if constexpr (Storage::kPacked) {
    if (futex_word_) {
      // Futex-word wakeup: clearing W both licenses future releases to skip
      // the notify and CHANGES THE WORD'S VALUE, so sleepers blocked on any
      // stale `observed` return from wait — including handoff wakeups that
      // touched no counter field. Woken waiters re-publish W before
      // sleeping again, so a cleared bit never strands a still-blocked
      // waiter.
      const PackedLayout& layout = s.layout();
      std::atomic<std::uint64_t>& word = s.word();
      if ((word.load(std::memory_order_seq_cst) & layout.waiters_bit) != 0) {
        word.fetch_and(~layout.waiters_bit, std::memory_order_seq_cst);
        SEMLOCK_DCT_POINT("word.wake", &word);
        word.notify_all();
      }
      return;
    }
  }
  parking_->unpark_all(partition);
}

template <class Storage>
void LockMechanism::lock_impl(Storage& s, int mode,
                              const LockSiteArgs* args) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  LM_OBS_EVENT(kAcquireBegin, mode);
  LM_OBS_SITE(args);
  const int partition = table_->partition_of(mode);
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(partition)];
  const bool precheck = table_->config().fast_path_precheck;
  if constexpr (Storage::kPacked) {
    // Tier T0: hardware elision — no counter write at all when it commits.
    if (elide_ && try_elide(s, mode)) return;
    if (optimistic_) {
      // Tier T1: the packed CAS already validates, honors the folded
      // barrier bits, and cannot leave a transient announcement, so the
      // whole doorway+announce+validate sequence is one bounded CAS loop.
      for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
        const PackedAttempt r =
            packed_try_acquire(s, mode, partition, stats, /*doorway=*/true);
        if (r == PackedAttempt::Acquired) {
          ++stats.optimistic_hits;
          LM_OBS_EVENT(kOptimisticHit, mode);
          LM_ATTR_GRANT(mode, args);
          LM_DCT_GRANT(partition);
          return;
        }
        if (r == PackedAttempt::Blocked) break;
        backoff_pause(attempt);
      }
    } else {
      // Historical arbitrated flavor: one attempt under the internal lock
      // (the CAS subsumes check-then-increment). Still a ticketless bypass,
      // so the doorway bits apply.
      if (!precheck || conflicts_clear(s, mode)) {
        internal.lock();
        const PackedAttempt r =
            packed_try_acquire(s, mode, partition, stats, /*doorway=*/true);
        internal.unlock();
        if (r == PackedAttempt::Acquired) {
          LM_OBS_EVENT(kAcquireGrant, mode);
          LM_ATTR_GRANT(mode, args);
          LM_DCT_GRANT(partition);
          return;
        }
      }
    }
    lock_contended(s, mode, partition, internal, stats, args);
  } else {
    if (optimistic_) {
      // Tier T1: lock-free attempts. The pre-check keeps the ablation knob
      // meaningful (and skips a futile announce when a conflict is visibly
      // held); validation inside announce_validate is unconditional. Under
      // a non-Free grant policy every attempt first consults the
      // partition's barrier word — a raised barrier sends this arrival to
      // the wait path.
      for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
        if (!fast_path_admitted(partition, stats, mode)) break;
        if (precheck && !conflicts_clear(s, mode)) break;
        if (announce_validate(s, mode, partition, stats)) {
          ++stats.optimistic_hits;
          LM_OBS_EVENT(kOptimisticHit, mode);
          LM_ATTR_GRANT(mode, args);
          LM_DCT_GRANT(partition);
          return;
        }
        backoff_pause(attempt);
      }
      lock_contended(s, mode, partition, internal, stats, args);
      return;
    }
    // Historical arbitrated path (optimistic_acquire off): check-then-
    // increment is sound here because every increment happens under the
    // partition's internal lock. This uncontended grant is ticketless, so
    // it is a bypass too and obeys the same barrier.
    if ((!precheck || conflicts_clear(s, mode)) &&
        fast_path_admitted(partition, stats, mode)) {
      internal.lock();
      if (conflicts_clear(s, mode)) {
        SEMLOCK_DCT_POINT("mode.acquire", s.dct_id(mode));
        s.increment(mode, std::memory_order_relaxed);
        internal.unlock();
        LM_OBS_EVENT(kAcquireGrant, mode);
        LM_ATTR_GRANT(mode, args);
        LM_DCT_GRANT(partition);
        return;
      }
      internal.unlock();
    }
    lock_contended(s, mode, partition, internal, stats, args);
  }
}

template <class Storage>
void LockMechanism::lock_contended(Storage& s, int mode, int partition,
                                   util::Spinlock& internal,
                                   AcquireStats& stats,
                                   const LockSiteArgs* args) {
  ++stats.contended;
  LM_OBS_EVENT(kContendedWait, mode);
#if defined(SEMLOCK_OBS)
  // Blocker identity for the causal layer (span recorder + wait-for graph):
  // the owner that last acquired the first held conflicting mode, sampled
  // from the PR 5 seqlock grant records. Captured on entry and refreshed at
  // every park, so the recorded blocker is whoever was actually holding at
  // the moment this waiter went to sleep.
  obs::BlockerInfo blocker;
  const bool span_on = trace_ && obs::spans_enabled();
  const auto capture_blocker = [&](std::uint64_t now_ns) {
    for (const std::int32_t other : table_->conflicts_of(mode)) {
      if (s.holder_count(other, std::memory_order_acquire) == 0) continue;
      blocker.mode = other;
      blocker.capture_ns = now_ns;
      blocker.owner = 0;
      blocker.site = -1;
      if (attr_records_ != nullptr) {
        // The owner field is stored even for bare-mode grants (site -1), so
        // this works without LockSiteArgs; only a torn read or our own
        // previous grant leaves the blocker anonymous.
        const obs::AttrSnapshot h =
            obs::attr_read(attr_records_[static_cast<std::size_t>(other)]);
        if (h.owner != 0 && h.owner != obs::current_owner_id()) {
          blocker.owner = h.owner;
          blocker.site = h.site;
        }
      }
      return;
    }
  };
  if (trace_) {
    if (span_on) capture_blocker(runtime::steady_now_ns());
    // Sample the blocked-by conflict matrix: which non-commuting modes were
    // actually held when this waiter gave up on the fast path. The walk is
    // over conflicts_of(mode) only, so commuting pairs can never appear.
    // When attribution is on (and this wait drew a sample), also classify
    // the wait against each blocking mode's last-acquirer record: true
    // semantic conflict, or which abstraction artifact (obs/attribution.h).
    const bool classify = attr_records_ != nullptr &&
                          obs::attribution_enabled() &&
                          obs::attribution_should_sample();
    for (const std::int32_t other : table_->conflicts_of(mode)) {
      if (s.holder_count(other, std::memory_order_acquire) > 0) {
        obs::record_blocked_by(this, mode, other);
        if (classify) {
          const obs::AttrClass cls = obs::record_attribution(
              this, *table_, mode, args, other,
              &attr_records_[static_cast<std::size_t>(other)]);
          if (other == blocker.mode) {
            blocker.attr_class = static_cast<std::uint32_t>(cls);
          }
        }
      }
    }
  }
#endif
  const std::uint64_t wait_start = runtime::steady_now_ns();
  const std::uint64_t cpu_start = runtime::thread_cpu_now_ns();
  runtime::WaitScope watchdog_scope(this, mode, partition);
#if defined(SEMLOCK_OBS)
  // Publish this wait's waiter -> blocker edge in the live wait-for graph
  // beside the watchdog's WaitScope; refreshed with the blocker at each
  // park, cleared by the destructor on grant.
  obs::WaitEdge wait_edge;
  if (span_on) {
    wait_edge.open(this, mode, obs::current_owner_id(), wait_start);
    wait_edge.set_blocker(blocker.owner, blocker.site);
  }
#endif
#if defined(SEMLOCK_DCT)
  dct::StarvationWaitScope starvation_scope(this, partition);
#endif
  // Under a non-Free grant policy this waiter takes a ticket (raising the
  // barrier per policy) and only attempts the arbitrated grant when the
  // cursor says it is its turn; the grant then hands the cursor off to the
  // next waiter. kMaxTicket marks the Free policy's ticketless waiters.
  constexpr std::uint64_t kMaxTicket = ~std::uint64_t{0};
  std::uint64_t ticket = kMaxTicket;
  if (grant_slots_ != nullptr) {
    internal.lock();
    ticket = enqueue_waiter(s, partition);
    internal.unlock();
  }
  runtime::WaitState wait(policy_, spin_limit_);
  const bool precheck = table_->config().fast_path_precheck;
  for (;;) {
    const bool eligible =
        ticket == kMaxTicket || waiter_eligible(partition, ticket);
    if (eligible && (!precheck || conflicts_clear(s, mode))) {
      internal.lock();
      bool acquired;
      if constexpr (Storage::kPacked) {
        // Tier T2, packed: the same fused CAS, arbitrated by the internal
        // lock and with doorway=false — a ticketed waiter whose turn came
        // must not divert against its own barrier.
        acquired = packed_try_acquire(s, mode, partition, stats,
                                      /*doorway=*/false) ==
                   PackedAttempt::Acquired;
      } else if (optimistic_) {
        // Tier T2: same announce/validate protocol, but arbitrated — the
        // internal lock serializes the slow-path waiters of this partition
        // so they cannot starve each other with dueling announcements.
        // (Plain check-then-increment would race with the lock-free T1
        // announcers, which never take this lock.)
        acquired = announce_validate(s, mode, partition, stats);
      } else {
        acquired = conflicts_clear(s, mode);
        if (acquired) {
          SEMLOCK_DCT_POINT("mode.acquire", s.dct_id(mode));
          s.increment(mode, std::memory_order_relaxed);
        }
      }
      bool handoff = false;
      if (acquired && ticket != kMaxTicket) {
        handoff = grant_complete(s, partition);
      }
      internal.unlock();
      if (acquired) {
        if (handoff) {
          // The cursor moved: wake the partition so the newly eligible
          // waiter re-validates instead of sleeping on a stale turn.
          wake_partition(s, partition);
          ++stats.handoffs;
          LM_OBS_EVENT(kGrantHandoff, mode);
        }
        const std::uint64_t waited = runtime::steady_now_ns() - wait_start;
        stats.wait_ns += waited;
        if (waited > stats.max_wait_ns) stats.max_wait_ns = waited;
        stats.wait_cpu_ns += runtime::thread_cpu_now_ns() - cpu_start;
        LM_OBS_EVENT(kAcquireGrant, mode);
        LM_ATTR_GRANT(mode, args);
#if defined(SEMLOCK_DCT)
        // A contended grant is an overtake only of waiters that entered the
        // wait loop BEFORE this one (granted() bumps exactly those); the
        // unconditional LM_DCT_GRANT is for the fast-path sites, where the
        // grantee arrived later than every registered waiter by definition.
        starvation_scope.granted();
#endif
#if defined(SEMLOCK_OBS)
        if (trace_) obs::record_wait(this, mode, waited);
        if (span_on) {
          obs::record_lock_wait_span(this, mode, wait_start,
                                     wait_start + waited, blocker);
        }
#endif
        return;
      }
    }
    // One unit of waiting: the policy spins/yields itself (step() == false)
    // or asks us to sleep. Sleeping re-validates after announcing so a
    // release racing with the announcement is never missed; with a ticket
    // the re-validation covers eligibility too, since the handoff wakeup
    // above races with this announcement the same way a release does.
    if (wait.step()) {
      bool slept_on_word = false;
      if constexpr (Storage::kPacked) {
        if (futex_word_) {
          // Waiter half of the futex-word handshake: publish the waiters
          // bit with an RMW on the word itself, then re-validate against
          // the value that RMW returned. The word's modification order is
          // the Dekker arbiter: either our fetch_or precedes the release
          // that would satisfy us (then that release observes W and
          // notifies after clearing it), or it follows it (then `observed`
          // already shows the conflict clear and we retry instead of
          // sleeping). Eligibility is covered the same way — a handoff
          // wake clears W, changing the word, so a stale `observed` never
          // outlives its wakeup.
          const PackedLayout& layout = s.layout();
          const auto mi = static_cast<std::size_t>(mode);
          SEMLOCK_DCT_POINT("word.announce", &s.word());
          const std::uint64_t observed =
              s.word().fetch_or(layout.waiters_bit,
                                std::memory_order_seq_cst) |
              layout.waiters_bit;
          const bool turn_ok =
              ticket == kMaxTicket || waiter_eligible(partition, ticket);
          bool still_blocked =
              !turn_ok ||
              (observed & layout.conflict_mask[mi]) != 0 ||
              (observed & layout.field_mask[mi]) == layout.field_mask[mi];
#if defined(SEMLOCK_DCT)
          // Test-only mutation: sleep blind, skipping the re-validation
          // half of the handshake — the lost-wakeup bug the DCT harness
          // must detect.
          if (dct::mutation_drop_announce_revalidate()) still_blocked = true;
#endif
          if (still_blocked) {
            LM_OBS_EVENT(kPark, mode);
#if defined(SEMLOCK_OBS)
            if (span_on) {
              capture_blocker(runtime::steady_now_ns());
              wait_edge.set_blocker(blocker.owner, blocker.site);
            }
#endif
            packed_word_wait(s, observed);
            ++stats.parks;
            LM_OBS_EVENT(kUnpark, mode);
          }
          // No retract: W stays set until a wakeup clears it. The cost is
          // at most one spurious notify from a release that found W with
          // no sleeper left — cheaper than racing a clear against other
          // announcing waiters.
          slept_on_word = true;
        }
      }
      if (!slept_on_word) {
        const std::uint32_t gen = parking_->prepare(partition);
        parking_->announce(partition);
        const bool turn_ok =
            ticket == kMaxTicket || waiter_eligible(partition, ticket);
#if defined(SEMLOCK_DCT)
        // Test-only mutation: park blind, skipping the re-validation half
        // of the handshake — the lost-wakeup bug the DCT harness must
        // detect.
        const bool revalidated =
            !dct::mutation_drop_announce_revalidate() && turn_ok &&
            conflicts_clear(s, mode);
#else
        const bool revalidated = turn_ok && conflicts_clear(s, mode);
#endif
        if (revalidated) {
          parking_->retract(partition);
        } else {
          LM_OBS_EVENT(kPark, mode);
#if defined(SEMLOCK_OBS)
          if (span_on) {
            capture_blocker(runtime::steady_now_ns());
            wait_edge.set_blocker(blocker.owner, blocker.site);
          }
#endif
          parking_->park(partition, gen);
          ++stats.parks;
          LM_OBS_EVENT(kUnpark, mode);
        }
      }
    }
  }
}

template <class Storage>
bool LockMechanism::try_lock_impl(Storage& s, int mode,
                                  const LockSiteArgs* args) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  LM_OBS_EVENT(kAcquireBegin, mode);
  LM_OBS_SITE(args);
  const int partition = table_->partition_of(mode);
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(partition)];
  // Mirrors lock(): the pre-check is the Fig. 20 fast path and obeys the
  // same ablation knob, and a refused attempt charges its duration to the
  // wait counters just like a contended lock() does.
  const std::uint64_t wait_start = runtime::steady_now_ns();
  const std::uint64_t cpu_start = runtime::thread_cpu_now_ns();
  const bool precheck = table_->config().fast_path_precheck;
  bool ok = false;
  // A try_lock never queues, so under a raised grant barrier it simply
  // refuses — overtaking the queued waiters here would reopen the
  // starvation channel the barrier exists to close.
  if constexpr (Storage::kPacked) {
    // One lock-free attempt (doorway honored — the barrier bits are part of
    // the same word the CAS validates), then one arbitrated attempt when
    // only CAS churn stood in the way.
    const PackedAttempt first =
        packed_try_acquire(s, mode, partition, stats, /*doorway=*/true);
    if (first == PackedAttempt::Acquired) {
      ok = true;
      ++stats.optimistic_hits;
      LM_OBS_EVENT(kOptimisticHit, mode);
      LM_ATTR_GRANT(mode, args);
      LM_DCT_GRANT(partition);
    } else if (first == PackedAttempt::Contended) {
      internal.lock();
      ok = packed_try_acquire(s, mode, partition, stats,
                              /*doorway=*/true) == PackedAttempt::Acquired;
      internal.unlock();
      if (ok) {
        LM_OBS_EVENT(kAcquireGrant, mode);
        LM_ATTR_GRANT(mode, args);
        LM_DCT_GRANT(partition);
      }
    }
    (void)precheck;  // the CAS always validates; the knob has nothing to skip
  } else {
    if ((!precheck || conflicts_clear(s, mode)) &&
        fast_path_admitted(partition, stats, mode)) {
      if (optimistic_) {
        // One lock-free attempt, then one arbitrated attempt. The fallback
        // keeps try_lock as decisive as the historical path: two
        // conflicting try_locks that retract against each other's
        // announcements settle under the internal lock, where exactly one
        // of them revalidates.
        ok = announce_validate(s, mode, partition, stats);
        if (ok) {
          ++stats.optimistic_hits;
          LM_OBS_EVENT(kOptimisticHit, mode);
          LM_ATTR_GRANT(mode, args);
          LM_DCT_GRANT(partition);
        } else {
          internal.lock();
          ok = announce_validate(s, mode, partition, stats);
          internal.unlock();
          if (ok) {
            LM_OBS_EVENT(kAcquireGrant, mode);
            LM_ATTR_GRANT(mode, args);
            LM_DCT_GRANT(partition);
          }
        }
      } else {
        internal.lock();
        ok = conflicts_clear(s, mode);
        if (ok) {
          SEMLOCK_DCT_POINT("mode.acquire", s.dct_id(mode));
          s.increment(mode, std::memory_order_relaxed);
        }
        internal.unlock();
        if (ok) {
          LM_OBS_EVENT(kAcquireGrant, mode);
          LM_ATTR_GRANT(mode, args);
          LM_DCT_GRANT(partition);
        }
      }
    }
  }
  if (!ok) {
    ++stats.contended;
    stats.wait_ns += runtime::steady_now_ns() - wait_start;
    stats.wait_cpu_ns += runtime::thread_cpu_now_ns() - cpu_start;
  }
  return ok;
}

template <class Storage>
void LockMechanism::unlock_impl(Storage& s, int mode) {
  if constexpr (Storage::kPacked) {
    if (elide_) {
      ElisionSlot& slot = elision_slot();
      if (slot.active && slot.mech == this && slot.mode == mode) {
        // Elided section: commit the hardware transaction. Nothing was
        // written to the word, so there is nobody to wake.
        slot.active = false;
        util::htm_end();
        return;
      }
    }
    LM_OBS_EVENT(kRelease, mode);
    const PackedLayout& layout = s.layout();
    const auto mi = static_cast<std::size_t>(mode);
    SEMLOCK_DCT_POINT("word.release", &s.word());
    const std::uint64_t old =
        s.word().fetch_sub(layout.inc[mi], std::memory_order_seq_cst);
    if (!can_park_) return;
    const std::uint64_t field = old & layout.field_mask[mi];
    // Wake when a sleeper's predicate may have flipped: this was the mode's
    // last hold (conflicting waiters can now validate), or the field just
    // dropped out of saturation (same-mode waiters blocked on field_max).
    if (field == layout.inc[mi] || field == layout.field_mask[mi]) {
      wake_partition(s, table_->partition_of(mode));
    }
  } else {
    LM_OBS_EVENT(kRelease, mode);
    SEMLOCK_DCT_POINT("mode.release", s.dct_id(mode));
    if (s.release_one(mode, can_park_)) {
      // Wake only when this was the mode's last hold: a counter that stays
      // nonzero cannot turn any waiter's conflicts_clear from false to
      // true, so waking earlier would only stampede waiters into
      // re-parking. Scoped to the released mode's conflict partition;
      // unrelated mode families keep sleeping. unpark_all is a no-op
      // (fence + relaxed load) when nobody is parked.
      parking_->unpark_all(table_->partition_of(mode));
    }
  }
}

void LockMechanism::lock(int mode, const LockSiteArgs* args) {
  std::visit([&](auto& s) { lock_impl(s, mode, args); }, storage_);
}

bool LockMechanism::try_lock(int mode, const LockSiteArgs* args) {
  return std::visit([&](auto& s) { return try_lock_impl(s, mode, args); },
                    storage_);
}

void LockMechanism::unlock(int mode) {
  std::visit([&](auto& s) { unlock_impl(s, mode); }, storage_);
}

}  // namespace semlock
