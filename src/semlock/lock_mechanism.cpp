#include "semlock/lock_mechanism.h"

#include <new>

#include "dct/hooks.h"
#include "runtime/wait_registry.h"
#include "util/align.h"

namespace semlock {

AcquireStats& local_acquire_stats() {
  thread_local AcquireStats stats;
  return stats;
}

LockMechanism::LockMechanism(const ModeTable& table)
    : table_(&table),
      stride_(table.config().pad_counters
                  ? util::kCacheLineSize
                  : sizeof(std::atomic<std::uint32_t>)),
      counters_(new std::byte[static_cast<std::size_t>(table.num_modes()) *
                              stride_]),
      partition_locks_(
          new util::Spinlock[static_cast<std::size_t>(
              table.num_partitions())]),
      parking_(table.num_partitions()),
      policy_(table.config().wait_policy),
      spin_limit_(table.config().park_spin_limit > 0
                      ? static_cast<std::uint32_t>(
                            table.config().park_spin_limit)
                      : 0),
      can_park_(policy_ != runtime::WaitPolicyKind::SpinYield) {
  for (int m = 0; m < table.num_modes(); ++m) {
    new (counters_.get() + static_cast<std::size_t>(m) * stride_)
        std::atomic<std::uint32_t>(0);
  }
}

bool LockMechanism::conflicts_clear(int mode) const {
  for (const std::int32_t other : table_->conflicts_of(mode)) {
    SEMLOCK_DCT_POINT("mode.check", &counter(other));
    if (counter(other).load(std::memory_order_acquire) > 0) {
      return false;
    }
  }
  return true;
}

void LockMechanism::lock(int mode) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  const int partition = table_->partition_of(mode);
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(partition)];
  // Uncontended path: one attempt, no wait bookkeeping. The pre-check
  // (Fig. 20 lines 3–4) avoids taking the internal lock while a conflicting
  // mode is visibly held.
  if (!table_->config().fast_path_precheck || conflicts_clear(mode)) {
    internal.lock();
    if (conflicts_clear(mode)) {
      SEMLOCK_DCT_POINT("mode.acquire", &counter(mode));
      counter(mode).fetch_add(1, std::memory_order_relaxed);
      internal.unlock();
      return;
    }
    internal.unlock();
  }
  lock_contended(mode, partition, internal, stats);
}

void LockMechanism::lock_contended(int mode, int partition,
                                   util::Spinlock& internal,
                                   AcquireStats& stats) {
  ++stats.contended;
  const std::uint64_t wait_start = runtime::steady_now_ns();
  const std::uint64_t cpu_start = runtime::thread_cpu_now_ns();
  runtime::WaitScope watchdog_scope(this, mode, partition);
  runtime::WaitState wait(policy_, spin_limit_);
  const bool precheck = table_->config().fast_path_precheck;
  for (;;) {
    if (!precheck || conflicts_clear(mode)) {
      internal.lock();
      if (conflicts_clear(mode)) {
        SEMLOCK_DCT_POINT("mode.acquire", &counter(mode));
        counter(mode).fetch_add(1, std::memory_order_relaxed);
        internal.unlock();
        stats.wait_ns += runtime::steady_now_ns() - wait_start;
        stats.wait_cpu_ns += runtime::thread_cpu_now_ns() - cpu_start;
        return;
      }
      internal.unlock();
    }
    // One unit of waiting: the policy spins/yields itself (step() == false)
    // or asks us to park. Parking re-validates after announcing so a release
    // racing with the announcement is never missed (see parking_lot.h).
    if (wait.step()) {
      const std::uint32_t gen = parking_.prepare(partition);
      parking_.announce(partition);
#if defined(SEMLOCK_DCT)
      // Test-only mutation: park blind, skipping the re-validation half of
      // the handshake — the lost-wakeup bug the DCT harness must detect.
      const bool revalidated =
          !dct::mutation_drop_announce_revalidate() && conflicts_clear(mode);
#else
      const bool revalidated = conflicts_clear(mode);
#endif
      if (revalidated) {
        parking_.retract(partition);
      } else {
        parking_.park(partition, gen);
        ++stats.parks;
      }
    }
  }
}

bool LockMechanism::try_lock(int mode) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(table_->partition_of(mode))];
  // Mirrors lock(): the pre-check is the Fig. 20 fast path and obeys the
  // same ablation knob, and a refused attempt charges its duration to the
  // wait counters just like a contended lock() does.
  const std::uint64_t wait_start = runtime::steady_now_ns();
  const std::uint64_t cpu_start = runtime::thread_cpu_now_ns();
  bool ok = false;
  if (!table_->config().fast_path_precheck || conflicts_clear(mode)) {
    internal.lock();
    ok = conflicts_clear(mode);
    if (ok) {
      SEMLOCK_DCT_POINT("mode.acquire", &counter(mode));
      counter(mode).fetch_add(1, std::memory_order_relaxed);
    }
    internal.unlock();
  }
  if (!ok) {
    ++stats.contended;
    stats.wait_ns += runtime::steady_now_ns() - wait_start;
    stats.wait_cpu_ns += runtime::thread_cpu_now_ns() - cpu_start;
  }
  return ok;
}

void LockMechanism::unlock(int mode) {
  SEMLOCK_DCT_POINT("mode.release", &counter(mode));
  const std::uint32_t prev =
      counter(mode).fetch_sub(1, std::memory_order_release);
  if (can_park_ && prev == 1) {
    // Wake only when this was the mode's last hold: a counter that stays
    // nonzero cannot turn any waiter's conflicts_clear from false to true,
    // so waking earlier would only stampede waiters into re-parking. Scoped
    // to the released mode's conflict partition; unrelated mode families
    // keep sleeping. unpark_all is a no-op (fence + relaxed load) when
    // nobody is parked.
    parking_.unpark_all(table_->partition_of(mode));
  }
}

}  // namespace semlock
