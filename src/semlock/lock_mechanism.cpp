#include "semlock/lock_mechanism.h"

#include <new>

#include "util/align.h"

namespace semlock {

AcquireStats& local_acquire_stats() {
  thread_local AcquireStats stats;
  return stats;
}

LockMechanism::LockMechanism(const ModeTable& table)
    : table_(&table),
      stride_(table.config().pad_counters
                  ? util::kCacheLineSize
                  : sizeof(std::atomic<std::uint32_t>)),
      counters_(new std::byte[static_cast<std::size_t>(table.num_modes()) *
                              stride_]),
      partition_locks_(
          new util::Spinlock[static_cast<std::size_t>(
              table.num_partitions())]) {
  for (int m = 0; m < table.num_modes(); ++m) {
    new (counters_.get() + static_cast<std::size_t>(m) * stride_)
        std::atomic<std::uint32_t>(0);
  }
}

bool LockMechanism::conflicts_clear(int mode) const {
  for (const std::int32_t other : table_->conflicts_of(mode)) {
    if (counter(other).load(std::memory_order_acquire) > 0) {
      return false;
    }
  }
  return true;
}

void LockMechanism::lock(int mode) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(table_->partition_of(mode))];
  util::Backoff backoff;
  bool waited = false;
  const bool precheck = table_->config().fast_path_precheck;
  for (;;) {
    // Fast-path pre-check (Fig. 20 lines 3–4): avoid taking the internal
    // lock while a conflicting mode is visibly held.
    while (precheck && !conflicts_clear(mode)) {
      waited = true;
      backoff.pause();
    }
    internal.lock();
    if (conflicts_clear(mode)) {
      counter(mode).fetch_add(1, std::memory_order_relaxed);
      internal.unlock();
      if (waited) ++stats.contended;
      return;
    }
    internal.unlock();
    waited = true;
    backoff.pause();
  }
}

bool LockMechanism::try_lock(int mode) {
  auto& stats = local_acquire_stats();
  ++stats.acquisitions;
  util::Spinlock& internal =
      partition_locks_[static_cast<std::size_t>(table_->partition_of(mode))];
  if (!conflicts_clear(mode)) {
    ++stats.contended;
    return false;
  }
  internal.lock();
  const bool ok = conflicts_clear(mode);
  if (ok) {
    counter(mode).fetch_add(1, std::memory_order_relaxed);
  }
  internal.unlock();
  if (!ok) ++stats.contended;
  return ok;
}

void LockMechanism::unlock(int mode) {
  counter(mode).fetch_sub(1, std::memory_order_release);
}

}  // namespace semlock
