// Packed counter storage: the whole mode table in one 64-bit atomic word
// (see storage_policy.h for the policy overview, packed_layout.h for the
// bit layout, docs/FAST_PATH.md §7 for the protocol).
//
// Per-instance state is exactly this word. Everything shape-dependent —
// field shifts, the per-mode conflict masks, the folded grant-barrier bits —
// lives in the table-owned PackedLayout, shared immutably by all instances.
// The acquisition protocol (semlock/lock_mechanism.cpp) replaces the flat
// announce/validate/retract dance with a single CAS that checks and claims
// atomically, so the packed fast path has no retract and no rewake.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "semlock/packed_layout.h"

namespace semlock {

class PackedStorage {
 public:
  static constexpr bool kPacked = true;

  explicit PackedStorage(const PackedLayout& layout) : layout_(&layout) {}

  // Moved only during LockMechanism construction, strictly before any
  // concurrent use — copying the atomic's value is sound there.
  PackedStorage(PackedStorage&& other) noexcept
      : layout_(other.layout_),
        word_(other.word_.load(std::memory_order_relaxed)) {}

  const PackedLayout& layout() const { return *layout_; }
  std::atomic<std::uint64_t>& word() { return word_; }
  const std::atomic<std::uint64_t>& word() const { return word_; }

  std::uint32_t holder_count(int mode, std::memory_order order) const {
    const PackedLayout& l = *layout_;
    return static_cast<std::uint32_t>(
        (word_.load(order) & l.field_mask[static_cast<std::size_t>(mode)]) >>
        l.shift[static_cast<std::size_t>(mode)]);
  }

  // All modes share the word, so they share one DCT schedule identity.
  const void* dct_id(int) const { return &word_; }

  bool mode_striped(int) const { return false; }
  std::uint32_t stripes() const { return 1; }

  std::size_t heap_bytes() const { return 0; }

 private:
  const PackedLayout* layout_;
  std::atomic<std::uint64_t> word_{0};
};

}  // namespace semlock
