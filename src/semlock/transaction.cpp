#include "semlock/transaction.h"

#include <algorithm>

namespace semlock {

void Transaction::lv_ordered(std::span<DynTarget> targets) {
  // Sort by unique id; duplicates (aliasing variables) collapse through the
  // holds() check in lv_mode.
  std::sort(targets.begin(), targets.end(),
            [](const DynTarget& a, const DynTarget& b) {
              const auto ida = a.lk ? a.lk->unique_id() : 0;
              const auto idb = b.lk ? b.lk->unique_id() : 0;
              return ida < idb;
            });
  for (const auto& t : targets) lv_mode(t.lk, t.mode);
}

void Transaction::unlock_instance(SemanticLock* lk) {
  for (auto& e : entries_) {
    if (e.lk == lk) e.lk->unlock(e.mode);
  }
  std::erase_if(entries_, [&](const Entry& e) { return e.lk == lk; });
  if (index_live_) index_.erase(lk);
}

void Transaction::unlock_all() {
  for (auto& e : entries_) e.lk->unlock(e.mode);
  if (!entries_.empty()) {
    // Epilogue marker: one event per non-empty release, with the number of
    // instances released in the mode field. Emitted after the unlocks so a
    // reader sees release events inside the [begin, unlock_all] span.
    SEMLOCK_OBS_EVENT(kUnlockAll, nullptr,
                      static_cast<int>(entries_.size()));
  }
  entries_.clear();
  index_.clear();
  index_live_ = false;
}

}  // namespace semlock
