// Locking modes (Section 5.1).
//
// A locking mode is a finite description of a set of runtime operations on
// one ADT. Modes are obtained from symbolic sets by replacing each program
// variable with an abstract value alpha_i of the hash phi (constant and `*`
// arguments stay as-is). The commutativity function F_c over modes (Fig. 19)
// is derived here from the ADT's commutativity specification.
#pragma once

#include <string>
#include <vector>

#include "commute/spec.h"
#include "commute/symbolic.h"
#include "commute/value.h"

namespace semlock {

struct AbstractArg {
  enum class Kind { Star, Const, Alpha };

  Kind kind = Kind::Star;
  commute::Value constant = 0;  // Kind::Const
  int alpha = 0;                // Kind::Alpha

  static AbstractArg star() { return AbstractArg{}; }
  static AbstractArg of_const(commute::Value v) {
    return AbstractArg{Kind::Const, v, 0};
  }
  static AbstractArg of_alpha(int a) { return AbstractArg{Kind::Alpha, 0, a}; }

  bool operator==(const AbstractArg& o) const {
    return kind == o.kind && (kind != Kind::Const || constant == o.constant) &&
           (kind != Kind::Alpha || alpha == o.alpha);
  }

  std::string to_string() const;
};

struct AbstractOp {
  int method = -1;  // index into the AdtSpec's method table
  std::vector<AbstractArg> args;

  bool operator==(const AbstractOp&) const = default;
};

// A mode: a set of abstract operations.
struct Mode {
  std::vector<AbstractOp> ops;

  bool operator==(const Mode&) const = default;

  std::string to_string(const commute::AdtSpec& spec) const;
};

// Do two abstract arguments *definitely* denote different runtime values?
//  - Const(a), Const(b): a != b.
//  - Const(a), Alpha(k): phi(a) != k (phi partitions Value, so different
//    abstract values imply different concrete values).
//  - Alpha(k), Alpha(k'): k != k'.
//  - anything involving Star: no.
bool definitely_differ(const AbstractArg& a, const AbstractArg& b,
                       const commute::ValueAbstraction& phi);

// Must every operation represented by `a` commute with every operation
// represented by `b`? Evaluates the specification condition under the
// abstract arguments: a DNF clause holds only if each of its disequalities
// definitely holds.
bool abstract_ops_commute(const commute::AdtSpec& spec,
                          const commute::ValueAbstraction& phi,
                          const AbstractOp& a, const AbstractOp& b);

// F_c(l, l'): true iff all ops of `a` commute with all ops of `b`.
bool modes_commute(const commute::AdtSpec& spec,
                   const commute::ValueAbstraction& phi, const Mode& a,
                   const Mode& b);

}  // namespace semlock
