#include "semlock/mode_table.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "util/env.h"
#include "util/striped_counter.h"

#if defined(SEMLOCK_OBS)
#include "obs/trace.h"
#endif

namespace semlock {

bool optimistic_from_env_text(const char* text) {
  if (text == nullptr) return true;
  const auto parsed = util::env_int_in_range(
      "SEMLOCK_OPTIMISTIC", text, 0, 1, "optimistic acquisition on");
  return parsed ? *parsed != 0 : true;
}

StripeEnvChoice stripes_from_env_text(const char* text) {
  // Auto: one stripe per hardware thread (rounded up to a power of two) so
  // fully-parallel commuting holders get disjoint lines without
  // over-allocating on small machines. hardware_concurrency may return 0.
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const int auto_stripes =
      static_cast<int>(util::StripedCounterBank::round_up_pow2(hw));
  if (text == nullptr) return {true, auto_stripes};
  const auto parsed = util::env_int_in_range(
      "SEMLOCK_STRIPES", text, 0,
      static_cast<long long>(util::StripedCounterBank::kMaxStripes),
      "automatic stripe count");
  if (!parsed) return {true, auto_stripes};
  if (*parsed == 0) return {false, auto_stripes};
  return {true, static_cast<int>(*parsed)};
}

StorageKind storage_from_env_text(const char* text) {
  if (text == nullptr) return StorageKind::Striped;
  if (const auto parsed = parse_storage_kind(text)) return *parsed;
  util::warn_invalid_env("SEMLOCK_STORAGE", text, "striped");
  return StorageKind::Striped;
}

bool elision_from_env_text(const char* text) {
  if (text == nullptr) return false;
  const auto parsed =
      util::env_bool_01("SEMLOCK_ELISION", text, "elision off");
  return parsed ? *parsed : false;
}

namespace {

// Read each variable once per process: the knobs gate code paths chosen at
// ModeTable construction, so mid-run environment edits must not make two
// tables of the same spec disagree.
bool env_optimistic_acquire() {
  static const bool value =
      optimistic_from_env_text(std::getenv("SEMLOCK_OPTIMISTIC"));
  return value;
}

StripeEnvChoice env_stripe_choice() {
  static const StripeEnvChoice value =
      stripes_from_env_text(std::getenv("SEMLOCK_STRIPES"));
  return value;
}

StorageKind env_storage() {
  static const StorageKind value =
      storage_from_env_text(std::getenv("SEMLOCK_STORAGE"));
  return value;
}

bool env_elide_locks() {
  static const bool value =
      elision_from_env_text(std::getenv("SEMLOCK_ELISION"));
  return value;
}

}  // namespace

bool default_optimistic_acquire() { return env_optimistic_acquire(); }
bool default_stripe_self_commuting() { return env_stripe_choice().enabled; }
int default_counter_stripes() { return env_stripe_choice().stripes; }
StorageKind default_storage() { return env_storage(); }
bool default_elide_locks() { return env_elide_locks(); }

bool default_trace_events() {
#if defined(SEMLOCK_OBS)
  return obs::runtime_enabled();
#else
  return false;
#endif
}

namespace {

using commute::AdtSpec;
using commute::SymArg;
using commute::SymbolicSet;
using commute::SymOp;
using commute::Value;
using commute::ValueAbstraction;

void validate_sets(const AdtSpec& spec,
                   const std::vector<SymbolicSet>& sets) {
  for (const auto& set : sets) {
    if (set.empty()) {
      throw std::invalid_argument("ModeTable: empty symbolic set");
    }
    for (const auto& o : set.ops()) {
      const int m = spec.method_index(o.method);
      if (m < 0) {
        throw std::invalid_argument("ModeTable: unknown method " + o.method +
                                    " for ADT " + spec.name());
      }
      if (static_cast<int>(o.args.size()) != spec.method(m).arity) {
        throw std::invalid_argument("ModeTable: arity mismatch for " +
                                    o.method);
      }
    }
  }
}

// Builds the mode for one site under a specific alpha assignment of its
// variables. `assignment` maps variable name -> alpha index.
Mode instantiate(const AdtSpec& spec, const SymbolicSet& set,
                 const std::vector<std::string>& vars,
                 const std::vector<int>& alphas) {
  Mode mode;
  mode.ops.reserve(set.ops().size());
  for (const auto& o : set.ops()) {
    AbstractOp aop;
    aop.method = spec.method_index(o.method);
    aop.args.reserve(o.args.size());
    for (const auto& a : o.args) {
      switch (a.kind) {
        case SymArg::Kind::Star:
          aop.args.push_back(AbstractArg::star());
          break;
        case SymArg::Kind::Const:
          aop.args.push_back(AbstractArg::of_const(a.constant));
          break;
        case SymArg::Kind::Var: {
          const auto it = std::find(vars.begin(), vars.end(), a.var);
          assert(it != vars.end());
          aop.args.push_back(AbstractArg::of_alpha(
              alphas[static_cast<std::size_t>(it - vars.begin())]));
          break;
        }
      }
    }
    mode.ops.push_back(std::move(aop));
  }
  return mode;
}

// Compact structural key for mode deduplication (hash-map lookup instead of
// a quadratic linear scan; tables are rebuilt per benchmark pass).
std::string mode_key(const Mode& m) {
  std::string key;
  key.reserve(m.ops.size() * 12);
  for (const auto& op : m.ops) {
    key.append(reinterpret_cast<const char*>(&op.method), sizeof(op.method));
    for (const auto& a : op.args) {
      key.push_back(static_cast<char>(a.kind));
      if (a.kind == AbstractArg::Kind::Const) {
        key.append(reinterpret_cast<const char*>(&a.constant),
                   sizeof(a.constant));
      } else if (a.kind == AbstractArg::Kind::Alpha) {
        key.append(reinterpret_cast<const char*>(&a.alpha), sizeof(a.alpha));
      }
    }
    key.push_back('|');
  }
  return key;
}

}  // namespace

ModeTable ModeTable::compile(const AdtSpec& spec,
                             std::vector<SymbolicSet> site_sets,
                             const ModeTableConfig& cfg) {
  validate_sets(spec, site_sets);
  ModeTable table(spec, cfg);
  const int n = table.phi_.size();

  // --- Pre-widening to respect the per-site tuple cap. -------------------
  for (auto& set : site_sets) {
    for (;;) {
      auto vars = set.variables();
      double entries = 1.0;
      for (std::size_t i = 0; i < vars.size(); ++i) entries *= n;
      if (entries <= static_cast<double>(cfg.max_tuple_entries) ||
          vars.empty()) {
        break;
      }
      set.widen_variable(vars.back());
    }
  }

  // --- Mode enumeration (with N-bound widening loop). --------------------
  std::vector<Mode> raw_modes;
  std::unordered_map<std::string, std::int32_t> mode_ids;
  for (;;) {
    raw_modes.clear();
    mode_ids.clear();
    table.sites_.clear();
    for (const auto& set : site_sets) {
      Site site;
      site.set = set;
      site.variables = set.variables();
      const auto k = site.variables.size();
      site.strides.assign(k, 1);
      std::size_t entries = 1;
      for (std::size_t i = 0; i < k; ++i) {
        site.strides[i] = static_cast<int>(entries);
        entries *= static_cast<std::size_t>(n);
      }
      site.lookup.assign(entries, -1);
      std::vector<int> alphas(k, 0);
      for (std::size_t idx = 0; idx < entries; ++idx) {
        // Decode mixed-radix tuple.
        std::size_t rem = idx;
        for (std::size_t i = 0; i < k; ++i) {
          alphas[i] = static_cast<int>(rem % static_cast<std::size_t>(n));
          rem /= static_cast<std::size_t>(n);
        }
        Mode m = instantiate(spec, set, site.variables, alphas);
        auto [mit, fresh] = mode_ids.try_emplace(
            mode_key(m), static_cast<std::int32_t>(raw_modes.size()));
        if (fresh) raw_modes.push_back(std::move(m));
        site.lookup[idx] = mit->second;
      }
      table.sites_.push_back(std::move(site));
    }

    if (static_cast<int>(raw_modes.size()) <= cfg.max_modes) break;

    // Over the bound N: widen the last variable of the site contributing
    // the most modes (its lookup table is the largest), then re-enumerate.
    std::size_t worst = 0;
    std::size_t worst_entries = 0;
    bool found = false;
    for (std::size_t s = 0; s < site_sets.size(); ++s) {
      const auto vars = site_sets[s].variables();
      if (vars.empty()) continue;
      std::size_t entries = 1;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        entries *= static_cast<std::size_t>(n);
      }
      if (entries > worst_entries) {
        worst_entries = entries;
        worst = s;
        found = true;
      }
    }
    if (!found) break;  // all sets constant; cannot reduce further
    site_sets[worst].widen_variable(site_sets[worst].variables().back());
  }
  table.num_raw_modes_ = static_cast<int>(raw_modes.size());

  // --- F_c over raw modes. ------------------------------------------------
  const std::size_t nr = raw_modes.size();
  std::vector<char> fc_raw(nr * nr, 0);
  for (std::size_t i = 0; i < nr; ++i) {
    fc_raw[i * nr + i] =
        modes_commute(spec, table.phi_, raw_modes[i], raw_modes[i]) ? 1 : 0;
    for (std::size_t j = i + 1; j < nr; ++j) {
      const char c =
          modes_commute(spec, table.phi_, raw_modes[i], raw_modes[j]) ? 1 : 0;
      fc_raw[i * nr + j] = c;
      fc_raw[j * nr + i] = c;
    }
  }

  // --- Merge indistinguishable modes (Section 5.3, optimization 1). ------
  std::vector<std::int32_t> canon_of(nr);
  if (cfg.merge_indistinguishable && nr > 0) {
    std::map<std::vector<char>, std::int32_t> row_to_canon;
    for (std::size_t i = 0; i < nr; ++i) {
      std::vector<char> row(fc_raw.begin() + static_cast<std::ptrdiff_t>(i * nr),
                            fc_raw.begin() +
                                static_cast<std::ptrdiff_t>((i + 1) * nr));
      auto [it, inserted] = row_to_canon.try_emplace(
          std::move(row), static_cast<std::int32_t>(table.modes_.size()));
      canon_of[i] = it->second;
      if (inserted) {
        table.modes_.push_back(raw_modes[i]);
      } else {
        // Record the merged representative's ops for introspection.
        auto& canon_mode =
            table.modes_[static_cast<std::size_t>(it->second)];
        for (const auto& o : raw_modes[i].ops) {
          if (std::find(canon_mode.ops.begin(), canon_mode.ops.end(), o) ==
              canon_mode.ops.end()) {
            canon_mode.ops.push_back(o);
          }
        }
      }
    }
  } else {
    table.modes_ = raw_modes;
    std::iota(canon_of.begin(), canon_of.end(), 0);
  }

  // Remap per-site lookup tables onto canonical ids.
  for (auto& site : table.sites_) {
    for (auto& id : site.lookup) id = canon_of[static_cast<std::size_t>(id)];
  }

  // --- Canonical F_c. ------------------------------------------------------
  const std::size_t nc = table.modes_.size();
  table.fc_.assign(nc * nc, 1);
  // Representative raw mode per canonical id.
  std::vector<std::size_t> rep(nc, 0);
  for (std::size_t i = 0; i < nr; ++i) {
    rep[static_cast<std::size_t>(canon_of[i])] = i;
  }
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      table.fc_[i * nc + j] = fc_raw[rep[i] * nr + rep[j]];
    }
  }

  // --- Lock partitioning (Section 5.2): connected components of the ------
  // conflict graph. With partitioning disabled, all modes share one
  // partition (single internal lock — the ablation baseline).
  std::vector<std::int32_t> parent(nc);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
        std::min(a, b);
  };
  if (cfg.partition) {
    for (std::size_t i = 0; i < nc; ++i) {
      for (std::size_t j = i + 1; j < nc; ++j) {
        if (!table.fc_[i * nc + j]) {
          unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(j));
        }
      }
    }
  } else {
    for (std::size_t i = 1; i < nc; ++i) unite(0, static_cast<std::int32_t>(i));
  }
  table.partition_.assign(nc, 0);
  std::vector<std::int32_t> part_id(nc, -1);
  int next_part = 0;
  for (std::size_t i = 0; i < nc; ++i) {
    const std::int32_t root = find(static_cast<std::int32_t>(i));
    if (part_id[static_cast<std::size_t>(root)] < 0) {
      part_id[static_cast<std::size_t>(root)] = next_part++;
    }
    table.partition_[i] = part_id[static_cast<std::size_t>(root)];
  }
  table.num_partitions_ = next_part;

  // --- Per-mode conflict lists. -------------------------------------------
  table.conflicts_.assign(nc, {});
  for (std::size_t i = 0; i < nc; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      if (!table.fc_[i * nc + j]) {
        table.conflicts_[i].push_back(static_cast<std::int32_t>(j));
        // Invariant required by the lock mechanism: conflicting modes share
        // a partition (they are connected in the conflict graph).
        assert(table.partition_[i] == table.partition_[j]);
      }
    }
  }

  // --- Packed-word layout (packed_layout.h). ------------------------------
  // Field widths: carve the waiters bit and two barrier bits per partition
  // out of the top, split the rest evenly (capped at 8 bits — a mini-counter
  // of 255 concurrent holders is already far past any real transaction
  // count), and require at least 4 bits per field so saturation stays rare.
  // Partitions never exceed modes, so every table with <= kMaxPackedModes
  // modes is eligible.
  {
    const int m = static_cast<int>(nc);
    const int p = table.num_partitions_;
    if (m >= 1 && m <= kMaxPackedModes) {
      const std::uint32_t aux = 1u + 2u * static_cast<std::uint32_t>(p);
      const std::uint32_t bits =
          std::min(8u, (64u - aux) / static_cast<std::uint32_t>(m));
      if (bits >= 4) {
        PackedLayout& l = table.packed_;
        l.num_modes = m;
        l.num_partitions = p;
        l.bits_per_mode = bits;
        l.field_max = (std::uint64_t{1} << bits) - 1;
        l.waiters_bit = std::uint64_t{1} << 63;
        for (int i = 0; i < m; ++i) {
          const auto mi = static_cast<std::size_t>(i);
          l.shift[mi] = static_cast<std::uint32_t>(i) * bits;
          l.inc[mi] = std::uint64_t{1} << l.shift[mi];
          l.field_mask[mi] = l.field_max << l.shift[mi];
        }
        for (int i = 0; i < p; ++i) {
          const auto pi = static_cast<std::size_t>(i);
          l.closed_bit[pi] = std::uint64_t{1} << (62 - 2 * i);
          l.counting_bit[pi] = std::uint64_t{1} << (61 - 2 * i);
        }
        // Counter fields grow upward, barrier bits downward; they can never
        // meet because bits was computed to leave the aux bits free.
        assert(static_cast<std::uint32_t>(m) * bits <=
               64u - (1u + 2u * static_cast<std::uint32_t>(p)));
        for (int i = 0; i < m; ++i) {
          const auto mi = static_cast<std::size_t>(i);
          std::uint64_t conflict = 0;
          for (const std::int32_t other : table.conflicts_[mi]) {
            conflict |= l.field_mask[static_cast<std::size_t>(other)];
          }
          l.conflict_mask[mi] = conflict;
          l.doorway_mask[mi] =
              conflict |
              l.closed_bit[static_cast<std::size_t>(table.partition_[mi])];
        }
        table.packed_ok_ = true;
      }
    }
  }

  return table;
}

int ModeTable::resolve(int site,
                       std::span<const commute::Value> values) const {
  const Site& s = sites_[static_cast<std::size_t>(site)];
  assert(values.size() == s.variables.size());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    idx += static_cast<std::size_t>(s.strides[i]) *
           static_cast<std::size_t>(phi_.alpha_of(values[i]));
  }
  return s.lookup[idx];
}

std::string ModeTable::describe() const {
  std::string out = "ModeTable for ADT " + spec_->name() + " (n=" +
                    std::to_string(phi_.size()) + " abstract values)\n";
  out += "sites:\n";
  for (int s = 0; s < num_sites(); ++s) {
    out += "  site " + std::to_string(s) + ": " +
           sites_[static_cast<std::size_t>(s)].set.to_string() + "\n";
  }
  out += "modes (" + std::to_string(num_modes()) + " canonical, " +
         std::to_string(num_raw_modes_) + " raw):\n";
  for (int m = 0; m < num_modes(); ++m) {
    out += "  l" + std::to_string(m) + " = " +
           modes_[static_cast<std::size_t>(m)].to_string(*spec_) +
           "  [partition " + std::to_string(partition_of(m)) + "]\n";
  }
  out += "F_c:\n";
  for (int i = 0; i < num_modes(); ++i) {
    out += "  ";
    for (int j = 0; j < num_modes(); ++j) {
      out += commutes(i, j) ? "T " : "F ";
    }
    out += "\n";
  }
  return out;
}

}  // namespace semlock
