// Counter-storage policies for the lock mechanism (ROADMAP item 2).
//
// Per ADT instance the mechanism needs, per canonical mode, "how many
// transactions currently hold this mode". Three representations coexist
// behind LockMechanism, independently selectable per mode table
// (ModeTableConfig::storage):
//
//   Flat    — one std::atomic<uint32_t> per mode (the paper's Fig. 20
//             layout), optionally cache-line padded. Byte-identical to the
//             historical behavior; the baseline every other policy is
//             A/B-ed against.
//   Striped — Flat plus PR 3's BRAVO/SNZI-style striped banks for the
//             self-commuting modes (util/striped_counter.h). Best when many
//             commuting holders would otherwise ping-pong one counter line.
//   Packed  — the whole mode table in ONE 64-bit atomic word: per-mode
//             holder mini-counters in bit fields, the conflict check
//             compiled by ModeTable into a single `word & conflict_mask[m]`
//             test, the grant barrier folded into spare bits, and (under
//             the futex-word wait policy) waiters sleeping directly on the
//             word via C++20 std::atomic::wait. Eligible for tables with
//             <= 8 canonical modes (every synthesized ADT in src/adt);
//             ineligible tables quietly fall back to Flat —
//             LockMechanism::storage() reports the representation actually
//             in use. See docs/FAST_PATH.md §7 for the bit layout.
#pragma once

#include <optional>
#include <string_view>

namespace semlock {

enum class StorageKind {
  Flat,
  Striped,
  Packed,
};

// Short stable name ("flat", "striped", "packed") used by benchmark tables,
// JSON output, and the environment knob.
inline const char* storage_kind_name(StorageKind kind) {
  switch (kind) {
    case StorageKind::Flat:
      return "flat";
    case StorageKind::Striped:
      return "striped";
    case StorageKind::Packed:
      return "packed";
  }
  return "unknown";
}

inline std::optional<StorageKind> parse_storage_kind(std::string_view text) {
  if (text == "flat") return StorageKind::Flat;
  if (text == "striped") return StorageKind::Striped;
  if (text == "packed") return StorageKind::Packed;
  return std::nullopt;
}

// Resolves SEMLOCK_STORAGE text: "flat" | "striped" | "packed"; anything
// else warns once on stderr and falls back to Striped (the historical
// default — whether striping actually engages is still governed by the
// stripe_self_commuting/counter_stripes knobs, so unset stays byte-for-byte
// compatible). Split out from the cached env lookup for testability;
// defined in mode_table.cpp beside the other config-default parsers.
StorageKind storage_from_env_text(const char* text);

// Process-wide default storage policy: SEMLOCK_STORAGE (parsed once), else
// Striped.
StorageKind default_storage();

// Resolves SEMLOCK_ELISION text: strict "0"/"1" per util::env_bool_01;
// malformed values warn and fall back to off. Elision additionally requires
// the SEMLOCK_ELISION CMake option (which compiles the HTM tier in,
// util/htm.h) and runtime hardware support — the knob alone never fails, it
// just arms the tier where it exists.
bool elision_from_env_text(const char* text);

// Process-wide default for ModeTableConfig::elide_locks: SEMLOCK_ELISION
// (parsed once), else off.
bool default_elide_locks();

}  // namespace semlock
