#include "semlock/history.h"

#include <algorithm>
#include <functional>
#include <set>

namespace semlock {

std::string SerializabilityReport::to_string() const {
  if (serializable) {
    return "serializable (" + std::to_string(precedence_edges) +
           " precedence edges)";
  }
  std::string out = "NOT serializable; cycle:";
  for (const auto t : cycle) out += " T" + std::to_string(t);
  return out;
}

namespace {

bool ops_conflict(const HistoryEvent& a, const HistoryEvent& b) {
  // Different instances never conflict; same instance: consult the spec.
  if (a.instance != b.instance) return false;
  const commute::CommCondition& cond = a.spec->condition(a.method, b.method);
  return !cond.evaluate(a.args, b.args);
}

}  // namespace

SerializabilityReport check_conflict_serializability(
    const std::vector<HistoryEvent>& events) {
  SerializabilityReport report;

  // Group events per instance, ordered by sequence number.
  std::map<const void*, std::vector<const HistoryEvent*>> per_instance;
  for (const auto& e : events) per_instance[e.instance].push_back(&e);
  for (auto& [inst, evs] : per_instance) {
    (void)inst;
    std::sort(evs.begin(), evs.end(),
              [](const HistoryEvent* a, const HistoryEvent* b) {
                return a->seq < b->seq;
              });
  }

  // Precedence edges between distinct transactions.
  std::map<std::uint64_t, std::set<std::uint64_t>> succ;
  for (const auto& [inst, evs] : per_instance) {
    (void)inst;
    for (std::size_t i = 0; i < evs.size(); ++i) {
      for (std::size_t j = i + 1; j < evs.size(); ++j) {
        if (evs[i]->txn == evs[j]->txn) continue;
        if (ops_conflict(*evs[i], *evs[j])) {
          if (succ[evs[i]->txn].insert(evs[j]->txn).second) {
            ++report.precedence_edges;
          }
        }
      }
    }
  }

  // Cycle detection (iterative DFS with colors).
  enum class Color { White, Gray, Black };
  std::map<std::uint64_t, Color> color;
  std::map<std::uint64_t, std::uint64_t> parent;
  for (const auto& [t, s] : succ) {
    (void)s;
    color[t] = Color::White;
  }

  std::function<bool(std::uint64_t)> dfs = [&](std::uint64_t u) -> bool {
    color[u] = Color::Gray;
    auto it = succ.find(u);
    if (it != succ.end()) {
      for (const auto v : it->second) {
        auto cit = color.find(v);
        const Color c = cit == color.end() ? Color::White : cit->second;
        if (c == Color::Gray) {
          // Reconstruct the cycle v -> ... -> u -> v.
          report.cycle.push_back(v);
          for (std::uint64_t w = u; w != v; w = parent[w]) {
            report.cycle.push_back(w);
          }
          std::reverse(report.cycle.begin(), report.cycle.end());
          return true;
        }
        if (c == Color::White) {
          parent[v] = u;
          if (dfs(v)) return true;
        }
      }
    }
    color[u] = Color::Black;
    return false;
  };

  for (const auto& [t, s] : succ) {
    (void)s;
    if (color[t] == Color::White && dfs(t)) {
      report.serializable = false;
      return report;
    }
  }
  return report;
}

}  // namespace semlock
