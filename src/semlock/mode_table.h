// ModeTable: compiles the symbolic sets of an ADT's lock sites into locking
// modes and precomputes everything the runtime lock mechanism needs
// (Sections 5.1–5.3).
//
// One ModeTable is shared, immutably, by every ADT instance of the same
// (ADT class, pointer equivalence class) pair — per-instance state is only
// the counters held by SemanticLock.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "commute/spec.h"
#include "commute/symbolic.h"
#include "commute/value.h"
#include "runtime/grant_policy.h"
#include "runtime/wait_policy.h"
#include "semlock/mode.h"
#include "semlock/packed_layout.h"
#include "semlock/storage_policy.h"

namespace semlock {

// Process-wide defaults for the lock-free fast path of the lock mechanism
// (docs/FAST_PATH.md), read once from the environment:
//   SEMLOCK_OPTIMISTIC=0|1   gates the optimistic announce/validate tier
//                            (default on).
//   SEMLOCK_STRIPES=N        0 disables holder-counter striping; 1..1024
//                            fixes the stripe count. Default: striping on
//                            with a hardware-concurrency-sized power of two.
bool default_optimistic_acquire();
bool default_stripe_self_commuting();
int default_counter_stripes();
// Whether mechanisms built from this config emit observability events
// (src/obs). Snapshot of the process-wide trace switch (SEMLOCK_TRACE /
// obs::ScopedTraceEnable) at config-creation time; always false when the
// library is built without SEMLOCK_OBS.
bool default_trace_events();

// Testable strict parsers behind the defaults. Same contract as the other
// runtime knobs (util/env): malformed values warn once on stderr and fall
// back to the documented default; nullptr (unset) is silent.
bool optimistic_from_env_text(const char* text);
struct StripeEnvChoice {
  bool enabled;
  int stripes;
};
StripeEnvChoice stripes_from_env_text(const char* text);

struct ModeTableConfig {
  // n: number of abstract values of phi (the paper evaluates with 64).
  int abstract_values = 64;
  // N: maximum number of locking modes (Section 5.3, optimization 3). When
  // exceeded, variable arguments are widened to `*` (which merges modes)
  // until the bound holds.
  int max_modes = 256;
  // Optimization 1 of Section 5.3: share a counter between modes with
  // identical F_c rows.
  bool merge_indistinguishable = true;
  // Section 5.2 lock partitioning: split modes into connected components of
  // the conflict graph, each with its own internal lock. Disabling this is
  // exposed only for the ablation benchmark (a single internal lock).
  bool partition = true;
  // Fig. 20 lines 3–4: spin outside the internal lock until the conflicting
  // counters clear. Disabling (ablation) makes every acquisition take the
  // internal lock immediately.
  bool fast_path_precheck = true;
  // Give every mode counter its own cache line. Costs memory per instance
  // (64 B per mode instead of 4 B) but removes false sharing between
  // commuting modes that happen to share a line — worthwhile for hot,
  // few-mode ADTs on real multicore hardware.
  bool pad_counters = false;
  // Safety cap on a single site's alpha-tuple resolution table.
  int max_tuple_entries = 1 << 16;
  // How a blocked acquisition waits for its conflicting holders (the
  // src/runtime/ waiting subsystem). Defaults to the ambient process policy:
  // a ScopedWaitPolicy override if installed, else SEMLOCK_WAIT_POLICY, else
  // the historical spin-then-yield behavior.
  runtime::WaitPolicyKind wait_policy = runtime::default_wait_policy();
  // SpinThenPark only: backoff rounds spent spinning before the waiter
  // parks on the partition's futex. Higher values favor latency over CPU.
  int park_spin_limit = 64;
  // WHO gets the lock next once waiters exist (src/runtime/grant_policy.h):
  // Free is the historical unbounded-bypass behavior; Fifo/PhaseFair/
  // BoundedBypass bound how often commuting arrivals (including the
  // optimistic tier) may overtake a conflicting waiter. Defaults to the
  // ambient process policy: ScopedGrantPolicy if installed, else
  // SEMLOCK_GRANT_POLICY, else Free.
  runtime::GrantPolicyKind grant_policy = runtime::default_grant_policy();
  // BoundedBypass budget K: commuting arrivals granted past the oldest
  // waiter before the barrier rises (SEMLOCK_BYPASS_BOUND, default 16).
  int bypass_bound = static_cast<int>(runtime::default_bypass_bound());
  // Lock-free fast path (docs/FAST_PATH.md). With optimistic_acquire, lock()
  // and try_lock() announce by incrementing the mode's counter BEFORE
  // validating that the conflicting counters are clear, retracting on
  // failure — mutual exclusion then follows from announce-before-validate on
  // both sides (Dekker), and the common commuting acquisition never takes
  // the partition spinlock. Disabling restores the spinlock-arbitrated
  // acquire path (and is the baseline of bench_contention's fastpath sweep).
  bool optimistic_acquire = default_optimistic_acquire();
  // Give every self-commuting mode counter_stripes cache-line-padded stripes
  // (util/striped_counter.h) so commuting holders stop ping-ponging one
  // counter line; conflict checks and holders() sum the stripes. Costs
  // 64 B * counter_stripes per striped mode per instance.
  bool stripe_self_commuting = default_stripe_self_commuting();
  int counter_stripes = default_counter_stripes();
  // Which counter representation mechanisms built over this table use
  // (semlock/storage_policy.h): Flat (per-mode atomics), Striped (Flat plus
  // the striping above — the historical default; whether striping actually
  // engages is still stripe_self_commuting/counter_stripes), or Packed (the
  // whole table in one 64-bit word, falling back to Flat when the table has
  // more than kMaxPackedModes modes). SEMLOCK_STORAGE overrides the default.
  StorageKind storage = default_storage();
  // Arm the HTM lock-elision tier above the optimistic path for Packed
  // mechanisms (docs/FAST_PATH.md §8). Requires the SEMLOCK_ELISION build
  // option and runtime RTM/TME support — without them the flag is inert.
  // SEMLOCK_ELISION=0|1 sets the default; off otherwise.
  bool elide_locks = default_elide_locks();
  // Emit binary trace events and conflict/latency metrics from mechanisms
  // built over this table (src/obs, docs/OBSERVABILITY.md). Cached by the
  // LockMechanism at construction; defaults to the ambient trace switch so
  // SEMLOCK_TRACE=1 traces everything without code changes, while tests can
  // turn it on per table.
  bool trace_events = default_trace_events();
};

class ModeTable {
 public:
  // `site_sets[i]` is the symbolic set of lock site i. Sites with equal
  // symbolic structure share modes.
  static ModeTable compile(const commute::AdtSpec& spec,
                           std::vector<commute::SymbolicSet> site_sets,
                           const ModeTableConfig& cfg = ModeTableConfig{});

  const commute::AdtSpec& spec() const { return *spec_; }
  const commute::ValueAbstraction& abstraction() const { return phi_; }
  const ModeTableConfig& config() const { return cfg_; }

  int num_sites() const { return static_cast<int>(sites_.size()); }
  int num_modes() const { return static_cast<int>(modes_.size()); }
  int num_raw_modes() const { return num_raw_modes_; }
  const Mode& mode(int id) const {
    return modes_[static_cast<std::size_t>(id)];
  }

  // F_c over (canonical) modes.
  bool commutes(int m1, int m2) const {
    return fc_[static_cast<std::size_t>(m1) * modes_.size() +
               static_cast<std::size_t>(m2)] != 0;
  }

  // The variables of site `s` that remained after any widening, in the
  // order `resolve` expects their runtime values.
  const std::vector<std::string>& site_variables(int site) const {
    return sites_[static_cast<std::size_t>(site)].variables;
  }
  // The (possibly widened) symbolic set of site `s`.
  const commute::SymbolicSet& site_set(int site) const {
    return sites_[static_cast<std::size_t>(site)].set;
  }

  // Runtime mode lookup for site `s` given the runtime values of
  // site_variables(s), in order. O(k) hashing + one table read.
  int resolve(int site, std::span<const commute::Value> values) const;
  // Shorthand for sites whose set is constant (no variables).
  int resolve_constant(int site) const { return resolve(site, {}); }

  // Lock partitioning.
  int num_partitions() const { return num_partitions_; }
  int partition_of(int mode) const {
    return partition_[static_cast<std::size_t>(mode)];
  }
  // Canonical ids of the modes conflicting with `mode` (all of them live in
  // partition_of(mode); may include `mode` itself if self-conflicting).
  const std::vector<std::int32_t>& conflicts_of(int mode) const {
    return conflicts_[static_cast<std::size_t>(mode)];
  }

  // The packed-word bit layout, or nullptr when this table does not fit in
  // one 64-bit word (more than kMaxPackedModes canonical modes). Computed
  // unconditionally by compile() — it is a few hundred bytes per table —
  // so mechanisms can pack whenever their config asks for it.
  const PackedLayout* packed_layout() const {
    return packed_ok_ ? &packed_ : nullptr;
  }

  // Human-readable dump of modes, F_c and partitions (used by examples and
  // golden tests; reproduces Fig. 19 for the paper's Set example).
  std::string describe() const;

 private:
  struct Site {
    commute::SymbolicSet set;            // after widening
    std::vector<std::string> variables;  // after widening
    std::vector<int> strides;            // mixed-radix strides, size == vars
    std::vector<std::int32_t> lookup;    // tuple index -> canonical mode id
  };

  ModeTable(const commute::AdtSpec& spec, ModeTableConfig cfg)
      : spec_(&spec), cfg_(cfg), phi_(cfg.abstract_values) {}

  const commute::AdtSpec* spec_;
  ModeTableConfig cfg_;
  commute::ValueAbstraction phi_;

  std::vector<Site> sites_;
  std::vector<Mode> modes_;       // canonical modes
  int num_raw_modes_ = 0;         // before indistinguishable merging
  std::vector<char> fc_;          // row-major F_c over canonical modes
  std::vector<std::int32_t> partition_;
  int num_partitions_ = 0;
  std::vector<std::vector<std::int32_t>> conflicts_;
  PackedLayout packed_;
  bool packed_ok_ = false;
};

}  // namespace semlock
