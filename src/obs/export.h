// Exporters for the observability layer: the binary dump format, the Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing), and the text
// report. Shared by the runtime's exit dump (trace.cpp) and the
// tools/semlock-trace CLI, so both ends of the format live in one place.
//
// Binary dump format v5 (native endianness; produced and consumed on the
// same machine):
//   char[8]  magic "SLTRACE1"
//   u32      version (5)
//   u32      thread count
//   metrics section (MetricsSnapshot, see read/write below; v2 added the
//   per-instance AttrClass tallies and the per-mode-pair attribution cells,
//   v3 appends max_wait_ns/diverted/handoffs to the acquire totals, v4
//   appends the hold-time profiler block — hold histogram, paired/unmatched
//   counts, top holds — at the end of the section, so the loader still
//   accepts v3 dumps and reads them with empty hold data)
//   per thread: u32 tid, u32 live, u64 event count,
//               count * kEventWords u64 words (oldest event first)
//   v5 appends the span sections (obs/span.h) after the last thread:
//   u32 span-thread count, then per thread: u32 tid, u32 live,
//   u64 span count, count * kSpanWords u64 words (oldest span first).
//   Older dumps (v3/v4) load with empty spans.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace semlock::obs {

struct TraceDump {
  std::vector<ThreadTrace> threads;
  MetricsSnapshot metrics;
  std::vector<ThreadSpans> spans;  // v5+; empty when absent from the file
};

// In-process capture: ring snapshots (live + retired) plus collect_metrics().
TraceDump capture();

bool write_dump_file(const TraceDump& dump, const std::string& path,
                     std::string* error = nullptr);
bool load_dump_file(const std::string& path, TraceDump& out,
                    std::string* error = nullptr);

// Chrome trace-event JSON: acquire begin→grant and park→unpark pairs become
// duration ("X") events; everything else becomes instant ("i") events. The
// metrics snapshot rides along under the top-level "semlockMetrics" key
// (Perfetto ignores unknown keys).
std::string to_chrome_json(const TraceDump& dump);

// Plain-text report: event totals, top contended instances, hottest
// non-commuting mode pairs, longest waits, attribution summary.
std::string text_report(const TraceDump& dump);

// Attribution-focused text report: overall true-conflict vs. artifact
// split, then the per-mode-pair breakdown by AttrClass. Backing for the
// `semlock-trace attribution` command.
std::string attribution_report(const TraceDump& dump);

// Hold-time report: the hold histogram's tail quantiles, the paired vs.
// unmatched counts, the top-K longest holds with holder txn and lock site,
// and an offline re-pairing of the retained grant/release events (LIFO per
// thread, same algorithm as the online profiler) so a short schedule can
// cross-check metrics.holds_paired exactly. Backing for `semlock-trace
// holds`.
std::string holds_report(const TraceDump& dump);

// The offline half of that cross-check, exposed for tests: LIFO-pairs
// grant→release per (instance, mode) within each thread's retained events
// and returns the number of pairs formed.
std::uint64_t pair_holds_from_events(const TraceDump& dump);

// Minimal structural JSON validator (strings/escapes/nesting/commas) used by
// `semlock-trace check` so CI can validate the Chrome export without a JSON
// library. Not a full parser — it validates syntax, not schema.
bool validate_json(const std::string& text, std::string* error = nullptr);

}  // namespace semlock::obs
