// Per-thread lock-free SPSC event ring with overwrite-oldest semantics.
//
// Exactly one thread appends (its own trace events); any thread may take a
// snapshot (the exporter at dump time, the stall watchdog mid-run for
// forensics). The writer never waits and never fails: when the ring is full
// it overwrites the oldest slot, so a ring always holds the *last* capacity
// events — what a post-mortem wants.
//
// Concurrent-reader correctness without a lock: slots are relaxed atomics
// (compiling to plain stores on x86/ARM, and keeping TSan happy), the head
// index is published with release ordering after the slot words are written,
// and the reader discards any event whose slot could have been reused between
// its two head reads. A snapshot is therefore always a consistent suffix of
// the event stream, merely possibly shorter than `capacity` while the writer
// is racing ahead.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/event.h"

namespace semlock::obs {

class EventRing {
 public:
  // Capacity is rounded up to a power of two (masking beats modulo on the
  // hot append path). Bounded below so the forensic tail is never trivial.
  static constexpr std::uint32_t kMinCapacity = 64;

  explicit EventRing(std::uint32_t min_capacity)
      : capacity_(std::bit_ceil(
            min_capacity < kMinCapacity ? kMinCapacity : min_capacity)),
        mask_(capacity_ - 1),
        words_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            capacity_) * kEventWords]()) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::uint32_t capacity() const noexcept { return capacity_; }

  // Total events ever appended (not the count currently retained).
  std::uint64_t appended() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  // Writer side; single-threaded by construction (one ring per thread).
  void append(const Event& e) noexcept {
    const std::uint64_t index = head_.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t>* slot =
        words_.get() + static_cast<std::size_t>(index & mask_) * kEventWords;
    slot[0].store(e.ts_ns, std::memory_order_relaxed);
    slot[1].store(e.instance, std::memory_order_relaxed);
    slot[2].store(e.txn, std::memory_order_relaxed);
    slot[3].store(pack_type_mode(e.type, e.mode), std::memory_order_relaxed);
    head_.store(index + 1, std::memory_order_release);
  }

  // Reader side: the retained events, oldest first. Safe concurrently with
  // the writer; events whose slot may have been recycled mid-read are
  // dropped rather than returned torn.
  std::vector<Event> snapshot() const {
    const std::uint64_t end = head_.load(std::memory_order_acquire);
    const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::atomic<std::uint64_t>* slot =
          words_.get() + static_cast<std::size_t>(i & mask_) * kEventWords;
      Event e;
      e.ts_ns = slot[0].load(std::memory_order_relaxed);
      e.instance = slot[1].load(std::memory_order_relaxed);
      e.txn = slot[2].load(std::memory_order_relaxed);
      const std::uint64_t tm = slot[3].load(std::memory_order_relaxed);
      e.type = unpack_type(tm);
      e.mode = unpack_mode(tm);
      out.push_back(e);
    }
    // Re-read the head: the writer may have lapped us. An event at index i
    // is trustworthy only if its slot cannot have been rewritten, i.e. every
    // index the writer has started since (head2 is the index being written
    // *now*) maps to a later slot: i > head2 - capacity.
    const std::uint64_t head2 = head_.load(std::memory_order_acquire);
    const std::uint64_t safe_begin =
        head2 >= capacity_ ? head2 - capacity_ + 1 : 0;
    if (safe_begin > begin) {
      const std::uint64_t drop = safe_begin - begin;
      out.erase(out.begin(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  drop < out.size() ? drop : out.size()));
    }
    return out;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

}  // namespace semlock::obs
