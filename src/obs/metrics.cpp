#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace semlock::obs {

void TopWaits::add(const WaitSample& s) {
  if (samples_.size() < kKeep) {
    samples_.push_back(s);
    return;
  }
  auto min_it = std::min_element(
      samples_.begin(), samples_.end(),
      [](const WaitSample& a, const WaitSample& b) {
        return a.wait_ns < b.wait_ns;
      });
  if (s.wait_ns > min_it->wait_ns) *min_it = s;
}

void TopWaits::merge(const TopWaits& other) {
  for (const WaitSample& s : other.samples_) add(s);
}

std::vector<WaitSample> TopWaits::sorted() const {
  std::vector<WaitSample> out = samples_;
  std::sort(out.begin(), out.end(),
            [](const WaitSample& a, const WaitSample& b) {
              return a.wait_ns > b.wait_ns;
            });
  return out;
}

void TopHolds::add(const HoldSample& s) {
  if (samples_.size() < kKeep) {
    samples_.push_back(s);
    return;
  }
  auto min_it = std::min_element(
      samples_.begin(), samples_.end(),
      [](const HoldSample& a, const HoldSample& b) {
        return a.hold_ns < b.hold_ns;
      });
  if (s.hold_ns > min_it->hold_ns) *min_it = s;
}

void TopHolds::merge(const TopHolds& other) {
  for (const HoldSample& s : other.samples_) add(s);
}

std::vector<HoldSample> TopHolds::sorted() const {
  std::vector<HoldSample> out = samples_;
  std::sort(out.begin(), out.end(),
            [](const HoldSample& a, const HoldSample& b) {
              return a.hold_ns > b.hold_ns;
            });
  return out;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_cells(std::string& out, const std::vector<BlockedByCell>& cells) {
  out += '[';
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ", ";
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"waiter\": %d, \"holder\": %d, \"count\": %llu}",
                  cells[i].waiter, cells[i].holder,
                  static_cast<unsigned long long>(cells[i].count));
    out += buf;
  }
  out += ']';
}

void append_attr_counts(std::string& out,
                        const std::uint64_t (&counts)[kNumAttrClasses]) {
  out += '{';
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    if (c > 0) out += ", ";
    out += '"';
    out += attr_class_key(static_cast<AttrClass>(c));
    out += "\": ";
    append_u64(out, counts[c]);
  }
  out += '}';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"acquire\": {";
  const AcquireStats& a = acquire_totals;
  out += "\"acquisitions\": ";
  append_u64(out, a.acquisitions);
  out += ", \"contended\": ";
  append_u64(out, a.contended);
  out += ", \"parks\": ";
  append_u64(out, a.parks);
  out += ", \"optimistic_hits\": ";
  append_u64(out, a.optimistic_hits);
  out += ", \"retracts\": ";
  append_u64(out, a.retracts);
  out += ", \"wait_ns\": ";
  append_u64(out, a.wait_ns);
  out += ", \"wait_cpu_ns\": ";
  append_u64(out, a.wait_cpu_ns);
  out += ", \"max_wait_ns\": ";
  append_u64(out, a.max_wait_ns);
  out += ", \"diverted\": ";
  append_u64(out, a.diverted);
  out += ", \"handoffs\": ";
  append_u64(out, a.handoffs);
  out += "}, \"instances\": [";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) out += ", ";
    const InstanceMetrics& m = instances[i];
    out += "{\"instance\": ";
    append_hex(out, m.instance);
    out += ", \"contended\": ";
    append_u64(out, m.contended);
    out += ", \"waits\": ";
    append_u64(out, m.waits);
    out += ", \"wait_ns\": ";
    append_u64(out, m.wait_ns);
    out += ", \"blocked_by\": ";
    append_cells(out, m.blocked_by);
    out += ", \"attribution\": ";
    append_attr_counts(out, m.attribution);
    out += '}';
  }
  out += "], \"conflict_matrix\": ";
  append_cells(out, conflict_matrix);
  out += ", \"attribution\": [";
  for (std::size_t i = 0; i < attribution.size(); ++i) {
    if (i > 0) out += ", ";
    const AttributionCell& cell = attribution[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"waiter\": %d, \"holder\": %d, ",
                  cell.waiter, cell.holder);
    out += buf;
    for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
      if (c > 0) out += ", ";
      out += '"';
      out += attr_class_key(static_cast<AttrClass>(c));
      out += "\": ";
      append_u64(out, cell.counts[c]);
    }
    out += '}';
  }
  out += "], \"wait_hist_ns\": ";
  out += wait_hist.to_json();
  // Upper-bound tail quantiles (factor-of-two resolution) so dashboards can
  // plot the wait tail without re-deriving it from the buckets.
  out += ", \"wait_p50_ns\": ";
  append_u64(out, wait_hist.p50());
  out += ", \"wait_p99_ns\": ";
  append_u64(out, wait_hist.p99());
  out += ", \"wait_p999_ns\": ";
  append_u64(out, wait_hist.p999());
  out += ", \"top_waits\": [";
  for (std::size_t i = 0; i < top_waits.size(); ++i) {
    if (i > 0) out += ", ";
    const WaitSample& s = top_waits[i];
    out += "{\"wait_ns\": ";
    append_u64(out, s.wait_ns);
    out += ", \"instance\": ";
    append_hex(out, s.instance);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ", \"mode\": %d}", s.mode);
    out += buf;
  }
  out += "], \"hold_hist_ns\": ";
  out += hold_hist.to_json();
  out += ", \"hold_p50_ns\": ";
  append_u64(out, hold_hist.p50());
  out += ", \"hold_p99_ns\": ";
  append_u64(out, hold_hist.p99());
  out += ", \"hold_p999_ns\": ";
  append_u64(out, hold_hist.p999());
  out += ", \"holds_paired\": ";
  append_u64(out, holds_paired);
  out += ", \"holds_unmatched\": ";
  append_u64(out, holds_unmatched);
  out += ", \"top_holds\": [";
  for (std::size_t i = 0; i < top_holds.size(); ++i) {
    if (i > 0) out += ", ";
    const HoldSample& s = top_holds[i];
    out += "{\"hold_ns\": ";
    append_u64(out, s.hold_ns);
    out += ", \"instance\": ";
    append_hex(out, s.instance);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ", \"mode\": %d, \"txn\": %llu, \"site\": %d}", s.mode,
                  static_cast<unsigned long long>(s.txn), s.site);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace semlock::obs
