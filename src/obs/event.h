// The binary trace-event record of the semantic-lock observability layer.
//
// One event is four 64-bit words: timestamp, ADT instance, transaction id,
// and a packed (type, mode) word. Fixed width keeps the per-thread SPSC
// rings (src/obs/ring.h) branch-free on the writer side and lets the dump
// format (src/obs/export.h) be a straight copy of ring contents. The schema
// is documented for consumers in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>

namespace semlock::obs {

enum class EventType : std::uint32_t {
  kNone = 0,
  kAcquireBegin = 1,   // lock()/try_lock() entered for (instance, mode)
  kAcquireGrant = 2,   // acquisition completed via an arbitrated tier
  kContendedWait = 3,  // entered the contended wait loop
  kPark = 4,           // about to block in the ParkingLot
  kUnpark = 5,         // returned from a ParkingLot block
  kOptimisticHit = 6,  // acquisition won by the lock-free optimistic tier
  kRetract = 7,        // optimistic announcement retracted after validation
  kRelease = 8,        // unlock() of one hold
  kUnlockAll = 9,      // transaction epilogue; mode field = instances released
  kWatchdogStall = 10, // StallWatchdog reported this (instance, mode) starved
  kMark = 11,          // harness/bench annotation; mode field = pass index
  kAttribution = 12,   // classified contended wait; mode field = AttrClass
                       // index (obs/attribution.h)
  kBarrierDivert = 13, // commuting arrival diverted to the wait path by the
                       // grant-policy barrier (runtime/grant_policy.h)
  kGrantHandoff = 14,  // ticketed grant advanced the cursor and rewoke the
                       // partition for the next eligible waiter
};

// One past the highest EventType value: the size of per-type counter
// arrays (the live event tallies behind obs/window.h).
inline constexpr std::size_t kNumEventTypes = 15;

// Stable names for reports and the Chrome exporter.
const char* event_name(EventType type) noexcept;

struct Event {
  std::uint64_t ts_ns = 0;     // steady-clock nanoseconds
  std::uint64_t instance = 0;  // LockMechanism address; 0 = process-level
  std::uint64_t txn = 0;       // transaction id; 0 = outside any transaction
  EventType type = EventType::kNone;
  std::int32_t mode = -1;      // locking mode (or event-specific payload)
};

// Packing for the ring's word array and the binary dump. The (type, mode)
// pair shares word 3: type in the high half, mode (as its unsigned bit
// pattern) in the low half.
inline constexpr std::size_t kEventWords = 4;

inline std::uint64_t pack_type_mode(EventType type, std::int32_t mode) noexcept {
  return (static_cast<std::uint64_t>(type) << 32) |
         static_cast<std::uint32_t>(mode);
}

inline EventType unpack_type(std::uint64_t word) noexcept {
  return static_cast<EventType>(static_cast<std::uint32_t>(word >> 32));
}

inline std::int32_t unpack_mode(std::uint64_t word) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(word));
}

}  // namespace semlock::obs
