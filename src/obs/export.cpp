// Dump I/O and the human-facing exporters. Format v3 is documented in
// export.h; everything here is plain C stdio so the exporters work in the
// stripped-down CLI as well as the runtime's exit path.
#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>

namespace semlock::obs {

namespace {

constexpr char kMagic[8] = {'S', 'L', 'T', 'R', 'A', 'C', 'E', '1'};
// v3 appended max_wait_ns/diverted/handoffs to the AcquireStats block; v4
// appended the hold-time profiler block at the end of the metrics section;
// v5 appends the span sections (obs/span.h) after the last thread section.
// The loader still accepts v3/v4 (hold data and spans read back empty).
constexpr std::uint32_t kVersion = 5;
constexpr std::uint32_t kOldestSupportedVersion = 3;

// --- little binary writer/reader over stdio ---------------------------------

struct Writer {
  std::FILE* f;
  bool ok = true;

  void u32(std::uint32_t v) {
    if (ok) ok = std::fwrite(&v, sizeof(v), 1, f) == 1;
  }
  void u64(std::uint64_t v) {
    if (ok) ok = std::fwrite(&v, sizeof(v), 1, f) == 1;
  }
  void i32(std::int32_t v) {
    if (ok) ok = std::fwrite(&v, sizeof(v), 1, f) == 1;
  }
  void bytes(const void* p, std::size_t n) {
    if (ok && n > 0) ok = std::fwrite(p, 1, n, f) == n;
  }
};

struct Reader {
  std::FILE* f;
  bool ok = true;

  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (ok) ok = std::fread(&v, sizeof(v), 1, f) == 1;
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (ok) ok = std::fread(&v, sizeof(v), 1, f) == 1;
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    if (ok) ok = std::fread(&v, sizeof(v), 1, f) == 1;
    return v;
  }
  void bytes(void* p, std::size_t n) {
    if (ok && n > 0) ok = std::fread(p, 1, n, f) == n;
  }
};

void write_cells(Writer& w, const std::vector<BlockedByCell>& cells) {
  w.u32(static_cast<std::uint32_t>(cells.size()));
  for (const BlockedByCell& c : cells) {
    w.i32(c.waiter);
    w.i32(c.holder);
    w.u64(c.count);
  }
}

bool read_cells(Reader& r, std::vector<BlockedByCell>& cells) {
  const std::uint32_t n = r.u32();
  if (!r.ok || n > (1u << 24)) return false;
  cells.resize(n);
  for (BlockedByCell& c : cells) {
    c.waiter = r.i32();
    c.holder = r.i32();
    c.count = r.u64();
  }
  return r.ok;
}

void write_metrics(Writer& w, const MetricsSnapshot& m) {
  const AcquireStats& a = m.acquire_totals;
  w.u64(a.acquisitions);
  w.u64(a.contended);
  w.u64(a.parks);
  w.u64(a.optimistic_hits);
  w.u64(a.retracts);
  w.u64(a.wait_ns);
  w.u64(a.wait_cpu_ns);
  w.u64(a.max_wait_ns);
  w.u64(a.diverted);
  w.u64(a.handoffs);
  w.u32(static_cast<std::uint32_t>(m.instances.size()));
  for (const InstanceMetrics& im : m.instances) {
    w.u64(im.instance);
    w.u64(im.contended);
    w.u64(im.waits);
    w.u64(im.wait_ns);
    write_cells(w, im.blocked_by);
    for (std::uint64_t c : im.attribution) w.u64(c);
  }
  write_cells(w, m.conflict_matrix);
  w.u32(static_cast<std::uint32_t>(m.attribution.size()));
  for (const AttributionCell& c : m.attribution) {
    w.i32(c.waiter);
    w.i32(c.holder);
    for (std::uint64_t n : c.counts) w.u64(n);
  }
  for (std::size_t i = 0; i < util::Log2Histogram::kBuckets; ++i) {
    w.u64(m.wait_hist.bucket(i));
  }
  w.u64(m.wait_hist.total());
  w.u32(static_cast<std::uint32_t>(m.top_waits.size()));
  for (const WaitSample& s : m.top_waits) {
    w.u64(s.wait_ns);
    w.u64(s.instance);
    w.i32(s.mode);
  }
  // v4: the hold-time profiler block.
  for (std::size_t i = 0; i < util::Log2Histogram::kBuckets; ++i) {
    w.u64(m.hold_hist.bucket(i));
  }
  w.u64(m.hold_hist.total());
  w.u64(m.holds_paired);
  w.u64(m.holds_unmatched);
  w.u32(static_cast<std::uint32_t>(m.top_holds.size()));
  for (const HoldSample& s : m.top_holds) {
    w.u64(s.hold_ns);
    w.u64(s.instance);
    w.i32(s.mode);
    w.u64(s.txn);
    w.i32(s.site);
  }
}

bool read_metrics(Reader& r, MetricsSnapshot& m, std::uint32_t version) {
  AcquireStats& a = m.acquire_totals;
  a.acquisitions = r.u64();
  a.contended = r.u64();
  a.parks = r.u64();
  a.optimistic_hits = r.u64();
  a.retracts = r.u64();
  a.wait_ns = r.u64();
  a.wait_cpu_ns = r.u64();
  a.max_wait_ns = r.u64();
  a.diverted = r.u64();
  a.handoffs = r.u64();
  const std::uint32_t instances = r.u32();
  if (!r.ok || instances > (1u << 24)) return false;
  m.instances.resize(instances);
  for (InstanceMetrics& im : m.instances) {
    im.instance = r.u64();
    im.contended = r.u64();
    im.waits = r.u64();
    im.wait_ns = r.u64();
    if (!read_cells(r, im.blocked_by)) return false;
    for (std::uint64_t& c : im.attribution) c = r.u64();
  }
  if (!read_cells(r, m.conflict_matrix)) return false;
  const std::uint32_t attr_cells = r.u32();
  if (!r.ok || attr_cells > (1u << 24)) return false;
  m.attribution.resize(attr_cells);
  for (AttributionCell& c : m.attribution) {
    c.waiter = r.i32();
    c.holder = r.i32();
    for (std::uint64_t& n : c.counts) n = r.u64();
  }
  std::uint64_t buckets[util::Log2Histogram::kBuckets];
  for (std::uint64_t& b : buckets) b = r.u64();
  const std::uint64_t hist_total = r.u64();
  m.wait_hist.load(buckets, hist_total);
  const std::uint32_t tops = r.u32();
  if (!r.ok || tops > (1u << 16)) return false;
  m.top_waits.resize(tops);
  for (WaitSample& s : m.top_waits) {
    s.wait_ns = r.u64();
    s.instance = r.u64();
    s.mode = r.i32();
  }
  if (version >= 4) {
    for (std::uint64_t& b : buckets) b = r.u64();
    const std::uint64_t hold_total = r.u64();
    m.hold_hist.load(buckets, hold_total);
    m.holds_paired = r.u64();
    m.holds_unmatched = r.u64();
    const std::uint32_t holds = r.u32();
    if (!r.ok || holds > (1u << 16)) return false;
    m.top_holds.resize(holds);
    for (HoldSample& s : m.top_holds) {
      s.hold_ns = r.u64();
      s.instance = r.u64();
      s.mode = r.i32();
      s.txn = r.u64();
      s.site = r.i32();
    }
  }
  return r.ok;
}

}  // namespace

bool write_dump_file(const TraceDump& dump, const std::string& path,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  Writer w{f};
  w.bytes(kMagic, sizeof(kMagic));
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(dump.threads.size()));
  write_metrics(w, dump.metrics);
  for (const ThreadTrace& t : dump.threads) {
    w.u32(t.tid);
    w.u32(t.live ? 1 : 0);
    w.u64(t.events.size());
    for (const Event& e : t.events) {
      w.u64(e.ts_ns);
      w.u64(e.instance);
      w.u64(e.txn);
      w.u64(pack_type_mode(e.type, e.mode));
    }
  }
  // v5: span sections, same per-thread shape with kSpanWords-wide records.
  w.u32(static_cast<std::uint32_t>(dump.spans.size()));
  for (const ThreadSpans& t : dump.spans) {
    w.u32(t.tid);
    w.u32(t.live ? 1 : 0);
    w.u64(t.spans.size());
    for (const Span& s : t.spans) {
      w.u64(s.start_ns);
      w.u64(s.end_ns);
      w.u64(s.txn);
      w.u64(s.instance);
      w.u64(span_pack_meta(s));
      w.u64(s.blocker);
      w.u64((static_cast<std::uint64_t>(s.tid) << 32) |
            static_cast<std::uint32_t>(s.blocker_site));
      w.u64(s.capture_ns);
    }
  }
  const bool ok = w.ok && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

bool load_dump_file(const std::string& path, TraceDump& out,
                    std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(f, &std::fclose);
  Reader r{f};
  char magic[8];
  r.bytes(magic, sizeof(magic));
  if (!r.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    if (error != nullptr) *error = path + ": not a semlock trace dump";
    return false;
  }
  const std::uint32_t version = r.u32();
  if (version < kOldestSupportedVersion || version > kVersion) {
    if (error != nullptr) {
      *error = path + ": unsupported dump version " + std::to_string(version);
    }
    return false;
  }
  const std::uint32_t threads = r.u32();
  if (!r.ok || threads > (1u << 20)) {
    if (error != nullptr) *error = path + ": corrupt header";
    return false;
  }
  out = TraceDump{};
  if (!read_metrics(r, out.metrics, version)) {
    if (error != nullptr) *error = path + ": corrupt metrics section";
    return false;
  }
  out.threads.resize(threads);
  for (ThreadTrace& t : out.threads) {
    t.tid = r.u32();
    t.live = r.u32() != 0;
    const std::uint64_t count = r.u64();
    if (!r.ok || count > (1ull << 28)) {
      if (error != nullptr) *error = path + ": corrupt thread section";
      return false;
    }
    t.events.resize(static_cast<std::size_t>(count));
    for (Event& e : t.events) {
      e.ts_ns = r.u64();
      e.instance = r.u64();
      e.txn = r.u64();
      const std::uint64_t tm = r.u64();
      e.type = unpack_type(tm);
      e.mode = unpack_mode(tm);
    }
  }
  if (version >= 5) {
    const std::uint32_t span_threads = r.u32();
    if (!r.ok || span_threads > (1u << 20)) {
      if (error != nullptr) *error = path + ": corrupt span header";
      return false;
    }
    out.spans.resize(span_threads);
    for (ThreadSpans& t : out.spans) {
      t.tid = r.u32();
      t.live = r.u32() != 0;
      const std::uint64_t count = r.u64();
      if (!r.ok || count > (1ull << 28)) {
        if (error != nullptr) *error = path + ": corrupt span section";
        return false;
      }
      t.spans.resize(static_cast<std::size_t>(count));
      for (Span& s : t.spans) {
        s.start_ns = r.u64();
        s.end_ns = r.u64();
        s.txn = r.u64();
        s.instance = r.u64();
        span_unpack_meta(r.u64(), s);
        s.blocker = r.u64();
        const std::uint64_t w6 = r.u64();
        s.tid = static_cast<std::uint32_t>(w6 >> 32);
        s.blocker_site =
            static_cast<std::int32_t>(static_cast<std::uint32_t>(w6));
        s.capture_ns = r.u64();
      }
    }
  }
  if (!r.ok && error != nullptr) *error = path + ": truncated dump";
  return r.ok;
}

// --- Chrome trace-event JSON ------------------------------------------------

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

// One traceEvents entry. dur_ns < 0 means an instant event.
void append_chrome_event(std::string& out, bool& first, const char* name,
                         std::uint32_t tid, std::uint64_t ts_ns,
                         std::int64_t dur_ns, const Event& e) {
  if (!first) out += ",\n";
  first = false;
  char buf[256];
  out += "  {\"name\": \"";
  append_escaped(out, name);
  std::snprintf(buf, sizeof(buf),
                "\", \"cat\": \"semlock\", \"pid\": 1, \"tid\": %u, "
                "\"ts\": %.3f",
                tid, static_cast<double>(ts_ns) / 1000.0);
  out += buf;
  if (dur_ns >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"ph\": \"X\", \"dur\": %.3f",
                  static_cast<double>(dur_ns) / 1000.0);
    out += buf;
  } else {
    out += ", \"ph\": \"i\", \"s\": \"t\"";
  }
  std::snprintf(buf, sizeof(buf),
                ", \"args\": {\"instance\": \"0x%" PRIx64
                "\", \"mode\": %d, \"txn\": %" PRIu64 "}}",
                e.instance, e.mode, e.txn);
  out += buf;
}

}  // namespace

std::string to_chrome_json(const TraceDump& dump) {
  // Normalize timestamps so the trace starts near t=0 regardless of steady-
  // clock epoch.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const ThreadTrace& t : dump.threads) {
    for (const Event& e : t.events) t0 = std::min(t0, e.ts_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;

  std::string out = "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  bool first = true;
  char name[96];
  // Raw material for the flow events below: every release point, and every
  // parked slice actually paired. The binding release for a parked slice is
  // the latest kRelease on the same instance from another thread inside the
  // parked window — the wakeup that let the waiter run.
  struct ReleasePoint {
    std::uint32_t tid;
    std::uint64_t instance;
    std::uint64_t ts_ns;
  };
  struct ParkedSlice {
    std::uint32_t tid;
    std::uint64_t instance;
    std::uint64_t park_ts_ns;
    std::uint64_t unpark_ts_ns;
  };
  std::vector<ReleasePoint> releases;
  std::vector<ParkedSlice> parked;
  for (const ThreadTrace& t : dump.threads) {
    for (const Event& e : t.events) {
      if (e.type == EventType::kRelease) {
        releases.push_back(ReleasePoint{t.tid, e.instance, e.ts_ns});
      }
    }
  }
  for (const ThreadTrace& t : dump.threads) {
    // Pair begin/end events per (instance, mode) for acquires and per
    // instance for parks; everything unpaired degrades to an instant.
    std::unordered_map<std::uint64_t, Event> open_acquire;  // key: inst^mode
    std::unordered_map<std::uint64_t, Event> open_park;     // key: inst
    auto acq_key = [](const Event& e) {
      return e.instance * 31 + static_cast<std::uint32_t>(e.mode);
    };
    for (const Event& e : t.events) {
      const std::uint64_t ts = e.ts_ns - t0;
      switch (e.type) {
        case EventType::kAcquireBegin:
          open_acquire[acq_key(e)] = e;
          break;
        case EventType::kAcquireGrant:
        case EventType::kOptimisticHit: {
          auto it = open_acquire.find(acq_key(e));
          if (it != open_acquire.end()) {
            const std::uint64_t begin = it->second.ts_ns - t0;
            std::snprintf(name, sizeof(name), "%s mode %d",
                          e.type == EventType::kOptimisticHit
                              ? "acquire (optimistic)"
                              : "acquire",
                          e.mode);
            append_chrome_event(out, first, name, t.tid, begin,
                                static_cast<std::int64_t>(ts - begin), e);
            open_acquire.erase(it);
          } else {
            append_chrome_event(out, first, event_name(e.type), t.tid, ts, -1,
                                e);
          }
          break;
        }
        case EventType::kPark:
          open_park[e.instance] = e;
          break;
        case EventType::kUnpark: {
          auto it = open_park.find(e.instance);
          if (it != open_park.end()) {
            const std::uint64_t begin = it->second.ts_ns - t0;
            std::snprintf(name, sizeof(name), "parked (mode %d)", e.mode);
            append_chrome_event(out, first, name, t.tid, begin,
                                static_cast<std::int64_t>(ts - begin), e);
            parked.push_back(
                ParkedSlice{t.tid, e.instance, it->second.ts_ns, e.ts_ns});
            open_park.erase(it);
          } else {
            append_chrome_event(out, first, event_name(e.type), t.tid, ts, -1,
                                e);
          }
          break;
        }
        default:
          append_chrome_event(out, first, event_name(e.type), t.tid, ts, -1,
                              e);
          break;
      }
    }
    // Dangling begins (thread was mid-acquire at snapshot) become instants.
    for (const auto& [key, e] : open_acquire) {
      (void)key;
      append_chrome_event(out, first, "acquire_begin (unmatched)", t.tid,
                          e.ts_ns - t0, -1, e);
    }
    for (const auto& [key, e] : open_park) {
      (void)key;
      append_chrome_event(out, first, "park (unmatched)", t.tid,
                          e.ts_ns - t0, -1, e);
    }
  }
  // Flow events: an "s"/"f" pair per parked slice whose waking release was
  // found, so Perfetto draws the arrow from the releasing holder's track to
  // the waiter's unpark — blocker chains render instead of disconnected
  // slices. bp:"e" attaches the finish to the enclosing parked slice.
  std::uint64_t flow_id = 0;
  for (const ParkedSlice& p : parked) {
    const ReleasePoint* wake = nullptr;
    for (const ReleasePoint& rel : releases) {
      if (rel.instance != p.instance || rel.tid == p.tid) continue;
      if (rel.ts_ns < p.park_ts_ns || rel.ts_ns > p.unpark_ts_ns) continue;
      if (wake == nullptr || rel.ts_ns > wake->ts_ns) wake = &rel;
    }
    if (wake == nullptr) continue;
    ++flow_id;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"name\": \"unblocked-by\", \"cat\": \"semlock\", "
                  "\"ph\": \"s\", \"id\": %" PRIu64
                  ", \"pid\": 1, \"tid\": %u, \"ts\": %.3f}",
                  flow_id, wake->tid,
                  static_cast<double>(wake->ts_ns - t0) / 1000.0);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\n  {\"name\": \"unblocked-by\", \"cat\": \"semlock\", "
                  "\"ph\": \"f\", \"bp\": \"e\", \"id\": %" PRIu64
                  ", \"pid\": 1, \"tid\": %u, \"ts\": %.3f}",
                  flow_id, p.tid,
                  static_cast<double>(p.unpark_ts_ns - t0) / 1000.0);
    out += buf;
  }
  out += "\n],\n\"semlockMetrics\": ";
  out += dump.metrics.to_json();
  out += "\n}\n";
  return out;
}

// --- text report ------------------------------------------------------------

std::string text_report(const TraceDump& dump) {
  char buf[256];
  std::string out = "semlock trace report\n====================\n";

  std::uint64_t total_events = 0;
  std::map<EventType, std::uint64_t> by_type;
  for (const ThreadTrace& t : dump.threads) {
    total_events += t.events.size();
    for (const Event& e : t.events) by_type[e.type] += 1;
  }
  std::snprintf(buf, sizeof(buf), "threads: %zu   retained events: %" PRIu64
                "\n\n", dump.threads.size(), total_events);
  out += buf;

  out += "event counts:\n";
  for (const auto& [type, n] : by_type) {
    std::snprintf(buf, sizeof(buf), "  %-16s %" PRIu64 "\n",
                  event_name(type), n);
    out += buf;
  }

  const MetricsSnapshot& m = dump.metrics;
  const AcquireStats& a = m.acquire_totals;
  out += "\nacquire totals:\n";
  std::snprintf(buf, sizeof(buf),
                "  acquisitions %" PRIu64 "  contended %" PRIu64
                "  parks %" PRIu64 "\n  optimistic hits %" PRIu64
                "  retracts %" PRIu64 "\n  wait %.3f ms wall, %.3f ms cpu"
                "  max %.3f ms\n  grant policy: diverted %" PRIu64
                "  handoffs %" PRIu64 "\n",
                a.acquisitions, a.contended, a.parks, a.optimistic_hits,
                a.retracts, static_cast<double>(a.wait_ns) / 1e6,
                static_cast<double>(a.wait_cpu_ns) / 1e6,
                static_cast<double>(a.max_wait_ns) / 1e6, a.diverted,
                a.handoffs);
  out += buf;

  out += "\ntop contended instances:\n";
  if (m.instances.empty()) out += "  (no contention recorded)\n";
  for (std::size_t i = 0; i < m.instances.size() && i < 10; ++i) {
    const InstanceMetrics& im = m.instances[i];
    std::snprintf(buf, sizeof(buf),
                  "  0x%" PRIx64 "  contended %" PRIu64 "  waits %" PRIu64
                  "  wait %.3f ms\n",
                  im.instance, im.contended, im.waits,
                  static_cast<double>(im.wait_ns) / 1e6);
    out += buf;
  }

  out += "\nhottest non-commuting mode pairs (waiter blocked by holder):\n";
  if (m.conflict_matrix.empty()) out += "  (none observed)\n";
  for (std::size_t i = 0; i < m.conflict_matrix.size() && i < 10; ++i) {
    const BlockedByCell& c = m.conflict_matrix[i];
    std::snprintf(buf, sizeof(buf),
                  "  mode %d blocked by mode %d: %" PRIu64 " times\n",
                  c.waiter, c.holder, c.count);
    out += buf;
  }

  std::uint64_t attr_totals[kNumAttrClasses] = {};
  std::uint64_t attr_sum = 0;
  for (const AttributionCell& c : m.attribution) {
    for (std::size_t k = 0; k < kNumAttrClasses; ++k) {
      attr_totals[k] += c.counts[k];
      attr_sum += c.counts[k];
    }
  }
  if (attr_sum > 0) {
    out += "\nwait attribution (see `semlock-trace attribution`):\n";
    for (std::size_t k = 0; k < kNumAttrClasses; ++k) {
      if (attr_totals[k] == 0) continue;
      std::snprintf(buf, sizeof(buf), "  %-18s %" PRIu64 " (%.1f%%)\n",
                    attr_class_name(static_cast<AttrClass>(k)),
                    attr_totals[k],
                    100.0 * static_cast<double>(attr_totals[k]) /
                        static_cast<double>(attr_sum));
      out += buf;
    }
  }

  out += "\nlongest waits:\n";
  if (m.top_waits.empty()) out += "  (none recorded)\n";
  for (const WaitSample& s : m.top_waits) {
    std::snprintf(buf, sizeof(buf),
                  "  %.3f ms  instance 0x%" PRIx64 "  mode %d\n",
                  static_cast<double>(s.wait_ns) / 1e6, s.instance, s.mode);
    out += buf;
  }

  if (m.wait_hist.count() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\nwait latency: %" PRIu64 " samples, p50 < %.3f us, "
                  "p99 < %.3f us, p999 < %.3f us\n",
                  m.wait_hist.count(),
                  static_cast<double>(m.wait_hist.p50()) / 1e3,
                  static_cast<double>(m.wait_hist.p99()) / 1e3,
                  static_cast<double>(m.wait_hist.p999()) / 1e3);
    out += buf;
  }

  if (m.holds_paired > 0 || m.holds_unmatched > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\ncritical-section holds (see `semlock-trace holds`): "
                  "%" PRIu64 " paired, %" PRIu64 " unmatched\n"
                  "  hold p50 < %.3f us, p99 < %.3f us, p999 < %.3f us\n",
                  m.holds_paired, m.holds_unmatched,
                  static_cast<double>(m.hold_hist.p50()) / 1e3,
                  static_cast<double>(m.hold_hist.p99()) / 1e3,
                  static_cast<double>(m.hold_hist.p999()) / 1e3);
    out += buf;
  }
  return out;
}

// --- attribution report -----------------------------------------------------

std::string attribution_report(const TraceDump& dump) {
  char buf[256];
  const MetricsSnapshot& m = dump.metrics;
  std::string out =
      "conflict attribution report\n===========================\n";

  std::uint64_t totals[kNumAttrClasses] = {};
  std::uint64_t sum = 0;
  for (const AttributionCell& c : m.attribution) {
    for (std::size_t k = 0; k < kNumAttrClasses; ++k) {
      totals[k] += c.counts[k];
      sum += c.counts[k];
    }
  }
  if (sum == 0) {
    out += "no classified waits (attribution off, or nothing contended)\n";
    return out;
  }

  const std::uint64_t sampled =
      sum - totals[static_cast<std::size_t>(AttrClass::kUnsampled)];
  const std::uint64_t genuine =
      totals[static_cast<std::size_t>(AttrClass::kTrueConflict)] +
      totals[static_cast<std::size_t>(AttrClass::kSelfMode)];
  const std::uint64_t artifact = sampled - genuine;
  std::snprintf(buf, sizeof(buf),
                "classified waits: %" PRIu64 " (+ %" PRIu64 " unsampled)\n"
                "genuine semantic conflicts: %" PRIu64 " (%.1f%%)\n"
                "abstraction artifacts:      %" PRIu64 " (%.1f%%)\n\n",
                sampled,
                totals[static_cast<std::size_t>(AttrClass::kUnsampled)],
                genuine,
                sampled > 0 ? 100.0 * static_cast<double>(genuine) /
                                  static_cast<double>(sampled)
                            : 0.0,
                artifact,
                sampled > 0 ? 100.0 * static_cast<double>(artifact) /
                                  static_cast<double>(sampled)
                            : 0.0);
  out += buf;

  out += "by class:\n";
  for (std::size_t k = 0; k < kNumAttrClasses; ++k) {
    if (totals[k] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-18s %" PRIu64 " (%.1f%%)\n",
                  attr_class_name(static_cast<AttrClass>(k)), totals[k],
                  100.0 * static_cast<double>(totals[k]) /
                      static_cast<double>(sum));
    out += buf;
  }

  out += "\nby mode pair (waiter blocked by holder):\n";
  for (std::size_t i = 0; i < m.attribution.size() && i < 20; ++i) {
    const AttributionCell& c = m.attribution[i];
    std::snprintf(buf, sizeof(buf), "  mode %d <- mode %d: %" PRIu64 "\n",
                  c.waiter, c.holder, c.total());
    out += buf;
    for (std::size_t k = 0; k < kNumAttrClasses; ++k) {
      if (c.counts[k] == 0) continue;
      std::snprintf(buf, sizeof(buf), "    %-18s %" PRIu64 "\n",
                    attr_class_name(static_cast<AttrClass>(k)), c.counts[k]);
      out += buf;
    }
  }

  out += "\nper instance:\n";
  bool any_instance = false;
  for (const InstanceMetrics& im : m.instances) {
    std::uint64_t inst_sum = 0;
    for (std::uint64_t c : im.attribution) inst_sum += c;
    if (inst_sum == 0) continue;
    any_instance = true;
    std::snprintf(buf, sizeof(buf), "  0x%" PRIx64 ":", im.instance);
    out += buf;
    for (std::size_t k = 0; k < kNumAttrClasses; ++k) {
      if (im.attribution[k] == 0) continue;
      std::snprintf(buf, sizeof(buf), "  %s %" PRIu64,
                    attr_class_key(static_cast<AttrClass>(k)),
                    im.attribution[k]);
      out += buf;
    }
    out += '\n';
  }
  if (!any_instance) out += "  (none)\n";
  return out;
}

// --- hold-time report -------------------------------------------------------

std::uint64_t pair_holds_from_events(const TraceDump& dump) {
  std::uint64_t paired = 0;
  for (const ThreadTrace& t : dump.threads) {
    // Open grants per thread; LIFO match on (instance, mode), mirroring
    // close_hold_on_release in trace.cpp.
    std::vector<const Event*> open;
    for (const Event& e : t.events) {
      switch (e.type) {
        case EventType::kAcquireGrant:
        case EventType::kOptimisticHit:
          open.push_back(&e);
          break;
        case EventType::kRelease:
          for (std::size_t i = open.size(); i > 0; --i) {
            if (open[i - 1]->instance == e.instance &&
                open[i - 1]->mode == e.mode) {
              open.erase(open.begin() + static_cast<std::ptrdiff_t>(i - 1));
              paired += 1;
              break;
            }
          }
          break;
        default:
          break;
      }
    }
  }
  return paired;
}

std::string holds_report(const TraceDump& dump) {
  char buf[256];
  const MetricsSnapshot& m = dump.metrics;
  std::string out = "critical-section hold report\n"
                    "============================\n";

  if (m.holds_paired == 0 && m.holds_unmatched == 0) {
    out += "no holds recorded (tracing off, or a pre-v4 dump)\n";
    return out;
  }

  std::snprintf(buf, sizeof(buf),
                "paired grant->release spans: %" PRIu64
                "   unmatched releases: %" PRIu64 "\n",
                m.holds_paired, m.holds_unmatched);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "hold time: total %.3f ms, p50 < %.3f us, p99 < %.3f us, "
                "p999 < %.3f us\n",
                static_cast<double>(m.hold_hist.total()) / 1e6,
                static_cast<double>(m.hold_hist.p50()) / 1e3,
                static_cast<double>(m.hold_hist.p99()) / 1e3,
                static_cast<double>(m.hold_hist.p999()) / 1e3);
  out += buf;

  // Cross-check against the retained events. Only exact when no ring
  // wrapped (every grant/release still retained), so report it as evidence,
  // not as an error.
  const std::uint64_t event_pairs = pair_holds_from_events(dump);
  std::snprintf(buf, sizeof(buf),
                "event cross-check: %" PRIu64
                " grant->release pairs in retained events%s\n",
                event_pairs,
                event_pairs == m.holds_paired
                    ? " (matches paired count exactly)"
                    : " (differs: rings wrapped or tracing toggled mid-run)");
  out += buf;

  out += "\nlongest holds:\n";
  if (m.top_holds.empty()) out += "  (none recorded)\n";
  for (const HoldSample& s : m.top_holds) {
    std::snprintf(buf, sizeof(buf),
                  "  %.3f ms  instance 0x%" PRIx64
                  "  mode %d  txn %" PRIu64 "  site %d\n",
                  static_cast<double>(s.hold_ns) / 1e6, s.instance, s.mode,
                  s.txn, s.site);
    out += buf;
  }
  return out;
}

// --- structural JSON validation ---------------------------------------------

namespace {

struct JsonCursor {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p != end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end - p) < n ||
        std::memcmp(p, lit, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  bool string() {
    if (p == end || *p != '"') return false;
    ++p;
    while (p != end) {
      if (*p == '\\') {
        ++p;
        if (p == end) return false;
        ++p;
      } else if (*p == '"') {
        ++p;
        return true;
      } else {
        ++p;
      }
    }
    return false;
  }

  bool number() {
    const char* start = p;
    if (p != end && *p == '-') ++p;
    while (p != end && *p >= '0' && *p <= '9') ++p;
    if (p != end && *p == '.') {
      ++p;
      while (p != end && *p >= '0' && *p <= '9') ++p;
    }
    if (p != end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p != end && (*p == '+' || *p == '-')) ++p;
      while (p != end && *p >= '0' && *p <= '9') ++p;
    }
    return p != start && !(p - start == 1 && *start == '-');
  }

  bool value() {
    if (++depth > 128) return false;
    skip_ws();
    bool ok = false;
    if (p == end) {
      ok = false;
    } else if (*p == '{') {
      ++p;
      skip_ws();
      if (p != end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (p == end || *p != ':') break;
          ++p;
          if (!value()) break;
          skip_ws();
          if (p != end && *p == ',') {
            ++p;
            continue;
          }
          if (p != end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      skip_ws();
      if (p != end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          if (!value()) break;
          skip_ws();
          if (p != end && *p == ',') {
            ++p;
            continue;
          }
          if (p != end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      ok = string();
    } else if (literal("true") || literal("false") || literal("null")) {
      ok = true;
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool validate_json(const std::string& text, std::string* error) {
  JsonCursor c{text.data(), text.data() + text.size()};
  if (!c.value()) {
    if (error != nullptr) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "invalid JSON near offset %zd",
                    c.p - text.data());
      *error = buf;
    }
    return false;
  }
  c.skip_ws();
  if (c.p != c.end) {
    if (error != nullptr) *error = "trailing content after JSON value";
    return false;
  }
  return true;
}

}  // namespace semlock::obs
