#include "obs/waitgraph.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <set>

#include "obs/span.h"
#include "runtime/wait_registry.h"
#include "util/align.h"

namespace semlock::obs {

namespace {

// Seqlock slot, one per concurrently-waiting thread; the WaitRegistry
// discipline (even seq = stable, all fields atomic).
struct alignas(util::kCacheLineSize) EdgeSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> waiter{0};  // 0 = slot idle
  std::atomic<std::uint64_t> instance{0};
  std::atomic<std::int32_t> mode{-1};
  std::atomic<std::uint64_t> blocker{0};
  std::atomic<std::int32_t> blocker_site{-1};
  std::atomic<std::uint64_t> since_ns{0};
  std::atomic<bool> claimed{false};
};

EdgeSlot g_slots[kWaitGraphSlots];

struct ThreadSlotOwner {
  EdgeSlot* slot = nullptr;
  ~ThreadSlotOwner() {
    if (slot) slot->claimed.store(false, std::memory_order_release);
  }
};

EdgeSlot* thread_edge_slot() {
  thread_local ThreadSlotOwner owner;
  thread_local bool attempted = false;
  if (!attempted) {
    attempted = true;
    for (int i = 0; i < kWaitGraphSlots; ++i) {
      bool expected = false;
      if (g_slots[i].claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        owner.slot = &g_slots[i];
        break;
      }
    }
  }
  return owner.slot;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

WaitEdge::~WaitEdge() {
  if (slot_ == nullptr) return;
  EdgeSlot* s = static_cast<EdgeSlot*>(slot_);
  const std::uint64_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s->waiter.store(0, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);
}

void WaitEdge::open(const void* instance, int mode, std::uint64_t waiter,
                    std::uint64_t since_ns) {
  EdgeSlot* s = thread_edge_slot();
  if (s == nullptr) return;
  slot_ = s;
  const std::uint64_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  s->waiter.store(waiter, std::memory_order_relaxed);
  s->instance.store(reinterpret_cast<std::uint64_t>(instance),
                    std::memory_order_relaxed);
  s->mode.store(mode, std::memory_order_relaxed);
  s->blocker.store(0, std::memory_order_relaxed);
  s->blocker_site.store(-1, std::memory_order_relaxed);
  s->since_ns.store(since_ns, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);  // even: published
}

void WaitEdge::set_blocker(std::uint64_t blocker, std::int32_t site) {
  if (slot_ == nullptr) return;
  EdgeSlot* s = static_cast<EdgeSlot*>(slot_);
  const std::uint64_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s->blocker.store(blocker, std::memory_order_relaxed);
  s->blocker_site.store(site, std::memory_order_relaxed);
  s->seq.store(seq + 2, std::memory_order_release);
}

std::vector<WaitGraphEdge> snapshot_waitgraph() {
  std::vector<WaitGraphEdge> out;
  for (int i = 0; i < kWaitGraphSlots; ++i) {
    const EdgeSlot& s = g_slots[i];
    const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 & 1) continue;
    WaitGraphEdge e;
    e.waiter = s.waiter.load(std::memory_order_relaxed);
    e.instance = s.instance.load(std::memory_order_relaxed);
    e.mode = s.mode.load(std::memory_order_relaxed);
    e.blocker = s.blocker.load(std::memory_order_relaxed);
    e.blocker_site = s.blocker_site.load(std::memory_order_relaxed);
    e.since_ns = s.since_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq1) continue;
    if (e.waiter == 0) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const WaitGraphEdge& a, const WaitGraphEdge& b) {
              return a.waiter < b.waiter;
            });
  return out;
}

std::vector<std::vector<std::uint64_t>> waitgraph_cycles(
    const std::vector<WaitGraphEdge>& edges) {
  // Each waiter (a thread) has at most one outgoing edge, so the graph is
  // functional: walking waiter->blocker from every node visits each node
  // O(1) times with the three-color scheme.
  std::map<std::uint64_t, std::uint64_t> next;  // waiter -> blocker
  for (const WaitGraphEdge& e : edges) {
    if (e.blocker != 0) next[e.waiter] = e.blocker;
  }
  std::vector<std::vector<std::uint64_t>> cycles;
  std::map<std::uint64_t, int> color;  // 0 unseen, 1 on path, 2 done
  for (const auto& [start, unused] : next) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<std::uint64_t> path;
    std::uint64_t cur = start;
    while (true) {
      const int c = color[cur];
      if (c == 1) {
        // Found a cycle: the suffix of `path` from cur onward.
        const auto it = std::find(path.begin(), path.end(), cur);
        std::vector<std::uint64_t> cycle(it, path.end());
        // Rotate to the smallest id so the representation is stable.
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        cycles.push_back(std::move(cycle));
        break;
      }
      if (c == 2) break;
      color[cur] = 1;
      path.push_back(cur);
      const auto nit = next.find(cur);
      if (nit == next.end()) break;
      cur = nit->second;
    }
    for (const std::uint64_t n : path) color[n] = 2;
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

std::string waitgraph_json() {
  const std::vector<WaitGraphEdge> edges = snapshot_waitgraph();
  const std::vector<std::vector<std::uint64_t>> cycles =
      waitgraph_cycles(edges);
  std::string out = "{\n  \"schema\": \"semlock-waitgraph-v1\",\n";
  out += "  \"now_ns\": " + std::to_string(runtime::steady_now_ns()) + ",\n";
  out += "  \"edges\": [";
  bool first = true;
  for (const WaitGraphEdge& e : edges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"waiter\": " + std::to_string(e.waiter) +
           ", \"waiter_name\": \"" + format_owner(e.waiter) + "\"";
    out += ", \"instance\": \"";
    append_hex(out, e.instance);
    out += "\", \"mode\": " + std::to_string(e.mode);
    out += ", \"blocker\": " + std::to_string(e.blocker) +
           ", \"blocker_name\": \"" + format_owner(e.blocker) + "\"";
    out += ", \"blocker_site\": " + std::to_string(e.blocker_site);
    out += ", \"since_ns\": " + std::to_string(e.since_ns) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"cycles\": [";
  first = true;
  for (const std::vector<std::uint64_t>& cycle : cycles) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    [";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(cycle[i]);
    }
    out += "]";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string waitgraph_dot() {
  const std::vector<WaitGraphEdge> edges = snapshot_waitgraph();
  const std::vector<std::vector<std::uint64_t>> cycles =
      waitgraph_cycles(edges);
  std::set<std::uint64_t> in_cycle;
  for (const std::vector<std::uint64_t>& cycle : cycles) {
    in_cycle.insert(cycle.begin(), cycle.end());
  }
  std::string out = "digraph waitfor {\n";
  out += "  rankdir=LR;\n";
  for (const WaitGraphEdge& e : edges) {
    out += "  \"" + format_owner(e.waiter) + "\" -> \"" +
           format_owner(e.blocker) + "\" [label=\"";
    append_hex(out, e.instance);
    out += " mode " + std::to_string(e.mode) + "\"";
    if (in_cycle.count(e.waiter) != 0 && in_cycle.count(e.blocker) != 0) {
      out += " color=red";
    }
    out += "];\n";
  }
  out += "}\n";
  return out;
}

std::string waitgraph_chain(const void* instance, int mode,
                            std::size_t max_depth) {
  const std::vector<WaitGraphEdge> edges = snapshot_waitgraph();
  const std::uint64_t inst = reinterpret_cast<std::uint64_t>(instance);
  const WaitGraphEdge* head = nullptr;
  for (const WaitGraphEdge& e : edges) {
    if (e.instance == inst && (mode < 0 || e.mode == mode)) {
      head = &e;
      break;
    }
  }
  if (head == nullptr || head->blocker == 0) return "";
  std::string out = "wait-for chain: " + format_owner(head->waiter);
  std::set<std::uint64_t> seen{head->waiter};
  std::uint64_t cur = head->blocker;
  for (std::size_t depth = 0; depth < max_depth; ++depth) {
    out += " -> " + format_owner(cur);
    if (seen.count(cur) != 0) {
      out += " (cycle)";
      break;
    }
    seen.insert(cur);
    const WaitGraphEdge* next = nullptr;
    for (const WaitGraphEdge& e : edges) {
      if (e.waiter == cur && e.blocker != 0) {
        next = &e;
        break;
      }
    }
    if (next == nullptr) break;
    cur = next->blocker;
  }
  out += "\n";
  return out;
}

}  // namespace semlock::obs
