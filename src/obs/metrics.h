// Process-wide aggregation of the per-thread observability data.
//
// Thread-local data (AcquireStats counters, the blocked-by conflict samples
// and wait-latency records gathered by the lock mechanism's contended path)
// is folded into the process-wide registry when a thread exits, and read on
// demand via collect_metrics(), which combines the folded totals with the
// live threads' current state. The combined view answers the questions the
// paper's evaluation (§5) raises but per-thread counters cannot: which
// instances actually contend, which non-commuting mode pairs block whom,
// and where wait time goes.
//
// collect_metrics() is exact at quiescence (all worker threads joined — the
// normal end-of-bench report point). While workers are still running, the
// live threads' plain counters are sampled best-effort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "semlock/acquire_stats.h"
#include "util/stats.h"

namespace semlock::obs {

// One cell of the blocked-by conflict matrix: a waiter that entered the
// contended path for `waiter` observed `holder` held. Only non-commuting
// (waiter, holder) pairs can ever be recorded — the sample walks the mode's
// conflict row — so a non-empty cell is direct evidence of a non-commuting
// pair the workload exercised.
struct BlockedByCell {
  std::int32_t waiter = -1;
  std::int32_t holder = -1;
  std::uint64_t count = 0;
};

// One cell of the attribution matrix: classified contended waits for a
// (waiter mode, holder mode) pair, broken down by AttrClass
// (obs/attribution.h) — counts[c] indexes by AttrClass value.
struct AttributionCell {
  std::int32_t waiter = -1;
  std::int32_t holder = -1;
  std::uint64_t counts[kNumAttrClasses] = {};

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts) sum += c;
    return sum;
  }
};

// Per-ADT-instance contention record; `instance` is the LockMechanism
// address (the same id the trace events carry).
struct InstanceMetrics {
  std::uint64_t instance = 0;
  std::uint64_t contended = 0;  // entries into the contended wait loop
  std::uint64_t waits = 0;      // completed contended acquisitions
  std::uint64_t wait_ns = 0;    // total contended wait wall time
  std::vector<BlockedByCell> blocked_by;
  // Classified waits by AttrClass (indexes by AttrClass value; all zero
  // when attribution was off or nothing contended).
  std::uint64_t attribution[kNumAttrClasses] = {};
};

// One of the longest individual waits observed.
struct WaitSample {
  std::uint64_t wait_ns = 0;
  std::uint64_t instance = 0;
  std::int32_t mode = -1;
};

// Bounded keep-the-largest set of wait samples ("longest waits" in the
// text report). Small linear structure: K is tiny and insertion is rare
// (only contended acquisitions reach it).
class TopWaits {
 public:
  static constexpr std::size_t kKeep = 8;
  void add(const WaitSample& s);
  void merge(const TopWaits& other);
  // Descending by wait_ns.
  std::vector<WaitSample> sorted() const;

 private:
  std::vector<WaitSample> samples_;
};

// One of the longest critical-section holds observed: the grant→release
// span of a single acquisition, with the holder's identity (txn) and lock
// site so the offending code path is nameable from the report alone.
struct HoldSample {
  std::uint64_t hold_ns = 0;
  std::uint64_t instance = 0;
  std::int32_t mode = -1;
  std::uint64_t txn = 0;     // holder's transaction id (0 = outside any)
  std::int32_t site = -1;    // LockSiteArgs::site of the granting lock()
};

// Keep-the-largest set of hold samples, same shape as TopWaits.
class TopHolds {
 public:
  static constexpr std::size_t kKeep = 8;
  void add(const HoldSample& s);
  void merge(const TopHolds& other);
  // Descending by hold_ns.
  std::vector<HoldSample> sorted() const;

 private:
  std::vector<HoldSample> samples_;
};

struct MetricsSnapshot {
  AcquireStats acquire_totals;               // exact cross-thread sums
  std::vector<InstanceMetrics> instances;    // sorted by contended, desc
  std::vector<BlockedByCell> conflict_matrix;  // summed across instances
  std::vector<AttributionCell> attribution;  // per mode pair, busiest first
  util::Log2Histogram wait_hist;             // contended wait latencies, ns
  std::vector<WaitSample> top_waits;         // descending
  // Hold-time profiler (ISSUE 9): grant→release spans paired online in
  // emit() per (instance, mode), LIFO within the owning thread, so
  // hold_hist.count() == holds_paired exactly — every paired release adds
  // one sample. holds_unmatched counts releases with no retained grant
  // (tracing toggled mid-hold, or the open-hold table overflowed).
  util::Log2Histogram hold_hist;             // paired hold durations, ns
  std::uint64_t holds_paired = 0;
  std::uint64_t holds_unmatched = 0;
  std::vector<HoldSample> top_holds;         // descending

  // JSON for the BENCH_*.json sidecar files and the dump's embedded
  // metrics section (schema in docs/OBSERVABILITY.md).
  std::string to_json() const;
};

// Folds the registry's retired-thread totals with the live threads' current
// state. Implemented in trace.cpp next to the thread registry.
MetricsSnapshot collect_metrics();

}  // namespace semlock::obs
