// Compile-to-nothing-when-off hook layer for the observability subsystem,
// mirroring src/dct/hooks.h: built by default (CMake option SEMLOCK_OBS),
// and with the option OFF every macro expands to ((void)0) so production
// hot paths contain no obs code at all — CI verifies the OFF build has zero
// semlock::obs symbols.
//
// With the option ON the macros are runtime-gated on the process-wide
// switch (SEMLOCK_TRACE / obs::ScopedTraceEnable): one relaxed atomic load
// and a predictable branch when tracing is off. The lock mechanism does not
// use these macros — it gates on its ModeTable's trace_events flag directly
// (see lock_mechanism.cpp) so per-table overrides work without the global
// switch.
#pragma once

#if defined(SEMLOCK_OBS)

#include "obs/span.h"
#include "obs/trace.h"

// Process-level event (no owning LockMechanism): transaction epilogues,
// harness pass marks. `type` is an EventType enumerator name.
#define SEMLOCK_OBS_EVENT(type, instance, mode)                       \
  do {                                                                \
    if (::semlock::obs::runtime_enabled())                            \
      ::semlock::obs::emit(::semlock::obs::EventType::type,           \
                           (instance), (mode));                       \
  } while (0)

// Transaction identity: cheap enough (two thread-local ops) to run
// unconditionally so per-table trace overrides still see txn ids even when
// the global switch is off.
#define SEMLOCK_OBS_TXN_BEGIN() ::semlock::obs::txn_begin()
#define SEMLOCK_OBS_TXN_END() ::semlock::obs::txn_end()

// Span-recorder clock for the transaction exec/commit spans (obs/span.h):
// steady-now when span recording is active (global switch AND SEMLOCK_SPANS),
// 0 otherwise — the zero doubles as the "don't record" flag, keeping the
// disabled cost at two relaxed loads and a branch.
#define SEMLOCK_OBS_SPAN_CLOCK()                                       \
  (::semlock::obs::runtime_enabled() && ::semlock::obs::spans_enabled() \
       ? ::semlock::obs::span_now_ns()                                 \
       : 0)

#else  // !SEMLOCK_OBS

#define SEMLOCK_OBS_EVENT(type, instance, mode) ((void)0)
#define SEMLOCK_OBS_TXN_BEGIN() ((void)0)
#define SEMLOCK_OBS_TXN_END() ((void)0)
#define SEMLOCK_OBS_SPAN_CLOCK() 0

#endif  // SEMLOCK_OBS
