// Per-thread span rings and the registry they retire into. Structure is a
// deliberate mirror of trace.cpp (see the synchronization summary there):
// single-writer relaxed-atomic rings with a release-published head, a leaky
// process-wide registry guarded by a util::Spinlock, and merge-on-exit so
// dumps include threads that are already gone. Span state is kept separate
// from the event ThreadState so the event hot path (emit()) never grows a
// branch for spans, and so SEMLOCK_SPANS=0 leaves event tracing untouched.

#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>

#include "obs/trace.h"
#include "util/env.h"
#include "util/spinlock.h"

namespace semlock::obs {

namespace {

std::atomic<bool> g_spans_enabled{true};
std::atomic<std::uint32_t> g_span_ring_capacity{kDefaultSpanRingCapacity};

// Same clock (and therefore the same epoch) as trace.cpp's event stamps, so
// spans and events from one run line up on a single timeline.
std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// EventRing's scheme (ring.h) over kSpanWords-wide slots: one writer, any
// reader, overwrite-oldest, torn slots dropped via the double head read.
class SpanRing {
 public:
  static constexpr std::uint32_t kMinCapacity = 64;

  explicit SpanRing(std::uint32_t min_capacity)
      : capacity_(std::bit_ceil(
            min_capacity < kMinCapacity ? kMinCapacity : min_capacity)),
        mask_(capacity_ - 1),
        words_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            capacity_) * kSpanWords]()) {}

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  void append(const Span& s) noexcept {
    const std::uint64_t index = head_.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t>* slot =
        words_.get() + static_cast<std::size_t>(index & mask_) * kSpanWords;
    slot[0].store(s.start_ns, std::memory_order_relaxed);
    slot[1].store(s.end_ns, std::memory_order_relaxed);
    slot[2].store(s.txn, std::memory_order_relaxed);
    slot[3].store(s.instance, std::memory_order_relaxed);
    slot[4].store(span_pack_meta(s), std::memory_order_relaxed);
    slot[5].store(s.blocker, std::memory_order_relaxed);
    slot[6].store((static_cast<std::uint64_t>(s.tid) << 32) |
                      static_cast<std::uint32_t>(s.blocker_site),
                  std::memory_order_relaxed);
    slot[7].store(s.capture_ns, std::memory_order_relaxed);
    head_.store(index + 1, std::memory_order_release);
  }

  std::vector<Span> snapshot() const {
    const std::uint64_t end = head_.load(std::memory_order_acquire);
    const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
    std::vector<Span> out;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::atomic<std::uint64_t>* slot =
          words_.get() + static_cast<std::size_t>(i & mask_) * kSpanWords;
      Span s;
      s.start_ns = slot[0].load(std::memory_order_relaxed);
      s.end_ns = slot[1].load(std::memory_order_relaxed);
      s.txn = slot[2].load(std::memory_order_relaxed);
      s.instance = slot[3].load(std::memory_order_relaxed);
      span_unpack_meta(slot[4].load(std::memory_order_relaxed), s);
      s.blocker = slot[5].load(std::memory_order_relaxed);
      const std::uint64_t w6 = slot[6].load(std::memory_order_relaxed);
      s.tid = static_cast<std::uint32_t>(w6 >> 32);
      s.blocker_site =
          static_cast<std::int32_t>(static_cast<std::uint32_t>(w6));
      s.capture_ns = slot[7].load(std::memory_order_relaxed);
      out.push_back(s);
    }
    const std::uint64_t head2 = head_.load(std::memory_order_acquire);
    const std::uint64_t safe_begin =
        head2 >= capacity_ ? head2 - capacity_ + 1 : 0;
    if (safe_begin > begin) {
      const std::uint64_t drop = safe_begin - begin;
      out.erase(out.begin(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  drop < out.size() ? drop : out.size()));
    }
    return out;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

struct SpanThreadState {
  std::uint32_t tid = 0;  // obs::thread_obs_tid(), shared with events
  std::atomic<SpanRing*> ring{nullptr};

  ~SpanThreadState() { delete ring.load(std::memory_order_relaxed); }
};

struct RetiredSpans {
  std::uint32_t tid = 0;
  std::vector<Span> spans;
};

class SpanRegistry {
 public:
  static SpanRegistry& instance() {
    static SpanRegistry* r = new SpanRegistry;  // leaky, like trace.cpp
    return *r;
  }

  void register_thread(SpanThreadState* ts) {
    std::lock_guard<util::Spinlock> g(lock_);
    live_.push_back(ts);
  }

  void retire_thread(SpanThreadState* ts) {
    std::vector<Span> spans;
    if (SpanRing* ring = ts->ring.load(std::memory_order_acquire)) {
      spans = ring->snapshot();
    }
    std::lock_guard<util::Spinlock> g(lock_);
    live_.erase(std::remove(live_.begin(), live_.end(), ts), live_.end());
    if (!spans.empty()) {
      retired_span_count_ += spans.size();
      retired_.push_back(RetiredSpans{ts->tid, std::move(spans)});
      while (retired_span_count_ > kMaxRetiredSpans && !retired_.empty()) {
        retired_span_count_ -= retired_.front().spans.size();
        retired_.pop_front();
      }
    }
  }

  std::vector<ThreadSpans> snapshot() {
    std::lock_guard<util::Spinlock> g(lock_);
    std::vector<ThreadSpans> out;
    out.reserve(retired_.size() + live_.size());
    for (const RetiredSpans& r : retired_) {
      out.push_back(ThreadSpans{r.tid, false, r.spans});
    }
    for (SpanThreadState* ts : live_) {
      ThreadSpans t;
      t.tid = ts->tid;
      t.live = true;
      if (const SpanRing* ring = ts->ring.load(std::memory_order_acquire)) {
        t.spans = ring->snapshot();
      }
      out.push_back(std::move(t));
    }
    std::sort(out.begin(), out.end(),
              [](const ThreadSpans& a, const ThreadSpans& b) {
                return a.tid != b.tid ? a.tid < b.tid : a.live < b.live;
              });
    return out;
  }

  void reset(SpanThreadState* self) {
    std::lock_guard<util::Spinlock> g(lock_);
    retired_.clear();
    retired_span_count_ = 0;
    if (self != nullptr) {
      if (SpanRing* ring = self->ring.load(std::memory_order_relaxed)) {
        self->ring.store(nullptr, std::memory_order_release);
        delete ring;
      }
    }
  }

 private:
  SpanRegistry() = default;

  static constexpr std::size_t kMaxRetiredSpans = 1u << 16;  // 65536 spans

  util::Spinlock lock_;
  std::vector<SpanThreadState*> live_;
  std::deque<RetiredSpans> retired_;
  std::size_t retired_span_count_ = 0;
};

struct SpanTlsHandle {
  SpanThreadState state;
  SpanTlsHandle() {
    state.tid = thread_obs_tid();
    SpanRegistry::instance().register_thread(&state);
  }
  ~SpanTlsHandle() { SpanRegistry::instance().retire_thread(&state); }
};

SpanThreadState& span_thread_state() {
  thread_local SpanTlsHandle handle;
  return handle.state;
}

// Reads SEMLOCK_SPANS once at startup (same static-init slot discipline as
// trace.cpp's TraceRuntimeInit; ordering between the two does not matter
// because neither touches the other's state).
struct SpanRuntimeInit {
  SpanRuntimeInit() {
    g_spans_enabled.store(
        spans_enabled_from_env_text(std::getenv("SEMLOCK_SPANS")),
        std::memory_order_relaxed);
  }
};
SpanRuntimeInit g_span_runtime_init;

}  // namespace

const char* span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kLockWait:
      return "lock_wait";
    case SpanKind::kExec:
      return "exec";
    case SpanKind::kCommit:
      return "commit";
  }
  return "unknown";
}

bool spans_enabled() noexcept {
  return g_spans_enabled.load(std::memory_order_relaxed);
}

void set_spans_enabled(bool on) noexcept {
  g_spans_enabled.store(on, std::memory_order_relaxed);
}

bool spans_enabled_from_env_text(const char* text) {
  return util::env_bool_01("SEMLOCK_SPANS", text, "spans on").value_or(true);
}

std::uint32_t span_ring_capacity() noexcept {
  return g_span_ring_capacity.load(std::memory_order_relaxed);
}

void set_span_ring_capacity(std::uint32_t spans) noexcept {
  g_span_ring_capacity.store(spans < SpanRing::kMinCapacity
                                 ? SpanRing::kMinCapacity
                                 : spans,
                             std::memory_order_relaxed);
}

std::uint64_t span_now_ns() noexcept { return steady_ns(); }

void record_span(const Span& s) {
  SpanThreadState& ts = span_thread_state();
  SpanRing* ring = ts.ring.load(std::memory_order_relaxed);
  if (ring == nullptr) {
    ring = new SpanRing(span_ring_capacity());
    ts.ring.store(ring, std::memory_order_release);
  }
  Span stamped = s;
  stamped.tid = ts.tid;
  ring->append(stamped);
}

void record_lock_wait_span(const void* instance, int mode,
                           std::uint64_t start_ns, std::uint64_t end_ns,
                           const BlockerInfo& b) {
  Span s;
  s.kind = SpanKind::kLockWait;
  s.start_ns = start_ns;
  s.end_ns = end_ns > start_ns ? end_ns : start_ns;
  s.txn = current_owner_id();
  s.instance = reinterpret_cast<std::uint64_t>(instance);
  s.mode = mode;
  s.blocker_mode = b.mode;
  s.attr_class = b.attr_class;
  s.blocker = b.owner;
  s.blocker_site = b.site;
  s.capture_ns = b.capture_ns;
  record_span(s);
}

void record_txn_spans(std::uint64_t exec_start_ns,
                      std::uint64_t commit_start_ns, std::uint64_t end_ns,
                      int released) {
  const std::uint64_t txn = current_owner_id();
  Span exec;
  exec.kind = SpanKind::kExec;
  exec.start_ns = exec_start_ns;
  exec.end_ns = commit_start_ns > exec_start_ns ? commit_start_ns
                                                : exec_start_ns;
  exec.txn = txn;
  exec.mode = released;
  record_span(exec);
  Span commit;
  commit.kind = SpanKind::kCommit;
  commit.start_ns = exec.end_ns;
  commit.end_ns = end_ns > exec.end_ns ? end_ns : exec.end_ns;
  commit.txn = txn;
  commit.mode = released;
  record_span(commit);
}

void record_queue_wait_span(std::uint64_t txn, std::uint64_t arrival_ns,
                            std::uint64_t dequeue_ns) {
  Span s;
  s.kind = SpanKind::kQueueWait;
  s.start_ns = arrival_ns < dequeue_ns ? arrival_ns : dequeue_ns;
  s.end_ns = dequeue_ns;
  s.txn = txn;
  record_span(s);
}

std::vector<ThreadSpans> snapshot_spans() {
  return SpanRegistry::instance().snapshot();
}

std::string format_owner(std::uint64_t owner) {
  if (owner == 0) return "?";
  if ((owner & 0x8000000000000000ull) != 0) {
    return "thread " + std::to_string(owner & 0x7FFFFFFFFFFFFFFFull);
  }
  return "txn " + std::to_string(owner);
}

void reset_spans_for_test() {
  SpanRegistry::instance().reset(&span_thread_state());
}

}  // namespace semlock::obs
