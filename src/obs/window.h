// Windowed metrics: epoch-rotated per-window deltas of the observability
// tallies (ISSUE 9, tentpole layer 1).
//
// The exit-dump metrics are cumulative-forever; a live service (and ROADMAP
// item 1's adaptive abstraction) needs *rates* — what happened in the last
// second, not since boot. WindowedMetrics runs a low-priority collector
// thread that every SEMLOCK_METRICS_WINDOW_MS:
//
//   1. samples the cumulative tallies that are safely readable mid-run:
//      the per-EventType counters (trace.h event_count_totals — exact and
//      live), the attribution-class totals, and the wait/hold histograms
//      (all folded under per-thread metrics locks by collect_metrics);
//   2. subtracts the previous sample (Log2Histogram::delta for the
//      histograms, plain subtraction for the counters) into a WindowStats;
//   3. publishes it into an N-slot ring of seqlock slots, the same
//      relaxed-payload/version-counter protocol as PR 5's AttrRecord, so
//      any thread can scrape the ring while the collector rotates and a
//      torn slot is detected and skipped, never misread.
//
// Cumulative totals remain exact at quiescence exactly as before — windows
// are an additional view, not a replacement. Everything here compiles away
// under -DSEMLOCK_OBS=OFF (the TU is only built with the option on).
//
// Environment knobs (strict parsing, util/env convention):
//   SEMLOCK_METRICS_WINDOW_MS  rotation cadence, 10..60000 (default 1000)
//   SEMLOCK_METRICS_WINDOWS    ring slots, 2..128 (default 8)
//
// SIGUSR2 resets the window baseline mid-run (the counterpart of SIGUSR1's
// snapshot): the handler only bumps an async-signal-safe counter, and the
// collector drains it at its next tick by rebasing without publishing the
// partial window. docs/OBSERVABILITY.md §10 documents both signals.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/attribution.h"
#include "obs/event.h"
#include "util/stats.h"

namespace semlock::obs {

inline constexpr std::uint64_t kDefaultWindowMs = 1000;
inline constexpr std::uint32_t kDefaultWindowSlots = 8;

// Testable strict parsers (tests/env_config_test.cpp). nullptr (unset)
// silently yields the default; malformed text warns once and falls back.
std::uint64_t metrics_window_ms_from_env_text(const char* text);
std::uint32_t metrics_windows_from_env_text(const char* text);

// One completed window: deltas over [start_ns, end_ns).
struct WindowStats {
  std::uint64_t seq = 0;       // rotation number, 1-based, monotonic
  std::uint64_t start_ns = 0;  // steady-clock window bounds
  std::uint64_t end_ns = 0;

  // Event-count deltas (from the exact per-thread counters in trace.cpp).
  std::uint64_t grants = 0;    // kAcquireGrant + kOptimisticHit
  std::uint64_t begins = 0;    // kAcquireBegin
  std::uint64_t contended = 0; // kContendedWait
  std::uint64_t parks = 0;     // kPark
  std::uint64_t diverts = 0;   // kBarrierDivert (grant-policy)
  std::uint64_t handoffs = 0;  // kGrantHandoff
  std::uint64_t releases = 0;  // kRelease

  // Classified contended waits by AttrClass, this window only.
  std::uint64_t attr_classes[kNumAttrClasses] = {};

  // Latency deltas: only this window's samples, so p50/p99/p999 are the
  // window's quantiles, not lifetime ones.
  util::Log2Histogram wait_hist;
  util::Log2Histogram hold_hist;
  std::uint64_t holds_paired = 0;

  double seconds() const {
    return end_ns > start_ns
               ? static_cast<double>(end_ns - start_ns) / 1e9
               : 0.0;
  }
  double acquisitions_per_sec() const {
    const double s = seconds();
    return s > 0.0 ? static_cast<double>(grants) / s : 0.0;
  }
  // Share of this window's classified waits that are abstraction artifacts
  // (phi collision, mode over-approximation, wrapper coarsening) out of all
  // conclusively classified waits (unsampled excluded). 0..100.
  double false_conflict_pct() const;

  // One JSON object per window (schema in docs/OBSERVABILITY.md §10).
  std::string to_json() const;
};

// The rotating collector plus its seqlock-published ring.
class WindowedMetrics {
 public:
  WindowedMetrics(std::uint32_t slots, std::uint64_t window_ms);
  WindowedMetrics(const WindowedMetrics&) = delete;
  WindowedMetrics& operator=(const WindowedMetrics&) = delete;
  ~WindowedMetrics();

  // Starts / stops the collector thread. Idempotent; stop() joins.
  void start();
  void stop();
  bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  // One synchronous rotation from the calling thread: sample, delta,
  // publish. The collector calls this on its cadence; tests call it
  // directly for deterministic rotation without a thread.
  void rotate_now();

  // Rebases the baseline to "now", discarding the current partial window
  // without publishing it. The SIGUSR2 drain calls this.
  void reset_window();

  // Seqlock-reads every published slot, newest first. Torn slots (the
  // collector mid-publish) are skipped and counted in torn_reads().
  std::vector<WindowStats> snapshot() const;

  std::uint64_t window_ms() const { return window_ms_; }
  std::uint32_t slots() const { return nslots_; }
  std::uint64_t rotations() const {
    return next_seq_.load(std::memory_order_acquire);
  }
  std::uint64_t torn_reads() const {
    return torn_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t resets() const {
    return resets_.load(std::memory_order_relaxed);
  }

  // {"window_ms": ..., "rotations": ..., "windows": [newest first]}
  std::string to_json() const;

 private:
  struct Slot;
  struct Baseline;

  void publish(const WindowStats& w);
  void collector_loop();
  void drain_reset_requests();

  const std::uint32_t nslots_;
  const std::uint64_t window_ms_;
  std::unique_ptr<Slot[]> ring_;
  std::unique_ptr<Baseline> base_;  // collector-side only
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::atomic<std::uint64_t> torn_reads_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread collector_;
};

// --- SIGUSR2 window reset ---------------------------------------------------

// Async-signal-safe: bumps the pending-reset counter; the collector's next
// tick (or the next rotate_now) drains it. SIGUSR2 calls this when the
// handler is installed.
void request_window_reset() noexcept;

// Installs the SIGUSR2 -> request_window_reset() handler. Called by
// WindowedMetrics::start(); tests may call it directly.
void install_window_reset_signal_handler() noexcept;

// Number of window resets performed so far (monotonic).
std::uint32_t window_resets() noexcept;

// --- process-wide collector -------------------------------------------------

// The lazily created process-wide instance, sized from the env knobs on
// first use. NOT started automatically — the admin endpoint
// (server/admin.h) or an explicit start_window_collector_from_env() call
// starts it, so a process that never asks for live metrics never runs the
// collector thread.
WindowedMetrics& global_windows();

// Starts global_windows() (idempotent) and installs the SIGUSR2 handler.
void start_window_collector_from_env();

}  // namespace semlock::obs
