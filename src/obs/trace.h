// Runtime core of the semantic-lock observability layer (ISSUE 4).
//
// Always compiled into the library unless -DSEMLOCK_OBS=OFF, and runtime-
// gated so a disabled trace costs one relaxed load + branch per hook:
//
//   - the process-wide switch (SEMLOCK_TRACE=1, or ScopedTraceEnable in
//     tests/benches) feeds the default of ModeTableConfig::trace_events;
//   - each LockMechanism caches its table's trace_events flag and emits
//     events/metrics only when it is set;
//   - per-thread state (the SPSC event ring of ring.h, AcquireStats, the
//     conflict/latency accumulators of metrics.h) registers itself with a
//     process-wide registry on first use and retires into it at thread
//     exit, so dumps and metrics include threads that are already gone.
//
// Environment knobs (strictly parsed; malformed values warn once on stderr
// and fall back, matching util/env convention):
//   SEMLOCK_TRACE=0|1        master switch (default 0).
//   SEMLOCK_TRACE_FILE=path  binary dump written at process exit when
//                            tracing is on (default "semlock_trace.bin";
//                            convert with tools/semlock-trace).
//   SEMLOCK_TRACE_EVENTS=N   per-thread ring capacity in events, rounded up
//                            to a power of two (default 8192, range
//                            64..4194304).
//   SEMLOCK_ATTRIBUTION=0|1, SEMLOCK_ATTRIBUTION_SAMPLE=N
//                            conflict-attribution knobs (obs/attribution.h).
//
// On-demand snapshots: SIGUSR1 (installed when SEMLOCK_TRACE=1) sets an
// async-signal-safe counter that the next emit() on any tracing thread
// drains by writing "<trace file>.snapN" plus a ".snapN.metrics.json"
// sidecar — a long bench or server can be inspected mid-run without waiting
// for the atexit dump.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.h"
#include "semlock/acquire_stats.h"

namespace semlock::obs {

// --- configuration ----------------------------------------------------------

inline constexpr std::uint32_t kDefaultRingEvents = 8192;
inline constexpr const char* kDefaultTraceFile = "semlock_trace.bin";

struct TraceConfig {
  bool enabled = false;
  std::uint32_t ring_events = kDefaultRingEvents;
  std::string file = kDefaultTraceFile;

  // Reads SEMLOCK_TRACE / SEMLOCK_TRACE_FILE / SEMLOCK_TRACE_EVENTS.
  static TraceConfig from_env();
};

// Testable strict parsers behind from_env (tests/env_config_test.cpp).
// nullptr (unset) silently yields the default; malformed text warns once on
// stderr naming the variable and falls back.
bool trace_enabled_from_env_text(const char* text);
std::uint32_t trace_ring_events_from_env_text(const char* text);
std::string trace_file_from_env_text(const char* text);

// --- process-wide runtime switch --------------------------------------------

namespace detail {
extern std::atomic<bool> g_runtime_enabled;
extern std::atomic<std::uint64_t> g_next_txn;

struct TxnTls {
  std::uint64_t id = 0;
  std::uint32_t depth = 0;
  // Id of the thread's most recently closed outermost transaction; lets the
  // server stamp a queue-wait span with the transaction its request ran as
  // (last_completed_txn) without threading ids through the backend API.
  std::uint64_t last_id = 0;
};
inline TxnTls& txn_tls() noexcept {
  thread_local TxnTls tls;
  return tls;
}
}  // namespace detail

// The ambient default for ModeTableConfig::trace_events and the gate for
// process-level events (transaction epilogues, harness marks).
inline bool runtime_enabled() noexcept {
  return detail::g_runtime_enabled.load(std::memory_order_relaxed);
}
void set_runtime_enabled(bool on) noexcept;

// RAII enable for tests and benches: tables compiled inside the scope trace
// by default, and process-level hooks fire.
class ScopedTraceEnable {
 public:
  ScopedTraceEnable() : prev_(runtime_enabled()) { set_runtime_enabled(true); }
  ScopedTraceEnable(const ScopedTraceEnable&) = delete;
  ScopedTraceEnable& operator=(const ScopedTraceEnable&) = delete;
  ~ScopedTraceEnable() { set_runtime_enabled(prev_); }

 private:
  bool prev_;
};

// Ring capacity used for threads that emit their first event from now on.
std::uint32_t ring_capacity() noexcept;
void set_ring_capacity(std::uint32_t events) noexcept;

// --- transaction identity ---------------------------------------------------
// Every outermost Transaction gets a process-unique id; events emitted while
// it is open are stamped with it. Nested transactions share the outer id.

inline void txn_begin() noexcept {
  detail::TxnTls& tls = detail::txn_tls();
  if (tls.depth++ == 0) {
    tls.id = detail::g_next_txn.fetch_add(1, std::memory_order_relaxed) + 1;
  }
}

inline void txn_end() noexcept {
  detail::TxnTls& tls = detail::txn_tls();
  if (tls.depth > 0 && --tls.depth == 0) {
    tls.last_id = tls.id;
    tls.id = 0;
  }
}

inline std::uint64_t current_txn() noexcept { return detail::txn_tls().id; }

// Most recently completed outermost transaction on this thread (0 if none).
inline std::uint64_t last_completed_txn() noexcept {
  return detail::txn_tls().last_id;
}

// Identity of the caller for attribution records: the open transaction id,
// or (outside any transaction) the thread's obs tid with the top bit set so
// the two id spaces never collide.
std::uint64_t current_owner_id() noexcept;

// This thread's small process-unique obs tid (registering it on first use).
// The span recorder (obs/span.h) stamps its records with it so a dump's
// span sections share the event sections' thread numbering.
std::uint32_t thread_obs_tid();

// --- emission (callers gate: LockMechanism on its cached trace_events flag,
// --- process-level sites on runtime_enabled()) ------------------------------

void emit(EventType type, const void* instance, int mode);

// Stashes the caller's lock-site id (LockSiteArgs::site, -1 = unknown) for
// the thread's NEXT grant event: lock()/try_lock() entry calls this, emit()
// consumes it when the grant lands, and the hold-time profiler stamps the
// resulting HoldSample with it. Thread-local, so interleaved acquisitions
// of different mechanisms on one thread each keep their own site.
void note_lock_site(std::int32_t site) noexcept;

// Exact per-EventType totals across all threads, live and retired. Each
// tracing thread owns a cache line of relaxed atomic counters bumped in
// emit() (single-writer, so the bump is a load+store, not an RMW); readers
// sum them race-free from any thread. This is the safely-scrapeable live
// view the window collector (obs/window.h) rotates against — the plain
// AcquireStats fast-path counters stay exact-at-quiescence only.
std::array<std::uint64_t, kNumEventTypes> event_count_totals();

// The thread's AcquireStats, owned by the obs thread state so the counters
// are folded into the MetricsRegistry at thread exit (merge-on-exit).
// semlock::local_acquire_stats() forwards here when SEMLOCK_OBS is on.
AcquireStats& thread_acquire_stats();

// Metrics hooks for the contended path of the lock mechanism.
void record_blocked_by(const void* instance, int waiter_mode,
                       int holder_mode);
void record_wait(const void* instance, int mode, std::uint64_t wait_ns);
// One classified contended wait (attr_class is an obs::AttrClass index);
// folded into the per-instance and per-mode-pair attribution tallies of
// MetricsSnapshot. Called by obs::record_attribution (obs/attribution.h).
void record_attribution_tally(const void* instance, int waiter_mode,
                              int holder_mode, std::uint32_t attr_class);

// --- snapshots and dumps ----------------------------------------------------

struct ThreadTrace {
  std::uint32_t tid = 0;  // small process-unique thread number
  bool live = false;      // still registered at snapshot time
  std::vector<Event> events;  // oldest first
};

// Retired threads' retained events plus a racy-but-consistent snapshot of
// the live threads' rings, ordered by tid.
std::vector<ThreadTrace> snapshot_traces();

// Human-readable post-mortem for a stalled wait: which conflicting modes
// are held, the transaction that last acquired each, and the tail of the
// per-thread rings filtered to the instance. Called by the StallWatchdog.
std::string stall_forensics(
    const void* instance, int waited_mode,
    const std::vector<std::pair<int, std::uint32_t>>& conflicting_holders,
    std::size_t tail_events = 16);

// Writes the binary trace dump (events + metrics; format in export.h) to
// `path`. Returns false (with a stderr line) on I/O failure.
bool write_dump(const std::string& path);

// --- on-demand mid-run snapshots --------------------------------------------

// Async-signal-safe: bumps the pending-snapshot counter. The next emit() on
// any tracing thread claims it and writes "<trace file>.snapN" (binary dump)
// plus "<trace file>.snapN.metrics.json". SIGUSR1 calls this when the
// handler is installed.
void request_snapshot() noexcept;

// Installs the SIGUSR1 -> request_snapshot() handler. Done automatically at
// startup when SEMLOCK_TRACE=1; tests and benches that enable tracing via
// ScopedTraceEnable call it themselves.
void install_snapshot_signal_handler() noexcept;

// Number of snapshot files written so far (monotonic across the process).
std::uint32_t snapshots_written() noexcept;

// Sets the base path snapshots (and the atexit dump, when enabled) derive
// their names from. Overrides SEMLOCK_TRACE_FILE.
void set_trace_file(const std::string& path);

// Test hook: drops retired-thread data, zeroes the folded global totals and
// the calling thread's own ring/stats/accumulators, and resets the txn
// counter. Other live threads are left untouched.
void reset_for_test();

}  // namespace semlock::obs
