// The window collector and its seqlock ring. See window.h for the design.
#include "obs/window.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"

namespace semlock::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

// --- env knobs --------------------------------------------------------------

std::uint64_t metrics_window_ms_from_env_text(const char* text) {
  char fallback[48];
  std::snprintf(fallback, sizeof(fallback), "%llu ms",
                static_cast<unsigned long long>(kDefaultWindowMs));
  return static_cast<std::uint64_t>(
      util::env_int_in_range("SEMLOCK_METRICS_WINDOW_MS", text, 10, 60000,
                             fallback)
          .value_or(static_cast<long long>(kDefaultWindowMs)));
}

std::uint32_t metrics_windows_from_env_text(const char* text) {
  char fallback[48];
  std::snprintf(fallback, sizeof(fallback), "%u windows",
                kDefaultWindowSlots);
  return static_cast<std::uint32_t>(
      util::env_int_in_range("SEMLOCK_METRICS_WINDOWS", text, 2, 128,
                             fallback)
          .value_or(kDefaultWindowSlots));
}

// --- WindowStats ------------------------------------------------------------

double WindowStats::false_conflict_pct() const {
  std::uint64_t classified = 0;
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    classified += attr_classes[c];
  }
  classified -= attr_classes[static_cast<std::size_t>(AttrClass::kUnsampled)];
  if (classified == 0) return 0.0;
  const std::uint64_t artifacts =
      attr_classes[static_cast<std::size_t>(AttrClass::kPhiCollision)] +
      attr_classes[static_cast<std::size_t>(AttrClass::kModeOverapprox)] +
      attr_classes[static_cast<std::size_t>(AttrClass::kWrapperCoarsening)];
  return 100.0 * static_cast<double>(artifacts) /
         static_cast<double>(classified);
}

std::string WindowStats::to_json() const {
  std::string out = "{\"seq\": ";
  append_u64(out, seq);
  out += ", \"start_ns\": ";
  append_u64(out, start_ns);
  out += ", \"end_ns\": ";
  append_u64(out, end_ns);
  out += ", \"grants\": ";
  append_u64(out, grants);
  out += ", \"begins\": ";
  append_u64(out, begins);
  out += ", \"contended\": ";
  append_u64(out, contended);
  out += ", \"parks\": ";
  append_u64(out, parks);
  out += ", \"diverts\": ";
  append_u64(out, diverts);
  out += ", \"handoffs\": ";
  append_u64(out, handoffs);
  out += ", \"releases\": ";
  append_u64(out, releases);
  out += ", \"acquisitions_per_sec\": ";
  append_double(out, acquisitions_per_sec());
  out += ", \"false_conflict_pct\": ";
  append_double(out, false_conflict_pct());
  out += ", \"attribution\": {";
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    if (c > 0) out += ", ";
    out += '"';
    out += attr_class_key(static_cast<AttrClass>(c));
    out += "\": ";
    append_u64(out, attr_classes[c]);
  }
  out += "}, \"waits\": ";
  append_u64(out, wait_hist.count());
  out += ", \"wait_p50_ns\": ";
  append_u64(out, wait_hist.p50());
  out += ", \"wait_p99_ns\": ";
  append_u64(out, wait_hist.p99());
  out += ", \"wait_p999_ns\": ";
  append_u64(out, wait_hist.p999());
  out += ", \"holds_paired\": ";
  append_u64(out, holds_paired);
  out += ", \"hold_p50_ns\": ";
  append_u64(out, hold_hist.p50());
  out += ", \"hold_p99_ns\": ";
  append_u64(out, hold_hist.p99());
  out += ", \"hold_p999_ns\": ";
  append_u64(out, hold_hist.p999());
  out += '}';
  return out;
}

// --- the seqlock ring -------------------------------------------------------

namespace {

// Fixed word layout of one published WindowStats. The histogram counts are
// recomputed from the buckets on decode (Log2Histogram::load), so only the
// buckets and totals travel.
constexpr std::size_t kHistWords = util::Log2Histogram::kBuckets + 1;
constexpr std::size_t kFixedWords = 3 /* seq,start,end */ +
                                    7 /* event deltas */ + kNumAttrClasses;
constexpr std::size_t kPayloadWords = kFixedWords + 2 * kHistWords +
                                      1 /* holds_paired */;

}  // namespace

// Same protocol as PR 5's AttrRecord (obs/attribution.h): the version word
// goes even->odd, the payload words are relaxed atomic stores (so a racing
// reader is exact under TSan), then even again with release; readers
// validate by re-reading the version across an acquire fence. Single
// writer here (the collector), so the odd transition is a plain store, not
// a CAS.
struct WindowedMetrics::Slot {
  std::atomic<std::uint64_t> version{0};  // 0 = never written
  std::atomic<std::uint64_t> words[kPayloadWords] = {};
};

struct WindowedMetrics::Baseline {
  std::array<std::uint64_t, kNumEventTypes> events{};
  std::uint64_t attr_classes[kNumAttrClasses] = {};
  util::Log2Histogram wait_hist;
  util::Log2Histogram hold_hist;
  std::uint64_t holds_paired = 0;
  std::uint64_t window_start_ns = 0;

  // The collector's sleep/stop handshake lives with the baseline so the
  // header stays free of <mutex>.
  std::mutex mu;
  std::condition_variable cv;
};

WindowedMetrics::WindowedMetrics(std::uint32_t slots, std::uint64_t window_ms)
    : nslots_(slots < 2 ? 2 : slots),
      window_ms_(window_ms < 1 ? 1 : window_ms),
      ring_(new Slot[nslots_]),
      base_(new Baseline) {
  base_->window_start_ns = now_ns();
}

WindowedMetrics::~WindowedMetrics() { stop(); }

namespace {

struct CumulativeSample {
  std::array<std::uint64_t, kNumEventTypes> events;
  std::uint64_t attr_classes[kNumAttrClasses] = {};
  util::Log2Histogram wait_hist;
  util::Log2Histogram hold_hist;
  std::uint64_t holds_paired = 0;
};

CumulativeSample take_sample() {
  CumulativeSample s;
  s.events = event_count_totals();
  const MetricsSnapshot m = collect_metrics();
  for (const AttributionCell& cell : m.attribution) {
    for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
      s.attr_classes[c] += cell.counts[c];
    }
  }
  s.wait_hist = m.wait_hist;
  s.hold_hist = m.hold_hist;
  s.holds_paired = m.holds_paired;
  return s;
}

std::uint64_t ev(const std::array<std::uint64_t, kNumEventTypes>& a,
                 EventType t) {
  return a[static_cast<std::size_t>(t)];
}

std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

void WindowedMetrics::rotate_now() {
  drain_reset_requests();
  const CumulativeSample cur = take_sample();
  const std::uint64_t end = now_ns();

  WindowStats w;
  w.seq = next_seq_.load(std::memory_order_relaxed) + 1;
  w.start_ns = base_->window_start_ns;
  w.end_ns = end;
  const auto d = [&](EventType t) {
    return sub_sat(ev(cur.events, t),
                   base_->events[static_cast<std::size_t>(t)]);
  };
  w.grants = d(EventType::kAcquireGrant) + d(EventType::kOptimisticHit);
  w.begins = d(EventType::kAcquireBegin);
  w.contended = d(EventType::kContendedWait);
  w.parks = d(EventType::kPark);
  w.diverts = d(EventType::kBarrierDivert);
  w.handoffs = d(EventType::kGrantHandoff);
  w.releases = d(EventType::kRelease);
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    w.attr_classes[c] = sub_sat(cur.attr_classes[c], base_->attr_classes[c]);
  }
  w.wait_hist = cur.wait_hist.delta(base_->wait_hist);
  w.hold_hist = cur.hold_hist.delta(base_->hold_hist);
  w.holds_paired = sub_sat(cur.holds_paired, base_->holds_paired);

  publish(w);

  base_->events = cur.events;
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    base_->attr_classes[c] = cur.attr_classes[c];
  }
  base_->wait_hist = cur.wait_hist;
  base_->hold_hist = cur.hold_hist;
  base_->holds_paired = cur.holds_paired;
  base_->window_start_ns = end;
  next_seq_.store(w.seq, std::memory_order_release);
}

void WindowedMetrics::reset_window() {
  const CumulativeSample cur = take_sample();
  base_->events = cur.events;
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    base_->attr_classes[c] = cur.attr_classes[c];
  }
  base_->wait_hist = cur.wait_hist;
  base_->hold_hist = cur.hold_hist;
  base_->holds_paired = cur.holds_paired;
  base_->window_start_ns = now_ns();
  resets_.fetch_add(1, std::memory_order_relaxed);
}

void WindowedMetrics::publish(const WindowStats& w) {
  Slot& slot = ring_[static_cast<std::size_t>(w.seq % nslots_)];
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::size_t i = 0;
  const auto put = [&](std::uint64_t value) {
    slot.words[i++].store(value, std::memory_order_relaxed);
  };
  put(w.seq);
  put(w.start_ns);
  put(w.end_ns);
  put(w.grants);
  put(w.begins);
  put(w.contended);
  put(w.parks);
  put(w.diverts);
  put(w.handoffs);
  put(w.releases);
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) put(w.attr_classes[c]);
  for (std::size_t b = 0; b < util::Log2Histogram::kBuckets; ++b) {
    put(w.wait_hist.bucket(b));
  }
  put(w.wait_hist.total());
  for (std::size_t b = 0; b < util::Log2Histogram::kBuckets; ++b) {
    put(w.hold_hist.bucket(b));
  }
  put(w.hold_hist.total());
  put(w.holds_paired);
  slot.version.store(v + 2, std::memory_order_release);
}

std::vector<WindowStats> WindowedMetrics::snapshot() const {
  std::vector<WindowStats> out;
  out.reserve(nslots_);
  for (std::uint32_t s = 0; s < nslots_; ++s) {
    const Slot& slot = ring_[s];
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0) continue;  // never written
    if ((v1 & 1) != 0) {    // collector mid-publish
      torn_reads_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    WindowStats w;
    std::size_t i = 0;
    const auto get = [&] {
      return slot.words[i++].load(std::memory_order_relaxed);
    };
    w.seq = get();
    w.start_ns = get();
    w.end_ns = get();
    w.grants = get();
    w.begins = get();
    w.contended = get();
    w.parks = get();
    w.diverts = get();
    w.handoffs = get();
    w.releases = get();
    for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
      w.attr_classes[c] = get();
    }
    std::uint64_t buckets[util::Log2Histogram::kBuckets];
    for (std::uint64_t& b : buckets) b = get();
    w.wait_hist.load(buckets, get());
    for (std::uint64_t& b : buckets) b = get();
    w.hold_hist.load(buckets, get());
    w.holds_paired = get();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != v1) {
      torn_reads_.fetch_add(1, std::memory_order_relaxed);
      continue;  // rotated under us — skip rather than misreport
    }
    out.push_back(std::move(w));
  }
  std::sort(out.begin(), out.end(),
            [](const WindowStats& a, const WindowStats& b) {
              return a.seq > b.seq;
            });
  return out;
}

std::string WindowedMetrics::to_json() const {
  std::string out = "{\"window_ms\": ";
  append_u64(out, window_ms_);
  out += ", \"slots\": ";
  append_u64(out, nslots_);
  out += ", \"rotations\": ";
  append_u64(out, rotations());
  out += ", \"torn_reads\": ";
  append_u64(out, torn_reads());
  out += ", \"resets\": ";
  append_u64(out, resets());
  out += ", \"windows\": [";
  const std::vector<WindowStats> windows = snapshot();
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) out += ", ";
    out += windows[i].to_json();
  }
  out += "]}";
  return out;
}

// --- collector thread -------------------------------------------------------

void WindowedMetrics::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;  // already running
  }
  stop_requested_.store(false, std::memory_order_release);
  base_->window_start_ns = now_ns();
  install_window_reset_signal_handler();
  collector_ = std::thread([this] { collector_loop(); });
}

void WindowedMetrics::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> g(base_->mu);
    stop_requested_.store(true, std::memory_order_release);
  }
  base_->cv.notify_all();
  if (collector_.joinable()) collector_.join();
  running_.store(false, std::memory_order_release);
}

void WindowedMetrics::collector_loop() {
  std::unique_lock<std::mutex> lk(base_->mu);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    base_->cv.wait_for(lk, std::chrono::milliseconds(window_ms_), [this] {
      return stop_requested_.load(std::memory_order_acquire);
    });
    if (stop_requested_.load(std::memory_order_acquire)) break;
    lk.unlock();
    rotate_now();
    lk.lock();
  }
}

// --- SIGUSR2 window reset ---------------------------------------------------

namespace {

// Pending vs. claimed reset requests: the signal handler only increments
// (async-signal-safe); the collector's tick drains the gap. Same pattern as
// the SIGUSR1 snapshot counters in trace.cpp.
std::atomic<std::uint32_t> g_reset_requests{0};
std::atomic<std::uint32_t> g_reset_claims{0};
std::atomic<std::uint32_t> g_resets_done{0};

extern "C" void window_reset_signal_handler(int) { request_window_reset(); }

}  // namespace

void request_window_reset() noexcept {
  g_reset_requests.fetch_add(1, std::memory_order_release);
}

void install_window_reset_signal_handler() noexcept {
#if defined(SIGUSR2)
  std::signal(SIGUSR2, &window_reset_signal_handler);
#endif
}

std::uint32_t window_resets() noexcept {
  return g_resets_done.load(std::memory_order_relaxed);
}

void WindowedMetrics::drain_reset_requests() {
  const std::uint32_t pending =
      g_reset_requests.load(std::memory_order_acquire);
  std::uint32_t claimed = g_reset_claims.load(std::memory_order_relaxed);
  if (claimed >= pending) return;
  // Claim every pending request with one reset: N rapid SIGUSR2s mean "drop
  // the partial window", not "reset N times".
  if (!g_reset_claims.compare_exchange_strong(claimed, pending,
                                              std::memory_order_acq_rel)) {
    return;  // another collector instance took them
  }
  reset_window();
  g_resets_done.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "[semlock] window baseline reset (SIGUSR2)\n");
}

// --- process-wide collector -------------------------------------------------

WindowedMetrics& global_windows() {
  // Leaky for the same reason as the trace registry: scrapers may race
  // static destruction at exit.
  static WindowedMetrics* w = new WindowedMetrics(
      metrics_windows_from_env_text(std::getenv("SEMLOCK_METRICS_WINDOWS")),
      metrics_window_ms_from_env_text(
          std::getenv("SEMLOCK_METRICS_WINDOW_MS")));
  return *w;
}

void start_window_collector_from_env() { global_windows().start(); }

}  // namespace semlock::obs
