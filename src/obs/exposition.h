// Prometheus text exposition (format 0.0.4) for the observability tallies,
// plus the strict grammar validator CI scrapes are checked against (ISSUE 9).
//
// The renderer is dependency-free string building: PromBuilder handles the
// HELP/TYPE preamble ordering and label escaping the format requires, and
// render_prometheus() maps the cumulative tallies (event counters, the
// attribution classes, the wait/hold histograms) plus the newest window's
// rates onto stable metric names:
//
//   semlock_acquisitions_total                     counter (grant+optimistic)
//   semlock_events_total{type=...}                 counter per EventType
//   semlock_attributed_waits_total{attribution_class=...}
//   semlock_blocked_by_total{waiter_mode=,holder_mode=}
//   semlock_wait_ns / semlock_hold_ns              histograms (log2 buckets)
//   semlock_holds_unmatched_total                  counter
//   semlock_window_*                               gauges from the newest
//                                                  completed window
//
// Names and label keys are stable — dashboards and the CI smoke job depend
// on them. The server layer (server/admin.h) appends its own
// semlock_server_* family with the same builder; nothing here knows about
// the server.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"
#include "util/stats.h"

namespace semlock::obs {

// Incremental builder for one exposition page. Usage per metric family:
// help() then type() then one value() per label set. Label values are
// escaped per the format (backslash, double quote, newline).
class PromBuilder {
 public:
  void help(const std::string& name, const std::string& text);
  // `kind` is one of counter|gauge|histogram|summary|untyped.
  void type(const std::string& name, const std::string& kind);

  using Labels = std::vector<std::pair<std::string, std::string>>;
  void value(const std::string& name, const Labels& labels, double v);
  void value_u64(const std::string& name, const Labels& labels,
                 std::uint64_t v);

  // Appends a full Prometheus histogram (cumulative le buckets, +Inf,
  // _sum, _count) from a Log2Histogram. Bucket b's inclusive upper bound
  // is 2^b - 1 (bucket 0 holds only zero); empty tail buckets are elided.
  // `labels` ride on every series of the family.
  void histogram(const std::string& name, const Labels& labels,
                 const util::Log2Histogram& h);

  // The page so far, ending in the newline the format requires.
  const std::string& text() const { return out_; }

 private:
  std::string out_;
};

// Renders the full lock-runtime exposition page: cumulative counters from
// `events` (event_count_totals()) and `snap` (collect_metrics()), window
// gauges from `windows` (may be empty — the gauges are then omitted, not
// faked as zero).
std::string render_prometheus(const MetricsSnapshot& snap,
                              const std::array<std::uint64_t,
                                               kNumEventTypes>& events,
                              const std::vector<WindowStats>& windows);

// Strict line-level validator for text format 0.0.4. Checks: final
// newline; comment lines are well-formed HELP/TYPE with a valid metric
// name and known type; sample lines have a valid name, well-formed label
// pairs (escaped values, no trailing comma), and a parseable value
// (decimal, +Inf, -Inf, or NaN) with an optional integer timestamp; at
// most one HELP and one TYPE per metric, both before its first sample.
// On failure, *error names the offending line (1-based) and the reason.
bool validate_prometheus_text(const std::string& text,
                              std::string* error = nullptr);

}  // namespace semlock::obs
