#include "obs/exposition.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace semlock::obs {

namespace {

void append_escaped_label_value(std::string& out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_escaped_help(std::string& out, const std::string& v) {
  // HELP text escapes only backslash and newline.
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_labels(std::string& out, const PromBuilder::Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    append_escaped_label_value(out, labels[i].second);
    out += '"';
  }
  out += '}';
}

void append_double(std::string& out, double v) {
  // %.17g round-trips doubles; trims to the short form when exact.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the short form when it round-trips (counters are integers and
  // should read as such).
  char short_buf[64];
  std::snprintf(short_buf, sizeof(short_buf), "%g", v);
  out += std::strtod(short_buf, nullptr) == v ? short_buf : buf;
}

}  // namespace

void PromBuilder::help(const std::string& name, const std::string& text) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  append_escaped_help(out_, text);
  out_ += '\n';
}

void PromBuilder::type(const std::string& name, const std::string& kind) {
  out_ += "# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += kind;
  out_ += '\n';
}

void PromBuilder::value(const std::string& name, const Labels& labels,
                        double v) {
  out_ += name;
  append_labels(out_, labels);
  out_ += ' ';
  append_double(out_, v);
  out_ += '\n';
}

void PromBuilder::value_u64(const std::string& name, const Labels& labels,
                            std::uint64_t v) {
  out_ += name;
  append_labels(out_, labels);
  out_ += ' ';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  out_ += '\n';
}

void PromBuilder::histogram(const std::string& name, const Labels& labels,
                            const util::Log2Histogram& h) {
  const std::size_t top = h.max_bucket();  // one past last occupied
  std::uint64_t cumulative = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (std::size_t b = 0; b < top && b < 64; ++b) {
    cumulative += h.bucket(b);
    char le[32];
    std::snprintf(le, sizeof(le), "%llu",
                  static_cast<unsigned long long>((1ull << b) - 1));
    bucket_labels.back().second = le;
    value_u64(name + "_bucket", bucket_labels, cumulative);
  }
  bucket_labels.back().second = "+Inf";
  value_u64(name + "_bucket", bucket_labels, h.count());
  value_u64(name + "_sum", labels, h.total());
  value_u64(name + "_count", labels, h.count());
}

std::string render_prometheus(
    const MetricsSnapshot& snap,
    const std::array<std::uint64_t, kNumEventTypes>& events,
    const std::vector<WindowStats>& windows) {
  PromBuilder b;

  const std::uint64_t grants =
      events[static_cast<std::size_t>(EventType::kAcquireGrant)] +
      events[static_cast<std::size_t>(EventType::kOptimisticHit)];
  b.help("semlock_acquisitions_total",
         "Granted acquisitions (arbitrated grants + optimistic hits) of "
         "traced mechanisms");
  b.type("semlock_acquisitions_total", "counter");
  b.value_u64("semlock_acquisitions_total", {}, grants);

  b.help("semlock_events_total",
         "Observability events emitted, by event type");
  b.type("semlock_events_total", "counter");
  for (std::size_t t = 1; t < kNumEventTypes; ++t) {
    b.value_u64("semlock_events_total",
                {{"type", event_name(static_cast<EventType>(t))}}, events[t]);
  }

  b.help("semlock_attributed_waits_total",
         "Classified contended waits, by attribution class");
  b.type("semlock_attributed_waits_total", "counter");
  std::uint64_t attr_totals[kNumAttrClasses] = {};
  for (const AttributionCell& cell : snap.attribution) {
    for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
      attr_totals[c] += cell.counts[c];
    }
  }
  for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
    b.value_u64("semlock_attributed_waits_total",
                {{"attribution_class",
                  attr_class_key(static_cast<AttrClass>(c))}},
                attr_totals[c]);
  }

  b.help("semlock_blocked_by_total",
         "Contended-wait samples where waiter_mode observed holder_mode "
         "held (non-commuting pairs only)");
  b.type("semlock_blocked_by_total", "counter");
  for (const BlockedByCell& cell : snap.conflict_matrix) {
    char waiter[16], holder[16];
    std::snprintf(waiter, sizeof(waiter), "%d", cell.waiter);
    std::snprintf(holder, sizeof(holder), "%d", cell.holder);
    b.value_u64("semlock_blocked_by_total",
                {{"waiter_mode", waiter}, {"holder_mode", holder}},
                cell.count);
  }

  b.help("semlock_wait_ns", "Contended wait latency, nanoseconds");
  b.type("semlock_wait_ns", "histogram");
  b.histogram("semlock_wait_ns", {}, snap.wait_hist);

  b.help("semlock_hold_ns",
         "Critical-section hold time (grant to release), nanoseconds");
  b.type("semlock_hold_ns", "histogram");
  b.histogram("semlock_hold_ns", {}, snap.hold_hist);

  b.help("semlock_holds_unmatched_total",
         "Releases with no retained grant (tracing toggled mid-hold or "
         "open-hold table overflow)");
  b.type("semlock_holds_unmatched_total", "counter");
  b.value_u64("semlock_holds_unmatched_total", {}, snap.holds_unmatched);

  if (!windows.empty()) {
    const WindowStats& w = windows.front();  // newest first
    b.help("semlock_window_seq", "Rotation number of the newest window");
    b.type("semlock_window_seq", "gauge");
    b.value_u64("semlock_window_seq", {}, w.seq);

    b.help("semlock_window_seconds", "Length of the newest window");
    b.type("semlock_window_seconds", "gauge");
    b.value("semlock_window_seconds", {}, w.seconds());

    b.help("semlock_window_acquisitions_per_sec",
           "Granted acquisitions per second over the newest window");
    b.type("semlock_window_acquisitions_per_sec", "gauge");
    b.value("semlock_window_acquisitions_per_sec", {},
            w.acquisitions_per_sec());

    b.help("semlock_window_false_conflict_pct",
           "Abstraction-artifact share of classified waits in the newest "
           "window, percent");
    b.type("semlock_window_false_conflict_pct", "gauge");
    b.value("semlock_window_false_conflict_pct", {}, w.false_conflict_pct());

    b.help("semlock_window_attributed_waits",
           "Classified waits in the newest window, by attribution class");
    b.type("semlock_window_attributed_waits", "gauge");
    for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
      b.value_u64("semlock_window_attributed_waits",
                  {{"attribution_class",
                    attr_class_key(static_cast<AttrClass>(c))}},
                  w.attr_classes[c]);
    }

    b.help("semlock_window_wait_p99_ns",
           "p99 contended wait in the newest window (log2 resolution)");
    b.type("semlock_window_wait_p99_ns", "gauge");
    b.value_u64("semlock_window_wait_p99_ns", {}, w.wait_hist.p99());

    b.help("semlock_window_hold_p99_ns",
           "p99 hold time in the newest window (log2 resolution)");
    b.type("semlock_window_hold_p99_ns", "gauge");
    b.value_u64("semlock_window_hold_p99_ns", {}, w.hold_hist.p99());

    b.help("semlock_window_grant_diverts",
           "Grant-policy barrier diverts in the newest window");
    b.type("semlock_window_grant_diverts", "gauge");
    b.value_u64("semlock_window_grant_diverts", {}, w.diverts);

    b.help("semlock_window_grant_handoffs",
           "Ticketed grant handoffs in the newest window");
    b.type("semlock_window_grant_handoffs", "gauge");
    b.value_u64("semlock_window_grant_handoffs", {}, w.handoffs);
  }

  return b.text();
}

// --- validator ---------------------------------------------------------------

namespace {

bool valid_metric_name(const char* s, const char* end) {
  if (s == end) return false;
  if (!std::isalpha(static_cast<unsigned char>(*s)) && *s != '_' && *s != ':') {
    return false;
  }
  for (++s; s != end; ++s) {
    if (!std::isalnum(static_cast<unsigned char>(*s)) && *s != '_' &&
        *s != ':') {
      return false;
    }
  }
  return true;
}

bool valid_label_name(const char* s, const char* end) {
  if (s == end) return false;
  if (!std::isalpha(static_cast<unsigned char>(*s)) && *s != '_') return false;
  for (++s; s != end; ++s) {
    if (!std::isalnum(static_cast<unsigned char>(*s)) && *s != '_') {
      return false;
    }
  }
  return true;
}

bool valid_sample_value(const std::string& tok) {
  if (tok == "+Inf" || tok == "-Inf" || tok == "NaN" || tok == "Nan" ||
      tok == "nan") {
    return true;
  }
  if (tok.empty()) return false;
  char* end = nullptr;
  std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

struct FamilyState {
  bool saw_help = false;
  bool saw_type = false;
  bool saw_sample = false;
};

// The metric family a series belongs to: histogram series drop the
// _bucket/_sum/_count suffix so they attach to the TYPE'd base name.
std::string family_of(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t n = std::strlen(suffix);
    if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
      return name.substr(0, name.size() - n);
    }
  }
  return name;
}

bool fail(std::string* error, std::size_t line_no, const std::string& why) {
  if (error != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "line %zu: ", line_no);
    *error = buf + why;
  }
  return false;
}

}  // namespace

bool validate_prometheus_text(const std::string& text, std::string* error) {
  if (text.empty()) return fail(error, 0, "empty exposition");
  if (text.back() != '\n') {
    return fail(error, 0, "missing final newline");
  }

  std::vector<std::pair<std::string, FamilyState>> families;
  const auto family = [&](const std::string& name) -> FamilyState& {
    for (auto& f : families) {
      if (f.first == name) return f.second;
    }
    families.emplace_back(name, FamilyState{});
    return families.back().second;
  };

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // `# HELP name text` / `# TYPE name kind`; other comments are free-form.
      if (line.compare(0, 7, "# HELP ") == 0 ||
          line.compare(0, 7, "# TYPE ") == 0) {
        const bool is_help = line[2] == 'H';
        const std::size_t name_start = 7;
        const std::size_t name_end = line.find(' ', name_start);
        const std::size_t actual_end =
            name_end == std::string::npos ? line.size() : name_end;
        const std::string name =
            line.substr(name_start, actual_end - name_start);
        if (!valid_metric_name(name.c_str(), name.c_str() + name.size())) {
          return fail(error, line_no, "bad metric name in comment: " + name);
        }
        FamilyState& st = family(name);
        if (is_help) {
          if (st.saw_help) return fail(error, line_no, "duplicate HELP " + name);
          if (st.saw_sample) {
            return fail(error, line_no, "HELP after samples of " + name);
          }
          st.saw_help = true;
        } else {
          if (name_end == std::string::npos) {
            return fail(error, line_no, "TYPE missing kind");
          }
          const std::string kind = line.substr(name_end + 1);
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            return fail(error, line_no, "unknown TYPE kind: " + kind);
          }
          if (st.saw_type) return fail(error, line_no, "duplicate TYPE " + name);
          if (st.saw_sample) {
            return fail(error, line_no, "TYPE after samples of " + name);
          }
          st.saw_type = true;
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name = line.substr(0, i);
    if (!valid_metric_name(name.c_str(), name.c_str() + name.size())) {
      return fail(error, line_no, "bad metric name: " + name);
    }
    family(family_of(name)).saw_sample = true;

    if (i < line.size() && line[i] == '{') {
      ++i;  // past '{'
      bool first = true;
      while (true) {
        if (i >= line.size()) return fail(error, line_no, "unterminated labels");
        if (line[i] == '}') {
          ++i;
          break;
        }
        if (!first) {
          if (line[i] != ',') return fail(error, line_no, "expected ',' in labels");
          ++i;
        }
        first = false;
        const std::size_t lname_start = i;
        while (i < line.size() && line[i] != '=') ++i;
        if (i >= line.size()) return fail(error, line_no, "label missing '='");
        if (!valid_label_name(line.c_str() + lname_start, line.c_str() + i)) {
          return fail(error, line_no,
                      "bad label name: " + line.substr(lname_start,
                                                       i - lname_start));
        }
        ++i;  // past '='
        if (i >= line.size() || line[i] != '"') {
          return fail(error, line_no, "label value must be quoted");
        }
        ++i;  // past opening quote
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size() ||
                (line[i + 1] != '\\' && line[i + 1] != '"' &&
                 line[i + 1] != 'n')) {
              return fail(error, line_no, "bad escape in label value");
            }
            ++i;
          }
          ++i;
        }
        if (i >= line.size()) {
          return fail(error, line_no, "unterminated label value");
        }
        ++i;  // past closing quote
      }
    }

    if (i >= line.size() || line[i] != ' ') {
      return fail(error, line_no, "missing value separator");
    }
    ++i;
    const std::size_t value_end_sp = line.find(' ', i);
    const std::string value_tok =
        line.substr(i, value_end_sp == std::string::npos
                           ? std::string::npos
                           : value_end_sp - i);
    if (!valid_sample_value(value_tok)) {
      return fail(error, line_no, "bad sample value: " + value_tok);
    }
    if (value_end_sp != std::string::npos) {
      // Optional timestamp: a (possibly negative) integer.
      const std::string ts = line.substr(value_end_sp + 1);
      if (ts.empty()) return fail(error, line_no, "trailing space");
      char* end = nullptr;
      std::strtoll(ts.c_str(), &end, 10);
      if (end != ts.c_str() + ts.size()) {
        return fail(error, line_no, "bad timestamp: " + ts);
      }
    }
  }
  return true;
}

}  // namespace semlock::obs
