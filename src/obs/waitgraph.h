// Live wait-for graph (ISSUE 10).
//
// Every traced contended wait publishes one edge — waiter owner id →
// blocking owner id, tagged with the instance/mode and the blocker's lock
// site — into a fixed table of seqlock slots (the WaitRegistry scheme of
// runtime/wait_registry.h, with every field atomic so sampling is
// data-race-free under TSan). The edge is opened on entry to the contended
// path, its blocker refreshed at each park (the moment the PR 5 grant
// record is sampled), and cleared on grant — so a snapshot taken from any
// thread is the *current* blocked-by structure of the process.
//
// Consumers:
//   - the admin endpoint serves snapshots as /waitgraph (JSON, with cycles
//     flagged) and /waitgraph.dot (Graphviz);
//   - cycle detection names potential deadlocks before the StallWatchdog's
//     timeout fires (each waiter has at most one outgoing edge, so the
//     graph is functional and detection is a simple chain walk);
//   - the StallWatchdog appends the full blocker chain (txn -> txn -> ...)
//     for the stalled instance to its forensics report.
//
// Publication is best-effort diagnostics, like the WaitRegistry: with more
// than kWaitGraphSlots simultaneous waiters the overflow goes unobserved,
// and the lock mechanism never depends on the table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace semlock::obs {

inline constexpr int kWaitGraphSlots = 512;

// One sampled waiter -> blocker edge.
struct WaitGraphEdge {
  std::uint64_t waiter = 0;       // owner id (txn, or thread sentinel)
  std::uint64_t instance = 0;     // LockMechanism address
  std::int32_t mode = -1;         // mode the waiter wants
  std::uint64_t blocker = 0;      // owner id of the sampled holder; 0 none
  std::int32_t blocker_site = -1; // holder's LockSiteArgs::site
  std::uint64_t since_ns = 0;     // wait start, steady clock
};

// RAII publication of one wait's edge. Default-constructed inactive; open()
// claims the thread's slot (null-slot safe) and publishes, set_blocker()
// refreshes the blocker identity in place, the destructor clears the edge.
class WaitEdge {
 public:
  WaitEdge() = default;
  WaitEdge(const WaitEdge&) = delete;
  WaitEdge& operator=(const WaitEdge&) = delete;
  ~WaitEdge();

  void open(const void* instance, int mode, std::uint64_t waiter,
            std::uint64_t since_ns);
  void set_blocker(std::uint64_t blocker, std::int32_t site);

 private:
  void* slot_ = nullptr;
};

// Consistent sample of the current edges (skipping slots caught mid-write).
std::vector<WaitGraphEdge> snapshot_waitgraph();

// Cycles among the sampled edges: each inner vector is one cycle's owner
// ids in waiter->blocker order, starting from its smallest owner id so the
// representation is stable. A cycle here is a *potential* deadlock (the
// sampled blockers may be stale by microseconds), which is exactly the
// early-warning semantic the watchdog wants.
std::vector<std::vector<std::uint64_t>> waitgraph_cycles(
    const std::vector<WaitGraphEdge>& edges);

// {"schema":"semlock-waitgraph-v1","now_ns":...,"edges":[...],"cycles":[...]}
std::string waitgraph_json();

// Graphviz: digraph waitfor { "txn 3" -> "txn 7" [label="0x... mode 2"]; }
std::string waitgraph_dot();

// The blocker chain behind the wait on (instance, mode), rendered for the
// StallWatchdog forensics: "wait-for chain: txn 1 -> txn 2 -> txn 3\n", or
// "" when no matching edge is published. Walks waiter->blocker links up to
// max_depth, cutting (and annotating) cycles.
std::string waitgraph_chain(const void* instance, int mode,
                            std::size_t max_depth = 8);

}  // namespace semlock::obs
