// Conflict-attribution classifier and its runtime plumbing. The contract
// and decision tree live in attribution.h; this file is deliberately off the
// lock fast path — everything here runs only for sampled contended waits of
// traced mechanisms.
#include "obs/attribution.h"

#include <cstdlib>
#include <vector>

#include "obs/trace.h"
#include "semlock/lock_mechanism.h"
#include "semlock/mode.h"
#include "semlock/mode_table.h"
#include "util/env.h"

namespace semlock::obs {

const char* attr_class_name(AttrClass c) noexcept {
  switch (c) {
    case AttrClass::kTrueConflict: return "true conflict";
    case AttrClass::kSelfMode: return "self mode";
    case AttrClass::kPhiCollision: return "phi collision";
    case AttrClass::kModeOverapprox: return "mode overapprox";
    case AttrClass::kWrapperCoarsening: return "wrapper coarsening";
    case AttrClass::kUnsampled: return "unsampled";
  }
  return "unknown";
}

const char* attr_class_key(AttrClass c) noexcept {
  switch (c) {
    case AttrClass::kTrueConflict: return "true_conflict";
    case AttrClass::kSelfMode: return "self_mode";
    case AttrClass::kPhiCollision: return "phi_collision";
    case AttrClass::kModeOverapprox: return "mode_overapprox";
    case AttrClass::kWrapperCoarsening: return "wrapper_coarsening";
    case AttrClass::kUnsampled: return "unsampled";
  }
  return "unknown";
}

// --- grant records ----------------------------------------------------------

void attr_record_grant(AttrRecord& rec, std::uint64_t owner,
                       const LockSiteArgs* args) noexcept {
  std::uint32_t s = rec.seq.load(std::memory_order_relaxed);
  if (s & 1) return;  // another grantor mid-write: newest-wins, skip
  if (!rec.seq.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return;
  }
  rec.owner.store(owner, std::memory_order_relaxed);
  const bool usable = args != nullptr && args->site >= 0 &&
                      args->values.size() <= kAttrMaxVals;
  if (usable) {
    rec.site.store(args->site, std::memory_order_relaxed);
    rec.nvals.store(static_cast<std::uint32_t>(args->values.size()),
                    std::memory_order_relaxed);
    for (std::size_t i = 0; i < args->values.size(); ++i) {
      rec.vals[i].store(args->values[i], std::memory_order_relaxed);
    }
  } else {
    rec.site.store(-1, std::memory_order_relaxed);
    rec.nvals.store(0, std::memory_order_relaxed);
  }
  rec.logical_instance.store(args != nullptr ? args->logical_instance : 0,
                             std::memory_order_relaxed);
  rec.seq.store(s + 2, std::memory_order_release);
}

AttrSnapshot attr_read(const AttrRecord& rec) noexcept {
  AttrSnapshot out;
  const std::uint32_t s1 = rec.seq.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1) != 0) return out;  // never written / mid-write
  out.owner = rec.owner.load(std::memory_order_relaxed);
  out.logical_instance = rec.logical_instance.load(std::memory_order_relaxed);
  out.site = rec.site.load(std::memory_order_relaxed);
  out.nvals = rec.nvals.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < kAttrMaxVals; ++i) {
    out.vals[i] = rec.vals[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (rec.seq.load(std::memory_order_relaxed) != s1) return AttrSnapshot{};
  out.valid = out.site >= 0 && out.nvals <= kAttrMaxVals;
  return out;
}

// --- runtime gates ----------------------------------------------------------

namespace {

std::atomic<bool> g_attribution_enabled{true};
std::atomic<std::uint32_t> g_sample_every{1};

}  // namespace

bool attribution_enabled() noexcept {
  return g_attribution_enabled.load(std::memory_order_relaxed);
}

void set_attribution_enabled(bool on) noexcept {
  g_attribution_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t attribution_sample_every() noexcept {
  return g_sample_every.load(std::memory_order_relaxed);
}

void set_attribution_sample_every(std::uint32_t every) noexcept {
  g_sample_every.store(every == 0 ? 1 : every, std::memory_order_relaxed);
}

bool attribution_should_sample() noexcept {
  const std::uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  thread_local std::uint32_t counter = 0;
  return counter++ % every == 0;
}

bool attribution_enabled_from_env_text(const char* text) {
  return util::env_bool_01("SEMLOCK_ATTRIBUTION", text, "attribution on")
      .value_or(true);
}

std::uint32_t attribution_sample_from_env_text(const char* text) {
  return static_cast<std::uint32_t>(
      util::env_int_in_range("SEMLOCK_ATTRIBUTION_SAMPLE", text, 1, 1048576,
                             "classifying every contended wait")
          .value_or(1));
}

namespace {

// Reads the knobs once at static-init time, like TraceRuntimeInit does for
// the trace switch (trace.cpp).
struct AttributionEnvInit {
  AttributionEnvInit() {
    set_attribution_enabled(attribution_enabled_from_env_text(
        std::getenv("SEMLOCK_ATTRIBUTION")));
    set_attribution_sample_every(attribution_sample_from_env_text(
        std::getenv("SEMLOCK_ATTRIBUTION_SAMPLE")));
  }
};

const AttributionEnvInit g_attribution_env_init;

}  // namespace

// --- executed-ops table -----------------------------------------------------

namespace {

// Direct-mapped, fixed-size, lock-free. A slot is claimed seqlock-style by
// the first (instance, owner) pair that hashes to it; a colliding pair
// overwrites (newest-wins). The fast path — same pair noting another op —
// is a single fetch_or. A reader that races a reclaim gets mask 0 (absent),
// which classifies conservatively.
constexpr std::size_t kExecSlots = 2048;  // power of two

struct ExecSlot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint64_t> inst{0};
  std::atomic<std::uint64_t> owner{0};
  std::atomic<std::uint64_t> mask{0};
};

ExecSlot g_exec[kExecSlots];

std::size_t exec_index(std::uint64_t inst, std::uint64_t owner) noexcept {
  std::uint64_t z = inst ^ (owner * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::size_t>(z >> 32) & (kExecSlots - 1);
}

}  // namespace

void note_executed_op(const void* instance, std::uint64_t owner,
                      int method) noexcept {
  if (method < 0 || method >= 64) return;
  const std::uint64_t inst = reinterpret_cast<std::uint64_t>(instance);
  const std::uint64_t bit = 1ull << method;
  ExecSlot& slot = g_exec[exec_index(inst, owner)];
  std::uint32_t s = slot.seq.load(std::memory_order_acquire);
  if ((s & 1) == 0 && s != 0 &&
      slot.inst.load(std::memory_order_relaxed) == inst &&
      slot.owner.load(std::memory_order_relaxed) == owner) {
    // Fast path: our slot. A racing overwrite can divert this bit to the
    // new tenant's mask; a spurious bit only shrinks MODE_OVERAPPROX, so
    // the race is tolerated rather than locked away.
    slot.mask.fetch_or(bit, std::memory_order_relaxed);
    return;
  }
  if (s & 1) return;  // another writer mid-claim: drop this note
  if (!slot.seq.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    return;
  }
  slot.inst.store(inst, std::memory_order_relaxed);
  slot.owner.store(owner, std::memory_order_relaxed);
  slot.mask.store(bit, std::memory_order_relaxed);
  slot.seq.store(s + 2, std::memory_order_release);
}

std::uint64_t executed_ops_mask(const void* instance,
                                std::uint64_t owner) noexcept {
  const std::uint64_t inst = reinterpret_cast<std::uint64_t>(instance);
  const ExecSlot& slot = g_exec[exec_index(inst, owner)];
  const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1) != 0) return 0;
  if (slot.inst.load(std::memory_order_relaxed) != inst ||
      slot.owner.load(std::memory_order_relaxed) != owner) {
    return 0;
  }
  const std::uint64_t mask = slot.mask.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != s1) return 0;
  return mask;
}

void reset_executed_ops() noexcept {
  for (ExecSlot& slot : g_exec) {
    slot.seq.store(0, std::memory_order_relaxed);
    slot.inst.store(0, std::memory_order_relaxed);
    slot.owner.store(0, std::memory_order_relaxed);
    slot.mask.store(0, std::memory_order_relaxed);
  }
}

// --- the classifier ---------------------------------------------------------

namespace {

// A symbolic operation bound to the concrete values of one grant. Star
// arguments (and variables the record did not cover) stay unknown; a
// disequality atom over an unknown argument cannot be shown to hold.
struct ConcreteArg {
  bool known = false;
  commute::Value value = 0;
};

struct BoundOp {
  int method = -1;
  std::vector<ConcreteArg> args;
  AbstractOp abstract;  // the same op under phi, for the PHI_COLLISION test
};

// Binds site_set(site) of `snap` to its recorded values. When `exec_mask`
// is nonzero, ops whose spec method the owner never executed against this
// instance are dropped — the MODE_OVERAPPROX restriction.
std::vector<BoundOp> bind_ops(const ModeTable& table,
                              const AttrSnapshot& snap,
                              std::uint64_t exec_mask) {
  std::vector<BoundOp> out;
  const commute::SymbolicSet& set = table.site_set(snap.site);
  const std::vector<std::string>& vars = table.site_variables(snap.site);
  const commute::ValueAbstraction& phi = table.abstraction();
  for (const commute::SymOp& sop : set.ops()) {
    const int mi = table.spec().method_index(sop.method);
    if (mi < 0) continue;
    if (exec_mask != 0 && mi < 64 && (exec_mask >> mi & 1) == 0) continue;
    BoundOp b;
    b.method = mi;
    b.abstract.method = mi;
    for (const commute::SymArg& a : sop.args) {
      ConcreteArg c;
      AbstractArg abs = AbstractArg::star();
      if (a.kind == commute::SymArg::Kind::Const) {
        c = ConcreteArg{true, a.constant};
        abs = AbstractArg::of_const(a.constant);
      } else if (a.kind == commute::SymArg::Kind::Var) {
        for (std::size_t j = 0; j < vars.size(); ++j) {
          if (vars[j] == a.var) {
            if (j < snap.nvals) {
              c = ConcreteArg{true, snap.vals[j]};
              abs = AbstractArg::of_alpha(phi.alpha_of(snap.vals[j]));
            }
            break;
          }
        }
      }
      b.args.push_back(c);
      b.abstract.args.push_back(abs);
    }
    out.push_back(std::move(b));
  }
  return out;
}

// Concrete evaluation of the spec condition: a DNF clause holds only when
// every atom compares two KNOWN values that differ (mirrors the "definitely
// differ" discipline of mode.cpp, with concrete values instead of alphas).
bool concrete_ops_commute(const commute::AdtSpec& spec, const BoundOp& a,
                          const BoundOp& b) {
  const commute::CommCondition& cond = spec.condition(a.method, b.method);
  switch (cond.kind()) {
    case commute::CommCondition::Kind::Always: return true;
    case commute::CommCondition::Kind::Never: return false;
    case commute::CommCondition::Kind::Dnf: break;
  }
  for (const std::vector<commute::ArgsDiffer>& clause : cond.clauses()) {
    bool holds = true;
    for (const commute::ArgsDiffer& atom : clause) {
      const std::size_t li = static_cast<std::size_t>(atom.lhs_arg);
      const std::size_t ri = static_cast<std::size_t>(atom.rhs_arg);
      if (li >= a.args.size() || ri >= b.args.size() || !a.args[li].known ||
          !b.args[ri].known || a.args[li].value == b.args[ri].value) {
        holds = false;
        break;
      }
    }
    if (holds) return true;
  }
  return false;
}

}  // namespace

AttrClass classify_wait(const ModeTable& table, int waiter_mode,
                        const AttrSnapshot& waiter, int holder_mode,
                        const AttrSnapshot& holder,
                        std::uint64_t holder_exec_mask) {
  // Rule 1: the Section 3.4 wrapper collapse — the two transactions touch
  // DIFFERENT logical instances that share this mechanism.
  if (waiter.valid && holder.valid && waiter.logical_instance != 0 &&
      holder.logical_instance != 0 &&
      waiter.logical_instance != holder.logical_instance) {
    return AttrClass::kWrapperCoarsening;
  }
  // Rule 2: nothing to re-check the spec against.
  if (!waiter.valid || !holder.valid) {
    return waiter_mode == holder_mode ? AttrClass::kSelfMode
                                      : AttrClass::kUnsampled;
  }
  const commute::AdtSpec& spec = table.spec();
  const commute::ValueAbstraction& phi = table.abstraction();
  const std::vector<BoundOp> wops = bind_ops(table, waiter, 0);
  const std::vector<BoundOp> hops = bind_ops(table, holder, holder_exec_mask);
  // Rule 3: any concretely non-commuting pair makes the wait genuine.
  for (const BoundOp& w : wops) {
    for (const BoundOp& h : hops) {
      if (!concrete_ops_commute(spec, w, h)) {
        return waiter_mode == holder_mode ? AttrClass::kSelfMode
                                          : AttrClass::kTrueConflict;
      }
    }
  }
  // Rule 4: every pair commutes on the concrete values — so the abstract
  // conflict was manufactured. If some pair still fails the ABSTRACT check,
  // the only way (all its concrete atoms hold, so every abstractly-failing
  // atom compares known, differing values) is an alpha merge: PHI_COLLISION.
  for (const BoundOp& w : wops) {
    for (const BoundOp& h : hops) {
      if (!abstract_ops_commute(spec, phi, w.abstract, h.abstract)) {
        return AttrClass::kPhiCollision;
      }
    }
  }
  // Rule 5: even the abstract ops commute once the holder's set is
  // restricted to what it executed — the locked set was too big.
  return AttrClass::kModeOverapprox;
}

AttrClass record_attribution(const void* instance, const ModeTable& table,
                             int waiter_mode, const LockSiteArgs* waiter_args,
                             int holder_mode, const AttrRecord* holder_rec) {
  AttrSnapshot waiter;
  if (waiter_args != nullptr && waiter_args->site >= 0 &&
      waiter_args->values.size() <= kAttrMaxVals) {
    waiter.valid = true;
    waiter.site = waiter_args->site;
    waiter.nvals = static_cast<std::uint32_t>(waiter_args->values.size());
    for (std::size_t i = 0; i < waiter_args->values.size(); ++i) {
      waiter.vals[i] = waiter_args->values[i];
    }
    waiter.logical_instance = waiter_args->logical_instance;
    waiter.owner = current_owner_id();
  }
  AttrSnapshot holder;
  if (holder_rec != nullptr) {
    holder = attr_read(*holder_rec);
    // The record survives releases, so for a mode we ourselves held last it
    // describes OUR previous grant, not the current holder: discard rather
    // than "prove" a conflict against ourselves.
    if (holder.valid && waiter.valid && holder.owner == waiter.owner) {
      holder = AttrSnapshot{};
    }
  }
  const std::uint64_t exec_mask =
      holder.valid ? executed_ops_mask(instance, holder.owner) : 0;
  const AttrClass cls = classify_wait(table, waiter_mode, waiter, holder_mode,
                                      holder, exec_mask);
  record_attribution_tally(instance, waiter_mode, holder_mode,
                           static_cast<std::uint32_t>(cls));
  emit(EventType::kAttribution, instance, static_cast<int>(cls));
  return cls;
}

}  // namespace semlock::obs
