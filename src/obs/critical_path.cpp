#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "obs/attribution.h"

namespace semlock::obs {

namespace {

struct TxnProfile {
  std::uint64_t start_ns = ~0ull;  // earliest exec start
  std::uint64_t end_ns = 0;        // latest commit end
  std::uint64_t latency_ns = 0;    // summed exec+commit durations
  std::vector<Span> waits;         // the txn's lock-wait spans
};

std::uint64_t span_dur(const Span& s) noexcept {
  return s.end_ns > s.start_ns ? s.end_ns - s.start_ns : 0;
}

// Per-owner profiles from the dump's span sections. Keyed by the owner id
// (txn or thread sentinel); only owners with an exec span become
// transactions for tail purposes, but every owner's waits are kept so chain
// walking can follow blockers that never ran inside a Transaction.
std::unordered_map<std::uint64_t, TxnProfile> build_profiles(
    const TraceDump& dump) {
  std::unordered_map<std::uint64_t, TxnProfile> profiles;
  for (const ThreadSpans& t : dump.spans) {
    for (const Span& s : t.spans) {
      if (s.txn == 0) continue;
      TxnProfile& p = profiles[s.txn];
      switch (s.kind) {
        case SpanKind::kExec:
        case SpanKind::kCommit:
          p.latency_ns += span_dur(s);
          p.start_ns = std::min(p.start_ns, s.start_ns);
          p.end_ns = std::max(p.end_ns, s.end_ns);
          break;
        case SpanKind::kLockWait:
          p.waits.push_back(s);
          break;
        case SpanKind::kQueueWait:
          break;
      }
    }
  }
  return profiles;
}

void append_ns(std::string& out, std::uint64_t ns) {
  char buf[48];
  if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  out += buf;
}

// The longest blocking chain starting from `txn`'s worst wait: follow the
// blocker's own lock-wait spans that overlap the waiter's window.
std::string render_chain(
    std::uint64_t txn,
    const std::unordered_map<std::uint64_t, TxnProfile>& profiles,
    std::size_t max_depth = 8) {
  const auto it = profiles.find(txn);
  if (it == profiles.end() || it->second.waits.empty()) return "";
  const Span* worst = &it->second.waits.front();
  for (const Span& w : it->second.waits) {
    if (span_dur(w) > span_dur(*worst)) worst = &w;
  }
  std::string out = format_owner(txn);
  std::set<std::uint64_t> seen{txn};
  const Span* cur = worst;
  for (std::size_t depth = 0; depth < max_depth; ++depth) {
    out += " -(";
    append_ns(out, span_dur(*cur));
    char buf[96];
    std::snprintf(buf, sizeof(buf), " on 0x%llx mode %d %s)-> ",
                  static_cast<unsigned long long>(cur->instance), cur->mode,
                  attr_class_name(static_cast<AttrClass>(
                      cur->attr_class < kNumAttrClasses ? cur->attr_class
                                                        : 5)));
    out += buf;
    out += format_owner(cur->blocker);
    if (cur->blocker == 0) break;
    if (seen.count(cur->blocker) != 0) {
      out += " (cycle)";
      break;
    }
    seen.insert(cur->blocker);
    const auto bit = profiles.find(cur->blocker);
    if (bit == profiles.end()) break;
    // The blocker's own longest wait overlapping the time we spent blocked
    // on it: that is the next hop of the critical path.
    const Span* next = nullptr;
    for (const Span& w : bit->second.waits) {
      if (w.end_ns <= cur->start_ns || w.start_ns >= cur->end_ns) continue;
      if (next == nullptr || span_dur(w) > span_dur(*next)) next = &w;
    }
    if (next == nullptr) break;
    cur = next;
  }
  return out;
}

}  // namespace

CriticalPathStats analyze_critical_paths(const TraceDump& dump) {
  CriticalPathStats stats;
  const std::unordered_map<std::uint64_t, TxnProfile> profiles =
      build_profiles(dump);

  // Transactions (owners with exec time), ranked by latency for the tail.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> latencies;  // (lat,txn)
  for (const auto& [txn, p] : profiles) {
    if (p.latency_ns == 0) continue;
    latencies.emplace_back(p.latency_ns, txn);
  }
  stats.txns = latencies.size();
  if (latencies.empty()) return stats;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t p99_index =
      static_cast<std::size_t>(0.99 * static_cast<double>(latencies.size() - 1));
  stats.p99_threshold_ns = latencies[p99_index].first;

  std::map<std::tuple<std::uint64_t, std::int32_t, std::uint32_t>, TailGroup>
      groups;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> tail;  // (lat, txn)
  for (auto it = latencies.rbegin(); it != latencies.rend(); ++it) {
    if (it->first < stats.p99_threshold_ns) break;
    tail.push_back(*it);
  }
  stats.tail_txns = tail.size();
  for (const auto& [latency, txn] : tail) {
    stats.tail_latency_ns += latency;
    const TxnProfile& p = profiles.at(txn);
    for (const Span& w : p.waits) {
      const std::uint64_t dur = span_dur(w);
      stats.tail_blocked_ns += dur;
      TailGroup& g = groups[{w.instance, w.mode, w.attr_class}];
      g.instance = w.instance;
      g.mode = w.mode;
      g.attr_class = w.attr_class;
      g.blocked_ns += dur;
      g.waits += 1;
    }
  }
  for (auto& [key, g] : groups) {
    (void)key;
    g.share_of_tail_latency =
        stats.tail_latency_ns > 0
            ? static_cast<double>(g.blocked_ns) /
                  static_cast<double>(stats.tail_latency_ns)
            : 0.0;
    stats.groups.push_back(g);
  }
  std::sort(stats.groups.begin(), stats.groups.end(),
            [](const TailGroup& a, const TailGroup& b) {
              return a.blocked_ns > b.blocked_ns;
            });

  // Longest chains for the worst tail transactions (already latency-sorted,
  // worst first).
  constexpr std::size_t kMaxChains = 8;
  for (const auto& [latency, txn] : tail) {
    (void)latency;
    if (stats.chains.size() >= kMaxChains) break;
    std::string chain = render_chain(txn, profiles);
    if (!chain.empty()) stats.chains.push_back(std::move(chain));
  }
  return stats;
}

std::string critical_path_report(const TraceDump& dump) {
  const CriticalPathStats stats = analyze_critical_paths(dump);
  std::string out = "critical-path report\n";
  char buf[256];
  if (stats.txns == 0) {
    out += "  no transactions with exec spans in this dump (span recording "
           "off, or a pre-v5 dump)\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf),
                "  transactions: %zu, tail (p99+): %zu at >= ",
                stats.txns, stats.tail_txns);
  out += buf;
  append_ns(out, stats.p99_threshold_ns);
  out += "\n  tail latency total: ";
  append_ns(out, stats.tail_latency_ns);
  out += ", of which blocked on locks: ";
  append_ns(out, stats.tail_blocked_ns);
  std::snprintf(buf, sizeof(buf), " (%.1f%%)\n",
                stats.tail_latency_ns > 0
                    ? 100.0 * static_cast<double>(stats.tail_blocked_ns) /
                          static_cast<double>(stats.tail_latency_ns)
                    : 0.0);
  out += buf;

  out += "\n  tail blocked time by (instance, mode, attribution class):\n";
  if (stats.groups.empty()) {
    out += "    (no lock-wait spans on tail transactions)\n";
  }
  constexpr std::size_t kTopGroups = 12;
  for (std::size_t i = 0; i < stats.groups.size() && i < kTopGroups; ++i) {
    const TailGroup& g = stats.groups[i];
    const AttrClass cls = static_cast<AttrClass>(
        g.attr_class < kNumAttrClasses ? g.attr_class : 5);
    std::snprintf(buf, sizeof(buf),
                  "    0x%llx mode %d %-18s %6llu waits  ",
                  static_cast<unsigned long long>(g.instance), g.mode,
                  attr_class_name(cls),
                  static_cast<unsigned long long>(g.waits));
    out += buf;
    append_ns(out, g.blocked_ns);
    std::snprintf(buf, sizeof(buf), "  (%.1f%% of p99+ tail latency)\n",
                  100.0 * g.share_of_tail_latency);
    out += buf;
  }

  if (!stats.chains.empty()) {
    out += "\n  longest blocking chains (worst tail transactions):\n";
    for (const std::string& chain : stats.chains) {
      out += "    " + chain + "\n";
    }
  }
  return out;
}

std::vector<ReconstructedBlocker> reconstruct_blockers(const TraceDump& dump) {
  // Grant events across all threads, with the emitting thread's sentinel as
  // fallback owner — the event-stream ground truth the online capture (a
  // read of the PR 5 grant record at park time) must reproduce.
  struct GrantEvent {
    std::uint64_t ts_ns;
    std::uint64_t instance;
    std::int32_t mode;
    std::uint64_t owner;
  };
  std::vector<GrantEvent> grants;
  for (const ThreadTrace& t : dump.threads) {
    for (const Event& e : t.events) {
      if (e.type != EventType::kAcquireGrant &&
          e.type != EventType::kOptimisticHit) {
        continue;
      }
      GrantEvent g;
      g.ts_ns = e.ts_ns;
      g.instance = e.instance;
      g.mode = e.mode;
      g.owner = e.txn != 0 ? e.txn : (0x8000000000000000ull | t.tid);
      grants.push_back(g);
    }
  }
  std::sort(grants.begin(), grants.end(),
            [](const GrantEvent& a, const GrantEvent& b) {
              return a.ts_ns < b.ts_ns;
            });

  std::vector<ReconstructedBlocker> out;
  for (const ThreadSpans& t : dump.spans) {
    for (const Span& s : t.spans) {
      if (s.kind != SpanKind::kLockWait) continue;
      if (s.blocker_mode < 0 || s.capture_ns == 0) continue;
      ReconstructedBlocker r;
      r.waiter = s.txn;
      r.instance = s.instance;
      r.mode = s.mode;
      r.online = s.blocker;
      for (const GrantEvent& g : grants) {
        if (g.ts_ns > s.capture_ns) break;
        if (g.instance != s.instance || g.mode != s.blocker_mode) continue;
        if (g.owner == s.txn) continue;
        r.offline = g.owner;  // latest qualifying grant wins
      }
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace semlock::obs
