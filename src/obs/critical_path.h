// Tail critical-path attribution over a span dump (ISSUE 10).
//
// Input is a v5 trace dump (obs/export.h): per-thread span timelines whose
// lock-wait spans carry the blocking owner sampled at park time. From those
// this analyzer answers "why were the slow transactions slow":
//
//   1. per-transaction latency from the exec+commit spans;
//   2. the tail = transactions at or above the p99 latency;
//   3. each tail transaction's longest blocking chain, reconstructed by
//      following blocker owner ids into the blockers' own overlapping
//      lock-wait spans (txn A waited on B, B was itself waiting on C, ...);
//   4. tail blocked time aggregated by (instance, mode, attribution class)
//      with its share of total tail latency — the "φ-collisions on 3 hot
//      keys account for 41% of p99 latency" headline, and the exact signal
//      ROADMAP item 1's online φ-refiner wants to consume.
//
// Also here: the offline reconstruction of blocker identities from the raw
// *event* stream (grant/release points only, ignoring the online capture),
// which the DCT determinism tests compare against the online capture — on a
// deterministic schedule the two must agree exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.h"

namespace semlock::obs {

// One (instance, mode, attribution class) aggregate over tail transactions.
struct TailGroup {
  std::uint64_t instance = 0;
  std::int32_t mode = -1;           // the mode the tail txns waited in
  std::uint32_t attr_class = 5;     // AttrClass index; 5 = unsampled
  std::uint64_t blocked_ns = 0;     // tail lock-wait time in this group
  std::uint64_t waits = 0;          // tail lock-wait spans in this group
  double share_of_tail_latency = 0; // blocked_ns / total tail latency
};

struct CriticalPathStats {
  std::size_t txns = 0;       // transactions with an exec span in the dump
  std::size_t tail_txns = 0;  // those at or above the p99 threshold
  std::uint64_t p99_threshold_ns = 0;
  std::uint64_t tail_latency_ns = 0;  // summed exec+commit time of the tail
  std::uint64_t tail_blocked_ns = 0;  // summed lock-wait time of the tail
  std::vector<TailGroup> groups;      // sorted by blocked_ns, largest first
  std::vector<std::string> chains;    // rendered longest chains, worst first
};

CriticalPathStats analyze_critical_paths(const TraceDump& dump);

// Human-readable report backing `semlock-trace critical-path`.
std::string critical_path_report(const TraceDump& dump);

// Offline blocker reconstruction for one online lock-wait span: the owner
// of the latest grant event (kAcquireGrant/kOptimisticHit) on
// (span.instance, span.blocker_mode) at or before span.capture_ns, by an
// owner other than the waiter. Owner ids follow current_owner_id(): the
// event's txn, or the thread sentinel of the emitting tid when txn == 0.
struct ReconstructedBlocker {
  std::uint64_t waiter = 0;   // span.txn
  std::uint64_t instance = 0;
  std::int32_t mode = -1;     // waited mode
  std::uint64_t online = 0;   // blocker the runtime captured
  std::uint64_t offline = 0;  // blocker the event stream implies
};

// One entry per lock-wait span in the dump that sampled a blocker mode;
// the DCT test asserts online == offline for every entry.
std::vector<ReconstructedBlocker> reconstruct_blockers(const TraceDump& dump);

}  // namespace semlock::obs
