// Conflict attribution: WHY did a contended wait happen? (ISSUE 5.)
//
// The semantic-lock design trades precision for a finite lock table twice:
// the hash phi merges distinct concrete keys into n abstract values, and the
// mode bound widens symbolic sets (Section 5.3). PR 4's blocked-by matrix
// records THAT mode pairs blocked each other; this module re-runs the
// commutativity check on the CONCRETE argument values of the waiter and of
// the blocking mode's last grantee, and classifies every sampled contended
// wait as one of:
//
//   TRUE_CONFLICT      the concrete ops genuinely do not commute — the wait
//                      is semantically required, no tuning helps.
//   SELF_MODE          waiter and holder use the same non-self-commuting
//                      mode (the degenerate true conflict: same key, or no
//                      argument record to prove otherwise).
//   PHI_COLLISION      the concrete values commute, but phi.alpha_of merged
//                      them into one abstract value — raising
//                      ModeTableConfig::abstract_values dissolves the wait.
//   MODE_OVERAPPROX    the locked symbolic set contains operations the
//                      holding transaction never executed against this
//                      instance (tracked per (owner, instance) in a bounded
//                      best-effort table) — a tighter symbolic set would
//                      dissolve the wait.
//   WRAPPER_COARSENING both sides carry distinct logical-instance ids, i.e.
//                      the Section 3.4 global-wrapper collapse funnels
//                      unrelated instances through one mechanism.
//   UNSAMPLED          no stable argument record was available (torn
//                      seqlock read, record overwritten, or a caller that
//                      locked by bare mode id) — counted honestly instead
//                      of being folded into a guess.
//
// Everything here is off the fast path: classification runs only on entry
// to the contended wait loop of a TRACED mechanism, subject to
// SEMLOCK_ATTRIBUTION / SEMLOCK_ATTRIBUTION_SAMPLE. The per-mode grant
// records are seqlock-published so grantors never block and readers never
// see torn values. docs/OBSERVABILITY.md section 9 explains how to read the
// output; bench/bench_attribution_sweep.cpp turns it into the
// abstract_values tuning curve.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "commute/value.h"

namespace semlock {
class ModeTable;
struct LockSiteArgs;
}  // namespace semlock

namespace semlock::obs {

// --- classification outcome -------------------------------------------------

enum class AttrClass : std::uint32_t {
  kTrueConflict = 0,
  kSelfMode = 1,
  kPhiCollision = 2,
  kModeOverapprox = 3,
  kWrapperCoarsening = 4,
  kUnsampled = 5,
};

inline constexpr std::size_t kNumAttrClasses = 6;

// Human name ("true conflict") for reports and snake_case key
// ("true_conflict") for JSON. Stable — committed artifacts depend on them.
const char* attr_class_name(AttrClass c) noexcept;
const char* attr_class_key(AttrClass c) noexcept;

// --- the per-mode last-grant argument record --------------------------------

// Bounded copy of a grant's LockSiteArgs. Sites with more variables simply
// record no arguments (classified UNSAMPLED) — every shipped ADT uses one.
inline constexpr std::uint32_t kAttrMaxVals = 4;

// One record per (mechanism, mode), written at every grant of a traced
// mechanism while attribution is enabled. Multi-writer seqlock: a grantor
// CASes seq even->odd, stores the payload relaxed, releases seq even again;
// a grantor that loses the CAS skips (newest-wins is all a sampled profile
// needs). All payload words are relaxed atomics so concurrent readers are
// exact under TSan, validated by re-reading seq.
struct AttrRecord {
  std::atomic<std::uint32_t> seq{0};  // 0 = never written; odd = mid-write
  std::atomic<std::uint64_t> owner{0};
  std::atomic<std::uint64_t> logical_instance{0};
  std::atomic<std::int32_t> site{-1};
  std::atomic<std::uint32_t> nvals{0};
  std::atomic<commute::Value> vals[kAttrMaxVals] = {};
};

// A decoded, race-free copy of an AttrRecord (or of a waiter's own
// LockSiteArgs). `valid` means "carries a usable (site, values) tuple".
struct AttrSnapshot {
  bool valid = false;
  std::uint64_t owner = 0;
  std::uint64_t logical_instance = 0;
  std::int32_t site = -1;
  std::uint32_t nvals = 0;
  commute::Value vals[kAttrMaxVals] = {};
};

// Publishes a grant into `rec` (no-op when another grantor is mid-write).
void attr_record_grant(AttrRecord& rec, std::uint64_t owner,
                       const LockSiteArgs* args) noexcept;

// Seqlock read; returns an invalid snapshot on a torn or never-written
// record.
AttrSnapshot attr_read(const AttrRecord& rec) noexcept;

// --- runtime gates and env knobs --------------------------------------------

// SEMLOCK_ATTRIBUTION=0|1 (default 1): classification runs iff the
// mechanism is traced AND this is set — tracing alone already pays for the
// blocked-by matrix, attribution adds the concrete re-check on top.
bool attribution_enabled() noexcept;
void set_attribution_enabled(bool on) noexcept;

// SEMLOCK_ATTRIBUTION_SAMPLE=N (default 1, range 1..1048576): classify
// every Nth contended wait per thread.
std::uint32_t attribution_sample_every() noexcept;
void set_attribution_sample_every(std::uint32_t every) noexcept;

// Per-thread sampling decision (increments the thread's wait counter).
bool attribution_should_sample() noexcept;

// Testable strict parsers (util/env convention: nullptr is silent, malformed
// text warns once on stderr and falls back).
bool attribution_enabled_from_env_text(const char* text);
std::uint32_t attribution_sample_from_env_text(const char* text);

// --- executed-ops tracking (MODE_OVERAPPROX evidence) -----------------------

// Records that `owner` (txn id or thread sentinel, see current_owner_id())
// executed spec method `method` against `instance`. Bounded direct-mapped
// table, newest-wins on slot collision; a lost or polluted entry only makes
// classification more conservative (fewer MODE_OVERAPPROX), never wrong
// about TRUE_CONFLICT.
void note_executed_op(const void* instance, std::uint64_t owner,
                      int method) noexcept;

// Bitmask of spec method indices `owner` executed against `instance`
// (bit i = method i; methods >= 64 are never tracked). 0 = unknown.
std::uint64_t executed_ops_mask(const void* instance,
                                std::uint64_t owner) noexcept;

// Test hook: clears the executed-ops table (obs::reset_for_test calls it).
void reset_executed_ops() noexcept;

// --- the classifier ---------------------------------------------------------

// Pure decision tree over two argument snapshots (unit-testable without any
// lock traffic). `holder_exec_mask` restricts the holder's symbolic set to
// the ops its owner actually executed against this instance (0 = no
// restriction). Rules, in order:
//   1. both sides valid with distinct nonzero logical ids -> WRAPPER_COARSENING
//   2. either side lacks a usable record -> SELF_MODE if waiter_mode ==
//      holder_mode (the conflict is self-evident) else UNSAMPLED
//   3. any (waiter op, holder op) pair non-commuting on the concrete values
//      -> SELF_MODE if same mode else TRUE_CONFLICT
//   4. all pairs commute concretely but some pair fails the ABSTRACT check
//      through an alpha merge -> PHI_COLLISION
//   5. otherwise the conflict exists only between ops the holder never
//      executed -> MODE_OVERAPPROX
AttrClass classify_wait(const ModeTable& table, int waiter_mode,
                        const AttrSnapshot& waiter, int holder_mode,
                        const AttrSnapshot& holder,
                        std::uint64_t holder_exec_mask);

// Lock-path entry point (called from LockMechanism::lock_contended for each
// held conflicting mode of a sampled wait): builds the waiter snapshot from
// its live LockSiteArgs, seqlock-reads the holder's grant record (discarding
// it when it is the waiter's own previous grant), classifies, bumps the
// per-(instance, mode pair) tallies and emits a kAttribution event whose
// mode field is the AttrClass index. Returns the class assigned (kUnsampled
// when the holder record was torn or the waiter's own) so the span recorder
// can stamp the wait's lock-wait span with it.
AttrClass record_attribution(const void* instance, const ModeTable& table,
                             int waiter_mode, const LockSiteArgs* waiter_args,
                             int holder_mode, const AttrRecord* holder_rec);

}  // namespace semlock::obs
