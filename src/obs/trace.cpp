// Per-thread trace state, the process-wide registry it retires into, and
// the metrics fold. See trace.h for the lifecycle contract.
//
// Synchronization summary:
//   - the registry (live-thread list, retired data, dump path) is guarded
//     by a util::Spinlock; under DCT the spinlock is a schedule point, so
//     deterministic tests explore interleavings through here too;
//   - each thread's slow-path metric accumulators are guarded by a
//     per-thread spinlock (held by the owner in record_*, by the collector
//     in collect_metrics), so mid-run collection is race-free;
//   - each thread's AcquireStats is plain memory written on the acquire
//     fast path; it is folded only at retirement (merge-on-exit) or read
//     from the calling thread itself, so totals are exact once worker
//     threads have joined and no fast-path write is ever contended;
//   - event rings are SPSC with lock-free concurrent snapshot (ring.h).
//
// The registry itself is a leaky heap singleton: thread exit order versus
// static destruction order is unknowable across toolchains, and a retiring
// thread must always find the registry alive.
#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include <csignal>

#include "obs/attribution.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/ring.h"
#include "obs/span.h"
#include "util/env.h"
#include "util/spinlock.h"

namespace semlock::obs {

const char* event_name(EventType type) noexcept {
  switch (type) {
    case EventType::kNone: return "none";
    case EventType::kAcquireBegin: return "acquire_begin";
    case EventType::kAcquireGrant: return "acquire_grant";
    case EventType::kContendedWait: return "contended_wait";
    case EventType::kPark: return "park";
    case EventType::kUnpark: return "unpark";
    case EventType::kOptimisticHit: return "optimistic_hit";
    case EventType::kRetract: return "retract";
    case EventType::kRelease: return "release";
    case EventType::kUnlockAll: return "unlock_all";
    case EventType::kWatchdogStall: return "watchdog_stall";
    case EventType::kMark: return "mark";
    case EventType::kAttribution: return "attribution";
    case EventType::kBarrierDivert: return "barrier_divert";
    case EventType::kGrantHandoff: return "grant_handoff";
  }
  return "unknown";
}

namespace detail {
std::atomic<bool> g_runtime_enabled{false};
std::atomic<std::uint64_t> g_next_txn{0};
}  // namespace detail

namespace {

std::atomic<std::uint32_t> g_ring_capacity{kDefaultRingEvents};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// (waiter_mode, holder_mode) packed for the per-thread blocked-by map.
std::uint64_t pack_pair(std::int32_t waiter, std::int32_t holder) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(waiter))
          << 32) |
         static_cast<std::uint32_t>(holder);
}

struct InstanceAccum {
  std::uint64_t contended = 0;
  std::uint64_t waits = 0;
  std::uint64_t wait_ns = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> blocked_by;
  std::uint64_t attr_classes[kNumAttrClasses] = {};
};

using AttrCounts = std::array<std::uint64_t, kNumAttrClasses>;

// The slow-path accumulators, guarded by ThreadState::metrics_lock.
struct MetricsAccum {
  std::unordered_map<std::uint64_t, InstanceAccum> instances;
  // (waiter mode, holder mode) -> per-AttrClass counts of classified waits.
  std::unordered_map<std::uint64_t, AttrCounts> attr_pairs;
  util::Log2Histogram wait_hist;
  TopWaits top_waits;
  // Hold-time profiler tallies: one hold_hist sample per paired release
  // (hold_hist.count() == holds_paired by construction, the invariant
  // dct_trace_test pins against offline event pairing).
  util::Log2Histogram hold_hist;
  TopHolds top_holds;
  std::uint64_t holds_paired = 0;
  std::uint64_t holds_unmatched = 0;

  void merge_into(MetricsAccum& out) const {
    for (const auto& [inst, acc] : instances) {
      InstanceAccum& dst = out.instances[inst];
      dst.contended += acc.contended;
      dst.waits += acc.waits;
      dst.wait_ns += acc.wait_ns;
      for (const auto& [pair, n] : acc.blocked_by) dst.blocked_by[pair] += n;
      for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
        dst.attr_classes[c] += acc.attr_classes[c];
      }
    }
    for (const auto& [pair, counts] : attr_pairs) {
      AttrCounts& dst = out.attr_pairs[pair];
      for (std::size_t c = 0; c < kNumAttrClasses; ++c) dst[c] += counts[c];
    }
    out.wait_hist.merge(wait_hist);
    out.top_waits.merge(top_waits);
    out.hold_hist.merge(hold_hist);
    out.top_holds.merge(top_holds);
    out.holds_paired += holds_paired;
    out.holds_unmatched += holds_unmatched;
  }
};

// One grant the owning thread has not released yet. Plain owner-only state:
// pushed at grant, LIFO-matched at release, never read cross-thread.
struct OpenHold {
  std::uint64_t instance = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t txn = 0;
  std::int32_t mode = -1;
  std::int32_t site = -1;
};

// Bound on per-thread simultaneously open holds the profiler tracks. A
// transaction deeper than this sees its excess releases counted as
// unmatched rather than growing without bound.
constexpr std::size_t kMaxOpenHolds = 4096;

struct ThreadState {
  std::uint32_t tid = 0;
  // Created lazily on the first emitted event; published with release so
  // concurrent snapshotters see fully constructed storage.
  std::atomic<EventRing*> ring{nullptr};
  AcquireStats stats;  // fast-path counters; owner-written, folded on retire
  mutable util::Spinlock metrics_lock;
  MetricsAccum metrics;
  // Per-EventType tallies, bumped in emit(). Single-writer (the owner), so
  // the increment is a relaxed load+store pair — no RMW — while any thread
  // may sum them concurrently (event_count_totals, the window collector).
  std::atomic<std::uint64_t> event_counts[kNumEventTypes] = {};
  // Hold-time profiler working state (owner-only, see OpenHold).
  std::vector<OpenHold> open_holds;
  std::int32_t pending_site = -1;  // stashed by note_lock_site()

  ~ThreadState() { delete ring.load(std::memory_order_relaxed); }
};

struct RetiredEvents {
  std::uint32_t tid = 0;
  std::vector<Event> events;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry;  // leaky: see file comment
    return *r;
  }

  std::uint32_t register_thread(ThreadState* ts) {
    std::lock_guard<util::Spinlock> g(lock_);
    live_.push_back(ts);
    return next_tid_++;
  }

  void retire_thread(ThreadState* ts) {
    // Snapshot the ring outside the registry lock: the owner is retiring,
    // so the ring is quiescent and this is a plain read.
    std::vector<Event> events;
    if (EventRing* ring = ts->ring.load(std::memory_order_acquire)) {
      events = ring->snapshot();
    }
    std::lock_guard<util::Spinlock> g(lock_);
    live_.erase(std::remove(live_.begin(), live_.end(), ts), live_.end());
    retired_stats_.merge(ts->stats);
    ts->metrics.merge_into(retired_metrics_);
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      retired_event_counts_[i] +=
          ts->event_counts[i].load(std::memory_order_relaxed);
    }
    if (!events.empty()) {
      retired_event_count_ += events.size();
      retired_.push_back(RetiredEvents{ts->tid, std::move(events)});
      // Cap retained post-mortem data; evict whole oldest-retired threads
      // first (their events are the least likely to matter in a dump).
      while (retired_event_count_ > kMaxRetiredEvents && retired_.size() > 1) {
        retired_event_count_ -= retired_.front().events.size();
        retired_.pop_front();
      }
    }
  }

  std::vector<ThreadTrace> snapshot_traces() {
    std::lock_guard<util::Spinlock> g(lock_);
    std::vector<ThreadTrace> out;
    out.reserve(retired_.size() + live_.size());
    for (const RetiredEvents& r : retired_) {
      out.push_back(ThreadTrace{r.tid, false, r.events});
    }
    for (ThreadState* ts : live_) {
      ThreadTrace t;
      t.tid = ts->tid;
      t.live = true;
      if (EventRing* ring = ts->ring.load(std::memory_order_acquire)) {
        t.events = ring->snapshot();
      }
      out.push_back(std::move(t));
    }
    std::sort(out.begin(), out.end(),
              [](const ThreadTrace& a, const ThreadTrace& b) {
                return a.tid < b.tid;
              });
    return out;
  }

  std::array<std::uint64_t, kNumEventTypes> event_count_totals() {
    std::array<std::uint64_t, kNumEventTypes> out{};
    std::lock_guard<util::Spinlock> g(lock_);
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
      out[i] = retired_event_counts_[i];
    }
    for (ThreadState* ts : live_) {
      for (std::size_t i = 0; i < kNumEventTypes; ++i) {
        out[i] += ts->event_counts[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  MetricsSnapshot collect(ThreadState* self) {
    AcquireStats totals;
    MetricsAccum merged;
    {
      std::lock_guard<util::Spinlock> g(lock_);
      totals = retired_stats_;
      retired_metrics_.merge_into(merged);
      for (ThreadState* ts : live_) {
        std::lock_guard<util::Spinlock> tg(ts->metrics_lock);
        ts->metrics.merge_into(merged);
      }
    }
    // AcquireStats is fast-path plain memory: only the caller's own live
    // counters can be read without a race. Retired threads are already
    // folded, so totals are exact at quiescence.
    if (self != nullptr) totals.merge(self->stats);

    MetricsSnapshot snap;
    snap.acquire_totals = totals;
    snap.wait_hist = merged.wait_hist;
    snap.top_waits = merged.top_waits.sorted();
    snap.hold_hist = merged.hold_hist;
    snap.top_holds = merged.top_holds.sorted();
    snap.holds_paired = merged.holds_paired;
    snap.holds_unmatched = merged.holds_unmatched;
    std::unordered_map<std::uint64_t, std::uint64_t> matrix;
    for (const auto& [inst, acc] : merged.instances) {
      InstanceMetrics im;
      im.instance = inst;
      im.contended = acc.contended;
      im.waits = acc.waits;
      im.wait_ns = acc.wait_ns;
      for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
        im.attribution[c] = acc.attr_classes[c];
      }
      for (const auto& [pair, n] : acc.blocked_by) {
        im.blocked_by.push_back(BlockedByCell{
            static_cast<std::int32_t>(pair >> 32),
            static_cast<std::int32_t>(static_cast<std::uint32_t>(pair)), n});
        matrix[pair] += n;
      }
      std::sort(im.blocked_by.begin(), im.blocked_by.end(),
                [](const BlockedByCell& a, const BlockedByCell& b) {
                  return a.count > b.count;
                });
      snap.instances.push_back(std::move(im));
    }
    std::sort(snap.instances.begin(), snap.instances.end(),
              [](const InstanceMetrics& a, const InstanceMetrics& b) {
                return a.contended != b.contended ? a.contended > b.contended
                                                  : a.instance < b.instance;
              });
    for (const auto& [pair, n] : matrix) {
      snap.conflict_matrix.push_back(BlockedByCell{
          static_cast<std::int32_t>(pair >> 32),
          static_cast<std::int32_t>(static_cast<std::uint32_t>(pair)), n});
    }
    std::sort(snap.conflict_matrix.begin(), snap.conflict_matrix.end(),
              [](const BlockedByCell& a, const BlockedByCell& b) {
                return a.count != b.count ? a.count > b.count
                       : a.waiter != b.waiter ? a.waiter < b.waiter
                                              : a.holder < b.holder;
              });
    for (const auto& [pair, counts] : merged.attr_pairs) {
      AttributionCell cell;
      cell.waiter = static_cast<std::int32_t>(pair >> 32);
      cell.holder = static_cast<std::int32_t>(static_cast<std::uint32_t>(pair));
      for (std::size_t c = 0; c < kNumAttrClasses; ++c) {
        cell.counts[c] = counts[c];
      }
      snap.attribution.push_back(cell);
    }
    std::sort(snap.attribution.begin(), snap.attribution.end(),
              [](const AttributionCell& a, const AttributionCell& b) {
                const std::uint64_t ta = a.total();
                const std::uint64_t tb = b.total();
                return ta != tb ? ta > tb
                       : a.waiter != b.waiter ? a.waiter < b.waiter
                                              : a.holder < b.holder;
              });
    return snap;
  }

  void reset(ThreadState* self) {
    std::lock_guard<util::Spinlock> g(lock_);
    retired_.clear();
    retired_event_count_ = 0;
    retired_stats_ = AcquireStats{};
    retired_metrics_ = MetricsAccum{};
    for (std::uint64_t& c : retired_event_counts_) c = 0;
    if (self != nullptr) {
      delete self->ring.exchange(nullptr, std::memory_order_acq_rel);
      self->stats = AcquireStats{};
      for (std::atomic<std::uint64_t>& c : self->event_counts) {
        c.store(0, std::memory_order_relaxed);
      }
      self->open_holds.clear();
      self->pending_site = -1;
      std::lock_guard<util::Spinlock> tg(self->metrics_lock);
      self->metrics = MetricsAccum{};
    }
  }

  void set_dump_path(std::string path) {
    std::lock_guard<util::Spinlock> g(lock_);
    dump_path_ = std::move(path);
  }

  std::string dump_path() {
    std::lock_guard<util::Spinlock> g(lock_);
    return dump_path_;
  }

 private:
  Registry() = default;

  static constexpr std::size_t kMaxRetiredEvents = 1u << 18;  // 262144 events

  util::Spinlock lock_;
  std::uint32_t next_tid_ = 1;
  std::vector<ThreadState*> live_;
  std::deque<RetiredEvents> retired_;
  std::size_t retired_event_count_ = 0;
  AcquireStats retired_stats_;
  MetricsAccum retired_metrics_;
  std::uint64_t retired_event_counts_[kNumEventTypes] = {};
  std::string dump_path_;
};

// Thread-local handle whose destructor retires the state into the registry.
// The handle (not ThreadState directly) is the thread_local so registration
// happens exactly once per thread, on first use.
struct TlsHandle {
  ThreadState state;
  TlsHandle() { state.tid = Registry::instance().register_thread(&state); }
  ~TlsHandle() { Registry::instance().retire_thread(&state); }
};

ThreadState& thread_state() {
  thread_local TlsHandle handle;
  return handle.state;
}

}  // namespace

// --- configuration ----------------------------------------------------------

bool trace_enabled_from_env_text(const char* text) {
  return util::env_bool_01("SEMLOCK_TRACE", text, "tracing off")
      .value_or(false);
}

std::uint32_t trace_ring_events_from_env_text(const char* text) {
  char fallback[64];
  std::snprintf(fallback, sizeof(fallback), "%u events",
                kDefaultRingEvents);
  return static_cast<std::uint32_t>(
      util::env_int_in_range("SEMLOCK_TRACE_EVENTS", text, 64, 4194304,
                             fallback)
          .value_or(kDefaultRingEvents));
}

std::string trace_file_from_env_text(const char* text) {
  if (text == nullptr) return kDefaultTraceFile;
  if (text[0] == '\0') {
    util::warn_invalid_env("SEMLOCK_TRACE_FILE", text, kDefaultTraceFile);
    return kDefaultTraceFile;
  }
  return text;
}

TraceConfig TraceConfig::from_env() {
  TraceConfig cfg;
  cfg.enabled = trace_enabled_from_env_text(std::getenv("SEMLOCK_TRACE"));
  cfg.ring_events =
      trace_ring_events_from_env_text(std::getenv("SEMLOCK_TRACE_EVENTS"));
  cfg.file = trace_file_from_env_text(std::getenv("SEMLOCK_TRACE_FILE"));
  return cfg;
}

void set_runtime_enabled(bool on) noexcept {
  detail::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t ring_capacity() noexcept {
  return g_ring_capacity.load(std::memory_order_relaxed);
}

void set_ring_capacity(std::uint32_t events) noexcept {
  g_ring_capacity.store(events < EventRing::kMinCapacity
                            ? EventRing::kMinCapacity
                            : events,
                        std::memory_order_relaxed);
}

// --- emission ---------------------------------------------------------------

namespace {

// Pending vs. claimed snapshot requests. The signal handler only increments
// g_snapshot_requests (async-signal-safe); emit() — which runs only on
// tracing threads, outside any obs lock — notices the gap and drains it.
std::atomic<std::uint32_t> g_snapshot_requests{0};
std::atomic<std::uint32_t> g_snapshot_claims{0};
std::atomic<std::uint32_t> g_snapshots_written{0};

void drain_snapshot_requests() {
  for (;;) {
    const std::uint32_t pending =
        g_snapshot_requests.load(std::memory_order_acquire);
    std::uint32_t claimed = g_snapshot_claims.load(std::memory_order_relaxed);
    if (claimed >= pending) return;
    if (!g_snapshot_claims.compare_exchange_strong(
            claimed, claimed + 1, std::memory_order_acq_rel)) {
      continue;  // another thread took this request
    }
    const std::uint32_t n =
        g_snapshots_written.fetch_add(1, std::memory_order_relaxed) + 1;
    std::string base = Registry::instance().dump_path();
    if (base.empty()) base = kDefaultTraceFile;
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".snap%u", n);
    const std::string path = base + suffix;
    if (!write_dump(path)) continue;
    const std::string json = collect_metrics().to_json();
    const std::string jpath = path + ".metrics.json";
    if (std::FILE* f = std::fopen(jpath.c_str(), "wb")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
    std::fprintf(stderr, "[semlock] snapshot %u written to %s (+%s)\n", n,
                 path.c_str(), jpath.c_str());
  }
}

// Hold-time profiler: the grant side pushes an OpenHold, the release side
// LIFO-matches it by (instance, mode) and records the span. LIFO is the
// right order for lock scopes — nested acquisitions release innermost
// first — and degrades gracefully for the rare hand-over-hand pattern (the
// match walks past non-matching entries).
void open_hold_on_grant(ThreadState& ts, const Event& e) {
  if (ts.open_holds.size() >= kMaxOpenHolds) {
    // Full table: drop this grant (its release will count as unmatched)
    // rather than evicting an older hold into a silently wrong pairing.
    ts.pending_site = -1;
    return;
  }
  ts.open_holds.push_back(OpenHold{e.instance, e.ts_ns, e.txn,
                                   e.mode, ts.pending_site});
  ts.pending_site = -1;
}

void close_hold_on_release(ThreadState& ts, const Event& e) {
  for (std::size_t i = ts.open_holds.size(); i > 0; --i) {
    OpenHold& h = ts.open_holds[i - 1];
    if (h.instance != e.instance || h.mode != e.mode) continue;
    const std::uint64_t hold_ns = e.ts_ns > h.ts_ns ? e.ts_ns - h.ts_ns : 0;
    const HoldSample sample{hold_ns, h.instance, h.mode, h.txn, h.site};
    ts.open_holds.erase(ts.open_holds.begin() +
                        static_cast<std::ptrdiff_t>(i - 1));
    std::lock_guard<util::Spinlock> g(ts.metrics_lock);
    ts.metrics.hold_hist.add(hold_ns);
    ts.metrics.top_holds.add(sample);
    ts.metrics.holds_paired += 1;
    return;
  }
  std::lock_guard<util::Spinlock> g(ts.metrics_lock);
  ts.metrics.holds_unmatched += 1;
}

}  // namespace

void emit(EventType type, const void* instance, int mode) {
  ThreadState& ts = thread_state();
  EventRing* ring = ts.ring.load(std::memory_order_relaxed);
  if (ring == nullptr) {
    ring = new EventRing(ring_capacity());
    ts.ring.store(ring, std::memory_order_release);
  }
  Event e;
  e.ts_ns = now_ns();
  e.instance = reinterpret_cast<std::uint64_t>(instance);
  e.txn = current_txn();
  e.type = type;
  e.mode = mode;
  ring->append(e);
  const auto ti = static_cast<std::size_t>(type);
  if (ti < kNumEventTypes) {
    // Owner-only writer: load+store, not an RMW (see event_count_totals).
    std::atomic<std::uint64_t>& c = ts.event_counts[ti];
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }
  switch (type) {
    case EventType::kAcquireGrant:
    case EventType::kOptimisticHit:
      open_hold_on_grant(ts, e);
      break;
    case EventType::kRelease:
      close_hold_on_release(ts, e);
      break;
    default:
      break;
  }
  // The lock-path poll point for on-demand snapshots: any tracing thread
  // between events (never inside an obs lock) claims pending requests.
  if (g_snapshot_requests.load(std::memory_order_relaxed) !=
      g_snapshot_claims.load(std::memory_order_relaxed)) [[unlikely]] {
    drain_snapshot_requests();
  }
}

void note_lock_site(std::int32_t site) noexcept {
  thread_state().pending_site = site;
}

std::array<std::uint64_t, kNumEventTypes> event_count_totals() {
  return Registry::instance().event_count_totals();
}

AcquireStats& thread_acquire_stats() { return thread_state().stats; }

std::uint64_t current_owner_id() noexcept {
  const std::uint64_t txn = detail::txn_tls().id;
  if (txn != 0) return txn;
  return 0x8000000000000000ull | thread_state().tid;
}

std::uint32_t thread_obs_tid() { return thread_state().tid; }

void record_blocked_by(const void* instance, int waiter_mode,
                       int holder_mode) {
  ThreadState& ts = thread_state();
  std::lock_guard<util::Spinlock> g(ts.metrics_lock);
  InstanceAccum& acc =
      ts.metrics.instances[reinterpret_cast<std::uint64_t>(instance)];
  acc.contended += 1;
  acc.blocked_by[pack_pair(waiter_mode, holder_mode)] += 1;
}

void record_wait(const void* instance, int mode, std::uint64_t wait_ns) {
  ThreadState& ts = thread_state();
  std::lock_guard<util::Spinlock> g(ts.metrics_lock);
  InstanceAccum& acc =
      ts.metrics.instances[reinterpret_cast<std::uint64_t>(instance)];
  acc.waits += 1;
  acc.wait_ns += wait_ns;
  ts.metrics.wait_hist.add(wait_ns);
  ts.metrics.top_waits.add(WaitSample{
      wait_ns, reinterpret_cast<std::uint64_t>(instance),
      static_cast<std::int32_t>(mode)});
}

void record_attribution_tally(const void* instance, int waiter_mode,
                              int holder_mode, std::uint32_t attr_class) {
  if (attr_class >= kNumAttrClasses) return;
  ThreadState& ts = thread_state();
  std::lock_guard<util::Spinlock> g(ts.metrics_lock);
  InstanceAccum& acc =
      ts.metrics.instances[reinterpret_cast<std::uint64_t>(instance)];
  acc.attr_classes[attr_class] += 1;
  ts.metrics.attr_pairs[pack_pair(waiter_mode, holder_mode)][attr_class] += 1;
}

// --- snapshots and dumps ----------------------------------------------------

std::vector<ThreadTrace> snapshot_traces() {
  return Registry::instance().snapshot_traces();
}

MetricsSnapshot collect_metrics() {
  return Registry::instance().collect(&thread_state());
}

// Defined here (declared in export.h) so the exit-time dump path never
// constructs thread-local state: after main's TLS destructors have run,
// touching thread_state() again would re-register a handle mid-exit. The
// caller's own live AcquireStats is therefore not in the dump's metrics —
// exact totals come from retired threads, which at exit is everyone.
TraceDump capture() {
  TraceDump dump;
  dump.threads = Registry::instance().snapshot_traces();
  dump.metrics = Registry::instance().collect(nullptr);
  dump.spans = snapshot_spans();
  return dump;
}

std::string stall_forensics(
    const void* instance, int waited_mode,
    const std::vector<std::pair<int, std::uint32_t>>& conflicting_holders,
    std::size_t tail_events) {
  const std::uint64_t inst = reinterpret_cast<std::uint64_t>(instance);
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "stall forensics: instance 0x%llx, waited mode %d\n",
                static_cast<unsigned long long>(inst), waited_mode);
  out += buf;

  const std::vector<ThreadTrace> traces = snapshot_traces();

  // Per held mode: the holder count the watchdog sampled, plus the
  // transaction that most recently acquired that mode on this instance
  // (latest grant/optimistic-hit event across all rings).
  out += "  held conflicting modes:\n";
  if (conflicting_holders.empty()) {
    out += "    (none sampled — holders drained between poll and dump)\n";
  }
  for (const auto& [mode, holders] : conflicting_holders) {
    std::uint64_t last_txn = 0;
    std::uint64_t last_ts = 0;
    std::uint32_t last_tid = 0;
    for (const ThreadTrace& t : traces) {
      for (const Event& e : t.events) {
        if (e.instance != inst || e.mode != mode) continue;
        if (e.type != EventType::kAcquireGrant &&
            e.type != EventType::kOptimisticHit) {
          continue;
        }
        if (e.ts_ns >= last_ts) {
          last_ts = e.ts_ns;
          last_txn = e.txn;
          last_tid = t.tid;
        }
      }
    }
    std::snprintf(buf, sizeof(buf), "    mode %d: holders=%u", mode, holders);
    out += buf;
    if (last_ts != 0) {
      std::snprintf(buf, sizeof(buf),
                    ", last acquired by txn %llu (thread %u)",
                    static_cast<unsigned long long>(last_txn), last_tid);
      out += buf;
    } else {
      out += ", no acquire event retained";
    }
    out += '\n';
  }

  // The tail of each ring, filtered to this instance: what happened here
  // most recently, per thread, oldest first.
  out += "  recent events for this instance:\n";
  bool any = false;
  for (const ThreadTrace& t : traces) {
    std::vector<const Event*> hits;
    for (const Event& e : t.events) {
      if (e.instance == inst) hits.push_back(&e);
    }
    if (hits.empty()) continue;
    any = true;
    const std::size_t keep = hits.size() < tail_events ? hits.size()
                                                       : tail_events;
    for (std::size_t i = hits.size() - keep; i < hits.size(); ++i) {
      const Event& e = *hits[i];
      std::snprintf(buf, sizeof(buf),
                    "    [thread %u%s] ts=%llu %s mode=%d txn=%llu\n", t.tid,
                    t.live ? "" : " exited",
                    static_cast<unsigned long long>(e.ts_ns),
                    event_name(e.type), e.mode,
                    static_cast<unsigned long long>(e.txn));
      out += buf;
    }
  }
  if (!any) out += "    (no events retained for this instance)\n";
  return out;
}

bool write_dump(const std::string& path) {
  std::string error;
  if (!write_dump_file(capture(), path, &error)) {
    std::fprintf(stderr, "[semlock] trace dump failed: %s\n", error.c_str());
    return false;
  }
  return true;
}

// --- on-demand snapshots ----------------------------------------------------

void request_snapshot() noexcept {
  // Only the increment — everything else (file I/O, locks, allocation)
  // happens at the next emit() poll point, never in the signal handler.
  g_snapshot_requests.fetch_add(1, std::memory_order_release);
}

namespace {
extern "C" void snapshot_signal_handler(int) { request_snapshot(); }
}  // namespace

void install_snapshot_signal_handler() noexcept {
#if defined(SIGUSR1)
  std::signal(SIGUSR1, &snapshot_signal_handler);
#endif
}

std::uint32_t snapshots_written() noexcept {
  return g_snapshots_written.load(std::memory_order_relaxed);
}

void set_trace_file(const std::string& path) {
  Registry::instance().set_dump_path(path);
}

void reset_for_test() {
  Registry::instance().reset(&thread_state());
  reset_spans_for_test();
  detail::g_next_txn.store(0, std::memory_order_relaxed);
  detail::txn_tls().id = 0;
  detail::txn_tls().depth = 0;
  detail::txn_tls().last_id = 0;
  // Drop un-drained snapshot requests (the written count stays monotonic so
  // earlier files are never overwritten) and the executed-ops evidence.
  g_snapshot_claims.store(g_snapshot_requests.load(std::memory_order_acquire),
                          std::memory_order_release);
  reset_executed_ops();
}

// --- process startup / exit -------------------------------------------------

namespace {

void dump_at_exit() {
  if (!runtime_enabled()) return;
  const std::string path = Registry::instance().dump_path();
  if (path.empty()) return;
  if (write_dump(path)) {
    std::fprintf(stderr, "[semlock] trace written to %s\n", path.c_str());
  }
}

// Reads the env knobs once at static-init time. The atexit handler is
// registered here, i.e. before main runs and therefore before main's
// thread_local TLS handles are constructed; main's TLS destructors run
// first at exit, so the dump sees main's events already retired.
struct TraceRuntimeInit {
  TraceRuntimeInit() {
    const TraceConfig cfg = TraceConfig::from_env();
    set_ring_capacity(cfg.ring_events);
    if (cfg.enabled) {
      Registry::instance().set_dump_path(cfg.file);
      set_runtime_enabled(true);
      install_snapshot_signal_handler();
      std::atexit(&dump_at_exit);
    }
  }
};

const TraceRuntimeInit g_trace_runtime_init;

}  // namespace

}  // namespace semlock::obs
