// Per-transaction causal spans (ISSUE 10).
//
// Where the event rings (obs/ring.h) record *points* in the acquisition
// lifecycle, a span is an *interval* with a cause attached: each one covers
// a phase of a transaction's life — server queue wait, one contended lock
// wait, execution, commit/unlockAll — and a lock-wait span additionally
// carries the identity of the transaction that was blocking it (owner id,
// lock site, holding mode, sampled from the PR 5 seqlock grant records at
// the moment the waiter parked) plus the wait's attribution class. Together
// the spans of one dump form the blocked-by graph the critical-path
// analyzer (obs/critical_path.h) walks to explain tail latency.
//
// Recording mirrors trace.cpp exactly: per-thread lock-free SPSC rings with
// overwrite-oldest semantics, registered in a process-wide leaky registry
// and retired into it at thread exit, so dumps include threads that are
// already gone. Span threads share the event layer's tid space
// (obs::thread_obs_tid()) so a dump's span sections line up with its event
// sections.
//
// Gating is the same three-level scheme as events, with one extra knob:
//   - compiled out entirely under -DSEMLOCK_OBS=OFF (this header is only
//     included from obs TUs and #if-guarded call sites);
//   - lock-path spans fire only for TRACED mechanisms (the cached trace_
//     flag), process-level spans only when runtime_enabled();
//   - SEMLOCK_SPANS=0|1 (default 1) turns the span recorder itself off
//     while leaving event tracing untouched — the compiled-in-but-off
//     configuration bench_trace_overhead measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace semlock::obs {

// --- the span record --------------------------------------------------------

enum class SpanKind : std::uint32_t {
  kQueueWait = 0,  // server admission: request arrival -> worker dequeue
  kLockWait = 1,   // one contended lock wait, with blocker identity
  kExec = 2,       // transaction begin -> epilogue entry
  kCommit = 3,     // epilogue: unlock_all begin -> done
};

inline constexpr std::size_t kNumSpanKinds = 4;

const char* span_kind_name(SpanKind kind) noexcept;

struct Span {
  std::uint64_t start_ns = 0;  // steady clock, same epoch as Event::ts_ns
  std::uint64_t end_ns = 0;
  // Owner identity of the side that recorded the span: the open transaction
  // id, or the thread sentinel (top bit set) outside any transaction — the
  // same id space as attribution's current_owner_id(). 0 = unknown (a queue
  // wait whose request never opened a transaction).
  std::uint64_t txn = 0;
  std::uint64_t instance = 0;  // LockMechanism address; 0 = process-level
  SpanKind kind = SpanKind::kExec;
  std::int32_t mode = -1;          // waited mode (kLockWait), else payload
  std::int32_t blocker_mode = -1;  // held conflicting mode sampled; -1 none
  // AttrClass index for the (waiter, blocker_mode) classification;
  // kUnsampled when attribution was off or drew no sample.
  std::uint32_t attr_class = 5;
  std::uint64_t blocker = 0;        // blocking owner id; 0 = none sampled
  std::int32_t blocker_site = -1;   // blocker's LockSiteArgs::site
  std::uint32_t tid = 0;            // recording thread's obs tid
  // When the blocker identity was sampled (the last pre-park refresh) —
  // what the offline event-stream reconstruction replays against.
  std::uint64_t capture_ns = 0;
};

// Fixed width for the ring and the dump: 8 words per span.
//   w0 start_ns, w1 end_ns, w2 txn, w3 instance,
//   w4 kind<<48 | mode16<<32 | blocker_mode16<<16 | attr_class16,
//   w5 blocker, w6 tid<<32 | blocker_site32, w7 capture_ns
inline constexpr std::size_t kSpanWords = 8;

inline std::uint64_t span_pack_meta(const Span& s) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.kind) &
                                     0xFFFFu)
          << 48) |
         (static_cast<std::uint64_t>(
              static_cast<std::uint16_t>(s.mode)) << 32) |
         (static_cast<std::uint64_t>(
              static_cast<std::uint16_t>(s.blocker_mode)) << 16) |
         static_cast<std::uint64_t>(
             static_cast<std::uint16_t>(s.attr_class));
}

inline void span_unpack_meta(std::uint64_t w, Span& s) noexcept {
  s.kind = static_cast<SpanKind>(static_cast<std::uint32_t>(w >> 48));
  s.mode = static_cast<std::int16_t>(static_cast<std::uint16_t>(w >> 32));
  s.blocker_mode =
      static_cast<std::int16_t>(static_cast<std::uint16_t>(w >> 16));
  s.attr_class = static_cast<std::uint16_t>(w);
}

// --- runtime gate and knobs -------------------------------------------------

// SEMLOCK_SPANS=0|1 (default 1): the span recorder's own switch on top of
// the usual tracing gates. Spans are recorded iff the caller's trace gate
// passes (mechanism trace_ flag, or runtime_enabled() for process-level
// sites) AND this is on.
bool spans_enabled() noexcept;
void set_spans_enabled(bool on) noexcept;

// Testable strict parser (util/env convention: nullptr silent, malformed
// text warns once and falls back to on).
bool spans_enabled_from_env_text(const char* text);

// Ring capacity (spans) for threads recording their first span from now on.
inline constexpr std::uint32_t kDefaultSpanRingCapacity = 4096;
std::uint32_t span_ring_capacity() noexcept;
void set_span_ring_capacity(std::uint32_t spans) noexcept;

// --- recording --------------------------------------------------------------

// Steady-clock now, same epoch as event timestamps.
std::uint64_t span_now_ns() noexcept;

// Appends to the calling thread's span ring (creating it on first use).
// Callers gate; this function does not re-check spans_enabled().
void record_span(const Span& s);

// Blocker identity sampled on entry to (and refreshed at each park of) a
// contended wait. Default state means "nothing sampled".
struct BlockerInfo {
  std::uint64_t owner = 0;
  std::int32_t site = -1;
  std::int32_t mode = -1;
  std::uint32_t attr_class = 5;  // AttrClass::kUnsampled
  std::uint64_t capture_ns = 0;
};

// One finished contended wait on `instance`: [start_ns, end_ns) in `mode`,
// blocked by whatever `b` sampled. txn/tid are stamped from the caller.
void record_lock_wait_span(const void* instance, int mode,
                           std::uint64_t start_ns, std::uint64_t end_ns,
                           const BlockerInfo& b);

// Transaction epilogue: records the kExec span [exec_start, commit_start)
// and the kCommit span [commit_start, end). Called from ~Transaction()
// before txn_end() so current_txn() still names the transaction. `released`
// (instances released by unlock_all) rides in the exec span's mode field.
void record_txn_spans(std::uint64_t exec_start_ns,
                      std::uint64_t commit_start_ns, std::uint64_t end_ns,
                      int released);

// Server admission: request arrival -> worker dequeue, attributed to the
// transaction the request executed as (0 when the backend opened none).
void record_queue_wait_span(std::uint64_t txn, std::uint64_t arrival_ns,
                            std::uint64_t dequeue_ns);

// --- snapshots --------------------------------------------------------------

struct ThreadSpans {
  std::uint32_t tid = 0;  // same tid space as ThreadTrace (events)
  bool live = false;
  std::vector<Span> spans;  // oldest first
};

// Retired threads' retained spans plus a racy-but-consistent snapshot of
// the live threads' rings, ordered by tid.
std::vector<ThreadSpans> snapshot_spans();

// "txn 12" / "thread 3" / "?" — shared rendering of the owner-id space
// (top bit set = thread sentinel) for chains, reports, and the wait graph.
std::string format_owner(std::uint64_t owner);

// Test hook: drops retired span data and the calling thread's own ring.
void reset_spans_for_test();

}  // namespace semlock::obs
