// StripedHashMap: a linearizable hash map with per-stripe locking and
// per-stripe chained hash tables, built from scratch.
//
// This is the Java-library-equivalent substrate for the paper's Map ADT: the
// semantic-locking layer is deliberately decoupled from it (the paper's
// modularity claim), so concurrent commuting operations — e.g. puts on
// different keys admitted simultaneously by the semantic locks — must be
// safe against each other here.
//
// size() sums per-stripe counters; it is exact whenever no mutator runs
// concurrently, which is precisely the situation the semantic locks create
// (a size() mode conflicts with every mutator mode).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "util/spinlock.h"

namespace semlock::adt {

inline std::size_t mix_hash(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedHashMap {
 public:
  explicit StripedHashMap(std::size_t num_stripes = 64,
                          std::size_t initial_buckets_per_stripe = 16)
      : mask_(round_up_pow2(num_stripes) - 1),
        stripes_(mask_ + 1) {
    for (auto& s : stripes_) {
      s.buckets.assign(round_up_pow2(initial_buckets_per_stripe), nullptr);
    }
  }

  StripedHashMap(const StripedHashMap&) = delete;
  StripedHashMap& operator=(const StripedHashMap&) = delete;

  ~StripedHashMap() {
    for (auto& s : stripes_) {
      for (Node* n : s.buckets) {
        while (n) {
          Node* next = n->next;
          delete n;
          n = next;
        }
      }
    }
  }

  std::optional<V> get(const K& key) const {
    const Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    const Node* n = find_node(s, key);
    if (!n) return std::nullopt;
    return n->value;
  }

  bool contains_key(const K& key) const {
    const Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    return find_node(s, key) != nullptr;
  }

  // Inserts or overwrites; returns true if the key was newly inserted.
  bool put(const K& key, V value) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    Node* n = find_node(s, key);
    if (n) {
      n->value = std::move(value);
      return false;
    }
    insert_new(s, key, std::move(value));
    return true;
  }

  // Inserts only if absent; returns true if inserted.
  bool put_if_absent(const K& key, V value) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    if (find_node(s, key)) return false;
    insert_new(s, key, std::move(value));
    return true;
  }

  // Returns true if the key was present.
  bool remove(const K& key) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    const std::size_t b = bucket_of(s, key);
    Node** link = &s.buckets[b];
    while (*link) {
      if ((*link)->key == key) {
        Node* dead = *link;
        *link = dead->next;
        delete dead;
        s.count.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      link = &(*link)->next;
    }
    return false;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : stripes_) {
      total += s.count.load(std::memory_order_relaxed);
    }
    return total;
  }

  void clear() {
    for (auto& s : stripes_) {
      std::scoped_lock guard(s.lock);
      for (auto& head : s.buckets) {
        Node* n = head;
        while (n) {
          Node* next = n->next;
          delete n;
          n = next;
        }
        head = nullptr;
      }
      s.count.store(0, std::memory_order_relaxed);
    }
  }

  // Applies fn(key, value) to every entry. Holds one stripe lock at a time;
  // callers needing a consistent snapshot must ensure quiescence externally
  // (the cache benchmark invokes this only under an exclusive semantic
  // mode).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : stripes_) {
      std::scoped_lock guard(s.lock);
      for (const Node* n : s.buckets) {
        for (; n; n = n->next) fn(n->key, n->value);
      }
    }
  }

 private:
  struct Node {
    K key;
    V value;
    Node* next;
  };

  struct Stripe {
    mutable util::Spinlock lock;
    std::vector<Node*> buckets;
    std::atomic<std::size_t> count{0};
  };

  static std::size_t round_up_pow2(std::size_t x) {
    std::size_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  std::size_t hash_of(const K& key) const { return mix_hash(Hash{}(key)); }

  Stripe& stripe_of(const K& key) {
    return stripes_[hash_of(key) & mask_];
  }
  const Stripe& stripe_of(const K& key) const {
    return stripes_[hash_of(key) & mask_];
  }

  std::size_t bucket_of(const Stripe& s, const K& key) const {
    return (hash_of(key) >> 16) & (s.buckets.size() - 1);
  }

  Node* find_node(const Stripe& s, const K& key) const {
    for (Node* n = s.buckets[bucket_of(s, key)]; n; n = n->next) {
      if (n->key == key) return n;
    }
    return nullptr;
  }

  void insert_new(Stripe& s, const K& key, V value) {
    if (s.count.load(std::memory_order_relaxed) + 1 >
        s.buckets.size() * 4) {
      grow(s);
    }
    const std::size_t b = bucket_of(s, key);
    s.buckets[b] = new Node{key, std::move(value), s.buckets[b]};
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  void grow(Stripe& s) {
    std::vector<Node*> bigger(s.buckets.size() * 2, nullptr);
    const std::size_t new_mask = bigger.size() - 1;
    for (Node* n : s.buckets) {
      while (n) {
        Node* next = n->next;
        const std::size_t b = (hash_of(n->key) >> 16) & new_mask;
        n->next = bigger[b];
        bigger[b] = n;
        n = next;
      }
    }
    s.buckets = std::move(bigger);
  }

  std::size_t mask_;
  std::vector<Stripe> stripes_;
};

}  // namespace semlock::adt
