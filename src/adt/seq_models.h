// Sequential reference models of the ADTs.
//
// Used (a) as the executable "sequential specification" in the
// commutativity-spec soundness property tests — we literally apply operation
// pairs in both orders and compare states/results against the spec's
// condition — and (b) as the unprotected data structures for the Global and
// 2PL baselines, where an external lock already serializes access.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "commute/value.h"

namespace semlock::adt {

class SeqSet {
 public:
  void add(commute::Value v) { elems_.insert(v); }
  void remove(commute::Value v) { elems_.erase(v); }
  bool contains(commute::Value v) const { return elems_.count(v) != 0; }
  std::size_t size() const { return elems_.size(); }
  void clear() { elems_.clear(); }

  bool operator==(const SeqSet&) const = default;

 private:
  std::set<commute::Value> elems_;
};

class SeqMap {
 public:
  std::optional<commute::Value> get(commute::Value k) const {
    auto it = entries_.find(k);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }
  void put(commute::Value k, commute::Value v) { entries_[k] = v; }
  void remove(commute::Value k) { entries_.erase(k); }
  bool contains_key(commute::Value k) const { return entries_.count(k) != 0; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  bool operator==(const SeqMap&) const = default;

 private:
  std::map<commute::Value, commute::Value> entries_;
};

class SeqQueue {
 public:
  void enqueue(commute::Value v) { elems_.push_back(v); }
  std::optional<commute::Value> dequeue() {
    if (elems_.empty()) return std::nullopt;
    commute::Value v = elems_.front();
    elems_.pop_front();
    return v;
  }
  bool is_empty() const { return elems_.empty(); }
  std::size_t size() const { return elems_.size(); }

  bool operator==(const SeqQueue&) const = default;

 private:
  std::deque<commute::Value> elems_;
};

// Unordered-bag view of a queue: state equality ignores order. Models the
// Pool specification used for Intruder's completed-flow queue.
class SeqPool {
 public:
  void enqueue(commute::Value v) { elems_.insert(v); }
  std::optional<commute::Value> dequeue() {
    if (elems_.empty()) return std::nullopt;
    auto it = elems_.begin();
    commute::Value v = *it;
    elems_.erase(it);
    return v;
  }
  bool is_empty() const { return elems_.empty(); }

  bool operator==(const SeqPool&) const = default;

 private:
  std::multiset<commute::Value> elems_;
};

class SeqMultimap {
 public:
  void put(commute::Value k, commute::Value v) { entries_[k].insert(v); }
  void remove_entry(commute::Value k, commute::Value v) {
    auto it = entries_.find(k);
    if (it == entries_.end()) return;
    it->second.erase(v);
    if (it->second.empty()) entries_.erase(it);
  }
  std::vector<commute::Value> get_all(commute::Value k) const {
    auto it = entries_.find(k);
    if (it == entries_.end()) return {};
    return {it->second.begin(), it->second.end()};
  }
  void remove_all(commute::Value k) { entries_.erase(k); }
  std::size_t num_entries() const {
    std::size_t total = 0;
    for (const auto& [k, vs] : entries_) total += vs.size();
    return total;
  }

  bool operator==(const SeqMultimap&) const = default;

 private:
  std::map<commute::Value, std::set<commute::Value>> entries_;
};

}  // namespace semlock::adt
