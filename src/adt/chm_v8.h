// ChmV8Map: a hand-crafted concurrent map exposing computeIfAbsent with
// per-bucket locking, in the style of Doug Lea's ConcurrentHashMapV8 — the
// "V8" baseline of the ComputeIfAbsent experiment (Fig. 21).
//
// The factory runs while holding only the stripe lock of the key's bucket,
// so computeIfAbsent invocations on keys in different stripes proceed fully
// in parallel (and the at-most-once guarantee holds per key).
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>

#include "adt/striped_hash_map.h"

namespace semlock::adt {

template <typename K, typename V, typename Hash = std::hash<K>>
class ChmV8Map {
 public:
  explicit ChmV8Map(std::size_t num_stripes = 256)
      : mask_(round_up_pow2(num_stripes) - 1), stripes_(mask_ + 1) {}

  ChmV8Map(const ChmV8Map&) = delete;
  ChmV8Map& operator=(const ChmV8Map&) = delete;

  ~ChmV8Map() {
    for (auto& s : stripes_) {
      for (Node* n : s.buckets) {
        while (n) {
          Node* next = n->next;
          delete n;
          n = next;
        }
      }
    }
  }

  // Returns the existing value for `key`, or inserts factory() and returns
  // it. factory() is invoked at most once per inserted key.
  template <typename Factory>
  V compute_if_absent(const K& key, Factory&& factory) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    const std::size_t b = bucket_of(s, key);
    for (Node* n = s.buckets[b]; n; n = n->next) {
      if (n->key == key) return n->value;
    }
    V value = factory();
    maybe_grow(s);
    const std::size_t b2 = bucket_of(s, key);
    s.buckets[b2] = new Node{key, value, s.buckets[b2]};
    ++s.count;
    return value;
  }

  std::optional<V> get(const K& key) const {
    const Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    for (const Node* n = s.buckets[bucket_of(s, key)]; n; n = n->next) {
      if (n->key == key) return n->value;
    }
    return std::nullopt;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : stripes_) {
      std::scoped_lock guard(s.lock);
      total += s.count;
    }
    return total;
  }

 private:
  struct Node {
    K key;
    V value;
    Node* next;
  };

  struct Stripe {
    mutable util::Spinlock lock;
    std::vector<Node*> buckets = std::vector<Node*>(8, nullptr);
    std::size_t count = 0;
  };

  static std::size_t round_up_pow2(std::size_t x) {
    std::size_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  std::size_t hash_of(const K& key) const { return mix_hash(Hash{}(key)); }
  Stripe& stripe_of(const K& key) { return stripes_[hash_of(key) & mask_]; }
  const Stripe& stripe_of(const K& key) const {
    return stripes_[hash_of(key) & mask_];
  }
  std::size_t bucket_of(const Stripe& s, const K& key) const {
    return (hash_of(key) >> 16) & (s.buckets.size() - 1);
  }

  void maybe_grow(Stripe& s) {
    if (s.count + 1 <= s.buckets.size() * 4) return;
    std::vector<Node*> bigger(s.buckets.size() * 2, nullptr);
    const std::size_t new_mask = bigger.size() - 1;
    for (Node* n : s.buckets) {
      while (n) {
        Node* next = n->next;
        const std::size_t b = (hash_of(n->key) >> 16) & new_mask;
        n->next = bigger[b];
        bigger[b] = n;
        n = next;
      }
    }
    s.buckets = std::move(bigger);
  }

  std::size_t mask_;
  std::vector<Stripe> stripes_;
};

}  // namespace semlock::adt
