// StripedMultimap: a linearizable multimap with set semantics per key
// (Guava SetMultimap-like), used by the Graph benchmark (two Multimap
// instances hold successor and predecessor edges, as in Hawkins et al.).
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "adt/striped_hash_map.h"
#include "util/spinlock.h"

namespace semlock::adt {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedMultimap {
 public:
  explicit StripedMultimap(std::size_t num_stripes = 64)
      : mask_(round_up_pow2(num_stripes) - 1), stripes_(mask_ + 1) {}

  StripedMultimap(const StripedMultimap&) = delete;
  StripedMultimap& operator=(const StripedMultimap&) = delete;

  // Adds (key, value); returns true if the entry was new.
  bool put(const K& key, const V& value) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    auto& vals = s.entries[key];  // creates empty vector if absent
    if (std::find(vals.begin(), vals.end(), value) != vals.end()) {
      return false;
    }
    vals.push_back(value);
    return true;
  }

  // Removes (key, value); returns true if the entry existed.
  bool remove_entry(const K& key, const V& value) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    auto it = s.entries.find(key);
    if (it == s.entries.end()) return false;
    auto& vals = it->second;
    auto pos = std::find(vals.begin(), vals.end(), value);
    if (pos == vals.end()) return false;
    *pos = vals.back();
    vals.pop_back();
    if (vals.empty()) s.entries.erase(it);
    return true;
  }

  // Snapshot of the values of `key`.
  std::vector<V> get_all(const K& key) const {
    const Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    auto it = s.entries.find(key);
    if (it == s.entries.end()) return {};
    return it->second;
  }

  void remove_all(const K& key) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    s.entries.erase(key);
  }

  std::size_t num_entries() const {
    std::size_t total = 0;
    for (const auto& s : stripes_) {
      std::scoped_lock guard(s.lock);
      for (const auto& [k, vals] : s.entries) total += vals.size();
    }
    return total;
  }

 private:
  struct Stripe {
    mutable util::Spinlock lock;
    std::unordered_map<K, std::vector<V>, Hash> entries;
  };

  static std::size_t round_up_pow2(std::size_t x) {
    std::size_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  Stripe& stripe_of(const K& key) {
    return stripes_[mix_hash(Hash{}(key)) & mask_];
  }
  const Stripe& stripe_of(const K& key) const {
    return stripes_[mix_hash(Hash{}(key)) & mask_];
  }

  std::size_t mask_;
  std::vector<Stripe> stripes_;
};

}  // namespace semlock::adt
