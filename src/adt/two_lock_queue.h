// TwoLockQueue: the classic Michael & Scott two-lock concurrent FIFO queue
// with a dummy head node. enqueue and dequeue proceed in parallel; the queue
// is linearizable.
//
// The `next` link is atomic because when the queue is empty the enqueuer
// (holding the tail lock) and the dequeuer (holding the head lock) touch the
// same field: release/acquire on the link publishes the node's payload.
//
// This is the Queue substrate of Fig. 1/Fig. 2 and the Intruder benchmark's
// completed-flow queue.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>

#include "util/spinlock.h"

namespace semlock::adt {

template <typename T>
class TwoLockQueue {
 public:
  TwoLockQueue() { head_ = tail_ = new Node{}; }

  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  ~TwoLockQueue() {
    Node* n = head_;
    while (n) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  void enqueue(T value) {
    Node* node = new Node{};
    node->value = std::move(value);
    std::scoped_lock guard(tail_lock_);
    tail_->next.store(node, std::memory_order_release);
    tail_ = node;
  }

  std::optional<T> dequeue() {
    std::scoped_lock guard(head_lock_);
    Node* first = head_->next.load(std::memory_order_acquire);
    if (!first) return std::nullopt;
    std::optional<T> out(std::move(first->value));
    Node* old_dummy = head_;
    head_ = first;  // `first` becomes the new dummy; its value is moved-from
    delete old_dummy;
    return out;
  }

  bool is_empty() const {
    std::scoped_lock guard(head_lock_);
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  mutable util::Spinlock head_lock_;
  util::Spinlock tail_lock_;
  Node* head_;  // dummy
  Node* tail_;
};

}  // namespace semlock::adt
