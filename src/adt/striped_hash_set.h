// StripedHashSet: linearizable hash set; structurally a StripedHashMap with
// empty values, kept separate for a Set-shaped API (the paper's Fig. 3 ADT).
#pragma once

#include <cstddef>

#include "adt/striped_hash_map.h"

namespace semlock::adt {

template <typename K, typename Hash = std::hash<K>>
class StripedHashSet {
 public:
  explicit StripedHashSet(std::size_t num_stripes = 64,
                          std::size_t initial_buckets_per_stripe = 16)
      : map_(num_stripes, initial_buckets_per_stripe) {}

  // Returns true if the element was newly added.
  bool add(const K& key) { return map_.put_if_absent(key, Unit{}); }
  // Returns true if the element was present.
  bool remove(const K& key) { return map_.remove(key); }
  bool contains(const K& key) const { return map_.contains_key(key); }
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&](const K& k, const Unit&) { fn(k); });
  }

 private:
  struct Unit {};
  StripedHashMap<K, Unit, Hash> map_;
};

}  // namespace semlock::adt
