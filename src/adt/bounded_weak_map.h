// BoundedWeakMap: a linearizable map whose entries may disappear — the
// C++ stand-in for Java's WeakHashMap (used by the Tomcat cache's longterm
// area), where the garbage collector may reclaim weakly-referenced entries
// at any time.
//
// Instead of modeling a GC, the map bounds its capacity and evicts in
// clock (second-chance) order: a `get` marks the entry referenced; an
// insert over capacity sweeps unreferenced entries first. Lookups are thus
// allowed to miss entries that were once present — exactly the observable
// contract cache code must tolerate from a weak map.
#pragma once

#include <algorithm>
#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/spinlock.h"

namespace semlock::adt {

template <typename K, typename V, typename Hash = std::hash<K>>
class BoundedWeakMap {
 public:
  explicit BoundedWeakMap(std::size_t capacity = 1 << 16,
                          std::size_t num_stripes = 64)
      : capacity_per_stripe_(
            std::max<std::size_t>(1, capacity / round_up_pow2(num_stripes))),
        mask_(round_up_pow2(num_stripes) - 1),
        stripes_(mask_ + 1) {}

  BoundedWeakMap(const BoundedWeakMap&) = delete;
  BoundedWeakMap& operator=(const BoundedWeakMap&) = delete;

  std::optional<V> get(const K& key) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    auto it = s.entries.find(key);
    if (it == s.entries.end()) return std::nullopt;
    it->second.referenced = true;  // second chance
    return it->second.value;
  }

  void put(const K& key, V value) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    auto it = s.entries.find(key);
    if (it != s.entries.end()) {
      it->second.value = std::move(value);
      it->second.referenced = true;
      return;
    }
    if (s.entries.size() >= capacity_per_stripe_) evict_one(s);
    // Fresh entries start unreferenced (clock convention): an entry only
    // survives a full sweep if it is touched between sweeps.
    s.entries.emplace(key, Entry{std::move(value), false});
    s.clock.push_back(key);
  }

  bool remove(const K& key) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    return s.entries.erase(key) != 0;  // clock entry lazily skipped
  }

  bool contains_key(const K& key) {
    Stripe& s = stripe_of(key);
    std::scoped_lock guard(s.lock);
    return s.entries.count(key) != 0;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : stripes_) {
      std::scoped_lock guard(s.lock);
      total += s.entries.size();
    }
    return total;
  }

  void clear() {
    for (auto& s : stripes_) {
      std::scoped_lock guard(s.lock);
      s.entries.clear();
      s.clock.clear();
    }
  }

  std::size_t capacity() const {
    return capacity_per_stripe_ * (mask_ + 1);
  }

 private:
  struct Entry {
    V value;
    bool referenced = false;
  };

  struct Stripe {
    mutable util::Spinlock lock;
    std::unordered_map<K, Entry, Hash> entries;
    std::list<K> clock;  // FIFO of candidate victims (may hold stale keys)
  };

  static std::size_t round_up_pow2(std::size_t x) {
    std::size_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  Stripe& stripe_of(const K& key) {
    return stripes_[Hash{}(key) & mask_];
  }

  // Clock sweep: skip stale keys; give referenced entries a second chance.
  void evict_one(Stripe& s) {
    while (!s.clock.empty()) {
      K candidate = s.clock.front();
      s.clock.pop_front();
      auto it = s.entries.find(candidate);
      if (it == s.entries.end()) continue;  // stale clock entry
      if (it->second.referenced) {
        it->second.referenced = false;
        s.clock.push_back(candidate);
        continue;
      }
      s.entries.erase(it);
      return;
    }
    // Everything referenced and clock drained: drop an arbitrary entry.
    if (!s.entries.empty()) s.entries.erase(s.entries.begin());
  }

  std::size_t capacity_per_stripe_;
  std::size_t mask_;
  std::vector<Stripe> stripes_;
};

}  // namespace semlock::adt
