// semlock-server CLI: run one open-loop traffic replay against one
// concurrency-control mode and print the service report.
//
// All configuration comes from the SEMLOCK_SERVER_* environment knobs
// (src/server/config.h; strict parsing, loud fallbacks). Typical runs:
//
//   SEMLOCK_SERVER_MODE=semantic SEMLOCK_SERVER_RATE=20000 \
//     SEMLOCK_SERVER_DURATION_MS=1000 build/tools/semlock-server
//
//   SEMLOCK_SERVER_MODE=occ SEMLOCK_SERVER_CHECKED=1 build/tools/semlock-server
//     (records every committed operation and runs the conflict-
//      serializability oracle over the merged history; exits 2 on violation)
//
// Flags:
//   --unpaced    dispatch as fast as admission control allows instead of
//                pacing to the schedule's intended arrivals (drain/stress).
//   --repeat=N   replay the schedule N times (1..1000000), back to back.
//                With SEMLOCK_METRICS_PORT set this is how you keep the
//                process under load long enough to scrape /metrics — the
//                CI metrics-endpoint-smoke job runs exactly that.
//
// When SEMLOCK_METRICS_PORT is set (1..65535), an admin endpoint serving
// /metrics, /metrics.json, and /healthz starts on 127.0.0.1:<port> for the
// lifetime of the process, and the window collector rotates on
// SEMLOCK_METRICS_WINDOW_MS (docs/SERVER.md).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "semlock/history.h"
#include "server/config.h"
#include "server/server.h"
#include "server/traffic_gen.h"

#if defined(SEMLOCK_OBS)
#include "server/admin.h"
#endif

using namespace semlock;
using namespace semlock::server;

int main(int argc, char** argv) {
  bool paced = true;
  long repeat = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unpaced") == 0) {
      paced = false;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      char* end = nullptr;
      repeat = std::strtol(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || repeat < 1 ||
          repeat > 1000000) {
        std::fprintf(stderr, "bad --repeat value: %s\n", argv[i] + 9);
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--unpaced] [--repeat=N]\n", argv[0]);
      return 2;
    }
  }

  const ServerConfig cfg = server_config_from_env();
  const std::vector<Request> schedule = generate_schedule(cfg.traffic);

  HistoryRecorder recorder;
  std::unique_ptr<CCBackend> backend = make_cc_backend(
      cfg.mode, cfg.traffic.store, cfg.checked ? &recorder : nullptr);
  Server srv(cfg, backend.get());

#if defined(SEMLOCK_OBS)
  // Lives until main returns; nullptr (and no listener) unless
  // SEMLOCK_METRICS_PORT is set to a valid port.
  const std::unique_ptr<AdminEndpoint> admin = start_admin_endpoint_from_env();
#endif

  std::printf("semlock-server: mode=%s workers=%d shards=%d queue_cap=%d%s\n",
              backend->name(), srv.workers(), srv.shards(),
              cfg.queue_capacity, cfg.checked ? " [checked]" : "");
  std::printf(
      "schedule: %zu requests over %" PRIu64 " ms (rate %.0f rps, "
      "theta %.2f, burst x%d, %s, x%ld)\n",
      schedule.size(), cfg.traffic.duration_ms, cfg.traffic.rate_rps,
      cfg.traffic.zipf_theta, cfg.traffic.burst_factor,
      paced ? "paced" : "unpaced", repeat);

  ServerReport total;
  for (long pass = 0; pass < repeat; ++pass) {
    const ServerReport r = srv.run(schedule, paced);
    if (r.completed + r.shed != r.offered) {
      std::fprintf(stderr, "FAIL: %" PRIu64 " requests lost (pass %ld)\n",
                   r.offered - r.completed - r.shed, pass + 1);
      return 1;
    }
    total.offered += r.offered;
    total.completed += r.completed;
    total.shed += r.shed;
    total.retries += r.retries;
    total.wall_seconds += r.wall_seconds;
    total.observed_sum += r.observed_sum;
    total.latency_ns.merge(r.latency_ns);
    if (r.max_queue_depth > total.max_queue_depth) {
      total.max_queue_depth = r.max_queue_depth;
    }
    total.last_retry_after_ns = r.last_retry_after_ns;
  }
  const ServerReport& r = total;

  std::printf("completed: %" PRIu64 " / %" PRIu64 "  (shed %" PRIu64
              ", occ retries %" PRIu64 ")\n",
              r.completed, r.offered, r.shed, r.retries);
  std::printf("throughput: %.0f req/s over %.3f s\n", r.throughput_rps(),
              r.wall_seconds);
  std::printf("latency (from intended arrival): p50 < %.1f us, p99 < %.1f us, "
              "p999 < %.1f us\n",
              static_cast<double>(r.latency_ns.p50()) / 1e3,
              static_cast<double>(r.latency_ns.p99()) / 1e3,
              static_cast<double>(r.latency_ns.p999()) / 1e3);
  std::printf("queues: max depth %" PRIu64 "; last retry-after hint %.1f us\n",
              r.max_queue_depth,
              static_cast<double>(r.last_retry_after_ns) / 1e3);
  std::printf("store: balance_total=%" PRId64 " kv_inserted=%" PRId64
              " edges=%" PRId64 " digest=%016" PRIx64 "\n",
              backend->balance_total(), backend->kv_inserted(),
              backend->edges_present(), backend->digest());

  if (cfg.checked) {
    const SerializabilityReport rep =
        check_conflict_serializability(recorder.snapshot());
    std::printf("serializability: %s (%zu precedence edges)\n",
                rep.serializable ? "OK" : "VIOLATION",
                rep.precedence_edges);
    if (!rep.serializable) {
      std::fprintf(stderr, "%s\n", rep.to_string().c_str());
      return 2;
    }
  }
  return 0;
}
