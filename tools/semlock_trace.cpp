// semlock-trace: converts the binary trace dump written by SEMLOCK_TRACE=1
// (src/obs, docs/OBSERVABILITY.md) into human- and tool-facing forms.
//
//   semlock-trace chrome  <dump> [out.json]   Chrome trace-event JSON
//                                             (load in Perfetto or
//                                             chrome://tracing); stdout when
//                                             no output path is given.
//   semlock-trace report  <dump>              text report: top contended
//                                             instances, hottest
//                                             non-commuting mode pairs,
//                                             longest waits.
//   semlock-trace metrics <dump>              the embedded metrics snapshot
//                                             as JSON.
//   semlock-trace metrics --watch=<url>       poll a live /metrics.json
//       [--count=N] [--interval-ms=M]         endpoint (server/admin.h) and
//                                             print one line per new window:
//                                             seq, acquisitions/s, false-
//                                             conflict %, wait/hold p99.
//                                             N=0 (default) polls forever.
//   semlock-trace attribution <dump>          conflict-attribution report:
//                                             true semantic conflicts vs.
//                                             abstraction artifacts, by
//                                             class / mode pair / instance.
//   semlock-trace holds   <dump>              hold-time profiler report:
//                                             hold histogram quantiles,
//                                             paired/unmatched counts, the
//                                             top-K longest holds with
//                                             holder txn and lock site, and
//                                             an offline re-pairing cross-
//                                             check of the retained events.
//   semlock-trace check   <file.json>         structural JSON validation
//                                             (exit 0/1); CI runs this on
//                                             the chrome export.
//   semlock-trace promcheck <file.txt>        Prometheus text-format 0.0.4
//                                             grammar validation (exit 0/1);
//                                             CI runs this on a /metrics
//                                             scrape.
#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/exposition.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: semlock-trace chrome <dump> [out.json]\n"
      "       semlock-trace report <dump>\n"
      "       semlock-trace metrics <dump>\n"
      "       semlock-trace metrics --watch=<url> [--count=N] "
      "[--interval-ms=M]\n"
      "       semlock-trace attribution <dump>\n"
      "       semlock-trace holds <dump>\n"
      "       semlock-trace critical-path <dump>\n"
      "       semlock-trace check <file.json>\n"
      "       semlock-trace promcheck <file.txt>\n");
  return 2;
}

int load_or_fail(const char* path, semlock::obs::TraceDump& dump) {
  std::string error;
  if (!semlock::obs::load_dump_file(path, dump, &error)) {
    std::fprintf(stderr, "semlock-trace: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

// --- the --watch poller ------------------------------------------------------

// Minimal URL split: http://host:port/path (the only shape the admin
// endpoint serves). Defaults: port 80, path "/metrics.json".
bool split_url(const std::string& url, std::string& host, int& port,
               std::string& path) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.compare(0, scheme.size(), scheme) == 0) {
    rest = rest.substr(scheme.size());
  }
  const std::size_t slash = rest.find('/');
  path = slash == std::string::npos ? "/metrics.json" : rest.substr(slash);
  const std::string hostport =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    host = hostport;
    port = 80;
  } else {
    host = hostport.substr(0, colon);
    port = std::atoi(hostport.c_str() + colon + 1);
  }
  return !host.empty() && port > 0 && port <= 65535;
}

// One blocking HTTP/1.0 GET; returns the body (headers stripped) or empty
// on any failure.
std::string http_get(const std::string& host, int port,
                     const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return "";
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  std::string out;
  if (fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0) {
    const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                            "\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
      const ssize_t sent = ::send(fd, req.data() + off, req.size() - off, 0);
      if (sent <= 0) break;
      off += static_cast<std::size_t>(sent);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  if (fd >= 0) ::close(fd);
  freeaddrinfo(res);
  const std::size_t header_end = out.find("\r\n\r\n");
  return header_end == std::string::npos ? "" : out.substr(header_end + 4);
}

// Extracts the number after `"key": ` within text[from..to). Returns
// fallback when absent. Good enough for the fixed schema the endpoint
// emits; not a JSON parser.
double json_number(const std::string& text, std::size_t from, std::size_t to,
                   const char* key, double fallback) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t pos = text.find(needle, from);
  if (pos == std::string::npos || pos >= to) return fallback;
  return std::atof(text.c_str() + pos + needle.size());
}

int watch_metrics(const std::string& url, long count, long interval_ms) {
  std::string host, path;
  int port = 0;
  if (!split_url(url, host, port, path)) {
    std::fprintf(stderr, "semlock-trace: bad --watch url: %s\n", url.c_str());
    return 2;
  }
  std::printf("%8s %12s %10s %12s %12s %8s\n", "seq", "acq/s", "falseconf%",
              "wait_p99_ns", "hold_p99_ns", "grants");
  double last_seq = -1;
  long printed = 0;
  int consecutive_failures = 0;
  while (count == 0 || printed < count) {
    const std::string body = http_get(host, port, path);
    if (body.empty()) {
      if (++consecutive_failures >= 5) {
        std::fprintf(stderr, "semlock-trace: %s unreachable\n", url.c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    consecutive_failures = 0;
    // The newest window is the first object of "windows": [...] (the ring
    // is emitted newest first).
    const std::size_t windows = body.find("\"windows\": [");
    if (windows != std::string::npos && body[windows + 12] == '{') {
      const std::size_t obj = windows + 12;
      // The window object nests an "attribution" map, so the first '}' is
      // not its end; bound the field search at the next window instead.
      std::size_t obj_end = body.find("{\"seq\"", obj + 1);
      if (obj_end == std::string::npos) obj_end = body.size();
      const double seq = json_number(body, obj, obj_end, "seq", -1);
      if (seq >= 0 && seq != last_seq) {
        last_seq = seq;
        ++printed;
        std::printf("%8.0f %12.0f %10.2f %12.0f %12.0f %8.0f\n", seq,
                    json_number(body, obj, obj_end, "acquisitions_per_sec", 0),
                    json_number(body, obj, obj_end, "false_conflict_pct", 0),
                    json_number(body, obj, obj_end, "wait_p99_ns", 0),
                    json_number(body, obj, obj_end, "hold_p99_ns", 0),
                    json_number(body, obj, obj_end, "grants", 0));
        std::fflush(stdout);
      }
    }
    if (count != 0 && printed >= count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* cmd = argv[1];
  const char* path = argv[2];

  if (std::strcmp(cmd, "chrome") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string json = semlock::obs::to_chrome_json(dump);
    if (argc >= 4) {
      std::FILE* f = std::fopen(argv[3], "w");
      if (f == nullptr) {
        std::fprintf(stderr, "semlock-trace: cannot write %s\n", argv[3]);
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "semlock-trace: wrote %s\n", argv[3]);
    } else {
      std::fwrite(json.data(), 1, json.size(), stdout);
    }
    return 0;
  }

  if (std::strcmp(cmd, "report") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string report = semlock::obs::text_report(dump);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "metrics") == 0) {
    if (std::strncmp(path, "--watch=", 8) == 0) {
      long count = 0;
      long interval_ms = 1000;
      for (int i = 3; i < argc; ++i) {
        if (std::strncmp(argv[i], "--count=", 8) == 0) {
          count = std::atol(argv[i] + 8);
        } else if (std::strncmp(argv[i], "--interval-ms=", 14) == 0) {
          interval_ms = std::atol(argv[i] + 14);
          if (interval_ms < 10) interval_ms = 10;
        } else {
          return usage();
        }
      }
      return watch_metrics(path + 8, count, interval_ms);
    }
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string json = dump.metrics.to_json();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  if (std::strcmp(cmd, "attribution") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string report = semlock::obs::attribution_report(dump);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "holds") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string report = semlock::obs::holds_report(dump);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "critical-path") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string report = semlock::obs::critical_path_report(dump);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "check") == 0) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "semlock-trace: cannot read %s\n", path);
      return 1;
    }
    std::string error;
    if (!semlock::obs::validate_json(text, &error)) {
      std::fprintf(stderr, "semlock-trace: %s: %s\n", path, error.c_str());
      return 1;
    }
    std::printf("%s: valid JSON (%zu bytes)\n", path, text.size());
    return 0;
  }

  if (std::strcmp(cmd, "promcheck") == 0) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "semlock-trace: cannot read %s\n", path);
      return 1;
    }
    std::string error;
    if (!semlock::obs::validate_prometheus_text(text, &error)) {
      std::fprintf(stderr, "semlock-trace: %s: %s\n", path, error.c_str());
      return 1;
    }
    std::printf("%s: valid Prometheus text exposition (%zu bytes)\n", path,
                text.size());
    return 0;
  }

  return usage();
}
