// semlock-trace: converts the binary trace dump written by SEMLOCK_TRACE=1
// (src/obs, docs/OBSERVABILITY.md) into human- and tool-facing forms.
//
//   semlock-trace chrome  <dump> [out.json]   Chrome trace-event JSON
//                                             (load in Perfetto or
//                                             chrome://tracing); stdout when
//                                             no output path is given.
//   semlock-trace report  <dump>              text report: top contended
//                                             instances, hottest
//                                             non-commuting mode pairs,
//                                             longest waits.
//   semlock-trace metrics <dump>              the embedded metrics snapshot
//                                             as JSON.
//   semlock-trace attribution <dump>          conflict-attribution report:
//                                             true semantic conflicts vs.
//                                             abstraction artifacts, by
//                                             class / mode pair / instance.
//   semlock-trace check   <file.json>         structural JSON validation
//                                             (exit 0/1); CI runs this on
//                                             the chrome export.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/export.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: semlock-trace chrome <dump> [out.json]\n"
               "       semlock-trace report <dump>\n"
               "       semlock-trace metrics <dump>\n"
               "       semlock-trace attribution <dump>\n"
               "       semlock-trace check <file.json>\n");
  return 2;
}

int load_or_fail(const char* path, semlock::obs::TraceDump& dump) {
  std::string error;
  if (!semlock::obs::load_dump_file(path, dump, &error)) {
    std::fprintf(stderr, "semlock-trace: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* cmd = argv[1];
  const char* path = argv[2];

  if (std::strcmp(cmd, "chrome") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string json = semlock::obs::to_chrome_json(dump);
    if (argc >= 4) {
      std::FILE* f = std::fopen(argv[3], "w");
      if (f == nullptr) {
        std::fprintf(stderr, "semlock-trace: cannot write %s\n", argv[3]);
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "semlock-trace: wrote %s\n", argv[3]);
    } else {
      std::fwrite(json.data(), 1, json.size(), stdout);
    }
    return 0;
  }

  if (std::strcmp(cmd, "report") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string report = semlock::obs::text_report(dump);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "metrics") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string json = dump.metrics.to_json();
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  if (std::strcmp(cmd, "attribution") == 0) {
    semlock::obs::TraceDump dump;
    if (int rc = load_or_fail(path, dump)) return rc;
    const std::string report = semlock::obs::attribution_report(dump);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "check") == 0) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "semlock-trace: cannot read %s\n", path);
      return 1;
    }
    std::string error;
    if (!semlock::obs::validate_json(text, &error)) {
      std::fprintf(stderr, "semlock-trace: %s: %s\n", path, error.c_str());
      return 1;
    }
    std::printf("%s: valid JSON (%zu bytes)\n", path, text.size());
    return 0;
  }

  return usage();
}
