// semlockc — the command-line synthesis compiler.
//
// Reads a client program in the surface syntax (see synth/parser.h), runs
// the full pipeline (restrictions-graph, wrappers, OS2PL insertion,
// symbolic-set refinement, Appendix-A optimizations, mode compilation) and
// prints the instrumented atomic sections.
//
//   semlockc input.sl                 # compile and print
//   semlockc --show-graph input.sl    # also print the restrictions-graph
//   semlockc --show-modes input.sl    # also print per-class mode tables
//   semlockc --no-refine --no-optimize input.sl   # the Section-3 output
//   semlockc -n 16 input.sl           # abstract values for phi
//   echo '...' | semlockc -           # read from stdin
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "synth/parser.h"
#include "synth/printer.h"
#include "synth/synthesis.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: semlockc [options] <file.sl | ->\n"
               "  --no-refine      lock(+) instead of refined symbolic sets\n"
               "  --no-optimize    skip the Appendix-A optimizations\n"
               "  -n <k>           abstract values for phi (default 64)\n"
               "  --max-modes <N>  mode bound per class (default 256)\n"
               "  --show-graph     print the restrictions-graph\n"
               "  --show-modes     print per-class mode tables\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace semlock;
  using namespace semlock::synth;

  SynthesisOptions opts;
  bool show_graph = false;
  bool show_modes = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-refine") {
      opts.refine_symbolic_sets = false;
    } else if (arg == "--no-optimize") {
      opts.optimize = false;
    } else if (arg == "--show-graph") {
      show_graph = true;
    } else if (arg == "--show-modes") {
      show_modes = true;
    } else if (arg == "-n" && i + 1 < argc) {
      opts.mode_config.abstract_values = std::atoi(argv[++i]);
    } else if (arg == "--max-modes" && i + 1 < argc) {
      opts.mode_config.max_modes = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::string source;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "semlockc: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  try {
    const Program program = parse_program(source);
    const auto classes = PointerClasses::by_type(program);
    const auto result = synthesize(program, classes, opts);

    if (show_graph) {
      std::printf("// restrictions-graph (before cycle collapse):\n");
      std::istringstream lines(result.raw_graph.to_string());
      for (std::string line; std::getline(lines, line);) {
        std::printf("//   %s\n", line.c_str());
      }
      std::printf("// class order:");
      for (const auto& c : result.class_order) std::printf(" %s", c.c_str());
      std::printf("\n");
      for (const auto& [member, wrapper] : result.wrapper_of) {
        std::printf("// wrapped: %s -> %s (pointer %s)\n", member.c_str(),
                    wrapper.c_str(),
                    result.wrapper_pointer.at(wrapper).c_str());
      }
      std::printf("\n");
    }

    for (const auto& section : result.program.sections) {
      std::printf("%s\n", print_section(section).c_str());
    }

    if (show_modes) {
      for (const auto& [cls, plan] : result.plans) {
        std::printf("// ==== modes for class %s ====\n", cls.c_str());
        std::istringstream lines(plan.table->describe());
        for (std::string line; std::getline(lines, line);) {
          std::printf("// %s\n", line.c_str());
        }
      }
    }
    return 0;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "semlockc: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "semlockc: synthesis failed: %s\n", e.what());
    return 1;
  }
}
