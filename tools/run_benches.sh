#!/usr/bin/env bash
# Regenerates the BENCH_*.json perf-trajectory artifacts at the repo root.
#
# Usage: tools/run_benches.sh [build-dir]
#
# Environment:
#   SEMLOCK_BENCH_SCALE   workload multiplier (default 1; CI smoke uses 0.05)
#
# The JSON-emitting benches write into the current directory, so run this
# from the repo root when refreshing the committed artifacts.
set -euo pipefail

BUILD_DIR="${1:-build}"

# Stamp the artifacts with the commit they were generated from (falls back
# to "unknown" inside write_bench_json when unset).
if [[ -z "${SEMLOCK_GIT_SHA:-}" ]]; then
  SEMLOCK_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || true)"
fi
export SEMLOCK_GIT_SHA

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

# Every artifact stamps hardware_threads; make the degenerate case impossible
# to miss in the console too. With one hardware thread all scaling series
# collapse and only single-thread rows mean anything — the run stamp in the
# artifacts carries the refusal (scaling_claims) so CI can reject any reading
# of single-core numbers as the paper's scaling figures.
HW_THREADS="$(nproc 2>/dev/null || echo 1)"
if [[ "${HW_THREADS}" -eq 1 ]]; then
  echo "##############################################################" >&2
  echo "## WARNING: only 1 hardware thread available.               ##" >&2
  echo "## Multi-thread rows in these artifacts measure             ##" >&2
  echo "## OVERSUBSCRIPTION, not scaling. Do not read them as the   ##" >&2
  echo "## paper's figures; see EXPERIMENTS.md section 0.           ##" >&2
  echo "##############################################################" >&2
  export SEMLOCK_SCALING_CLAIMS="refused-single-core"
else
  export SEMLOCK_SCALING_CLAIMS="multi-core"
fi

echo "=== bench_fig21_computeifabsent -> BENCH_fig21.json ==="
"${BUILD_DIR}/bench/bench_fig21_computeifabsent"

echo "=== bench_contention -> BENCH_contention.json ==="
"${BUILD_DIR}/bench/bench_contention"

echo "=== bench_oversubscription -> BENCH_oversubscription.json ==="
"${BUILD_DIR}/bench/bench_oversubscription"

echo "=== bench_conflict_probability -> BENCH_conflict_probability.json ==="
"${BUILD_DIR}/bench/bench_conflict_probability"

echo "=== bench_server -> BENCH_server.json ==="
"${BUILD_DIR}/bench/bench_server"

echo "=== bench_fairness -> BENCH_fairness.json ==="
"${BUILD_DIR}/bench/bench_fairness"

echo "=== bench_footprint -> BENCH_footprint.json ==="
"${BUILD_DIR}/bench/bench_footprint"

DONE="BENCH_fig21.json BENCH_contention.json BENCH_oversubscription.json \
BENCH_conflict_probability.json BENCH_server.json BENCH_fairness.json \
BENCH_footprint.json"

# Attribution sweep: built only when the observability layer is in
# (SEMLOCK_OBS=ON, the default).
if [[ -x "${BUILD_DIR}/bench/bench_attribution_sweep" ]]; then
  echo "=== bench_attribution_sweep -> BENCH_attribution.json ==="
  "${BUILD_DIR}/bench/bench_attribution_sweep"
  DONE="${DONE} BENCH_attribution.json"
fi

# Span-recorder overhead: same SEMLOCK_OBS gate as the attribution sweep.
if [[ -x "${BUILD_DIR}/bench/bench_trace_overhead" ]]; then
  echo "=== bench_trace_overhead -> BENCH_trace_overhead.json ==="
  "${BUILD_DIR}/bench/bench_trace_overhead"
  DONE="${DONE} BENCH_trace_overhead.json"
fi

echo "done: ${DONE}"
