# Empty compiler generated dependencies file for semlockc.
# This may be replaced when dependencies are built.
