file(REMOVE_RECURSE
  "CMakeFiles/semlockc.dir/semlockc.cpp.o"
  "CMakeFiles/semlockc.dir/semlockc.cpp.o.d"
  "semlockc"
  "semlockc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semlockc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
