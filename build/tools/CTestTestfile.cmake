# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(semlockc_fig1 "/root/repo/build/tools/semlockc" "--show-graph" "--show-modes" "/root/repo/examples/dsl/fig1.sl")
set_tests_properties(semlockc_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(semlockc_fig7 "/root/repo/build/tools/semlockc" "--show-graph" "--show-modes" "/root/repo/examples/dsl/fig7.sl")
set_tests_properties(semlockc_fig7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(semlockc_fig9 "/root/repo/build/tools/semlockc" "--show-graph" "--show-modes" "/root/repo/examples/dsl/fig9.sl")
set_tests_properties(semlockc_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(semlockc_bank "/root/repo/build/tools/semlockc" "--show-graph" "--show-modes" "/root/repo/examples/dsl/bank.sl")
set_tests_properties(semlockc_bank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
