file(REMOVE_RECURSE
  "libsemlock_core.a"
)
