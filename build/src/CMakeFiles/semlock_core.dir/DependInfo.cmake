
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/commute/builtin_specs.cpp" "src/CMakeFiles/semlock_core.dir/commute/builtin_specs.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/commute/builtin_specs.cpp.o.d"
  "/root/repo/src/commute/condition.cpp" "src/CMakeFiles/semlock_core.dir/commute/condition.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/commute/condition.cpp.o.d"
  "/root/repo/src/commute/spec.cpp" "src/CMakeFiles/semlock_core.dir/commute/spec.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/commute/spec.cpp.o.d"
  "/root/repo/src/commute/symbolic.cpp" "src/CMakeFiles/semlock_core.dir/commute/symbolic.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/commute/symbolic.cpp.o.d"
  "/root/repo/src/semlock/history.cpp" "src/CMakeFiles/semlock_core.dir/semlock/history.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/semlock/history.cpp.o.d"
  "/root/repo/src/semlock/lock_mechanism.cpp" "src/CMakeFiles/semlock_core.dir/semlock/lock_mechanism.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/semlock/lock_mechanism.cpp.o.d"
  "/root/repo/src/semlock/mode.cpp" "src/CMakeFiles/semlock_core.dir/semlock/mode.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/semlock/mode.cpp.o.d"
  "/root/repo/src/semlock/mode_table.cpp" "src/CMakeFiles/semlock_core.dir/semlock/mode_table.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/semlock/mode_table.cpp.o.d"
  "/root/repo/src/semlock/transaction.cpp" "src/CMakeFiles/semlock_core.dir/semlock/transaction.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/semlock/transaction.cpp.o.d"
  "/root/repo/src/synth/ast.cpp" "src/CMakeFiles/semlock_core.dir/synth/ast.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/ast.cpp.o.d"
  "/root/repo/src/synth/cfg.cpp" "src/CMakeFiles/semlock_core.dir/synth/cfg.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/cfg.cpp.o.d"
  "/root/repo/src/synth/interpreter.cpp" "src/CMakeFiles/semlock_core.dir/synth/interpreter.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/interpreter.cpp.o.d"
  "/root/repo/src/synth/optimizer.cpp" "src/CMakeFiles/semlock_core.dir/synth/optimizer.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/optimizer.cpp.o.d"
  "/root/repo/src/synth/parser.cpp" "src/CMakeFiles/semlock_core.dir/synth/parser.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/parser.cpp.o.d"
  "/root/repo/src/synth/pointer_classes.cpp" "src/CMakeFiles/semlock_core.dir/synth/pointer_classes.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/pointer_classes.cpp.o.d"
  "/root/repo/src/synth/printer.cpp" "src/CMakeFiles/semlock_core.dir/synth/printer.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/printer.cpp.o.d"
  "/root/repo/src/synth/restrictions_graph.cpp" "src/CMakeFiles/semlock_core.dir/synth/restrictions_graph.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/restrictions_graph.cpp.o.d"
  "/root/repo/src/synth/symbolic_inference.cpp" "src/CMakeFiles/semlock_core.dir/synth/symbolic_inference.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/symbolic_inference.cpp.o.d"
  "/root/repo/src/synth/synthesis.cpp" "src/CMakeFiles/semlock_core.dir/synth/synthesis.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/synth/synthesis.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/semlock_core.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/semlock_core.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_team.cpp" "src/CMakeFiles/semlock_core.dir/util/thread_team.cpp.o" "gcc" "src/CMakeFiles/semlock_core.dir/util/thread_team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
