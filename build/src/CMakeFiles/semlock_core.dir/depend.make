# Empty dependencies file for semlock_core.
# This may be replaced when dependencies are built.
