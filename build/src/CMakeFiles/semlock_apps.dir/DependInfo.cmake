
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cache_module.cpp" "src/CMakeFiles/semlock_apps.dir/apps/cache_module.cpp.o" "gcc" "src/CMakeFiles/semlock_apps.dir/apps/cache_module.cpp.o.d"
  "/root/repo/src/apps/compute_if_absent.cpp" "src/CMakeFiles/semlock_apps.dir/apps/compute_if_absent.cpp.o" "gcc" "src/CMakeFiles/semlock_apps.dir/apps/compute_if_absent.cpp.o.d"
  "/root/repo/src/apps/gossip_router.cpp" "src/CMakeFiles/semlock_apps.dir/apps/gossip_router.cpp.o" "gcc" "src/CMakeFiles/semlock_apps.dir/apps/gossip_router.cpp.o.d"
  "/root/repo/src/apps/graph_module.cpp" "src/CMakeFiles/semlock_apps.dir/apps/graph_module.cpp.o" "gcc" "src/CMakeFiles/semlock_apps.dir/apps/graph_module.cpp.o.d"
  "/root/repo/src/apps/intruder.cpp" "src/CMakeFiles/semlock_apps.dir/apps/intruder.cpp.o" "gcc" "src/CMakeFiles/semlock_apps.dir/apps/intruder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/semlock_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
