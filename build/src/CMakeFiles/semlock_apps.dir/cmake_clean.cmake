file(REMOVE_RECURSE
  "CMakeFiles/semlock_apps.dir/apps/cache_module.cpp.o"
  "CMakeFiles/semlock_apps.dir/apps/cache_module.cpp.o.d"
  "CMakeFiles/semlock_apps.dir/apps/compute_if_absent.cpp.o"
  "CMakeFiles/semlock_apps.dir/apps/compute_if_absent.cpp.o.d"
  "CMakeFiles/semlock_apps.dir/apps/gossip_router.cpp.o"
  "CMakeFiles/semlock_apps.dir/apps/gossip_router.cpp.o.d"
  "CMakeFiles/semlock_apps.dir/apps/graph_module.cpp.o"
  "CMakeFiles/semlock_apps.dir/apps/graph_module.cpp.o.d"
  "CMakeFiles/semlock_apps.dir/apps/intruder.cpp.o"
  "CMakeFiles/semlock_apps.dir/apps/intruder.cpp.o.d"
  "libsemlock_apps.a"
  "libsemlock_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semlock_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
