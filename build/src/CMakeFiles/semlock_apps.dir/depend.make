# Empty dependencies file for semlock_apps.
# This may be replaced when dependencies are built.
