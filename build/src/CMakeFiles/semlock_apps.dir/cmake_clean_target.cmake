file(REMOVE_RECURSE
  "libsemlock_apps.a"
)
