file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_gossip.dir/bench_fig25_gossip.cpp.o"
  "CMakeFiles/bench_fig25_gossip.dir/bench_fig25_gossip.cpp.o.d"
  "bench_fig25_gossip"
  "bench_fig25_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
