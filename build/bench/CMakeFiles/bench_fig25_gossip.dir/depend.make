# Empty dependencies file for bench_fig25_gossip.
# This may be replaced when dependencies are built.
