file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_computeifabsent.dir/bench_fig21_computeifabsent.cpp.o"
  "CMakeFiles/bench_fig21_computeifabsent.dir/bench_fig21_computeifabsent.cpp.o.d"
  "bench_fig21_computeifabsent"
  "bench_fig21_computeifabsent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_computeifabsent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
