file(REMOVE_RECURSE
  "CMakeFiles/bench_conflict_probability.dir/bench_conflict_probability.cpp.o"
  "CMakeFiles/bench_conflict_probability.dir/bench_conflict_probability.cpp.o.d"
  "bench_conflict_probability"
  "bench_conflict_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
