# Empty compiler generated dependencies file for bench_conflict_probability.
# This may be replaced when dependencies are built.
