file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lock.dir/bench_micro_lock.cpp.o"
  "CMakeFiles/bench_micro_lock.dir/bench_micro_lock.cpp.o.d"
  "bench_micro_lock"
  "bench_micro_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
