# Empty compiler generated dependencies file for bench_fig22_graph.
# This may be replaced when dependencies are built.
