# Empty dependencies file for bench_fig23_cache.
# This may be replaced when dependencies are built.
