# Empty dependencies file for bench_fig24_intruder.
# This may be replaced when dependencies are built.
