file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_intruder.dir/bench_fig24_intruder.cpp.o"
  "CMakeFiles/bench_fig24_intruder.dir/bench_fig24_intruder.cpp.o.d"
  "bench_fig24_intruder"
  "bench_fig24_intruder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_intruder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
