# Empty compiler generated dependencies file for compiler_tour.
# This may be replaced when dependencies are built.
