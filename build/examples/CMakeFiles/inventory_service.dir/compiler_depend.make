# Empty compiler generated dependencies file for inventory_service.
# This may be replaced when dependencies are built.
