# Empty dependencies file for sem_adt_test.
# This may be replaced when dependencies are built.
