file(REMOVE_RECURSE
  "CMakeFiles/sem_adt_test.dir/sem_adt_test.cpp.o"
  "CMakeFiles/sem_adt_test.dir/sem_adt_test.cpp.o.d"
  "sem_adt_test"
  "sem_adt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sem_adt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
