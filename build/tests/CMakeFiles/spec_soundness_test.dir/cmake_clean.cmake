file(REMOVE_RECURSE
  "CMakeFiles/spec_soundness_test.dir/spec_soundness_test.cpp.o"
  "CMakeFiles/spec_soundness_test.dir/spec_soundness_test.cpp.o.d"
  "spec_soundness_test"
  "spec_soundness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
