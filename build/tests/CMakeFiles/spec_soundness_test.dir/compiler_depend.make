# Empty compiler generated dependencies file for spec_soundness_test.
# This may be replaced when dependencies are built.
