file(REMOVE_RECURSE
  "CMakeFiles/modes_soundness_test.dir/modes_soundness_test.cpp.o"
  "CMakeFiles/modes_soundness_test.dir/modes_soundness_test.cpp.o.d"
  "modes_soundness_test"
  "modes_soundness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modes_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
