file(REMOVE_RECURSE
  "CMakeFiles/mode_test.dir/mode_test.cpp.o"
  "CMakeFiles/mode_test.dir/mode_test.cpp.o.d"
  "mode_test"
  "mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
