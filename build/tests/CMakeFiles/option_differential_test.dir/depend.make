# Empty dependencies file for option_differential_test.
# This may be replaced when dependencies are built.
