file(REMOVE_RECURSE
  "CMakeFiles/option_differential_test.dir/option_differential_test.cpp.o"
  "CMakeFiles/option_differential_test.dir/option_differential_test.cpp.o.d"
  "option_differential_test"
  "option_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/option_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
