# Empty compiler generated dependencies file for concurrency_property_test.
# This may be replaced when dependencies are built.
