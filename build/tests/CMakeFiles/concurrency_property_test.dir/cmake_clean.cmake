file(REMOVE_RECURSE
  "CMakeFiles/concurrency_property_test.dir/concurrency_property_test.cpp.o"
  "CMakeFiles/concurrency_property_test.dir/concurrency_property_test.cpp.o.d"
  "concurrency_property_test"
  "concurrency_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
