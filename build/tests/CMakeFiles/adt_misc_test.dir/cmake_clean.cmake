file(REMOVE_RECURSE
  "CMakeFiles/adt_misc_test.dir/adt_misc_test.cpp.o"
  "CMakeFiles/adt_misc_test.dir/adt_misc_test.cpp.o.d"
  "adt_misc_test"
  "adt_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
