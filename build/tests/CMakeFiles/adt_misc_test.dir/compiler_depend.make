# Empty compiler generated dependencies file for adt_misc_test.
# This may be replaced when dependencies are built.
