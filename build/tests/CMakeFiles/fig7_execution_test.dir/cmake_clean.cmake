file(REMOVE_RECURSE
  "CMakeFiles/fig7_execution_test.dir/fig7_execution_test.cpp.o"
  "CMakeFiles/fig7_execution_test.dir/fig7_execution_test.cpp.o.d"
  "fig7_execution_test"
  "fig7_execution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
