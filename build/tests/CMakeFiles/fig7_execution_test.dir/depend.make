# Empty dependencies file for fig7_execution_test.
# This may be replaced when dependencies are built.
