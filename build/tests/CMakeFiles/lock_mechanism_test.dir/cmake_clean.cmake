file(REMOVE_RECURSE
  "CMakeFiles/lock_mechanism_test.dir/lock_mechanism_test.cpp.o"
  "CMakeFiles/lock_mechanism_test.dir/lock_mechanism_test.cpp.o.d"
  "lock_mechanism_test"
  "lock_mechanism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
