# Empty compiler generated dependencies file for lock_mechanism_test.
# This may be replaced when dependencies are built.
