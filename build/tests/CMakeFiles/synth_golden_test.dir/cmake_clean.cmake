file(REMOVE_RECURSE
  "CMakeFiles/synth_golden_test.dir/synth_golden_test.cpp.o"
  "CMakeFiles/synth_golden_test.dir/synth_golden_test.cpp.o.d"
  "synth_golden_test"
  "synth_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
