# Empty dependencies file for synth_golden_test.
# This may be replaced when dependencies are built.
