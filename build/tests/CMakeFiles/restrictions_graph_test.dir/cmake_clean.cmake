file(REMOVE_RECURSE
  "CMakeFiles/restrictions_graph_test.dir/restrictions_graph_test.cpp.o"
  "CMakeFiles/restrictions_graph_test.dir/restrictions_graph_test.cpp.o.d"
  "restrictions_graph_test"
  "restrictions_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restrictions_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
