# Empty compiler generated dependencies file for restrictions_graph_test.
# This may be replaced when dependencies are built.
