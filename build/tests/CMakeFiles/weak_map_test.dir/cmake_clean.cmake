file(REMOVE_RECURSE
  "CMakeFiles/weak_map_test.dir/weak_map_test.cpp.o"
  "CMakeFiles/weak_map_test.dir/weak_map_test.cpp.o.d"
  "weak_map_test"
  "weak_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
