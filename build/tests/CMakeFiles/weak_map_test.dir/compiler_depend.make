# Empty compiler generated dependencies file for weak_map_test.
# This may be replaced when dependencies are built.
