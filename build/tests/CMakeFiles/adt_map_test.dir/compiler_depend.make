# Empty compiler generated dependencies file for adt_map_test.
# This may be replaced when dependencies are built.
