file(REMOVE_RECURSE
  "CMakeFiles/adt_map_test.dir/adt_map_test.cpp.o"
  "CMakeFiles/adt_map_test.dir/adt_map_test.cpp.o.d"
  "adt_map_test"
  "adt_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
