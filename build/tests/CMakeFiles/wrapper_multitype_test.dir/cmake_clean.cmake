file(REMOVE_RECURSE
  "CMakeFiles/wrapper_multitype_test.dir/wrapper_multitype_test.cpp.o"
  "CMakeFiles/wrapper_multitype_test.dir/wrapper_multitype_test.cpp.o.d"
  "wrapper_multitype_test"
  "wrapper_multitype_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_multitype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
