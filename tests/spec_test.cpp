#include <gtest/gtest.h>

#include "commute/builtin_specs.h"
#include "commute/spec.h"

namespace semlock::commute {
namespace {

TEST(SpecBuilder, BasicLookup) {
  const AdtSpec& set = set_spec();
  EXPECT_EQ(set.name(), "Set");
  EXPECT_EQ(set.num_methods(), 5);
  EXPECT_GE(set.method_index("add"), 0);
  EXPECT_GE(set.method_index("clear"), 0);
  EXPECT_EQ(set.method_index("nope"), -1);
  EXPECT_EQ(set.method(set.method_index("add")).arity, 1);
  EXPECT_TRUE(set.method(set.method_index("contains")).has_result);
}

TEST(SpecBuilder, MethodsAfterCommuteThrows) {
  AdtSpec::Builder b("X");
  b.method("a", 0);
  b.commute("a", "a", CommCondition::always());
  EXPECT_THROW(b.method("b", 0), std::logic_error);
}

TEST(SpecBuilder, DuplicateMethodThrows) {
  AdtSpec::Builder b("X");
  b.method("a", 0);
  EXPECT_THROW(b.method("a", 1), std::invalid_argument);
}

TEST(SpecBuilder, UndeclaredCommuteThrows) {
  AdtSpec::Builder b("X");
  b.method("a", 0);
  EXPECT_THROW(b.commute("a", "zzz", CommCondition::always()),
               std::invalid_argument);
}

TEST(SpecBuilder, DefaultsToNever) {
  AdtSpec::Builder b("X");
  b.method("a", 0).method("b", 0);
  const AdtSpec spec = b.build();
  EXPECT_EQ(spec.condition(0, 1).kind(), CommCondition::Kind::Never);
  EXPECT_EQ(spec.condition(0, 0).kind(), CommCondition::Kind::Never);
}

TEST(SpecBuilder, MirrorsAutomatically) {
  AdtSpec::Builder b("X");
  b.method("f", 2).method("g", 1);
  // f's arg 1 must differ from g's arg 0.
  b.commute("f", "g", CommCondition::differ(1, 0));
  const AdtSpec spec = b.build();
  const int f = spec.method_index("f"), g = spec.method_index("g");
  EXPECT_TRUE(spec.condition(f, g).evaluate({0, 5}, {6}));
  EXPECT_FALSE(spec.condition(f, g).evaluate({0, 5}, {5}));
  // Mirrored: g's arg 0 must differ from f's arg 1.
  EXPECT_TRUE(spec.condition(g, f).evaluate({6}, {0, 5}));
  EXPECT_FALSE(spec.condition(g, f).evaluate({5}, {0, 5}));
}

TEST(SpecFig3b, SetConditions) {
  // Fig. 3(b), entry by entry (v / v' conditions).
  const AdtSpec& s = set_spec();
  const int add = s.method_index("add");
  const int rem = s.method_index("remove");
  const int con = s.method_index("contains");
  const int siz = s.method_index("size");
  const int clr = s.method_index("clear");

  EXPECT_EQ(s.condition(add, add).kind(), CommCondition::Kind::Always);
  EXPECT_TRUE(s.condition(add, rem).evaluate({1}, {2}));
  EXPECT_FALSE(s.condition(add, rem).evaluate({1}, {1}));
  EXPECT_TRUE(s.condition(add, con).evaluate({1}, {2}));
  EXPECT_FALSE(s.condition(add, con).evaluate({1}, {1}));
  EXPECT_EQ(s.condition(add, siz).kind(), CommCondition::Kind::Never);
  EXPECT_EQ(s.condition(add, clr).kind(), CommCondition::Kind::Never);
  EXPECT_EQ(s.condition(rem, rem).kind(), CommCondition::Kind::Always);
  EXPECT_FALSE(s.condition(rem, con).evaluate({3}, {3}));
  EXPECT_EQ(s.condition(rem, siz).kind(), CommCondition::Kind::Never);
  EXPECT_EQ(s.condition(con, con).kind(), CommCondition::Kind::Always);
  EXPECT_EQ(s.condition(siz, siz).kind(), CommCondition::Kind::Always);
  EXPECT_EQ(s.condition(siz, clr).kind(), CommCondition::Kind::Never);
  EXPECT_EQ(s.condition(clr, clr).kind(), CommCondition::Kind::Always);
}

TEST(BuiltinSpecs, AllConstructible) {
  EXPECT_EQ(map_spec().name(), "Map");
  EXPECT_EQ(fifo_queue_spec().name(), "Queue");
  EXPECT_EQ(pool_spec().name(), "Pool");
  EXPECT_EQ(multimap_spec().name(), "Multimap");
  EXPECT_EQ(weakmap_spec().name(), "WeakMap");
  EXPECT_EQ(counter_spec().name(), "Counter");
  EXPECT_EQ(register_spec().name(), "Register");
  EXPECT_EQ(account_spec().name(), "Account");
}

TEST(BuiltinSpecs, FifoQueueAdmitsNoEnqueueParallelism) {
  const AdtSpec& q = fifo_queue_spec();
  const int enq = q.method_index("enqueue");
  EXPECT_EQ(q.condition(enq, enq).kind(), CommCondition::Kind::Never);
}

TEST(BuiltinSpecs, PoolEnqueuesCommute) {
  const AdtSpec& p = pool_spec();
  const int enq = p.method_index("enqueue");
  const int deq = p.method_index("dequeue");
  EXPECT_EQ(p.condition(enq, enq).kind(), CommCondition::Kind::Always);
  EXPECT_EQ(p.condition(enq, deq).kind(), CommCondition::Kind::Never);
}

TEST(BuiltinSpecs, WeakMapPutAllConflictsWithEverything) {
  const AdtSpec& w = weakmap_spec();
  const int pa = w.method_index("putAll");
  ASSERT_GE(pa, 0);
  for (int m = 0; m < w.num_methods(); ++m) {
    EXPECT_EQ(w.condition(pa, m).kind(), CommCondition::Kind::Never)
        << "putAll vs " << w.method(m).name;
  }
}

}  // namespace
}  // namespace semlock::commute
