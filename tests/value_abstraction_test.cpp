// The abstraction function phi (commute/value.h). Everything downstream —
// mode resolution, the PHI_COLLISION class of the attribution profiler, the
// abstract-values sweep — assumes alpha_of is a total function into
// [0, size()): in particular that negative keys do NOT get the C++ signed
// remainder (which would be negative and index out of bounds).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "commute/value.h"

namespace semlock::commute {
namespace {

TEST(ValueAbstraction, NegativeKeysGetTheNonNegativeRemainder) {
  const ValueAbstraction phi(4);
  EXPECT_EQ(phi.alpha_of(-1), 3);
  EXPECT_EQ(phi.alpha_of(-4), 0);
  EXPECT_EQ(phi.alpha_of(-5), 3);
  EXPECT_EQ(phi.alpha_of(-7), 1);
  for (Value v = -100; v <= 100; ++v) {
    const int a = phi.alpha_of(v);
    EXPECT_GE(a, 0) << "v=" << v;
    EXPECT_LT(a, phi.size()) << "v=" << v;
    // phi is periodic in n, across the sign boundary too.
    EXPECT_EQ(phi.alpha_of(v + 4), a) << "v=" << v;
  }
}

TEST(ValueAbstraction, ExtremeKeysStayInRange) {
  for (const int n : {1, 2, 3, 64, 1 << 20}) {
    const ValueAbstraction phi(n);
    for (const Value v : {std::numeric_limits<Value>::min(),
                          std::numeric_limits<Value>::min() + 1,
                          std::numeric_limits<Value>::max()}) {
      const int a = phi.alpha_of(v);
      EXPECT_GE(a, 0) << "n=" << n << " v=" << v;
      EXPECT_LT(a, n) << "n=" << n << " v=" << v;
    }
  }
}

TEST(ValueAbstraction, SingleClassMapsEverythingToZero) {
  const ValueAbstraction phi(1);
  EXPECT_EQ(phi.size(), 1);
  for (const Value v : {Value{0}, Value{1}, Value{-1}, Value{12345},
                        std::numeric_limits<Value>::min(),
                        std::numeric_limits<Value>::max()}) {
    EXPECT_EQ(phi.alpha_of(v), 0) << "v=" << v;
  }
}

TEST(ValueAbstraction, NonPositiveSizeClampsToOneClass) {
  EXPECT_EQ(ValueAbstraction(0).size(), 1);
  EXPECT_EQ(ValueAbstraction(-3).size(), 1);
  EXPECT_EQ(ValueAbstraction(0).alpha_of(42), 0);
  EXPECT_EQ(ValueAbstraction(-3).alpha_of(-42), 0);
}

TEST(ValueAbstraction, LargeNIsIdentityOnSmallKeys) {
  // When n exceeds the key range, distinct keys stay distinct — the regime
  // where the attribution sweep's false-conflict rate reaches zero.
  const ValueAbstraction phi(1 << 20);
  EXPECT_EQ(phi.alpha_of(0), 0);
  EXPECT_EQ(phi.alpha_of(123), 123);
  EXPECT_EQ(phi.alpha_of((1 << 20) - 1), (1 << 20) - 1);
  EXPECT_EQ(phi.alpha_of(1 << 20), 0);  // wraps exactly at n
}

TEST(ValueAbstraction, PinsTheFig19Assignment) {
  // Fig. 19 fixes phi(5) = alpha_1; with the transparent modulus and n = 2,
  // 5 mod 2 = 1 reproduces it directly (the header documents this).
  EXPECT_EQ(ValueAbstraction(2).alpha_of(5), 1);
}

}  // namespace
}  // namespace semlock::commute
