#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "adt/bounded_weak_map.h"
#include "commute/value.h"
#include "util/rng.h"

namespace semlock::adt {
namespace {

using commute::Value;

TEST(BoundedWeakMap, BasicOps) {
  BoundedWeakMap<Value, Value> map(64, 1);
  EXPECT_FALSE(map.get(1));
  map.put(1, 10);
  ASSERT_TRUE(map.get(1));
  EXPECT_EQ(*map.get(1), 10);
  EXPECT_TRUE(map.contains_key(1));
  map.put(1, 11);  // overwrite
  EXPECT_EQ(*map.get(1), 11);
  EXPECT_TRUE(map.remove(1));
  EXPECT_FALSE(map.remove(1));
  EXPECT_EQ(map.size(), 0u);
}

TEST(BoundedWeakMap, EvictsWhenFull) {
  BoundedWeakMap<Value, Value> map(/*capacity=*/8, /*num_stripes=*/1);
  for (Value k = 0; k < 100; ++k) map.put(k, k);
  EXPECT_LE(map.size(), 8u);
  // The most recent insert survives.
  EXPECT_TRUE(map.get(99));
}

TEST(BoundedWeakMap, SecondChanceKeepsHotEntries) {
  BoundedWeakMap<Value, Value> map(/*capacity=*/4, /*num_stripes=*/1);
  map.put(0, 0);
  for (Value k = 1; k < 40; ++k) {
    (void)map.get(0);  // keep entry 0 hot
    map.put(k, k);
  }
  EXPECT_TRUE(map.get(0)) << "hot entry evicted despite constant use";
}

TEST(BoundedWeakMap, WeakSemanticsAllowMisses) {
  // Unlike StripedHashMap, a once-present key may be gone — the contract
  // cache code must handle.
  BoundedWeakMap<Value, Value> map(/*capacity=*/4, /*num_stripes=*/1);
  map.put(1, 10);
  for (Value k = 100; k < 120; ++k) map.put(k, k);
  // No assertion that key 1 is still present; only that lookups never
  // return a wrong value.
  const auto v = map.get(1);
  if (v) {
    EXPECT_EQ(*v, 10);
  }
}

TEST(BoundedWeakMap, ClearAndCapacity) {
  BoundedWeakMap<Value, Value> map(64, 4);
  EXPECT_GE(map.capacity(), 64u);
  for (Value k = 0; k < 32; ++k) map.put(k, k);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  for (Value k = 0; k < 32; ++k) EXPECT_FALSE(map.get(k));
}

TEST(BoundedWeakMap, ConcurrentMixedUse) {
  BoundedWeakMap<Value, Value> map(1024, 16);
  std::vector<std::thread> threads;
  std::atomic<bool> corrupt{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(util::derive_seed(21, t));
      for (int i = 0; i < 20000; ++i) {
        const Value k = static_cast<Value>(rng.next_below(512));
        if (rng.chance_percent(40)) {
          map.put(k, k * 7);
        } else {
          const auto v = map.get(k);
          if (v && *v != k * 7) corrupt.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_LE(map.size(), map.capacity());
}

}  // namespace
}  // namespace semlock::adt
