// End-to-end soundness of the Section-5 compilation chain, as randomized
// property tests:
//
//  (1) COVERAGE: the mode `resolve(site, vals)` returns represents every
//      concrete operation the symbolic set can denote under `vals` — the
//      runtime guarantee that a transaction only invokes operations it
//      holds a lock on.
//
//  (2) COMMUTATIVITY: whenever F_c says two resolved modes commute, every
//      pair of concrete operations drawn from them satisfies the ADT's
//      commutativity condition (and the spec-soundness suite separately
//      validates conditions against the sequential models — composing the
//      two gives: commuting modes really commute).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "commute/builtin_specs.h"
#include "semlock/mode_table.h"
#include "util/rng.h"

namespace semlock {
namespace {

using commute::AdtSpec;
using commute::SymArg;
using commute::SymbolicSet;
using commute::Value;

struct ConcreteOp {
  int method;
  std::vector<Value> args;
};

// Instantiates a symbolic set under a variable binding; Star arguments take
// `star_fill` (the property is checked for several fills). Widened-away
// variables no longer appear in `vars`.
std::vector<ConcreteOp> instantiate(const AdtSpec& spec,
                                    const SymbolicSet& set,
                                    const std::vector<std::string>& vars,
                                    const std::vector<Value>& vals,
                                    Value star_fill) {
  std::vector<ConcreteOp> out;
  for (const auto& o : set.ops()) {
    ConcreteOp c;
    c.method = spec.method_index(o.method);
    for (const auto& a : o.args) {
      switch (a.kind) {
        case SymArg::Kind::Star:
          c.args.push_back(star_fill);
          break;
        case SymArg::Kind::Const:
          c.args.push_back(a.constant);
          break;
        case SymArg::Kind::Var: {
          const auto it = std::find(vars.begin(), vars.end(), a.var);
          c.args.push_back(
              it == vars.end()
                  ? star_fill
                  : vals[static_cast<std::size_t>(it - vars.begin())]);
          break;
        }
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

// Does the abstract op represent the concrete op?
bool covers(const commute::ValueAbstraction& phi, const AbstractOp& a,
            const ConcreteOp& c) {
  if (a.method != c.method || a.args.size() != c.args.size()) return false;
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    switch (a.args[i].kind) {
      case AbstractArg::Kind::Star:
        break;
      case AbstractArg::Kind::Const:
        if (a.args[i].constant != c.args[i]) return false;
        break;
      case AbstractArg::Kind::Alpha:
        if (phi.alpha_of(c.args[i]) != a.args[i].alpha) return false;
        break;
    }
  }
  return true;
}

struct Scenario {
  const AdtSpec* spec;
  std::vector<SymbolicSet> sites;
  std::string name;
};

std::vector<Scenario> scenarios() {
  using commute::cst;
  using commute::op;
  using commute::star;
  using commute::var;
  std::vector<Scenario> out;
  out.push_back({&commute::set_spec(),
                 {SymbolicSet({op("add", {var("i")}), op("remove", {var("j")})}),
                  SymbolicSet({op("contains", {var("k")})}),
                  SymbolicSet({op("size"), op("clear")}),
                  SymbolicSet({op("add", {cst(5)})}),
                  SymbolicSet({op("add", {star()})})},
                 "Set"});
  out.push_back(
      {&commute::map_spec(),
       {SymbolicSet({op("containsKey", {var("k")}),
                     op("put", {var("k"), star()})}),
        SymbolicSet({op("get", {var("k")}), op("put", {var("k"), star()}),
                     op("remove", {var("k")})}),
        SymbolicSet({op("size"), op("clear"), op("put", {var("k"), star()})})},
       "Map"});
  out.push_back(
      {&commute::multimap_spec(),
       {SymbolicSet({op("getAll", {var("k")})}),
        SymbolicSet({op("put", {var("k"), var("v")})}),
        SymbolicSet({op("removeEntry", {var("k"), var("v")})})},
       "Multimap"});
  return out;
}

class ModeSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ModeSoundness, CoverageAndCommutativity) {
  const Scenario scenario =
      scenarios()[static_cast<std::size_t>(GetParam())];
  for (const int n : {1, 2, 7, 64}) {
    ModeTableConfig cfg;
    cfg.abstract_values = n;
    const auto table =
        ModeTable::compile(*scenario.spec, scenario.sites, cfg);
    const auto& phi = table.abstraction();

    util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam() * 100 + n));
    const Value star_fills[3] = {-3, 0, 41};

    for (int trial = 0; trial < 400; ++trial) {
      const int s1 = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(table.num_sites())));
      const int s2 = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(table.num_sites())));
      auto draw_vals = [&](int site) {
        std::vector<Value> vals;
        for (std::size_t i = 0; i < table.site_variables(site).size(); ++i) {
          vals.push_back(rng.next_in(-100, 100));
        }
        return vals;
      };
      const auto v1 = draw_vals(s1);
      const auto v2 = draw_vals(s2);
      const int m1 = table.resolve(s1, v1);
      const int m2 = table.resolve(s2, v2);

      for (const Value fill : star_fills) {
        const auto ops1 =
            instantiate(*scenario.spec, table.site_set(s1),
                        table.site_variables(s1), v1, fill);
        const auto ops2 =
            instantiate(*scenario.spec, table.site_set(s2),
                        table.site_variables(s2), v2, fill);

        // (1) Coverage.
        for (const auto& c : ops1) {
          bool covered = false;
          for (const auto& a : table.mode(m1).ops) {
            if (covers(phi, a, c)) {
              covered = true;
              break;
            }
          }
          EXPECT_TRUE(covered)
              << scenario.name << " n=" << n << ": mode " << m1
              << " does not cover an op of site " << s1;
        }

        // (2) Commutativity implication.
        if (table.commutes(m1, m2)) {
          for (const auto& c1 : ops1) {
            for (const auto& c2 : ops2) {
              const auto& cond =
                  scenario.spec->condition(c1.method, c2.method);
              EXPECT_TRUE(cond.evaluate(c1.args, c2.args))
                  << scenario.name << " n=" << n << ": F_c claims modes "
                  << m1 << "," << m2
                  << " commute but a concrete pair conflicts";
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ModeSoundness,
                         ::testing::Values(0, 1, 2),
                         [](const auto& pinfo) {
                           return scenarios()[static_cast<std::size_t>(
                                                  pinfo.param)]
                               .name;
                         });

}  // namespace
}  // namespace semlock
