// Section 3.4 with a cyclic component spanning TWO ADT types: the global
// wrapper must carry a synthesized spec with namespaced methods
// ("Map.get", "Set.size", ...), same-type pairs inheriting the underlying
// commutativity condition and cross-type pairs always commuting. The
// interpreter must route lock coverage checks through the namespaced spec.
#include <gtest/gtest.h>

#include "commute/builtin_specs.h"
#include "synth/interpreter.h"
#include "synth/printer.h"
#include "synth/synthesis.h"

namespace semlock::synth {
namespace {

// A section where Map and Set constrain each other's lock order:
//   s = m.get(k);      // Map call, assigns s
//   t = s.size();      // Set call            => Map -> Set
//   m = m2;            // assigns m
//   m.put(k, t);       // Map call            => Set -> Map  (cycle!)
Program cyclic_two_type_program() {
  Program p;
  p.adt_types = {{"Map", &commute::map_spec()},
                 {"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "tangle";
  s.var_types = {{"m", "Map"}, {"m2", "Map"}, {"s", "Set"}};
  s.params = {"m", "m2", "k"};
  s.body = {
      call("s", "m", "get", {evar("k")}),
      call("t", "s", "size", {}),
      assign("m", evar("m2")),
      callv("m", "put", {evar("k"), evar("t")}),
  };
  p.sections = {s};
  return p;
}

SynthesisOptions options() {
  SynthesisOptions opts;
  opts.mode_config.abstract_values = 4;
  return opts;
}

TEST(WrapperMultiType, BothClassesCollapse) {
  const Program p = cyclic_two_type_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());

  ASSERT_EQ(res.wrapper_of.size(), 2u);
  EXPECT_EQ(res.wrapper_of.at("Map"), "GW1");
  EXPECT_EQ(res.wrapper_of.at("Set"), "GW1");
  EXPECT_EQ(res.class_order, std::vector<std::string>{"GW1"});

  // The wrapper spec is synthesized with namespaced methods.
  const auto& plan = res.plans.at("GW1");
  EXPECT_EQ(plan.spec->name(), "GW1");
  EXPECT_GE(plan.spec->method_index("Map.get"), 0);
  EXPECT_GE(plan.spec->method_index("Map.put"), 0);
  EXPECT_GE(plan.spec->method_index("Set.size"), 0);
  EXPECT_EQ(plan.spec->method_index("get"), -1);
}

TEST(WrapperMultiType, SpecConditionsComposeCorrectly) {
  const Program p = cyclic_two_type_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  const auto& spec = *res.plans.at("GW1").spec;

  // Cross-type pairs always commute (distinct types, distinct instances).
  EXPECT_EQ(spec.condition(spec.method_index("Map.put"),
                           spec.method_index("Set.size"))
                .kind(),
            commute::CommCondition::Kind::Always);
  // Same-type pairs inherit the underlying condition.
  EXPECT_EQ(spec.condition(spec.method_index("Map.get"),
                           spec.method_index("Map.get"))
                .kind(),
            commute::CommCondition::Kind::Always);
  const auto& get_put = spec.condition(spec.method_index("Map.get"),
                                       spec.method_index("Map.put"));
  EXPECT_TRUE(get_put.evaluate({1}, {2, 9}));
  EXPECT_FALSE(get_put.evaluate({1}, {1, 9}));
}

TEST(WrapperMultiType, RefinedSitesUseNamespacedMethods) {
  const Program p = cyclic_two_type_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  const auto& plan = res.plans.at("GW1");
  ASSERT_FALSE(plan.sites.empty());
  const std::string site = plan.sites[0].to_string();
  EXPECT_NE(site.find("Map.get("), std::string::npos) << site;
  EXPECT_NE(site.find("Set.size()"), std::string::npos) << site;
}

TEST(WrapperMultiType, InterpreterRunsEndToEnd) {
  const Program p = cyclic_two_type_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  Heap heap(res);
  Interpreter interp(heap);

  AdtInstance* m = heap.create("Map");
  AdtInstance* m2 = heap.create("Map");
  AdtInstance* set = heap.create("Set");
  set->invoke("add", {RtValue::of_int(1)});
  set->invoke("add", {RtValue::of_int(2)});
  m->invoke("put", {RtValue::of_int(7), RtValue::of_ref(set)});

  Interpreter::Env env;
  env["m"] = RtValue::of_ref(m);
  env["m2"] = RtValue::of_ref(m2);
  env["k"] = RtValue::of_int(7);
  const auto out = interp.run("tangle", env);

  EXPECT_EQ(out.at("t").i, 2);  // size of the set
  // The put landed on m2 (m was reassigned).
  EXPECT_EQ(m2->invoke("get", {RtValue::of_int(7)}).i, 2);
}

TEST(WrapperMultiType, ConcurrentWrapperRuns) {
  const Program p = cyclic_two_type_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  Heap heap(res);

  AdtInstance* m = heap.create("Map");
  AdtInstance* m2 = heap.create("Map");
  std::vector<AdtInstance*> sets;
  for (int i = 0; i < 8; ++i) {
    AdtInstance* s = heap.create("Set");
    s->invoke("add", {RtValue::of_int(i)});
    m->invoke("put", {RtValue::of_int(i), RtValue::of_ref(s)});
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Interpreter interp(heap);
      for (int i = 0; i < 500 && !failed.load(); ++i) {
        Interpreter::Env env;
        env["m"] = RtValue::of_ref(m);
        env["m2"] = RtValue::of_ref(m2);
        env["k"] = RtValue::of_int((t + i) % 8);
        try {
          interp.run("tangle", env);
        } catch (const std::exception& e) {
          ADD_FAILURE() << e.what();
          failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

// A wrapper created by ONE section's cycle must govern EVERY section that
// touches the wrapped class — the restrictions-graph and the collapse are
// program-wide (Fig. 11's point).
TEST(WrapperCrossSection, OtherSectionsLockThroughTheWrapper) {
  Program p;
  p.adt_types = {{"Map", &commute::map_spec()},
                 {"Set", &commute::set_spec()}};
  // Section 1: the Fig. 9 loop (creates the Set self-cycle).
  AtomicSection loop;
  loop.name = "loop";
  loop.var_types = {{"map", "Map"}, {"set", "Set"}};
  loop.params = {"map", "n"};
  loop.body = {
      assign("i", eint(0)),
      make_while(elt(evar("i"), evar("n")),
                 {call("set", "map", "get", {evar("i")}),
                  make_if(ene(evar("set"), enull()),
                          {callv("set", "add", {evar("i")})}),
                  assign("i", eadd(evar("i"), eint(1)))}),
  };
  // Section 2: a plain Set mutation, no cycle of its own.
  AtomicSection touch;
  touch.name = "touch";
  touch.var_types = {{"s", "Set"}};
  touch.params = {"s", "v"};
  touch.body = {callv("s", "add", {evar("v")})};
  p.sections = {loop, touch};

  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  ASSERT_TRUE(res.wrapper_of.count("Set"));
  EXPECT_EQ(res.effective_class("touch", "s"), res.wrapper_of.at("Set"));

  // The `touch` section's only lock targets the wrapper pointer.
  bool found_wrapper_lock = false;
  for (const auto& section : res.program.sections) {
    if (section.name != "touch") continue;
    for (const auto& st : section.body) {
      if (st->kind == Stmt::Kind::Lock) {
        EXPECT_FALSE(st->wrapper_key.empty());
        found_wrapper_lock = true;
      }
    }
  }
  EXPECT_TRUE(found_wrapper_lock);

  // Both sections execute concurrently through the shared wrapper lock.
  Heap heap(res);
  AdtInstance* map = heap.create("Map");
  std::vector<AdtInstance*> sets;
  for (int i = 0; i < 4; ++i) {
    AdtInstance* s = heap.create("Set");
    map->invoke("put", {RtValue::of_int(i), RtValue::of_ref(s)});
    sets.push_back(s);
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Interpreter interp(heap);
      for (int i = 0; i < 400 && !failed.load(); ++i) {
        Interpreter::Env env;
        try {
          if (t % 2 == 0) {
            env["map"] = RtValue::of_ref(map);
            env["n"] = RtValue::of_int(4);
            interp.run("loop", env);
          } else {
            env["s"] = RtValue::of_ref(sets[static_cast<std::size_t>(i % 4)]);
            env["v"] = RtValue::of_int(100 + i);
            interp.run("touch", env);
          }
        } catch (const std::exception& e) {
          ADD_FAILURE() << e.what();
          failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace semlock::synth
