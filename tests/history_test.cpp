// The conflict-serializability checker, and the empirical validation of the
// paper's Section 2.3 claim: every S2PL execution produced by the
// synthesized locking is conflict-serializable.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "commute/builtin_specs.h"
#include "paper_programs.h"
#include "semlock/history.h"
#include "synth/interpreter.h"
#include "synth/synthesis.h"
#include "util/rng.h"

namespace semlock {
namespace {

using commute::Value;

HistoryEvent ev(std::uint64_t seq, std::uint64_t txn, const void* inst,
                const commute::AdtSpec& spec, const std::string& method,
                std::vector<Value> args) {
  HistoryEvent e;
  e.seq = seq;
  e.txn = txn;
  e.instance = inst;
  e.spec = &spec;
  e.method = spec.method_index(method);
  e.args = std::move(args);
  return e;
}

TEST(SerializabilityChecker, EmptyAndSingleTxn) {
  EXPECT_TRUE(check_conflict_serializability({}).serializable);
  const auto& spec = commute::map_spec();
  int x;
  std::vector<HistoryEvent> h = {
      ev(0, 1, &x, spec, "put", {1, 10}),
      ev(1, 1, &x, spec, "get", {1}),
  };
  const auto r = check_conflict_serializability(h);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.precedence_edges, 0u);  // same txn: no edges
}

TEST(SerializabilityChecker, CommutingOpsAddNoEdges) {
  const auto& spec = commute::map_spec();
  int x;
  std::vector<HistoryEvent> h = {
      ev(0, 1, &x, spec, "put", {1, 10}),
      ev(1, 2, &x, spec, "put", {2, 20}),  // different key: commutes
      ev(2, 1, &x, spec, "get", {1}),
      ev(3, 2, &x, spec, "get", {2}),
  };
  const auto r = check_conflict_serializability(h);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.precedence_edges, 0u);
}

TEST(SerializabilityChecker, DifferentInstancesNeverConflict) {
  const auto& spec = commute::map_spec();
  int x, y;
  std::vector<HistoryEvent> h = {
      ev(0, 1, &x, spec, "put", {1, 10}),
      ev(1, 2, &y, spec, "put", {1, 20}),  // same key, other instance
  };
  EXPECT_EQ(check_conflict_serializability(h).precedence_edges, 0u);
}

TEST(SerializabilityChecker, DetectsClassicCycle) {
  // T1 reads X[k] before T2 writes it; T2 reads X[j] before T1 writes it:
  // T1 -> T2 and T2 -> T1.
  const auto& spec = commute::map_spec();
  int x;
  std::vector<HistoryEvent> h = {
      ev(0, 1, &x, spec, "get", {1}),
      ev(1, 2, &x, spec, "put", {1, 99}),
      ev(2, 2, &x, spec, "get", {2}),
      ev(3, 1, &x, spec, "put", {2, 77}),
  };
  const auto r = check_conflict_serializability(h);
  EXPECT_FALSE(r.serializable);
  EXPECT_GE(r.cycle.size(), 2u);
  EXPECT_NE(r.to_string().find("NOT serializable"), std::string::npos);
}

TEST(SerializabilityChecker, LinearChainIsSerializable) {
  const auto& spec = commute::set_spec();
  int x;
  std::vector<HistoryEvent> h = {
      ev(0, 1, &x, spec, "add", {5}),
      ev(1, 2, &x, spec, "remove", {5}),   // T1 -> T2
      ev(2, 3, &x, spec, "contains", {5}), // T2 -> T3
  };
  const auto r = check_conflict_serializability(h);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.precedence_edges, 3u);  // 1->2, 1->3, 2->3
}

// --- Empirical validation: synthesized locking yields serializable runs ----

synth::SynthesisOptions options() {
  synth::SynthesisOptions opts;
  opts.preferred_order = {"Map", "Set", "Queue"};
  opts.mode_config.abstract_values = 8;
  return opts;
}

TEST(SerializabilityEmpirical, Fig1ConcurrentHistoryIsSerializable) {
  const synth::Program p = synth::testing::fig1_program();
  const auto classes = synth::PointerClasses::by_type(p);
  const auto res = synth::synthesize(p, classes, options());
  synth::Heap heap(res);
  HistoryRecorder recorder;

  synth::AdtInstance* map = heap.create("Map");
  synth::AdtInstance* queue = heap.create("Queue");

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(util::derive_seed(61, t));
      synth::InterpreterOptions iopts;
      iopts.recorder = &recorder;
      synth::Interpreter interp(heap, iopts);
      for (int i = 0; i < 800 && !failed.load(); ++i) {
        synth::Interpreter::Env env;
        env["map"] = synth::RtValue::of_ref(map);
        env["queue"] = synth::RtValue::of_ref(queue);
        env["id"] = synth::RtValue::of_int(
            static_cast<Value>(rng.next_below(8)));
        env["x"] = synth::RtValue::of_int(rng.next_in(0, 99));
        env["y"] = synth::RtValue::of_int(rng.next_in(0, 99));
        env["flag"] = synth::RtValue::of_int(rng.chance_percent(25) ? 1 : 0);
        try {
          interp.run("fig1", env);
        } catch (const std::exception& e) {
          ADD_FAILURE() << e.what();
          failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  const auto events = recorder.snapshot();
  EXPECT_GT(events.size(), 5000u);
  const auto report = check_conflict_serializability(events);
  EXPECT_TRUE(report.serializable) << report.to_string();
  EXPECT_GT(report.precedence_edges, 0u);  // the runs really did conflict
}

TEST(SerializabilityEmpirical, MixedSectionsHistoryIsSerializable) {
  // Both Fig. 1 and Fig. 7 sections interleaved over shared instances.
  const synth::Program p = synth::testing::combined_program();
  const auto classes = synth::PointerClasses::by_type(p);
  const auto res = synth::synthesize(p, classes, options());
  synth::Heap heap(res);
  HistoryRecorder recorder;

  synth::AdtInstance* map = heap.create("Map");
  synth::AdtInstance* queue = heap.create("Queue");
  synth::AdtInstance* sa = heap.create("Set");
  synth::AdtInstance* sb = heap.create("Set");
  map->invoke("put", {synth::RtValue::of_int(100),
                      synth::RtValue::of_ref(sa)});
  map->invoke("put", {synth::RtValue::of_int(101),
                      synth::RtValue::of_ref(sb)});

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(util::derive_seed(71, t));
      synth::InterpreterOptions iopts;
      iopts.recorder = &recorder;
      synth::Interpreter interp(heap, iopts);
      for (int i = 0; i < 500 && !failed.load(); ++i) {
        synth::Interpreter::Env env;
        try {
          if (rng.chance_percent(50)) {
            env["map"] = synth::RtValue::of_ref(map);
            env["queue"] = synth::RtValue::of_ref(queue);
            env["id"] = synth::RtValue::of_int(
                static_cast<Value>(rng.next_below(6)));
            env["x"] = synth::RtValue::of_int(rng.next_in(0, 30));
            env["y"] = synth::RtValue::of_int(rng.next_in(0, 30));
            env["flag"] =
                synth::RtValue::of_int(rng.chance_percent(20) ? 1 : 0);
            interp.run("fig1", env);
          } else {
            env["m"] = synth::RtValue::of_ref(map);
            env["q"] = synth::RtValue::of_ref(queue);
            env["key1"] = synth::RtValue::of_int(100);
            env["key2"] = synth::RtValue::of_int(101);
            interp.run("g", env);
          }
        } catch (const std::exception& e) {
          ADD_FAILURE() << e.what();
          failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  const auto report = check_conflict_serializability(recorder.snapshot());
  EXPECT_TRUE(report.serializable) << report.to_string();
}

}  // namespace
}  // namespace semlock
