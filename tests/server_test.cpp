// semlock-server subsystem tests: deterministic traffic generation and shard
// routing, bounded-queue backpressure (shed-with-retry-after), drain-and-
// shutdown conservation (no lost or double-executed requests — this file is
// part of the TSan job), and the serializability oracle over concurrent
// checked runs of every non-serial mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "semlock/history.h"
#include "server/cc_backend.h"
#include "server/config.h"
#include "server/server.h"
#include "server/shard_queue.h"
#include "server/traffic_gen.h"
#include "server/zipf.h"
#include "util/rng.h"

namespace semlock::server {
namespace {

StoreConfig small_store() {
  StoreConfig s;
  s.accounts = 64;
  s.kv_keys = 1024;
  s.nodes = 32;
  s.abstract_values = 16;
  return s;
}

TrafficConfig small_traffic(std::uint64_t seed = 7) {
  TrafficConfig t;
  t.rate_rps = 200000.0;
  t.duration_ms = 20;
  t.zipf_theta = 0.8;  // hot keys: make modes actually contend
  t.store = small_store();
  t.seed = seed;
  parse_traffic_mix("mixed", &t.mix);
  return t;
}

bool streams_equal(const std::vector<Request>& a,
                   const std::vector<Request>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].kind != b[i].kind || a[i].a != b[i].a ||
        a[i].b != b[i].b || a[i].amount != b[i].amount ||
        a[i].arrival_ns != b[i].arrival_ns) {
      return false;
    }
  }
  return true;
}

TEST(TrafficGen, ScheduleIsDeterministicSortedAndDenselyNumbered) {
  const TrafficConfig cfg = small_traffic();
  const auto s1 = generate_schedule(cfg);
  const auto s2 = generate_schedule(cfg);
  ASSERT_FALSE(s1.empty());
  EXPECT_TRUE(streams_equal(s1, s2));
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].id, i);
    if (i > 0) EXPECT_GE(s1[i].arrival_ns, s1[i - 1].arrival_ns);
    EXPECT_LT(s1[i].arrival_ns, cfg.duration_ms * 1000000ull);
  }

  TrafficConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_FALSE(streams_equal(s1, generate_schedule(other)));
}

TEST(TrafficGen, KeysStayInsideTheirKeyspaces) {
  const TrafficConfig cfg = small_traffic();
  for (const Request& r : generate_schedule(cfg)) {
    switch (r.kind) {
      case RequestKind::kComputeIfAbsent:
        EXPECT_GE(r.a, 0);
        EXPECT_LT(r.a, cfg.store.kv_keys);
        break;
      case RequestKind::kTransfer:
      case RequestKind::kAudit:
        EXPECT_GE(r.a, 0);
        EXPECT_LT(r.a, cfg.store.accounts);
        EXPECT_GE(r.b, 0);
        EXPECT_LT(r.b, cfg.store.accounts);
        EXPECT_NE(r.a, r.b);
        break;
      case RequestKind::kInsertEdge:
      case RequestKind::kRemoveEdge:
      case RequestKind::kDegree:
        EXPECT_GE(r.a, 0);
        EXPECT_LT(r.a, cfg.store.nodes);
        EXPECT_GE(r.b, 0);
        EXPECT_LT(r.b, cfg.store.nodes);
        break;
    }
  }
}

TEST(TrafficGen, PartlyOpenModelRespectsHorizonAndDeterminism) {
  TrafficConfig cfg = small_traffic();
  cfg.think_users = 8;
  cfg.think_ms = 0.05;
  const auto s1 = generate_schedule(cfg);
  ASSERT_FALSE(s1.empty());
  EXPECT_TRUE(streams_equal(s1, generate_schedule(cfg)));
  for (std::size_t i = 1; i < s1.size(); ++i) {
    EXPECT_GE(s1[i].arrival_ns, s1[i - 1].arrival_ns);
  }
  EXPECT_LT(s1.back().arrival_ns, cfg.duration_ms * 1000000ull);
}

TEST(TrafficGen, BurstsRaiseTheArrivalCount) {
  TrafficConfig base = small_traffic();
  base.burst_factor = 1;
  TrafficConfig bursty = base;
  bursty.burst_factor = 8;
  bursty.burst_period_ms = 4;
  // Square wave at 8x for half the time: ~4.5x the arrivals.
  EXPECT_GT(generate_schedule(bursty).size(),
            2 * generate_schedule(base).size());
}

TEST(TrafficGen, ShardRoutingIsDeterministicAndInRange) {
  const auto schedule = generate_schedule(small_traffic());
  for (const Request& r : schedule) {
    const std::uint32_t s = shard_of(r, 16);
    EXPECT_LT(s, 16u);
    EXPECT_EQ(s, shard_of(r, 16));  // pure function of the request
  }
  // Same primary key, same kind => same shard (session affinity).
  Request a = schedule.front();
  Request b = a;
  b.id += 1;
  b.arrival_ns += 12345;
  EXPECT_EQ(shard_of(a, 64), shard_of(b, 64));
}

TEST(Zipf, SamplesStayInRangeAndSkewTowardHotKeys) {
  util::Xoshiro256 rng(3);
  const ZipfSampler zipf(1000, 0.9);
  std::uint64_t rank0 = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t r = zipf.next_rank(rng);
    ASSERT_LT(r, 1000u);
    if (r == 0) ++rank0;
    ASSERT_LT(zipf.next_key(rng), 1000u);
  }
  // Rank 0 of a theta=0.9 Zipfian over 1000 keys carries ~12% of the mass;
  // a uniform sampler would give 0.1%.
  EXPECT_GT(rank0, 1000u);
}

TEST(CCModes, ParseRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_cc_mode("semantic"), CCMode::kSemantic);
  EXPECT_EQ(parse_cc_mode("serial"), CCMode::kSerial);
  EXPECT_EQ(parse_cc_mode("global"), CCMode::kGlobalLock);
  EXPECT_EQ(parse_cc_mode("2pl"), CCMode::kTwoPL);
  EXPECT_EQ(parse_cc_mode("occ"), CCMode::kOcc);
  EXPECT_FALSE(parse_cc_mode("SEMANTIC"));
  EXPECT_FALSE(parse_cc_mode(""));
  EXPECT_FALSE(parse_cc_mode("mvcc"));
}

TEST(TrafficMixes, NamedMixesSumToOneHundred) {
  for (const char* name : {"kv", "bank", "graph", "mixed"}) {
    TrafficMix mix;
    ASSERT_TRUE(parse_traffic_mix(name, &mix)) << name;
    int sum = 0;
    for (int p : mix.pct) sum += p;
    EXPECT_EQ(sum, 100) << name;
  }
  TrafficMix mix;
  EXPECT_FALSE(parse_traffic_mix("everything", &mix));
  EXPECT_FALSE(parse_traffic_mix(nullptr, &mix));
}

TEST(ShardQueueTest, BoundedPushPopAndWatermark) {
  ShardQueue q(4);
  Request r;
  for (std::uint64_t i = 0; i < 4; ++i) {
    r.id = i;
    EXPECT_TRUE(q.try_push(r));
  }
  r.id = 99;
  EXPECT_FALSE(q.try_push(r));  // full: shed
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.high_watermark(), 4u);

  Request out;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(&out));
    EXPECT_EQ(out.id, i);  // FIFO
  }
  EXPECT_FALSE(q.try_pop(&out));
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.high_watermark(), 4u);  // watermark survives the drain
}

// Counts executions per request id — the direct witness that drain-and-
// shutdown neither loses nor double-executes.
class CountingBackend final : public CCBackend {
 public:
  explicit CountingBackend(std::size_t n) : seen(n) {}
  ExecResult execute(const Request& r) override {
    seen[static_cast<std::size_t>(r.id)].fetch_add(
        1, std::memory_order_relaxed);
    return ExecResult{};
  }
  CCMode mode() const override { return CCMode::kTwoPL; }  // multi-worker
  std::int64_t balance_total() const override { return 0; }
  std::int64_t kv_inserted() const override { return 0; }
  std::int64_t edges_present() const override { return 0; }
  std::uint64_t digest() const override { return 0; }

  std::vector<std::atomic<std::uint32_t>> seen;
};

TEST(ServerTest, DrainAndShutdownExecutesEveryAcceptedRequestExactlyOnce) {
  const auto schedule = generate_schedule(small_traffic());
  ServerConfig cfg;
  cfg.workers = 4;  // oversubscribed on a 1-core container — that's the point
  cfg.shards = 8;
  cfg.queue_capacity = static_cast<int>(schedule.size());  // no sheds
  CountingBackend backend(schedule.size());
  Server srv(cfg, &backend);
  const ServerReport r = srv.run(schedule, /*paced=*/false);

  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.completed, schedule.size());
  EXPECT_EQ(r.completed + r.shed, r.offered);
  for (std::size_t i = 0; i < backend.seen.size(); ++i) {
    EXPECT_EQ(backend.seen[i].load(std::memory_order_relaxed), 1u)
        << "request " << i;
  }
  EXPECT_EQ(r.latency_ns.count(), r.completed);
}

TEST(ServerTest, OverloadShedsWithRetryAfterAndConservesAccounting) {
  const auto schedule = generate_schedule(small_traffic());
  ASSERT_GT(schedule.size(), 100u);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.shards = 1;        // one queue: depth pressure is maximal
  cfg.queue_capacity = 2;  // unpaced dispatch must outrun the worker
  cfg.mode = CCMode::kGlobalLock;
  auto backend = make_cc_backend(cfg.mode, small_store());
  Server srv(cfg, backend.get());
  const ServerReport r = srv.run(schedule, /*paced=*/false);

  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.last_retry_after_ns, 0u);
  EXPECT_EQ(r.completed + r.shed, r.offered);
  EXPECT_LE(r.max_queue_depth, 2u);
}

// Service time is ~200us for requests routed to the hot shard and ~0
// elsewhere, so the hot shard's owning worker warms its EMA to ~200us while
// the other worker never executes and stays at the 1us seed.
class HotShardBackend final : public CCBackend {
 public:
  HotShardBackend(std::uint32_t hot_shard, std::uint32_t shards)
      : hot_shard_(hot_shard), shards_(shards) {}
  ExecResult execute(const Request& r) override {
    if (shard_of(r, shards_) == hot_shard_) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return ExecResult{};
  }
  CCMode mode() const override { return CCMode::kTwoPL; }  // multi-worker
  std::int64_t balance_total() const override { return 0; }
  std::int64_t kv_inserted() const override { return 0; }
  std::int64_t edges_present() const override { return 0; }
  std::uint64_t digest() const override { return 0; }

 private:
  std::uint32_t hot_shard_;
  std::uint32_t shards_;
};

TEST(ServerTest, RetryAfterHintQuotesTheOwningWorkersPace) {
  // All arrivals target one shard of two, every 50us for 40ms: offered load
  // is ~4x the hot worker's ~200us service rate, so the depth-2 queue sheds
  // throughout the run — including at the end, when the owning worker's EMA
  // is fully warm. The hint on the final shed must be (depth + 1) x the
  // OWNING worker's EMA: >= 2 x ~200us even if a pop races the depth read.
  // A hint diluted by the idle worker's 1us seed (the old pool average)
  // tops out near 3 x 100us and fails the lower bound.
  Request proto;
  proto.kind = RequestKind::kComputeIfAbsent;
  while (shard_of(proto, 2) != 0) ++proto.a;

  std::vector<Request> schedule;
  for (std::uint64_t i = 0; i < 800; ++i) {
    Request r = proto;
    r.id = i;
    r.arrival_ns = i * 50'000;
    schedule.push_back(r);
  }

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.shards = 2;
  cfg.queue_capacity = 2;
  HotShardBackend backend(/*hot_shard=*/0, /*shards=*/2);
  Server srv(cfg, &backend);
  const ServerReport r = srv.run(schedule, /*paced=*/true);

  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.completed + r.shed, r.offered);
  EXPECT_GE(r.last_retry_after_ns, 390'000u);
  // Loose sanity ceiling: sleep overshoot inflates the EMA a little, but the
  // hint must stay in "queue depth x service time" territory.
  EXPECT_LE(r.last_retry_after_ns, 20'000'000u);
}

TEST(ServerTest, SerialModeClampsToOneWorker) {
  ServerConfig cfg;
  cfg.workers = 8;
  cfg.shards = 8;
  auto backend = make_cc_backend(CCMode::kSerial, small_store());
  Server srv(cfg, backend.get());
  EXPECT_EQ(srv.workers(), 1);

  auto parallel = make_cc_backend(CCMode::kSemantic, small_store());
  Server psrv(cfg, parallel.get());
  EXPECT_EQ(psrv.workers(), 8);
}

TEST(ServerTest, WorkersNeverExceedShards) {
  ServerConfig cfg;
  cfg.workers = 16;
  cfg.shards = 3;
  auto backend = make_cc_backend(CCMode::kTwoPL, small_store());
  Server srv(cfg, backend.get());
  EXPECT_EQ(srv.workers(), 3);
}

TEST(ServerTest, BalanceConservationAcrossConcurrentModes) {
  TrafficConfig traffic = small_traffic();
  parse_traffic_mix("bank", &traffic.mix);
  const auto schedule = generate_schedule(traffic);
  const std::int64_t expected =
      traffic.store.accounts * traffic.store.initial_balance;
  for (const CCMode mode : {CCMode::kSemantic, CCMode::kGlobalLock,
                            CCMode::kTwoPL, CCMode::kOcc}) {
    ServerConfig cfg;
    cfg.workers = 4;
    cfg.shards = 8;
    cfg.queue_capacity = static_cast<int>(schedule.size());
    auto backend = make_cc_backend(mode, traffic.store);
    Server srv(cfg, backend.get());
    const ServerReport r = srv.run(schedule, /*paced=*/false);
    EXPECT_EQ(r.completed, r.offered) << cc_mode_name(mode);
    EXPECT_EQ(backend->balance_total(), expected) << cc_mode_name(mode);
  }
}

// The acceptance gate of the subsystem: with history recording on, a
// concurrent run of every non-serial mode must produce a conflict-
// serializable history. Under TSan this is also the data-race check for
// the commuting SEMANTIC fast path and the OCC commit protocol.
TEST(ServerTest, CheckedConcurrentRunsAreSerializable) {
  const auto schedule = generate_schedule(small_traffic(11));
  for (const CCMode mode : {CCMode::kSemantic, CCMode::kGlobalLock,
                            CCMode::kTwoPL, CCMode::kOcc}) {
    HistoryRecorder recorder;
    ServerConfig cfg;
    cfg.workers = 4;
    cfg.shards = 8;
    cfg.queue_capacity = static_cast<int>(schedule.size());
    auto backend = make_cc_backend(mode, small_store(), &recorder);
    Server srv(cfg, backend.get());
    const ServerReport r = srv.run(schedule, /*paced=*/false);
    EXPECT_EQ(r.completed, r.offered) << cc_mode_name(mode);
    const SerializabilityReport rep =
        check_conflict_serializability(recorder.snapshot());
    EXPECT_TRUE(rep.serializable)
        << cc_mode_name(mode) << ": " << rep.to_string();
  }
}

TEST(ServerTest, IdenticalStreamYieldsIdenticalFinalStateAcrossModes) {
  // The final store is order-independent across shard interleavings: every
  // pair of requests whose operations do NOT commute (same-source edge ops,
  // same-key CIA) shares a primary key, hence a shard, hence FIFO order,
  // while cross-shard writes commute (transfers, pred-degree updates). So
  // the full-store digest must match bit-for-bit across modes — the
  // cross-mode differential analogue of differential_test.cpp.
  const auto schedule = generate_schedule(small_traffic(23));
  std::uint64_t reference = 0;
  bool first = true;
  for (const CCMode mode :
       {CCMode::kSerial, CCMode::kSemantic, CCMode::kGlobalLock,
        CCMode::kTwoPL, CCMode::kOcc}) {
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.shards = 4;
    cfg.queue_capacity = static_cast<int>(schedule.size());
    auto backend = make_cc_backend(mode, small_store());
    Server srv(cfg, backend.get());
    const ServerReport r = srv.run(schedule, /*paced=*/false);
    ASSERT_EQ(r.completed, r.offered) << cc_mode_name(mode);
    if (first) {
      reference = backend->digest();
      first = false;
    } else {
      EXPECT_EQ(backend->digest(), reference) << cc_mode_name(mode);
    }
  }
}

}  // namespace
}  // namespace semlock::server
