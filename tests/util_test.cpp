#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/barrier.h"
#include "util/rng.h"
#include "util/spinlock.h"
#include "util/stats.h"
#include "util/striped_counter.h"
#include "util/thread_team.h"

namespace semlock::util {
namespace {

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChancePercentExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance_percent(0));
    EXPECT_TRUE(rng.chance_percent(100));
  }
}

TEST(Rng, DeriveSeedDecorrelates) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(derive_seed(1, s));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4 * 20000);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Barrier, ReleasesAllParties) {
  constexpr int kParties = 4;
  SpinBarrier barrier(kParties);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      after.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(before.load(), kParties);
  EXPECT_EQ(after.load(), kParties);
}

TEST(Barrier, Reusable) {
  constexpr int kParties = 3;
  SpinBarrier barrier(kParties);
  std::atomic<int> phase_sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        barrier.arrive_and_wait();
        phase_sum.fetch_add(1);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(phase_sum.load(), kParties * 10);
}

TEST(ThreadTeam, RunsEveryThreadOnce) {
  std::atomic<int> runs{0};
  std::vector<std::atomic<int>> per_thread(8);
  const auto result = run_team(8, [&](std::size_t tid) {
    runs.fetch_add(1);
    per_thread[tid].fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 8);
  for (auto& c : per_thread) EXPECT_EQ(c.load(), 1);
  EXPECT_GE(result.wall_seconds, 0.0);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
}

TEST(Stats, MeanAndStddevEmptyInputIsZeroNotNan) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Log2Hist, BucketsByBitWidth) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_bucket(), 0u);
  h.add(0);    // bit_width(0) == 0
  h.add(1);    // bucket 1
  h.add(2);    // bucket 2
  h.add(3);    // bucket 2
  h.add(4);    // bucket 3
  h.add(255);  // bucket 8
  h.add(256);  // bucket 9
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.total(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(8), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.max_bucket(), 10u);  // one past the last non-empty
  // The extremes land in the first and last bucket — no overflow.
  h.add(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(Log2Histogram::kBuckets - 1), 1u);
}

TEST(Log2Hist, MergeSumsBuckets) {
  Log2Histogram a, b;
  a.add(10);
  a.add(100);
  b.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.total(), 10u + 100 + 10 + 1000);
  EXPECT_EQ(a.bucket(4), 2u);  // both 10s
  // Quantiles answer over the union: p50 falls in the 10s' bucket
  // (values < 16), p99+ in the 1000's bucket (values < 1024).
  EXPECT_EQ(a.quantile_upper_bound(0.5), 16u);
  EXPECT_EQ(a.quantile_upper_bound(0.99), 1024u);
}

TEST(Log2Hist, QuantileUpperBound) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);  // empty
  for (int i = 0; i < 99; ++i) h.add(3);  // bucket 2: values < 4
  h.add(1000);                            // bucket 10: values < 1024
  EXPECT_EQ(h.quantile_upper_bound(0.5), 4u);
  EXPECT_EQ(h.quantile_upper_bound(0.99), 4u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1024u);
}

// p999's small-sample contract: with fewer than 1000 samples, not even one
// may sit above the reported bound, so it must be the max occupied bucket.
// An interior bucket here silently hides exactly the outliers a tail
// quantile exists to expose. Pinned at the documented boundaries.
TEST(Log2Hist, P999SmallSamplesReturnMaxOccupiedBucket) {
  {  // n = 0
    Log2Histogram h;
    EXPECT_EQ(h.p999(), 0u);
  }
  {  // n = 1: the single sample IS the tail
    Log2Histogram h;
    h.add(1000);  // bucket 10
    EXPECT_EQ(h.p999(), 1024u);
  }
  {  // n = 10: 9 small + 1 huge -> the huge one
    Log2Histogram h;
    for (int i = 0; i < 9; ++i) h.add(3);
    h.add(1'000'000);  // bucket 20
    EXPECT_EQ(h.p999(), std::uint64_t{1} << 20);
  }
  {  // n = 999: still zero samples allowed above the bound
    Log2Histogram h;
    for (int i = 0; i < 998; ++i) h.add(3);
    h.add(1'000'000);
    EXPECT_EQ(h.p999(), std::uint64_t{1} << 20);
  }
  {  // n = 1000: exactly one sample may now sit above -> interior bucket
    Log2Histogram h;
    for (int i = 0; i < 999; ++i) h.add(3);
    h.add(1'000'000);
    EXPECT_EQ(h.p999(), 4u);
    // ...but two outliers put the bound back in the tail.
    Log2Histogram h2;
    for (int i = 0; i < 998; ++i) h2.add(3);
    h2.add(1'000'000);
    h2.add(1'000'000);
    EXPECT_EQ(h2.p999(), std::uint64_t{1} << 20);
  }
}

// Same integer-rank contract for the other accessors: p99 allows one sample
// above only from n = 100, p50 is the usual median rank.
TEST(Log2Hist, QuantileIntegerRankBoundaries) {
  {
    Log2Histogram h;  // n = 99: p99 = max occupied
    for (int i = 0; i < 98; ++i) h.add(3);
    h.add(1000);
    EXPECT_EQ(h.p99(), 1024u);
  }
  {
    Log2Histogram h;  // n = 100: one allowed above
    for (int i = 0; i < 99; ++i) h.add(3);
    h.add(1000);
    EXPECT_EQ(h.p99(), 4u);
  }
  {
    Log2Histogram h;  // p50 of {3, 1000}: rank 1 of 2
    h.add(3);
    h.add(1000);
    EXPECT_EQ(h.p50(), 4u);
  }
}

// delta() is the window-rotation primitive (obs/window.h): two snapshots of
// one growing histogram reduce to the histogram of just the samples between
// them, with exact quantiles at the usual log2 resolution.
TEST(Log2Hist, DeltaIsTheBetweenSnapshotsHistogram) {
  Log2Histogram earlier;
  earlier.add(3);
  earlier.add(1000);
  Log2Histogram later = earlier;
  later.add(7);        // bucket 3
  later.add(500000);   // bucket 19
  later.add(500000);

  const Log2Histogram d = later.delta(earlier);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_EQ(d.total(), 7u + 500000 + 500000);
  EXPECT_EQ(d.bucket(3), 1u);
  EXPECT_EQ(d.bucket(19), 2u);
  EXPECT_EQ(d.bucket(2), 0u);   // earlier's 3 subtracted away
  EXPECT_EQ(d.bucket(10), 0u);  // earlier's 1000 subtracted away
  // The window's quantiles come from the delta, not the lifetime.
  EXPECT_EQ(d.p50(), std::uint64_t{1} << 19);
  EXPECT_EQ(d.p999(), std::uint64_t{1} << 19);
}

TEST(Log2Hist, DeltaEdgeCases) {
  {  // n = 0: empty minus empty is empty, quantiles 0.
    Log2Histogram a, b;
    const Log2Histogram d = a.delta(b);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.total(), 0u);
    EXPECT_EQ(d.p50(), 0u);
    EXPECT_EQ(d.p999(), 0u);
  }
  {  // n = 1 in the window: the lone sample is every quantile.
    Log2Histogram earlier;
    earlier.add(10);
    Log2Histogram later = earlier;
    later.add(1000);  // bucket 10
    const Log2Histogram d = later.delta(earlier);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.p50(), 1024u);
    EXPECT_EQ(d.p99(), 1024u);
    EXPECT_EQ(d.p999(), 1024u);
  }
  {  // Unrelated lineage (earlier > later): saturates at zero, never wraps.
    Log2Histogram big, small;
    big.add(5);
    big.add(5);
    big.add(70);
    small.add(5);
    const Log2Histogram d = small.delta(big);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.total(), 0u);
  }
  {  // Self-delta is empty.
    Log2Histogram h;
    h.add(42);
    const Log2Histogram d = h.delta(h);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.total(), 0u);
  }
}

TEST(Log2Hist, JsonAndLoadRoundTrip) {
  Log2Histogram h;
  h.add(7);
  h.add(900);
  const std::string json = h.to_json();
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;

  std::uint64_t raw[Log2Histogram::kBuckets] = {};
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    raw[i] = h.bucket(i);
  }
  Log2Histogram loaded;
  loaded.load(raw, h.total());
  EXPECT_EQ(loaded.count(), h.count());
  EXPECT_EQ(loaded.total(), h.total());
  EXPECT_EQ(loaded.max_bucket(), h.max_bucket());
}

TEST(Stats, SeriesTableFormats) {
  SeriesTable table("threads", "ops/ms");
  table.set_series({"Ours", "Global"});
  table.add_row(1, {100.5, 50.25});
  table.add_row(2, {200.0, 49.0});
  const std::string txt = table.to_table();
  EXPECT_NE(txt.find("Ours"), std::string::npos);
  EXPECT_NE(txt.find("ops/ms"), std::string::npos);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("threads,Ours,Global"), std::string::npos);
  EXPECT_NE(csv.find("1,100.5"), std::string::npos);
}

TEST(Stats, SeriesTableRejectsWidthMismatch) {
  SeriesTable table("threads", "x");
  table.set_series({"a", "b"});
  EXPECT_THROW(table.add_row(1, {1.0}), std::invalid_argument);
}

TEST(StripedCounter, RoundUpPow2) {
  EXPECT_EQ(StripedCounterBank::round_up_pow2(0), 1u);
  EXPECT_EQ(StripedCounterBank::round_up_pow2(1), 1u);
  EXPECT_EQ(StripedCounterBank::round_up_pow2(2), 2u);
  EXPECT_EQ(StripedCounterBank::round_up_pow2(3), 4u);
  EXPECT_EQ(StripedCounterBank::round_up_pow2(64), 64u);
  EXPECT_EQ(StripedCounterBank::round_up_pow2(65), 128u);
  EXPECT_EQ(StripedCounterBank::round_up_pow2(100'000),
            StripedCounterBank::kMaxStripes);
}

TEST(StripedCounter, SumCountsEveryStripe) {
  StripedCounterBank bank(2, 4);
  EXPECT_EQ(bank.stripes(), 4u);
  for (std::uint32_t s = 0; s < bank.stripes(); ++s) {
    bank.slot(0, s).fetch_add(s + 1, std::memory_order_relaxed);
  }
  EXPECT_EQ(bank.sum(0, std::memory_order_relaxed), 1u + 2u + 3u + 4u);
  // Rows are independent.
  EXPECT_EQ(bank.sum(1, std::memory_order_relaxed), 0u);
}

TEST(StripedCounter, ModularSumExactAfterCrossStripeMigration) {
  // Increment on one stripe, decrement on another: the decremented stripe
  // wraps negative, but the uint32 modular sum stays exact — the property
  // the lock mechanism's holders() and last-release test rely on when a
  // hold is acquired and released on different threads.
  StripedCounterBank bank(1, 4);
  bank.slot(0, 0).fetch_add(3, std::memory_order_relaxed);
  bank.slot(0, 2).fetch_sub(2, std::memory_order_relaxed);
  EXPECT_EQ(bank.sum(0, std::memory_order_relaxed), 1u);
  bank.slot(0, 3).fetch_sub(1, std::memory_order_relaxed);
  EXPECT_EQ(bank.sum(0, std::memory_order_relaxed), 0u);
}

TEST(StripedCounter, LocalSlotIsStablePerThread) {
  StripedCounterBank bank(1, 8);
  auto* first = &bank.local_slot(0);
  auto* second = &bank.local_slot(0);
  EXPECT_EQ(first, second);
}

TEST(StripedCounter, ConcurrentLocalIncrementsAllLand) {
  StripedCounterBank bank(1, 8);
  constexpr std::uint32_t kPerThread = 10'000;
  run_team(4, [&](std::size_t) {
    for (std::uint32_t i = 0; i < kPerThread; ++i) {
      bank.local_slot(0).fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(bank.sum(0, std::memory_order_relaxed), 4 * kPerThread);
}

}  // namespace
}  // namespace semlock::util
