#include <gtest/gtest.h>

#include "commute/builtin_specs.h"
#include "semlock/mode.h"

namespace semlock {
namespace {

using commute::ValueAbstraction;

TEST(ValueAbstractionTest, PartitionsDomain) {
  ValueAbstraction phi(4);
  EXPECT_EQ(phi.size(), 4);
  for (commute::Value v = -100; v <= 100; ++v) {
    EXPECT_GE(phi.alpha_of(v), 0);
    EXPECT_LT(phi.alpha_of(v), 4);
  }
  EXPECT_EQ(phi.alpha_of(5), phi.alpha_of(9));   // 5 % 4 == 9 % 4
  EXPECT_NE(phi.alpha_of(5), phi.alpha_of(6));
  EXPECT_EQ(phi.alpha_of(-1), 3);  // non-negative remainder
}

TEST(DefinitelyDiffer, ConstConst) {
  ValueAbstraction phi(2);
  EXPECT_TRUE(definitely_differ(AbstractArg::of_const(1),
                                AbstractArg::of_const(2), phi));
  EXPECT_FALSE(definitely_differ(AbstractArg::of_const(1),
                                 AbstractArg::of_const(1), phi));
}

TEST(DefinitelyDiffer, StarNeverDiffers) {
  ValueAbstraction phi(2);
  EXPECT_FALSE(
      definitely_differ(AbstractArg::star(), AbstractArg::of_const(1), phi));
  EXPECT_FALSE(
      definitely_differ(AbstractArg::star(), AbstractArg::of_alpha(0), phi));
  EXPECT_FALSE(
      definitely_differ(AbstractArg::star(), AbstractArg::star(), phi));
}

TEST(DefinitelyDiffer, AlphaAlpha) {
  ValueAbstraction phi(2);
  EXPECT_TRUE(definitely_differ(AbstractArg::of_alpha(0),
                                AbstractArg::of_alpha(1), phi));
  EXPECT_FALSE(definitely_differ(AbstractArg::of_alpha(1),
                                 AbstractArg::of_alpha(1), phi));
}

TEST(DefinitelyDiffer, ConstVsAlphaUsesPhi) {
  ValueAbstraction phi(2);  // phi(5) == 1
  EXPECT_EQ(phi.alpha_of(5), 1);
  EXPECT_TRUE(definitely_differ(AbstractArg::of_const(5),
                                AbstractArg::of_alpha(0), phi));
  EXPECT_FALSE(definitely_differ(AbstractArg::of_const(5),
                                 AbstractArg::of_alpha(1), phi));
}

// ---------------------------------------------------------------------------
// Fig. 19: the commutativity function for the Set ADT over the symbolic sets
// {add(*)}, {add(5)}, {add(i),remove(j)} with two abstract values and
// phi(5) = alpha_1. We build the paper's six modes explicitly; with our
// modulus phi, paper alpha_1 is index 1 and alpha_2 is index 0.
// ---------------------------------------------------------------------------
class Fig19 : public ::testing::Test {
 protected:
  Fig19() : phi(2) {
    const auto& spec = commute::set_spec();
    add_m = spec.method_index("add");
    rem_m = spec.method_index("remove");
    const int a1 = 1, a2 = 0;  // paper label -> our phi index
    modes[0] = Mode{{AbstractOp{add_m, {AbstractArg::star()}}}};
    modes[1] = Mode{{AbstractOp{add_m, {AbstractArg::of_const(5)}}}};
    auto pair = [&](int add_a, int rem_a) {
      return Mode{{AbstractOp{add_m, {AbstractArg::of_alpha(add_a)}},
                   AbstractOp{rem_m, {AbstractArg::of_alpha(rem_a)}}}};
    };
    modes[2] = pair(a1, a1);
    modes[3] = pair(a1, a2);
    modes[4] = pair(a2, a1);
    modes[5] = pair(a2, a2);
  }

  bool fc(int i, int j) {
    return modes_commute(commute::set_spec(), phi, modes[i], modes[j]);
  }

  ValueAbstraction phi;
  int add_m = -1, rem_m = -1;
  Mode modes[6];
};

TEST_F(Fig19, FullMatrix) {
  // Row by row as printed in Fig. 19 (upper triangle incl. diagonal).
  const bool expected[6][6] = {
      // l0: {add(*)}
      {true, true, false, false, false, false},
      // l1: {add(5)}
      {true, true, false, true, false, true},
      // l2: {add(a1),remove(a1)}
      {false, false, false, false, false, true},
      // l3: {add(a1),remove(a2)}
      {false, true, false, true, false, false},
      // l4: {add(a2),remove(a1)}
      {false, false, false, false, true, false},
      // l5: {add(a2),remove(a2)}
      {false, true, true, false, false, false},
  };
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_EQ(fc(i, j), expected[i][j]) << "F_c(l" << i << ",l" << j << ")";
      EXPECT_EQ(fc(i, j), fc(j, i)) << "symmetry at " << i << "," << j;
    }
  }
}

TEST_F(Fig19, AddStarSelfCommutes) {
  EXPECT_TRUE(fc(0, 0));  // adds always commute, even over all values
}

TEST(AbstractOps, SizeConflictsWithAdd) {
  ValueAbstraction phi(2);
  const auto& spec = commute::set_spec();
  AbstractOp size{spec.method_index("size"), {}};
  AbstractOp add{spec.method_index("add"), {AbstractArg::star()}};
  EXPECT_FALSE(abstract_ops_commute(spec, phi, size, add));
  EXPECT_TRUE(abstract_ops_commute(spec, phi, size, size));
}

TEST(AbstractOps, MultimapAnyDifferNeedsOneDefiniteDisequality) {
  ValueAbstraction phi(4);
  const auto& spec = commute::multimap_spec();
  const int put = spec.method_index("put");
  const int rem = spec.method_index("removeEntry");
  // put(a1, a2) vs removeEntry(a1, a3): values definitely differ -> commute.
  AbstractOp p{put, {AbstractArg::of_alpha(1), AbstractArg::of_alpha(2)}};
  AbstractOp r{rem, {AbstractArg::of_alpha(1), AbstractArg::of_alpha(3)}};
  EXPECT_TRUE(abstract_ops_commute(spec, phi, p, r));
  // put(a1, *) vs removeEntry(a1, a3): neither disequality definite.
  AbstractOp pw{put, {AbstractArg::of_alpha(1), AbstractArg::star()}};
  EXPECT_FALSE(abstract_ops_commute(spec, phi, pw, r));
  // put(a1, *) vs removeEntry(a2, a3): keys definitely differ.
  AbstractOp r2{rem, {AbstractArg::of_alpha(2), AbstractArg::of_alpha(3)}};
  EXPECT_TRUE(abstract_ops_commute(spec, phi, pw, r2));
}

TEST(ModePrinting, UsesPaperStyle) {
  const auto& spec = commute::set_spec();
  Mode m{{AbstractOp{spec.method_index("add"), {AbstractArg::of_alpha(0)}},
          AbstractOp{spec.method_index("remove"), {AbstractArg::star()}}}};
  EXPECT_EQ(m.to_string(spec), "{add(a1),remove(*)}");
}

}  // namespace
}  // namespace semlock
