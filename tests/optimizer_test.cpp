// Unit tests for the Appendix-A passes, exercised one at a time on the
// paper's Fig. 14 -> Fig. 26 -> Fig. 27 -> Fig. 28 -> Fig. 17 chain.
#include <gtest/gtest.h>

#include <functional>

#include "paper_programs.h"
#include "synth/printer.h"
#include "synth/synthesis.h"

namespace semlock::synth {
namespace {

using testing::fig1_program;

struct Pipeline {
  Pipeline() : program(fig1_program()),
               classes(PointerClasses::by_type(program)) {
    SynthesisOptions opts;
    opts.refine_symbolic_sets = false;
    opts.optimize = false;  // start from the Fig. 14 shape
    opts.preferred_order = {"Map", "Set", "Queue"};
    opts.mode_config.abstract_values = 4;
    result = synthesize(program, classes, opts);
    ctx = SectionContext{&result.classes, &result.wrapper_of,
                         result.program.sections[0].name};
  }

  AtomicSection& section() { return result.program.sections[0]; }

  int count(Stmt::Kind kind) const {
    int n = 0;
    const std::function<void(const Block&)> walk = [&](const Block& b) {
      for (const auto& s : b) {
        if (s->kind == kind) ++n;
        walk(s->then_block);
        walk(s->else_block);
        walk(s->body);
      }
    };
    walk(result.program.sections[0].body);
    return n;
  }

  Program program;
  PointerClasses classes;
  SynthesisResult result;
  SectionContext ctx;
};

TEST(OptimizerPass1, RemovesRedundantLV) {
  Pipeline p;
  ASSERT_EQ(p.count(Stmt::Kind::Lock), 9);  // the Fig. 14 shape
  remove_redundant_locks(p.section(), p.ctx);
  // Fig. 26: LV(map), LV(set), LV(queue) remain.
  EXPECT_EQ(p.count(Stmt::Kind::Lock), 3);
  const std::string txt = print_block(p.section().body);
  EXPECT_NE(txt.find("LV(map"), std::string::npos);
  EXPECT_NE(txt.find("LV(set"), std::string::npos);
  EXPECT_NE(txt.find("LV(queue"), std::string::npos);
}

TEST(OptimizerPass2, ElidesLocalSet) {
  Pipeline p;
  remove_redundant_locks(p.section(), p.ctx);
  const bool removed = remove_local_set(p.section(), p.ctx);
  EXPECT_TRUE(removed);
  // Fig. 27: no prologue/epilogue; direct guarded locks; per-var unlocks.
  EXPECT_EQ(p.count(Stmt::Kind::Prologue), 0);
  EXPECT_EQ(p.count(Stmt::Kind::Epilogue), 0);
  EXPECT_EQ(p.count(Stmt::Kind::UnlockAll), 3);
  const std::string txt = print_block(p.section().body);
  EXPECT_NE(txt.find("if (map!=null) map.lock(+);"), std::string::npos);
  EXPECT_NE(txt.find("if (set!=null) set.lock(+);"), std::string::npos);
  EXPECT_NE(txt.find("if (queue!=null) queue.unlockAll();"),
            std::string::npos);
}

TEST(OptimizerPass2, KeepsLocalSetWhenReLockPossible) {
  // A loop re-executing LV(x) must keep LOCAL_SET (re-lock protection).
  const Program p = testing::fig9_program();
  const auto classes = PointerClasses::by_type(p);
  SynthesisOptions opts;
  opts.refine_symbolic_sets = false;
  opts.optimize = false;
  const auto res = synthesize(p, classes, opts);
  AtomicSection section = res.program.sections[0];
  SectionContext ctx{&res.classes, &res.wrapper_of, section.name};
  remove_redundant_locks(section, ctx);
  const bool removed = remove_local_set(section, ctx);
  EXPECT_FALSE(removed);
  // The in-loop locks keep LOCAL_SET semantics.
  const std::string txt = print_block(section.body);
  EXPECT_NE(txt.find("LOCAL_SET"), std::string::npos);
}

TEST(OptimizerPass3, MovesQueueUnlockEarly) {
  Pipeline p;
  remove_redundant_locks(p.section(), p.ctx);
  remove_local_set(p.section(), p.ctx);
  early_release(p.section(), p.ctx);
  // Fig. 28: the queue unlock moved inside if(flag), right after enqueue.
  const Stmt* flag_if = nullptr;
  for (const auto& s : p.section().body) {
    if (s->kind == Stmt::Kind::If && !s->then_block.empty() &&
        s->then_block.front()->kind != Stmt::Kind::New) {
      flag_if = s.get();
    }
  }
  ASSERT_NE(flag_if, nullptr);
  bool found = false;
  for (std::size_t i = 0; i + 1 < flag_if->then_block.size(); ++i) {
    if (flag_if->then_block[i]->kind == Stmt::Kind::Call &&
        flag_if->then_block[i]->method == "enqueue" &&
        flag_if->then_block[i + 1]->kind == Stmt::Kind::UnlockAll &&
        flag_if->then_block[i + 1]->unlock_var == "queue") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // map and set unlocks stay at the end.
  const auto& body = p.section().body;
  ASSERT_GE(body.size(), 2u);
  EXPECT_EQ(body[body.size() - 2]->kind, Stmt::Kind::UnlockAll);
  EXPECT_EQ(body[body.size() - 1]->kind, Stmt::Kind::UnlockAll);
}

TEST(OptimizerPass4, RemovesProvableNullChecks) {
  Pipeline p;
  remove_redundant_locks(p.section(), p.ctx);
  remove_local_set(p.section(), p.ctx);
  early_release(p.section(), p.ctx);
  remove_null_checks(p.section());
  // Fig. 17: no if(x!=null) guards remain anywhere.
  const std::string txt = print_block(p.section().body);
  EXPECT_EQ(txt.find("!=null"), std::string::npos) << txt;
}

TEST(OptimizerPass4, KeepsGuardWhenVarMayBeNull) {
  // get may return null. The guard on the LOCK disappears (the add that
  // follows is inevitable, and the paper assumes the original program is
  // NPE-free, so s cannot be null there); but the guard on the per-variable
  // UNLOCK at the end must stay: when cond is false, s may well be null.
  Program p;
  p.adt_types = {{"Map", &commute::map_spec()},
                 {"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "maybe";
  s.var_types = {{"m", "Map"}, {"s", "Set"}};
  s.params = {"m", "k"};
  s.body = {
      call("s", "m", "get", {evar("k")}),
      make_if(evar("cond"), {callv("s", "add", {eint(1)})}),
  };
  p.sections = {s};
  const auto classes = PointerClasses::by_type(p);
  SynthesisOptions opts;
  opts.optimize = true;
  const auto res = synthesize(p, classes, opts);
  const std::string txt = print_block(res.program.sections[0].body);
  EXPECT_NE(txt.find("s.lock({add(1)});"), std::string::npos) << txt;
  EXPECT_NE(txt.find("if (s!=null) s.unlockAll();"), std::string::npos)
      << txt;
  // The map's unlock needs no guard: m was provably used.
  EXPECT_NE(txt.find("m.unlockAll();"), std::string::npos) << txt;
}

TEST(OptimizerFullChain, MatchesFig17Shape) {
  Pipeline p;
  remove_redundant_locks(p.section(), p.ctx);
  remove_local_set(p.section(), p.ctx);
  early_release(p.section(), p.ctx);
  remove_null_checks(p.section());
  const std::string txt = print_block(p.section().body);
  // Fig. 17 line by line (with lock(+) since refinement is off here).
  EXPECT_NE(txt.find("map.lock(+);"), std::string::npos);
  EXPECT_NE(txt.find("set.lock(+);"), std::string::npos);
  EXPECT_NE(txt.find("queue.lock(+);"), std::string::npos);
  EXPECT_NE(txt.find("queue.unlockAll();"), std::string::npos);
  EXPECT_NE(txt.find("map.unlockAll();"), std::string::npos);
  EXPECT_NE(txt.find("set.unlockAll();"), std::string::npos);
  EXPECT_EQ(txt.find("LOCAL_SET"), std::string::npos);
}

}  // namespace
}  // namespace semlock::synth
