#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "commute/builtin_specs.h"
#include "semlock/transaction.h"

namespace semlock {
namespace {

using commute::op;
using commute::star;
using commute::SymbolicSet;

ModeTable make_table() {
  ModeTableConfig c;
  c.abstract_values = 2;
  return ModeTable::compile(commute::set_spec(),
                            {SymbolicSet({op("add", {star()})}),
                             SymbolicSet({op("size"), op("clear")})},
                            c);
}

TEST(TransactionTest, LvSkipsHeldInstances) {
  const auto t = make_table();
  SemanticLock lk(t);
  Transaction txn;
  txn.lv(&lk, 0);
  EXPECT_EQ(txn.num_held(), 1u);
  txn.lv(&lk, 0);  // LOCAL_SET semantics: no re-lock
  EXPECT_EQ(txn.num_held(), 1u);
  EXPECT_EQ(lk.holders(t.resolve_constant(0)), 1u);
  txn.unlock_all();
  EXPECT_EQ(lk.holders(t.resolve_constant(0)), 0u);
}

TEST(TransactionTest, NullIsNoOp) {
  Transaction txn;
  txn.lv(nullptr, 0);
  txn.lv_mode(nullptr, 0);
  EXPECT_EQ(txn.num_held(), 0u);
}

TEST(TransactionTest, UnlockAllReleasesEverything) {
  const auto t = make_table();
  SemanticLock a(t), b(t);
  Transaction txn;
  txn.lv(&a, 0);
  txn.lv(&b, 0);
  EXPECT_EQ(txn.num_held(), 2u);
  txn.unlock_all();
  EXPECT_EQ(txn.num_held(), 0u);
  EXPECT_EQ(a.holders(t.resolve_constant(0)), 0u);
  EXPECT_EQ(b.holders(t.resolve_constant(0)), 0u);
}

TEST(TransactionTest, DestructorReleases) {
  const auto t = make_table();
  SemanticLock lk(t);
  {
    Transaction txn;
    txn.lv(&lk, 0);
    EXPECT_EQ(lk.holders(t.resolve_constant(0)), 1u);
  }
  EXPECT_EQ(lk.holders(t.resolve_constant(0)), 0u);
}

TEST(TransactionTest, UnlockInstanceIsEarlyRelease) {
  const auto t = make_table();
  SemanticLock a(t), b(t);
  Transaction txn;
  txn.lv(&a, 0);
  txn.lv(&b, 0);
  txn.unlock_instance(&a);
  EXPECT_EQ(txn.num_held(), 1u);
  EXPECT_EQ(a.holders(t.resolve_constant(0)), 0u);
  EXPECT_EQ(b.holders(t.resolve_constant(0)), 1u);
  txn.unlock_all();
}

TEST(TransactionTest, LvOrderedSortsByUniqueId) {
  const auto t = make_table();
  SemanticLock a(t), b(t), c(t);
  const int mode = t.resolve_constant(0);
  Transaction txn;
  Transaction::DynTarget targets[3] = {{&c, mode}, {&a, mode}, {&b, mode}};
  txn.lv_ordered(targets);
  EXPECT_EQ(txn.num_held(), 3u);
  // Targets were reordered ascending by unique id.
  EXPECT_LE(targets[0].lk->unique_id(), targets[1].lk->unique_id());
  EXPECT_LE(targets[1].lk->unique_id(), targets[2].lk->unique_id());
  txn.unlock_all();
}

TEST(TransactionTest, LvOrderedCollapsesAliases) {
  const auto t = make_table();
  SemanticLock a(t);
  const int mode = t.resolve_constant(0);
  Transaction txn;
  Transaction::DynTarget targets[2] = {{&a, mode}, {&a, mode}};
  txn.lv_ordered(targets);
  EXPECT_EQ(txn.num_held(), 1u);
  EXPECT_EQ(a.holders(mode), 1u);
  txn.unlock_all();
}

TEST(TransactionTest, LvWithKeyedSiteResolvesByValue) {
  ModeTableConfig c;
  c.abstract_values = 4;
  const auto t = ModeTable::compile(
      commute::map_spec(),
      {SymbolicSet({op("get", {commute::var("k")}),
                    op("put", {commute::var("k"), star()})})},
      c);
  SemanticLock a(t), b(t);
  Transaction txn;
  const commute::Value k3[1] = {3};
  const commute::Value k5[1] = {5};
  txn.lv(&a, 0, k3);
  txn.lv(&b, 0, k5);
  const auto held = txn.held();
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[0].mode, t.resolve(0, k3));
  EXPECT_EQ(held[1].mode, t.resolve(0, k5));
  EXPECT_NE(held[0].mode, held[1].mode);  // 3 and 5 differ mod 4
  txn.unlock_all();
}

// Exercises the hash index holds() switches to once the held set outgrows
// the inline linear scan (Fig. 12 LVn shapes can hold hundreds of
// instances), including early release and reuse after unlock_all.
TEST(TransactionTest, HoldsScalesPastInlineThreshold) {
  const auto t = make_table();
  const int mode = t.resolve_constant(0);  // add(*): self-commuting
  constexpr int kInstances = 100;          // well past the inline threshold
  std::vector<std::unique_ptr<SemanticLock>> locks;
  locks.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    locks.push_back(std::make_unique<SemanticLock>(t));
  }

  Transaction txn;
  for (auto& lk : locks) txn.lv_mode(lk.get(), mode);
  EXPECT_EQ(txn.num_held(), static_cast<std::size_t>(kInstances));
  for (auto& lk : locks) EXPECT_TRUE(txn.holds(lk.get()));

  // LOCAL_SET semantics survive the index switch: no re-lock.
  txn.lv_mode(locks[0].get(), mode);
  EXPECT_EQ(txn.num_held(), static_cast<std::size_t>(kInstances));
  EXPECT_EQ(locks[0]->holders(mode), 1u);

  // Early release must drop the instance from the index too.
  txn.unlock_instance(locks[5].get());
  EXPECT_FALSE(txn.holds(locks[5].get()));
  EXPECT_EQ(locks[5]->holders(mode), 0u);
  txn.lv_mode(locks[5].get(), mode);  // and re-locking works
  EXPECT_TRUE(txn.holds(locks[5].get()));

  txn.unlock_all();
  EXPECT_EQ(txn.num_held(), 0u);
  for (auto& lk : locks) {
    EXPECT_FALSE(txn.holds(lk.get()));
    EXPECT_EQ(lk->holders(mode), 0u);
  }

  // The transaction object is reusable after the epilogue.
  txn.lv_mode(locks[1].get(), mode);
  EXPECT_TRUE(txn.holds(locks[1].get()));
  EXPECT_FALSE(txn.holds(locks[2].get()));
  txn.unlock_all();
}

TEST(TransactionTest, HeldExposesEntries) {
  const auto t = make_table();
  SemanticLock a(t);
  Transaction txn;
  txn.lv(&a, 1);
  const auto held = txn.held();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].lk, &a);
  EXPECT_EQ(held[0].mode, t.resolve_constant(1));
  txn.unlock_all();
}

}  // namespace
}  // namespace semlock
