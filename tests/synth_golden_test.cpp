// Golden-text reproduction of the paper's code figures: the synthesized
// output for Fig. 1 must match Fig. 14 (Section 3), Fig. 17 (Appendix A)
// and Fig. 2 (Section 4) line for line, and the Fig. 9 output must match
// the Fig. 15 wrapper shape.
#include <gtest/gtest.h>

#include "paper_programs.h"
#include "synth/printer.h"
#include "synth/synthesis.h"

namespace semlock::synth {
namespace {

using testing::fig1_program;
using testing::fig9_program;

SynthesisOptions opts(bool refine, bool optimize) {
  SynthesisOptions o;
  o.refine_symbolic_sets = refine;
  o.optimize = optimize;
  o.preferred_order = {"Map", "Set", "Queue"};
  o.mode_config.abstract_values = 4;
  return o;
}

std::string synthesized_fig1(bool refine, bool optimize) {
  const Program p = fig1_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, opts(refine, optimize));
  return print_section(res.program.sections[0]);
}

TEST(GoldenFig14, Section3NonOptimized) {
  EXPECT_EQ(synthesized_fig1(false, false),
            "atomic fig1(Map map, Queue queue, int id, int x, int y, "
            "int flag) {\n"
            "  LOCAL_SET.init(); // prologue\n"
            "  LV(map,+);\n"
            "  set = map.get(id);\n"
            "  if (set==null) {\n"
            "    set = new Set();\n"
            "    LV(map,+);\n"
            "    map.put(id,set);\n"
            "  }\n"
            "  LV(map,+);\n"
            "  LV(set,+);\n"
            "  set.add(x);\n"
            "  LV(map,+);\n"
            "  LV(set,+);\n"
            "  set.add(y);\n"
            "  if (flag) {\n"
            "    LV(map,+);\n"
            "    LV(queue,+);\n"
            "    queue.enqueue(set);\n"
            "    LV(map,+);\n"
            "    map.remove(id);\n"
            "  }\n"
            "  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue\n"
            "}\n");
}

TEST(GoldenFig17, AppendixAOptimized) {
  EXPECT_EQ(synthesized_fig1(false, true),
            "atomic fig1(Map map, Queue queue, int id, int x, int y, "
            "int flag) {\n"
            "  map.lock(+);\n"
            "  set = map.get(id);\n"
            "  if (set==null) {\n"
            "    set = new Set();\n"
            "    map.put(id,set);\n"
            "  }\n"
            "  set.lock(+);\n"
            "  set.add(x);\n"
            "  set.add(y);\n"
            "  if (flag) {\n"
            "    queue.lock(+);\n"
            "    queue.enqueue(set);\n"
            "    queue.unlockAll();\n"
            "    map.remove(id);\n"
            "  }\n"
            "  map.unlockAll();\n"
            "  set.unlockAll();\n"
            "}\n");
}

TEST(GoldenFig2, Section4Refined) {
  // The paper's Fig. 2 locks the Set with {add(*)}; our inference keeps the
  // strictly finer {add(x),add(y)} — both compile to all-commuting modes.
  EXPECT_EQ(synthesized_fig1(true, true),
            "atomic fig1(Map map, Queue queue, int id, int x, int y, "
            "int flag) {\n"
            "  map.lock({get(id),put(id,*),remove(id)});\n"
            "  set = map.get(id);\n"
            "  if (set==null) {\n"
            "    set = new Set();\n"
            "    map.put(id,set);\n"
            "  }\n"
            "  set.lock({add(x),add(y)});\n"
            "  set.add(x);\n"
            "  set.add(y);\n"
            "  if (flag) {\n"
            "    queue.lock({enqueue(set)});\n"
            "    queue.enqueue(set);\n"
            "    queue.unlockAll();\n"
            "    map.remove(id);\n"
            "  }\n"
            "  map.unlockAll();\n"
            "  set.unlockAll();\n"
            "}\n");
}

TEST(GoldenFig15, WrapperInstrumentation) {
  const Program p = fig9_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, opts(true, true));
  EXPECT_EQ(print_section(res.program.sections[0]),
            "atomic loop(Map map, int n) {\n"
            "  LOCAL_SET.init(); // prologue\n"
            "  sum = 0;\n"
            "  i = 0;\n"
            "  while (i<n) {\n"
            "    LV(map,{get(*)});\n"
            "    set = map.get(i);\n"
            "    if (set!=null) {\n"
            "      LV(p1,{size()});\n"
            "      t = set.size();\n"
            "      sum = sum+t;\n"
            "    }\n"
            "    i = i+1;\n"
            "  }\n"
            "  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue\n"
            "}\n");
}

// Fig. 13: the Fig. 7 section with non-optimized locking and the order
// m < s1,s2 < q, including LV2 for the same-class pair.
TEST(GoldenFig13, DynamicOrdering) {
  const Program p = testing::fig7_program();
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, opts(false, false));
  EXPECT_EQ(print_section(res.program.sections[0]),
            "atomic g(Map m, int key1, int key2, Queue q) {\n"
            "  LOCAL_SET.init(); // prologue\n"
            "  LV(m,+);\n"
            "  s1 = m.get(key1);\n"
            "  LV(m,+);\n"
            "  s2 = m.get(key2);\n"
            "  if (s1!=null&&s2!=null) {\n"
            "    LV2(s1,s2,+);\n"
            "    s1.add(1);\n"
            "    LV(s2,+);\n"
            "    s2.add(2);\n"
            "    LV(q,+);\n"
            "    q.enqueue(s1);\n"
            "  }\n"
            "  foreach(t : LOCAL_SET) t.unlockAll(); // epilogue\n"
            "}\n");
}

}  // namespace
}  // namespace semlock::synth
