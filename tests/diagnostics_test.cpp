// Compiler robustness: malformed clients are rejected with diagnostics
// rather than producing unsound synchronization.
#include <gtest/gtest.h>

#include "commute/builtin_specs.h"
#include "synth/synthesis.h"

namespace semlock::synth {
namespace {

SynthesisOptions options() {
  SynthesisOptions opts;
  opts.mode_config.abstract_values = 4;
  return opts;
}

TEST(Diagnostics, UnknownMethodRejectedAtModeCompilation) {
  Program p;
  p.adt_types = {{"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "bad";
  s.var_types = {{"a", "Set"}};
  s.params = {"a"};
  s.body = {callv("a", "frobnicate", {eint(1)})};
  p.sections = {s};
  const auto classes = PointerClasses::by_type(p);
  EXPECT_THROW(synthesize(p, classes, options()), std::invalid_argument);
}

TEST(Diagnostics, ArityMismatchRejected) {
  Program p;
  p.adt_types = {{"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "bad";
  s.var_types = {{"a", "Set"}};
  s.params = {"a"};
  s.body = {callv("a", "add", {eint(1), eint(2)})};  // add is unary
  p.sections = {s};
  const auto classes = PointerClasses::by_type(p);
  EXPECT_THROW(synthesize(p, classes, options()), std::invalid_argument);
}

TEST(Diagnostics, UnknownAdtTypeRejected) {
  Program p;
  p.adt_types = {{"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "bad";
  s.var_types = {{"a", "Hyperloglog"}};  // type never registered
  s.params = {"a"};
  s.body = {callv("a", "add", {eint(1)})};
  p.sections = {s};
  const auto classes = PointerClasses::by_type(p);
  EXPECT_THROW(synthesize(p, classes, options()), std::out_of_range);
}

TEST(Diagnostics, UndeclaredReceiverRejected) {
  Program p;
  p.adt_types = {{"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "bad";
  s.var_types = {{"a", "Set"}};
  s.params = {"a"};
  s.body = {callv("ghost", "add", {eint(1)})};  // `ghost` never declared
  p.sections = {s};
  const auto classes = PointerClasses::by_type(p);
  EXPECT_THROW(synthesize(p, classes, options()), std::invalid_argument);
}

TEST(Diagnostics, EmptyProgramIsFine) {
  Program p;
  p.adt_types = {{"Set", &commute::set_spec()}};
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  EXPECT_TRUE(res.program.sections.empty());
  EXPECT_TRUE(res.plans.empty());
}

TEST(Diagnostics, SectionWithNoAdtCallsIsFine) {
  Program p;
  p.adt_types = {{"Set", &commute::set_spec()}};
  AtomicSection s;
  s.name = "pure";
  s.body = {assign("x", eint(1)), assign("y", eadd(evar("x"), eint(2)))};
  p.sections = {s};
  const auto classes = PointerClasses::by_type(p);
  const auto res = synthesize(p, classes, options());
  EXPECT_TRUE(res.plans.empty());
}

}  // namespace
}  // namespace semlock::synth
