// The observability layer (src/obs): ring overwrite semantics, event
// emission from the lock mechanism, the blocked-by conflict matrix, exact
// merge-on-exit acquire totals, the Chrome exporter, and dump round-trips.
// Only built with SEMLOCK_OBS (the default).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "commute/builtin_specs.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/ring.h"
#include "obs/trace.h"
#include "semlock/semantic_lock.h"
#include "semlock/transaction.h"

namespace semlock {
namespace {

using commute::op;
using commute::SymbolicSet;
using commute::Value;
using obs::Event;
using obs::EventType;

ModeTable make_traced_table(
    runtime::WaitPolicyKind policy = runtime::WaitPolicyKind::AlwaysPark) {
  ModeTableConfig c;
  c.abstract_values = 4;
  c.wait_policy = policy;
  c.trace_events = true;
  return ModeTable::compile(
      commute::set_spec(),
      {SymbolicSet({op("add", {commute::var("v")}),
                    op("remove", {commute::var("v")})}),
       SymbolicSet({op("size"), op("clear")})},
      c);
}

std::vector<Event> all_events() {
  std::vector<Event> out;
  for (const obs::ThreadTrace& t : obs::snapshot_traces()) {
    out.insert(out.end(), t.events.begin(), t.events.end());
  }
  return out;
}

std::uint64_t count_events(const std::vector<Event>& events, EventType type,
                          const void* instance = nullptr) {
  std::uint64_t n = 0;
  for (const Event& e : events) {
    if (e.type != type) continue;
    if (instance != nullptr &&
        e.instance != reinterpret_cast<std::uint64_t>(instance)) {
      continue;
    }
    ++n;
  }
  return n;
}

TEST(EventRing, PackRoundTrip) {
  const std::uint64_t word =
      obs::pack_type_mode(EventType::kRetract, -7);
  EXPECT_EQ(obs::unpack_type(word), EventType::kRetract);
  EXPECT_EQ(obs::unpack_mode(word), -7);
  const std::uint64_t word2 = obs::pack_type_mode(EventType::kMark, 123456);
  EXPECT_EQ(obs::unpack_type(word2), EventType::kMark);
  EXPECT_EQ(obs::unpack_mode(word2), 123456);
}

TEST(EventRing, RetainsEverythingBelowCapacity) {
  obs::EventRing ring(64);
  EXPECT_EQ(ring.capacity(), 64u);
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.ts_ns = static_cast<std::uint64_t>(i);
    e.type = EventType::kRelease;
    e.mode = i;
    ring.append(e);
  }
  const std::vector<Event> got = ring.snapshot();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].ts_ns,
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(got[static_cast<std::size_t>(i)].mode, i);
  }
}

TEST(EventRing, WraparoundOverwritesOldest) {
  obs::EventRing ring(64);
  constexpr int kTotal = 200;
  for (int i = 0; i < kTotal; ++i) {
    Event e;
    e.ts_ns = static_cast<std::uint64_t>(i);
    e.type = EventType::kMark;
    e.mode = i;
    ring.append(e);
  }
  EXPECT_EQ(ring.appended(), static_cast<std::uint64_t>(kTotal));
  const std::vector<Event> got = ring.snapshot();
  // The ring retains the last `capacity` events; the snapshot's torn-slot
  // filter conservatively assumes the writer may be mid-append of the next
  // index, so one boundary slot is dropped — 63 of 64 survive, oldest first.
  ASSERT_EQ(got.size(), 63u);
  EXPECT_EQ(got.front().mode, kTotal - 63);
  EXPECT_EQ(got.back().mode, kTotal - 1);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].mode, got[i - 1].mode + 1);
  }
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  obs::EventRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  obs::EventRing tiny(1);  // clamped to the minimum
  EXPECT_EQ(tiny.capacity(), obs::EventRing::kMinCapacity);
}

TEST(ObsTrace, MechanismEmitsWhenTableTraced) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int mode = t.resolve(0, v0);
  m.lock(mode);
  m.unlock(mode);

  const std::vector<Event> events = all_events();
  EXPECT_EQ(count_events(events, EventType::kAcquireBegin, &m), 1u);
  EXPECT_EQ(count_events(events, EventType::kRelease, &m), 1u);
  // Uncontended: the acquisition is won either optimistically or granted.
  EXPECT_EQ(count_events(events, EventType::kOptimisticHit, &m) +
                count_events(events, EventType::kAcquireGrant, &m),
            1u);
}

TEST(ObsTrace, UntracedTableEmitsNothing) {
  obs::reset_for_test();
  ModeTableConfig c;
  c.abstract_values = 4;
  c.trace_events = false;
  const auto t = ModeTable::compile(
      commute::set_spec(), {SymbolicSet({op("size"), op("clear")})}, c);
  LockMechanism m(t);
  const int mode = t.resolve_constant(0);
  m.lock(mode);
  m.unlock(mode);
  EXPECT_FALSE(m.traced());
  EXPECT_TRUE(all_events().empty());
}

TEST(ObsTrace, ScopedEnableFlipsTheTableDefault) {
  EXPECT_FALSE(obs::runtime_enabled());
  EXPECT_FALSE(ModeTableConfig{}.trace_events);
  {
    obs::ScopedTraceEnable enable;
    EXPECT_TRUE(obs::runtime_enabled());
    EXPECT_TRUE(ModeTableConfig{}.trace_events);
  }
  EXPECT_FALSE(obs::runtime_enabled());
  EXPECT_FALSE(ModeTableConfig{}.trace_events);
}

TEST(ObsTrace, TransactionStampsEventsWithUniqueTxnIds) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  SemanticLock lk(t);
  const int mode = t.resolve_constant(1);

  {
    Transaction txn;
    txn.lv_mode(&lk, mode);
    EXPECT_NE(obs::current_txn(), 0u);
  }
  EXPECT_EQ(obs::current_txn(), 0u);
  {
    Transaction txn;
    txn.lv_mode(&lk, mode);
  }

  std::vector<std::uint64_t> acquire_txns;
  for (const Event& e : all_events()) {
    if (e.instance != reinterpret_cast<std::uint64_t>(&lk.mechanism())) {
      continue;
    }
    if (e.type == EventType::kOptimisticHit ||
        e.type == EventType::kAcquireGrant) {
      acquire_txns.push_back(e.txn);
    }
  }
  ASSERT_EQ(acquire_txns.size(), 2u);
  EXPECT_NE(acquire_txns[0], 0u);
  EXPECT_NE(acquire_txns[1], 0u);
  EXPECT_NE(acquire_txns[0], acquire_txns[1]);
}

TEST(ObsTrace, NestedTransactionsShareTheOuterTxnId) {
  obs::reset_for_test();
  Transaction outer;
  const std::uint64_t id = obs::current_txn();
  ASSERT_NE(id, 0u);
  {
    Transaction inner;
    EXPECT_EQ(obs::current_txn(), id);
  }
  EXPECT_EQ(obs::current_txn(), id);
}

TEST(ObsTrace, ConflictMatrixContainsExactlyExercisedNonCommutingPairs) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int held = t.resolve(0, v0);            // add(0)
  const int starved = t.resolve_constant(1);    // {size, clear}
  ASSERT_FALSE(t.commutes(held, starved));

  m.lock(held);
  std::thread waiter([&] {
    m.lock(starved);
    m.unlock(starved);
  });
  // Give the waiter time to fail the fast path and sample its blockers.
  while (obs::collect_metrics().conflict_matrix.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  m.unlock(held);
  waiter.join();

  const obs::MetricsSnapshot snap = obs::collect_metrics();
  ASSERT_FALSE(snap.conflict_matrix.empty());
  bool saw_starved_blocked_by_held = false;
  for (const obs::BlockedByCell& cell : snap.conflict_matrix) {
    // Every recorded pair must be genuinely non-commuting: the sampler
    // walks conflicts_of(mode), so commuting pairs cannot appear.
    EXPECT_FALSE(t.commutes(cell.waiter, cell.holder))
        << "waiter " << cell.waiter << " holder " << cell.holder;
    EXPECT_GT(cell.count, 0u);
    if (cell.waiter == starved && cell.holder == held) {
      saw_starved_blocked_by_held = true;
    }
  }
  EXPECT_TRUE(saw_starved_blocked_by_held);

  // The contended instance is ranked, and the wait was recorded.
  ASSERT_FALSE(snap.instances.empty());
  EXPECT_EQ(snap.instances.front().instance,
            reinterpret_cast<std::uint64_t>(&m));
  EXPECT_GT(snap.instances.front().contended, 0u);
  EXPECT_GT(snap.instances.front().waits, 0u);
  EXPECT_GT(snap.wait_hist.count(), 0u);
  ASSERT_FALSE(snap.top_waits.empty());
  EXPECT_EQ(snap.top_waits.front().instance,
            reinterpret_cast<std::uint64_t>(&m));
}

TEST(ObsTrace, AcquireTotalsExactAfterThreadExit) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int mode = t.resolve(0, v0);  // add(0) self-commutes: no blocking

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 100;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int j = 0; j < kOpsPerThread; ++j) {
        m.lock(mode);
        m.unlock(mode);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Merge-on-exit: the workers are gone, yet their counters are folded into
  // the registry — the totals are exact, not "whoever is still alive".
  const obs::MetricsSnapshot snap = obs::collect_metrics();
  EXPECT_EQ(snap.acquire_totals.acquisitions,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

TEST(ObsTrace, ChromeExportIsValidJsonWithDurationEvents) {
  obs::TraceDump dump;
  obs::ThreadTrace tt;
  tt.tid = 3;
  tt.live = false;
  Event begin;
  begin.ts_ns = 1000;
  begin.instance = 0xabc;
  begin.txn = 7;
  begin.type = EventType::kAcquireBegin;
  begin.mode = 2;
  Event grant = begin;
  grant.ts_ns = 3500;
  grant.type = EventType::kAcquireGrant;
  Event release = grant;
  release.ts_ns = 9000;
  release.type = EventType::kRelease;
  tt.events = {begin, grant, release};
  dump.threads.push_back(tt);

  const std::string json = obs::to_chrome_json(dump);
  std::string error;
  EXPECT_TRUE(obs::validate_json(json, &error)) << error;
  // begin→grant paired into one complete ("X") duration event of 2.5 us.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\": 2.500"), std::string::npos) << json;
  // The release stays an instant event.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"instance\": \"0xabc\""), std::string::npos);
  EXPECT_NE(json.find("\"txn\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"semlockMetrics\""), std::string::npos);
}

TEST(ObsTrace, ValidateJsonRejectsMalformedInput) {
  EXPECT_TRUE(obs::validate_json("{\"a\": [1, 2.5, \"x\", true, null]}"));
  EXPECT_FALSE(obs::validate_json("{"));
  EXPECT_FALSE(obs::validate_json("{\"a\":}"));
  EXPECT_FALSE(obs::validate_json("{} trailing"));
  EXPECT_FALSE(obs::validate_json("{\"a\" 1}"));
  EXPECT_FALSE(obs::validate_json("[1, 2,]"));
  EXPECT_FALSE(obs::validate_json("\"unterminated"));
}

TEST(ObsTrace, DumpRoundTripsThroughFile) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int mode = t.resolve(0, v0);
  std::thread worker([&] {
    for (int i = 0; i < 20; ++i) {
      m.lock(mode);
      m.unlock(mode);
    }
  });
  worker.join();

  const obs::TraceDump dump = obs::capture();
  ASSERT_FALSE(dump.threads.empty());

  const std::string path =
      testing::TempDir() + "/semlock_obs_roundtrip.bin";
  std::string error;
  ASSERT_TRUE(obs::write_dump_file(dump, path, &error)) << error;

  obs::TraceDump loaded;
  ASSERT_TRUE(obs::load_dump_file(path, loaded, &error)) << error;
  ASSERT_EQ(loaded.threads.size(), dump.threads.size());
  for (std::size_t i = 0; i < dump.threads.size(); ++i) {
    EXPECT_EQ(loaded.threads[i].tid, dump.threads[i].tid);
    ASSERT_EQ(loaded.threads[i].events.size(), dump.threads[i].events.size());
    for (std::size_t j = 0; j < dump.threads[i].events.size(); ++j) {
      const Event& a = dump.threads[i].events[j];
      const Event& b = loaded.threads[i].events[j];
      EXPECT_EQ(a.ts_ns, b.ts_ns);
      EXPECT_EQ(a.instance, b.instance);
      EXPECT_EQ(a.txn, b.txn);
      EXPECT_EQ(a.type, b.type);
      EXPECT_EQ(a.mode, b.mode);
    }
  }
  EXPECT_EQ(loaded.metrics.acquire_totals.acquisitions,
            dump.metrics.acquire_totals.acquisitions);
  // Both the text report and the chrome export render the loaded dump.
  EXPECT_FALSE(obs::text_report(loaded).empty());
  EXPECT_TRUE(obs::validate_json(obs::to_chrome_json(loaded)));
  std::remove(path.c_str());
}

TEST(ObsTrace, LoadRejectsGarbageFile) {
  const std::string path = testing::TempDir() + "/semlock_obs_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a trace dump", f);
  std::fclose(f);
  obs::TraceDump dump;
  std::string error;
  EXPECT_FALSE(obs::load_dump_file(path, dump, &error));
  EXPECT_NE(error.find("not a semlock trace dump"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, MetricsJsonIsStructurallyValid) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const int mode = t.resolve_constant(1);
  m.lock(mode);
  m.unlock(mode);
  const std::string json = obs::collect_metrics().to_json();
  std::string error;
  EXPECT_TRUE(obs::validate_json(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"conflict_matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_hist_ns\""), std::string::npos);
}

// --- the hold-time profiler (ISSUE 9) ---------------------------------------

TEST(ObsHolds, PairsEveryGrantWithItsRelease) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int mode = t.resolve(0, v0);
  constexpr int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    m.lock(mode);
    m.unlock(mode);
  }

  const obs::MetricsSnapshot snap = obs::collect_metrics();
  // Online pairing is exact by construction: every paired release added one
  // histogram sample, so the two counts cannot diverge.
  EXPECT_EQ(snap.holds_paired, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(snap.hold_hist.count(), snap.holds_paired);
  EXPECT_EQ(snap.holds_unmatched, 0u);
  ASSERT_FALSE(snap.top_holds.empty());
  EXPECT_EQ(snap.top_holds.front().instance,
            reinterpret_cast<std::uint64_t>(&m));
  EXPECT_EQ(snap.top_holds.front().mode, mode);

  // The offline re-pairing of the retained events agrees exactly (nothing
  // wrapped in this short run).
  const obs::TraceDump dump = obs::capture();
  EXPECT_EQ(obs::pair_holds_from_events(dump),
            static_cast<std::uint64_t>(kOps));
  const std::string report = obs::holds_report(dump);
  EXPECT_NE(report.find("matches paired count exactly"), std::string::npos)
      << report;
}

TEST(ObsHolds, NestedModesPairLifoAndCarryTheLockSite) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  // Two commuting modes (adds on distinct abstract values) — the mechanism
  // is not reentrant, so nested acquisition must not conflict.
  const Value v0[1] = {0};
  const Value v1[1] = {1};
  const int outer = t.resolve(0, v0);  // add(0)
  const int inner = t.resolve(0, v1);  // add(1)
  ASSERT_NE(outer, inner);

  LockSiteArgs args;
  args.site = 42;
  m.lock(outer, &args);
  m.lock(inner, &args);
  m.unlock(inner);   // pairs with the inner grant (LIFO per instance+mode)
  m.unlock(outer);

  const obs::MetricsSnapshot snap = obs::collect_metrics();
  EXPECT_EQ(snap.holds_paired, 2u);
  EXPECT_EQ(snap.hold_hist.count(), 2u);
  EXPECT_EQ(snap.holds_unmatched, 0u);
  ASSERT_EQ(snap.top_holds.size(), 2u);
  for (const obs::HoldSample& h : snap.top_holds) {
    EXPECT_EQ(h.site, 42);
    EXPECT_EQ(h.instance, reinterpret_cast<std::uint64_t>(&m));
  }
  // The outer hold strictly contains the inner one.
  std::uint64_t outer_ns = 0, inner_ns = 0;
  for (const obs::HoldSample& h : snap.top_holds) {
    if (h.mode == outer) outer_ns = h.hold_ns;
    if (h.mode == inner) inner_ns = h.hold_ns;
  }
  EXPECT_GE(outer_ns, inner_ns);
}

TEST(ObsHolds, ReleaseWithoutGrantCountsUnmatchedNotMispaired) {
  obs::reset_for_test();
  // Emit a bare release event (no prior grant) straight through emit() —
  // the shape tracing sees when enabled mid-hold.
  obs::emit(obs::EventType::kRelease, reinterpret_cast<const void*>(0x1234),
            3);
  const obs::MetricsSnapshot snap = obs::collect_metrics();
  EXPECT_EQ(snap.holds_paired, 0u);
  EXPECT_EQ(snap.hold_hist.count(), 0u);
  EXPECT_EQ(snap.holds_unmatched, 1u);
}

TEST(ObsHolds, DumpRoundTripCarriesTheHoldBlock) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int mode = t.resolve(0, v0);
  for (int i = 0; i < 6; ++i) {
    m.lock(mode);
    m.unlock(mode);
  }

  const obs::TraceDump dump = obs::capture();
  const std::string path = testing::TempDir() + "/semlock_holds_rt.bin";
  std::string error;
  ASSERT_TRUE(obs::write_dump_file(dump, path, &error)) << error;
  obs::TraceDump loaded;
  ASSERT_TRUE(obs::load_dump_file(path, loaded, &error)) << error;
  EXPECT_EQ(loaded.metrics.holds_paired, 6u);
  EXPECT_EQ(loaded.metrics.hold_hist.count(), 6u);
  EXPECT_EQ(loaded.metrics.holds_unmatched, 0u);
  ASSERT_FALSE(loaded.metrics.top_holds.empty());
  EXPECT_EQ(loaded.metrics.top_holds.front().instance,
            reinterpret_cast<std::uint64_t>(&m));
  // Hold data rides in the metrics JSON and both text reports.
  const std::string json = loaded.metrics.to_json();
  EXPECT_TRUE(obs::validate_json(json, &error)) << error;
  EXPECT_NE(json.find("\"holds_paired\": 6"), std::string::npos) << json;
  EXPECT_NE(obs::text_report(loaded).find("hold"), std::string::npos);
  EXPECT_FALSE(obs::holds_report(loaded).empty());
  std::remove(path.c_str());
}

TEST(ObsTrace, StallForensicsNamesHolderAndInstance) {
  obs::reset_for_test();
  const auto t = make_traced_table();
  LockMechanism m(t);
  const Value v0[1] = {0};
  const int held = t.resolve(0, v0);
  m.lock(held);

  char expect_instance[32];
  std::snprintf(expect_instance, sizeof(expect_instance), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<std::uintptr_t>(&m)));
  const std::string text = obs::stall_forensics(
      &m, t.resolve_constant(1), {{held, 1u}});
  EXPECT_NE(text.find(expect_instance), std::string::npos) << text;
  EXPECT_NE(text.find("mode " + std::to_string(held)), std::string::npos)
      << text;
  EXPECT_NE(text.find("holders=1"), std::string::npos) << text;
  m.unlock(held);
}

}  // namespace
}  // namespace semlock
